//! Portfolio racing through the registry (`race/<spec>,<spec>,…`).
//!
//! What must hold: race specs resolve recursively through the ordinary
//! registry (so every registered spec can race and every diagnostic stays
//! intact), the racers share one budget extended with a common cancel
//! token, the winner is deterministic — lowest cost, ties broken by spec
//! order — and an outer cancellation reaches every racer.

use bsp_sched::prelude::*;
use bsp_sched::schedule::validity::validate;
use bsp_sched::RaceScheduler;
use std::time::Duration;

fn dag() -> Dag {
    bsp_sched::dag::random::random_layered_dag(
        7,
        bsp_sched::dag::random::LayeredConfig {
            layers: 5,
            width: 5,
            edge_prob: 0.35,
            ..Default::default()
        },
    )
}

fn fast_cfg() -> PipelineConfig {
    PipelineConfig {
        enable_ilp: false,
        ..Default::default()
    }
}

/// The winning spec recorded in the outcome's final `race:` stage report.
fn winner_of(out: &SolveOutcome) -> String {
    let last = out.stages.last().expect("race reports stages");
    let spec = last
        .stage
        .strip_prefix("race:")
        .expect("last stage names the winner");
    assert_eq!(last.cost_after, out.total());
    spec.to_string()
}

#[test]
fn race_resolves_and_produces_a_valid_schedule() {
    let dag = dag();
    let machine = BspParams::new(4, 2, 5);
    let racer = Registry::standard()
        .get_with("race/etf,bl-est,cilk,hdagg", &fast_cfg())
        .expect("race spec resolves");
    assert_eq!(racer.name(), "race/etf,bl-est,cilk,hdagg");
    let out = racer.solve(&SolveRequest::new(&dag, &machine));
    assert!(validate(&dag, machine.p(), &out.result.sched, &out.result.comm).is_ok());
    assert!(out.total() > 0);
    winner_of(&out);
}

/// Racing deterministic run-to-completion schedulers (the baselines ignore
/// budgets) is fully reproducible: same winner, same cost, every repeat —
/// and the winner's cost equals the best solo cost.
#[test]
fn race_winner_is_deterministic() {
    let dag = dag();
    let machine = BspParams::new(4, 2, 5);
    let registry = Registry::standard();
    let specs = ["etf", "bl-est", "cilk", "hdagg"];
    let solo_best = specs
        .iter()
        .map(|s| {
            registry
                .get_with(s, &fast_cfg())
                .unwrap()
                .solve(&SolveRequest::new(&dag, &machine))
                .total()
        })
        .min()
        .unwrap();

    let racer = registry
        .get_with("race/etf,bl-est,cilk,hdagg", &fast_cfg())
        .unwrap();
    let first = racer.solve(&SolveRequest::new(&dag, &machine));
    assert_eq!(
        first.total(),
        solo_best,
        "winner must match the best solo cost"
    );
    for _ in 0..4 {
        let again = racer.solve(&SolveRequest::new(&dag, &machine));
        assert_eq!(again.total(), first.total());
        assert_eq!(winner_of(&again), winner_of(&first));
        assert_eq!(again.result.sched, first.result.sched);
    }
}

/// Equal-cost racers: the tie must break to the *earlier* spec, not to
/// whichever thread happened to finish first. `bl-est?numa=on` and
/// `bl-est-numa` build the identical scheduler, so their costs always tie.
#[test]
fn race_ties_break_by_spec_order() {
    let dag = dag();
    let machine = BspParams::new(4, 2, 5);
    let racer = Registry::standard()
        .get_with("race/bl-est?numa=on,bl-est-numa", &fast_cfg())
        .unwrap();
    for _ in 0..5 {
        let out = racer.solve(&SolveRequest::new(&dag, &machine));
        assert_eq!(winner_of(&out), "bl-est?numa=on");
    }
}

/// An outer cancellation propagates into every racer: with the parent
/// token already cancelled, the anytime racers degrade to their best
/// initialization but still return valid schedules.
#[test]
fn outer_cancellation_reaches_the_racers() {
    let dag = dag();
    let machine = BspParams::new(4, 2, 5);
    let token = CancelToken::new();
    token.cancel();
    let racer = Registry::standard()
        .get_with("race/pipeline/base,pipeline/multilevel", &fast_cfg())
        .unwrap();
    let req = SolveRequest::new(&dag, &machine).with_budget(Budget::unlimited().with_cancel(token));
    let out = racer.solve(&req);
    assert!(validate(&dag, machine.p(), &out.result.sched, &out.result.comm).is_ok());
    assert!(
        out.budget_exhausted,
        "cancelled racers must report exhaustion"
    );
}

/// The racers share the request budget: a race under a deadline finishes
/// (all racers wind down) and still yields a valid schedule at least as
/// good as the fastest racer's.
#[test]
fn race_shares_the_request_budget() {
    let dag = dag();
    let machine = BspParams::new(4, 2, 5);
    let registry = Registry::standard();
    let etf_total = registry
        .get_with("etf", &fast_cfg())
        .unwrap()
        .solve(&SolveRequest::new(&dag, &machine))
        .total();
    let racer = registry
        .get_with("race/etf,pipeline/base,pipeline/multilevel", &fast_cfg())
        .unwrap();
    let req =
        SolveRequest::new(&dag, &machine).with_budget(Budget::deadline(Duration::from_millis(300)));
    let out = racer.solve(&req);
    assert!(validate(&dag, machine.p(), &out.result.sched, &out.result.comm).is_ok());
    assert!(
        out.total() <= etf_total,
        "the race can never lose to a completed racer"
    );
}

#[test]
fn race_specs_accept_parameters() {
    let dag = dag();
    let machine = BspParams::new(4, 2, 5);
    let racer = Registry::standard()
        .get_with(
            "race/pipeline/base?threads=2&ilp=off,etf?numa=on",
            &fast_cfg(),
        )
        .unwrap();
    let out = racer.solve(&SolveRequest::new(&dag, &machine));
    assert!(validate(&dag, machine.p(), &out.result.sched, &out.result.comm).is_ok());
}

#[test]
fn bad_race_specs_are_rejected_with_the_ordinary_diagnostics() {
    let registry = Registry::standard();
    let cfg = fast_cfg();
    // Nested races.
    let err = match registry.get_with("race/etf,race/cilk,hdagg", &cfg) {
        Err(e) => e,
        Ok(_) => panic!("nested race must be rejected"),
    };
    assert!(err.to_string().contains("races cannot nest"), "{err}");
    // Unknown racer: same error as addressing it directly.
    assert!(matches!(
        registry.get_with("race/etf,nope", &cfg),
        Err(SpecError::UnknownScheduler { .. })
    ));
    // Empty elements.
    assert!(matches!(
        registry.get_with("race/", &cfg),
        Err(SpecError::EmptyName)
    ));
    assert!(matches!(
        registry.get_with("race/etf,,cilk", &cfg),
        Err(SpecError::EmptyName)
    ));
    // Bad parameter inside a racer: the sub-spec's diagnostics surface.
    assert!(matches!(
        registry.get_with("race/etf?bogus=1,cilk", &cfg),
        Err(SpecError::UnknownParam { .. })
    ));
}

/// The direct constructor enforces its invariants.
#[test]
#[should_panic(expected = "at least one racer")]
fn empty_race_panics() {
    let _ = RaceScheduler::new("race/".into(), vec![], vec![]);
}
