//! Registry smoke test: every registered scheduler must produce a valid,
//! positive-cost schedule on a small layered DAG, under both a uniform and
//! a NUMA machine, and registry names must be unique and stable.

use bsp_sched::prelude::*;
use bsp_sched::schedule::validity::validate;

fn small_dag() -> Dag {
    bsp_sched::dag::random::random_layered_dag(
        7,
        bsp_sched::dag::random::LayeredConfig {
            layers: 4,
            width: 4,
            edge_prob: 0.4,
            ..Default::default()
        },
    )
}

#[test]
fn every_registered_scheduler_is_valid_on_a_small_dag() {
    let dag = small_dag();
    for machine in [
        BspParams::new(4, 2, 5),
        BspParams::new(4, 2, 5).with_numa(NumaTopology::binary_tree(4, 3)),
    ] {
        for s in bsp_sched::registry_default_fast() {
            let r = s.schedule(&dag, &machine);
            assert!(
                validate(&dag, machine.p(), &r.sched, &r.comm).is_ok(),
                "{} produced an invalid schedule",
                s.name()
            );
            assert!(r.total() > 0, "{} reported zero cost", s.name());
            assert_eq!(
                r.total(),
                total_cost(&dag, &machine, &r.sched, &r.comm),
                "{}'s reported cost disagrees with re-evaluation",
                s.name()
            );
        }
    }
}

#[test]
fn registry_has_the_full_suite_with_unique_names() {
    let schedulers = bsp_sched::registry();
    assert!(
        schedulers.len() >= 8,
        "registry shrank to {} entries",
        schedulers.len()
    );
    let names: Vec<&str> = schedulers.iter().map(|s| s.name()).collect();
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate scheduler names: {names:?}"
    );
    // Stable names harnesses key on.
    for expected in [
        "cilk",
        "bl-est",
        "etf",
        "hdagg",
        "dsc",
        "init/bspg",
        "init/source",
        "pipeline/base",
        "pipeline/multilevel",
        "auto",
    ] {
        assert!(
            names.contains(&expected),
            "registry lost {expected:?}: {names:?}"
        );
    }
    // Every family is represented.
    for kind in [
        SchedulerKind::Baseline,
        SchedulerKind::Initializer,
        SchedulerKind::Pipeline,
    ] {
        assert!(
            schedulers.iter().any(|s| s.kind() == kind),
            "no {kind:?} registered"
        );
    }
}

#[test]
fn find_returns_configured_pipelines() {
    let cfg = PipelineConfig {
        enable_ilp: false,
        ..Default::default()
    };
    let base = bsp_sched::registry::find("pipeline/base", &cfg).expect("base pipeline registered");
    let dag = small_dag();
    let machine = BspParams::new(4, 2, 5);
    let r = base.schedule(&dag, &machine);
    assert!(validate(&dag, 4, &r.sched, &r.comm).is_ok());
    assert!(bsp_sched::registry::find("no-such-scheduler", &cfg).is_none());
}
