//! Registry smoke test: every registered scheduler must solve a small
//! layered DAG through the `SolveRequest` API — under both a uniform and a
//! NUMA machine, under unlimited *and* already-expired budgets — producing
//! a valid, positive-cost schedule with a monotone stage-report trajectory.
//! Registry names must be unique and stable, and spec-string lookup must
//! build single entries.
//!
//! The instance registry gets the same treatment: every built-in
//! `InstanceSource` descriptor must parse as a spec, generate
//! deterministically for a fixed seed, and yield DAGs every registered
//! scheduler accepts.

use bsp_sched::prelude::*;
use bsp_sched::schedule::validity::validate;

fn small_dag() -> Dag {
    bsp_sched::dag::random::random_layered_dag(
        7,
        bsp_sched::dag::random::LayeredConfig {
            layers: 4,
            width: 4,
            edge_prob: 0.4,
            ..Default::default()
        },
    )
}

fn fast_cfg() -> PipelineConfig {
    PipelineConfig {
        enable_ilp: false,
        ..Default::default()
    }
}

/// Checks the outcome invariants every solve must satisfy: validity, cost
/// consistency, and a monotone non-increasing stage trajectory that ends at
/// the final cost.
fn check_outcome(name: &str, dag: &Dag, machine: &BspParams, out: &SolveOutcome) {
    let r = &out.result;
    assert!(
        validate(dag, machine.p(), &r.sched, &r.comm).is_ok(),
        "{name} produced an invalid schedule"
    );
    assert!(out.total() > 0, "{name} reported zero cost");
    assert_eq!(
        out.total(),
        total_cost(dag, machine, &r.sched, &r.comm),
        "{name}'s reported cost disagrees with re-evaluation"
    );
    assert!(!out.stages.is_empty(), "{name} reported no stages");
    for w in out.stages.windows(2) {
        assert!(
            w[1].cost_after <= w[0].cost_after,
            "{name}: stage trajectory not monotone: {:?}",
            out.stages
        );
    }
    assert_eq!(
        out.stages.last().unwrap().cost_after,
        out.total(),
        "{name}: last stage report disagrees with the final cost"
    );
}

#[test]
fn every_registered_scheduler_solves_uniform_and_numa() {
    let dag = small_dag();
    let registry = Registry::standard();
    for machine in [
        BspParams::new(4, 2, 5),
        BspParams::new(4, 2, 5).with_numa(NumaTopology::binary_tree(4, 3)),
    ] {
        for entry in registry.entries() {
            let s = entry.build_default(&fast_cfg());
            let out = s.solve(&SolveRequest::new(&dag, &machine));
            check_outcome(s.name(), &dag, &machine, &out);
        }
    }
}

#[test]
fn every_registered_scheduler_survives_an_expired_budget() {
    let dag = small_dag();
    let machine = BspParams::new(8, 1, 5).with_numa(NumaTopology::binary_tree(8, 3));
    for entry in Registry::standard().entries() {
        let s = entry.build_default(&fast_cfg());
        let out = s.solve(
            &SolveRequest::new(&dag, &machine)
                .with_budget(Budget::expired())
                .with_seed(11),
        );
        check_outcome(s.name(), &dag, &machine, &out);
        if entry.descriptor().supports_budget {
            assert!(
                out.budget_exhausted,
                "{} ignored the expired deadline",
                s.name()
            );
        }
    }
}

use bsp_sched::schedule::memory::min_repairable_capacity;

#[test]
fn every_scheduler_is_feasible_or_repairable_on_memory_bounded_machines() {
    use bsp_sched::schedule::validity::validate_memory;

    let dag = small_dag();
    let machine =
        BspParams::new(4, 2, 5).with_memory(MemorySpec::new(min_repairable_capacity(&dag)));
    for entry in Registry::standard().entries() {
        let s = entry.build_default(&fast_cfg());
        let out = s.solve(&SolveRequest::new(&dag, &machine).with_seed(3));
        let r = &out.result;
        assert!(
            validate(&dag, machine.p(), &r.sched, &r.comm).is_ok(),
            "{}: structurally invalid on a memory-bounded machine",
            s.name()
        );
        // Either the schedule is memory-feasible as returned, or one
        // deterministic repair pass makes it so.
        let (fixed, report) = repair_memory(&dag, &machine, &r.sched);
        assert!(
            validate_memory(&dag, &machine, &fixed).is_ok(),
            "{}: repair left {} violations",
            s.name(),
            report.violations_after
        );
        let (fixed_again, report_again) = repair_memory(&dag, &machine, &r.sched);
        assert_eq!(fixed, fixed_again, "{}: repair not deterministic", s.name());
        assert_eq!(report, report_again, "{}", s.name());
        // The memory-aware entries come back feasible without outside help.
        if entry.descriptor().name.contains("mem") {
            assert!(
                validate_memory(&dag, &machine, &r.sched).is_ok(),
                "{}: memory-aware entry returned an infeasible schedule",
                s.name()
            );
            assert_eq!(
                out.stages.last().map(|st| st.stage.as_str()),
                Some("mem-repair"),
                "{}: missing the repair stage",
                s.name()
            );
        }
    }

    // The deterministic memory-aware baselines are reproducible end to end.
    let registry = Registry::standard();
    for spec in ["bl-est/mem", "etf/mem"] {
        let a = registry
            .get(spec)
            .unwrap()
            .solve(&SolveRequest::new(&dag, &machine));
        let b = registry
            .get(spec)
            .unwrap()
            .solve(&SolveRequest::new(&dag, &machine));
        assert_eq!(a.result.sched, b.result.sched, "{spec} not deterministic");
        assert_eq!(a.total(), b.total(), "{spec} not deterministic");
    }

    // `mem=on` reconfigures the pipelines to repair their own output.
    let s = registry
        .get("pipeline/base?ilp=off&mem=on")
        .expect("mem=on is a pipeline parameter");
    let out = s.solve(&SolveRequest::new(&dag, &machine));
    assert!(validate_memory(&dag, &machine, &out.result.sched).is_ok());
    assert!(out.stages.iter().any(|st| st.stage == "mem-repair"));
    // On an unbounded machine mem=on is invisible — no repair stage.
    let unbounded = BspParams::new(4, 2, 5);
    let out = s.solve(&SolveRequest::new(&dag, &unbounded));
    assert!(out.stages.iter().all(|st| st.stage != "mem-repair"));
}

#[test]
fn registry_has_the_full_suite_with_unique_names() {
    let registry = Registry::standard();
    assert!(
        registry.entries().len() >= 8,
        "registry shrank to {} entries",
        registry.entries().len()
    );
    let names: Vec<&str> = registry.descriptors().map(|d| d.name).collect();
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate scheduler names: {names:?}"
    );
    // Stable names harnesses key on.
    for expected in [
        "cilk",
        "bl-est",
        "bl-est/mem",
        "etf",
        "etf/mem",
        "hdagg",
        "dsc",
        "init/bspg",
        "init/source",
        "pipeline/base",
        "pipeline/multilevel",
        "auto",
    ] {
        assert!(
            names.contains(&expected),
            "registry lost {expected:?}: {names:?}"
        );
    }
    // Every family is represented, and built names match descriptors.
    for kind in [
        SchedulerKind::Baseline,
        SchedulerKind::Initializer,
        SchedulerKind::Pipeline,
    ] {
        assert!(
            registry.descriptors().any(|d| d.kind == kind),
            "no {kind:?} registered"
        );
    }
    for entry in registry.entries() {
        let s = entry.build_default(&fast_cfg());
        assert_eq!(s.name(), entry.descriptor().name);
        assert_eq!(s.kind(), entry.descriptor().kind);
    }
}

#[test]
fn spec_lookup_builds_configured_single_entries() {
    let registry = Registry::standard();
    let dag = small_dag();
    let machine = BspParams::new(4, 2, 5);

    let base = registry
        .get("pipeline/base?ilp=off&hc_iters=200")
        .expect("base pipeline spec");
    let out = base.solve(&SolveRequest::new(&dag, &machine));
    check_outcome("pipeline/base", &dag, &machine, &out);

    // `?numa=on` reconfigures the plain list baselines into their
    // NUMA-aware variants.
    let etf = registry.get("etf?numa=on").expect("etf spec");
    assert_eq!(etf.name(), "etf-numa");

    // Errors carry enough context to act on.
    assert!(matches!(
        registry.get("no-such-scheduler"),
        Err(SpecError::UnknownScheduler { .. })
    ));
    assert!(matches!(
        registry.get("etf?nuna=on"),
        Err(SpecError::UnknownParam { .. })
    ));
    assert!(matches!(
        registry.get("pipeline/base?hc_iters=lots"),
        Err(SpecError::BadValue { .. })
    ));
    assert!(bsp_sched::find("no-such-scheduler", &fast_cfg()).is_none());
    assert!(bsp_sched::find("dsc", &fast_cfg()).is_some());
}

/// The spec each instance source is smoked under: datasets are shrunk
/// hard and every size-like parameter the source accepts is pinned small,
/// so the full catalogue × scheduler product stays test-sized.
fn smoke_spec(d: &InstanceDescriptor) -> String {
    if d.batch {
        return format!("{}?scale=0.02", d.name);
    }
    let small = [
        ("n", "24"),
        ("k", "3"),
        ("width", "8"),
        ("steps", "4"),
        ("depth", "3"),
        ("layers", "3"),
        ("chains", "3"),
        ("stages", "2"),
    ];
    let params: Vec<String> = small
        .iter()
        .filter(|(key, _)| d.params.contains(key))
        .map(|(key, value)| format!("{key}={value}"))
        .collect();
    if params.is_empty() {
        d.spec()
    } else {
        format!("{}?{}", d.name, params.join("&"))
    }
}

#[test]
fn every_instance_source_parses_and_generates_deterministically() {
    let registry = bsp_sched::instances();
    assert!(
        registry.sources().len() >= 8,
        "instance registry shrank to {} sources",
        registry.sources().len()
    );
    for d in registry.descriptors() {
        // The descriptor's name is a valid spec address.
        let parsed = SchedulerSpec::parse(&d.spec())
            .unwrap_or_else(|e| panic!("descriptor spec {:?} must parse: {e}", d.spec()));
        assert_eq!(parsed.name(), d.name);

        let spec = smoke_spec(d);
        let a = registry.generate(&spec, 1234).unwrap_or_else(|e| {
            panic!("source {:?} failed to generate from {spec:?}: {e}", d.name)
        });
        let b = registry.generate(&spec, 1234).unwrap();
        assert_eq!(a, b, "source {:?} is not deterministic", d.name);
        assert!(!a.is_empty(), "source {:?} generated nothing", d.name);
        assert_eq!(
            a.len() > 1,
            d.batch,
            "source {:?}: batch flag disagrees with output size {}",
            d.name,
            a.len()
        );
        for inst in &a {
            assert!(inst.dag.n() > 0, "{}: empty DAG", inst.name);
        }
    }
}

#[test]
fn every_scheduler_accepts_every_instance_family() {
    let instance_registry = bsp_sched::instances();
    let scheduler_registry = Registry::standard();
    // Cheap caps: this is an acceptance test, not a quality sweep.
    let cfg = PipelineConfig {
        enable_ilp: false,
        hc: bsp_sched::core::hc::HillClimbConfig {
            max_moves: Some(200),
            time_limit: Some(std::time::Duration::from_millis(200)),
        },
        hccs: bsp_sched::core::hccs::CommHillClimbConfig {
            max_moves: Some(200),
            time_limit: Some(std::time::Duration::from_millis(200)),
        },
        ..Default::default()
    };
    let machine_clause = "bsp?p=4&numa=tree&delta=2";
    for d in instance_registry.descriptors() {
        let spec = format!("{} @ {machine_clause}", smoke_spec(d));
        let inst = instance_registry
            .generate_one(&spec, 7)
            .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        for entry in scheduler_registry.entries() {
            let s = entry.build_default(&cfg);
            let out = s.solve(&SolveRequest::new(&inst.dag, &inst.machine));
            assert!(
                validate(
                    &inst.dag,
                    inst.machine.p(),
                    &out.result.sched,
                    &out.result.comm
                )
                .is_ok(),
                "{} rejected instance {} (family {:?})",
                s.name(),
                inst.name,
                d.name
            );
            assert!(out.total() > 0, "{} zero cost on {}", s.name(), inst.name);
        }
    }
}

#[test]
fn memory_repair_covers_every_instance_family() {
    use bsp_sched::schedule::validity::validate_memory;

    let instance_registry = bsp_sched::instances();
    let scheduler_registry = Registry::standard();
    for d in instance_registry.descriptors() {
        // Two-step: measure the family's smallest repairable capacity,
        // then regenerate on a machine bounded by exactly that.
        let probe = instance_registry
            .generate_one(&format!("{} @ bsp?p=4&g=2", smoke_spec(d)), 7)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        let m_min = min_repairable_capacity(&probe.dag);
        let spec = format!("{} @ bsp?p=4&g=2&mem={m_min}", smoke_spec(d));
        let inst = instance_registry
            .generate_one(&spec, 7)
            .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        assert!(inst.machine.is_memory_bounded());

        // The memory-aware entries return feasible schedules directly.
        for sched_spec in ["bl-est/mem", "etf/mem"] {
            let s = scheduler_registry.get(sched_spec).unwrap();
            let out = s.solve(&SolveRequest::new(&inst.dag, &inst.machine));
            assert!(
                validate(
                    &inst.dag,
                    inst.machine.p(),
                    &out.result.sched,
                    &out.result.comm
                )
                .is_ok(),
                "{sched_spec} invalid on {}",
                inst.name
            );
            assert!(
                validate_memory(&inst.dag, &inst.machine, &out.result.sched).is_ok(),
                "{sched_spec} memory-infeasible on {}",
                inst.name
            );
        }
        // And the repair pass fixes the memory-oblivious baseline.
        let plain = scheduler_registry.get("bl-est").unwrap();
        let out = plain.solve(&SolveRequest::new(&inst.dag, &inst.machine));
        let (fixed, report) = repair_memory(&inst.dag, &inst.machine, &out.result.sched);
        assert_eq!(
            report.violations_after, 0,
            "repair left violations on {} (family {:?})",
            inst.name, d.name
        );
        assert!(validate_memory(&inst.dag, &inst.machine, &fixed).is_ok());
    }
}

#[test]
fn budget_deadline_reaches_the_pipeline_stages() {
    // With an expired deadline the pipeline must stop after `init`; the
    // stage reports say so explicitly.
    let dag = small_dag();
    let machine = BspParams::new(4, 2, 5);
    let s = Registry::standard()
        .get("pipeline/base?ilp=off")
        .expect("base spec");
    let out = s.solve(&SolveRequest::new(&dag, &machine).with_budget(Budget::expired()));
    assert!(out.budget_exhausted);
    assert!(out.stages.iter().any(|st| st.stage == "init"));
    // The ILP stage can never run with an expired budget.
    assert!(out.stages.iter().all(|st| st.stage != "ilp"));
}
