//! Cross-crate integration tests for the future-work extensions: escape
//! local-minima searches, NUMA-aware list baselines, MatrixMarket loading,
//! presolve-backed ILP stages, export renderers, and auto-selection.

use bsp_sched::baselines::{blest_bsp_numa_aware, etf_bsp, etf_bsp_numa_aware};
use bsp_sched::core::anneal::{simulated_annealing, AnnealConfig};
use bsp_sched::core::hc::{hill_climb, HillClimbConfig};
use bsp_sched::core::ilp::{ilp_full, IlpConfig};
use bsp_sched::core::init::bspg_schedule;
use bsp_sched::core::state::ScheduleState;
use bsp_sched::core::steepest::hill_climb_steepest;
use bsp_sched::core::tabu::{tabu_search, TabuConfig};
use bsp_sched::dagdb::fine::{cg_dag, spmv_dag};
use bsp_sched::dagdb::{pattern_from_matrix_market, pattern_to_matrix_market, SparsePattern};
use bsp_sched::prelude::*;
use bsp_sched::schedule::validity::{validate, validate_lazy};
use bsp_sched::schedule::{dag_to_dot, schedule_to_dot, schedule_to_text};

fn sample_dag() -> Dag {
    cg_dag(&SparsePattern::random_with_diagonal(8, 0.3, 21), 2)
}

#[test]
fn all_local_searches_refine_the_same_init() {
    let dag = sample_dag();
    let machine = BspParams::new(4, 3, 5);
    let init = bspg_schedule(&dag, &machine);
    let init_cost = lazy_cost(&dag, &machine, &init);

    let mut st = ScheduleState::new(&dag, &machine, &init);
    hill_climb(
        &mut st,
        &HillClimbConfig {
            max_moves: Some(2000),
            time_limit: None,
        },
    );
    let greedy = st.cost();

    let mut st2 = ScheduleState::new(&dag, &machine, &init);
    hill_climb_steepest(
        &mut st2,
        &HillClimbConfig {
            max_moves: Some(300),
            time_limit: None,
        },
    );
    let steepest = st2.cost();

    let (sa_sched, sa, _) = simulated_annealing(
        &dag,
        &machine,
        &init,
        &AnnealConfig {
            max_steps: 30_000,
            time_limit: None,
            ..AnnealConfig::default()
        },
    );
    let (tb_sched, tb, _) = tabu_search(
        &dag,
        &machine,
        &init,
        &TabuConfig {
            max_iters: 300,
            time_limit: None,
            ..TabuConfig::default()
        },
    );

    for (name, cost) in [
        ("greedy", greedy),
        ("steepest", steepest),
        ("sa", sa),
        ("tabu", tb),
    ] {
        assert!(
            cost <= init_cost,
            "{name} worsened the init: {cost} > {init_cost}"
        );
    }
    assert!(validate_lazy(&dag, 4, &sa_sched).is_ok());
    assert!(validate_lazy(&dag, 4, &tb_sched).is_ok());
}

#[test]
fn numa_aware_baselines_schedule_database_instances() {
    let dag = sample_dag();
    let machine = BspParams::new(8, 1, 5).with_numa(NumaTopology::binary_tree(8, 4));
    for (name, sched) in [
        ("etf-aware", etf_bsp_numa_aware(&dag, &machine)),
        ("blest-aware", blest_bsp_numa_aware(&dag, &machine)),
    ] {
        assert!(validate_lazy(&dag, 8, &sched).is_ok(), "{name}");
    }
    // The aware variant must behave identically on the uniform machine.
    let uniform = BspParams::new(8, 1, 5);
    assert_eq!(
        lazy_cost(&dag, &uniform, &etf_bsp(&dag, &uniform)),
        lazy_cost(&dag, &uniform, &etf_bsp_numa_aware(&dag, &uniform)),
    );
}

#[test]
fn matrix_market_to_schedule_end_to_end() {
    // Round-trip a generated pattern through the MatrixMarket text format,
    // build the spmv fine-grained DAG, and push it through the pipeline.
    let p = SparsePattern::random_with_diagonal(9, 0.3, 5);
    let text = pattern_to_matrix_market(&p);
    let loaded = pattern_from_matrix_market(&text).unwrap();
    assert_eq!(p, loaded);

    let dag = spmv_dag(&loaded);
    let machine = BspParams::new(4, 2, 5);
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    let r = schedule_dag(&dag, &machine, &cfg);
    assert!(validate(&dag, 4, &r.sched, &r.comm).is_ok());
    assert!(r.cost <= lazy_cost(&dag, &machine, &bspg_schedule(&dag, &machine)));
}

#[test]
fn presolve_does_not_change_ilp_stage_semantics() {
    // ILPfull with and without presolve must both be monotone; with enough
    // budget on a tiny DAG they find the same optimum.
    let dag = spmv_dag(&SparsePattern::random_with_diagonal(3, 0.25, 2));
    let machine = BspParams::new(2, 2, 3);
    let init = bspg_schedule(&dag, &machine);
    let init_cost = lazy_cost(&dag, &machine, &init);
    let mk_cfg = |presolve: bool| {
        let mut cfg = IlpConfig::default();
        cfg.full_max_vars = 6000;
        cfg.limits.max_nodes = 200_000;
        cfg.limits.time_limit = std::time::Duration::from_secs(20);
        cfg.use_presolve = presolve;
        cfg
    };
    let (with, proven_with) = ilp_full(&dag, &machine, &init, &mk_cfg(true));
    let (without, proven_without) = ilp_full(&dag, &machine, &init, &mk_cfg(false));
    let (cw, cwo) = (
        lazy_cost(&dag, &machine, &with),
        lazy_cost(&dag, &machine, &without),
    );
    assert!(
        cw <= init_cost && cwo <= init_cost,
        "ILPfull must be monotone"
    );
    if proven_with && proven_without {
        assert_eq!(cw, cwo, "presolve changed the optimum");
    } else {
        // Budgets were exhausted: both must still hold the anytime contract.
        assert!(validate_lazy(&dag, 2, &with).is_ok());
        assert!(validate_lazy(&dag, 2, &without).is_ok());
    }
}

#[test]
fn exports_render_pipeline_results() {
    let dag = sample_dag();
    let machine = BspParams::new(4, 2, 5);
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    let r = schedule_dag(&dag, &machine, &cfg);

    let dot = schedule_to_dot(&dag, &r.sched);
    assert_eq!(dot.matches("->").count(), dag.m());
    assert!(dag_to_dot(&dag).contains("digraph dag"));

    let txt = schedule_to_text(&dag, &machine, &r.sched, Some(&r.comm));
    assert!(txt.contains(&format!("total cost = {}", r.cost)));
}

#[test]
fn structured_families_schedule_on_every_topology() {
    use bsp_sched::dagdb::structured::{butterfly_dag, in_tree_dag, sptrsv_dag, stencil1d_dag};
    let dags = [
        (
            "sptrsv",
            sptrsv_dag(&SparsePattern::random_with_diagonal(10, 0.35, 3)),
        ),
        ("butterfly", butterfly_dag(3)),
        ("stencil", stencil1d_dag(10, 4)),
        ("in_tree", in_tree_dag(3, 2)),
    ];
    let machines = [
        ("uniform", BspParams::new(6, 2, 5)),
        (
            "two_level",
            BspParams::new(6, 2, 5).with_numa(NumaTopology::two_level(3, 2, 4)),
        ),
        (
            "ring",
            BspParams::new(6, 2, 5).with_numa(NumaTopology::ring(6)),
        ),
        (
            "grid",
            BspParams::new(6, 2, 5).with_numa(NumaTopology::grid(2, 3)),
        ),
    ];
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    for (dname, dag) in &dags {
        for (mname, machine) in &machines {
            let r = schedule_dag(dag, machine, &cfg);
            assert!(
                validate(dag, machine.p(), &r.sched, &r.comm).is_ok(),
                "{dname} on {mname}"
            );
            assert_eq!(
                r.cost,
                total_cost(dag, machine, &r.sched, &r.comm),
                "{dname} on {mname}"
            );
        }
    }
}

#[test]
fn sptrsv_wavefronts_match_hdagg_structure() {
    // SpTRSV is HDagg's native workload: its schedule on the sptrsv DAG
    // must be valid and carry no intra-superstep cross-processor edges.
    use bsp_sched::baselines::hdagg::HDaggConfig;
    use bsp_sched::baselines::hdagg_schedule;
    use bsp_sched::dagdb::structured::sptrsv_dag;
    let dag = sptrsv_dag(&SparsePattern::random_with_diagonal(12, 0.3, 9));
    let machine = BspParams::new(4, 2, 5);
    let s = hdagg_schedule(&dag, &machine, HDaggConfig::default());
    assert!(validate_lazy(&dag, 4, &s).is_ok());
    for (u, v) in dag.edges() {
        if s.step(u) == s.step(v) {
            assert_eq!(s.proc(u), s.proc(v), "intra-superstep cross edge {u}->{v}");
        }
    }
}

#[test]
fn pipeline_escape_stage_end_to_end() {
    use bsp_sched::core::pipeline::EscapeSearch;
    use bsp_sched::core::tabu::TabuConfig;
    let dag = sample_dag();
    let machine = BspParams::new(4, 3, 5);
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    cfg.escape = Some(EscapeSearch::Tabu(TabuConfig {
        max_iters: 150,
        time_limit: Some(std::time::Duration::from_secs(2)),
        ..TabuConfig::default()
    }));
    let r = schedule_dag(&dag, &machine, &cfg);
    assert!(validate(&dag, 4, &r.sched, &r.comm).is_ok());
    assert!(r.hc_cost <= r.init_cost);
    assert!(r.cost <= r.hc_cost);
}

#[test]
fn auto_selection_on_database_instances() {
    let dag = sample_dag();
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    let auto = AutoConfig::default();

    // Uniform machine: low dominance, base strategy.
    let uniform = BspParams::new(8, 1, 5);
    let (r, strat) = schedule_dag_auto(&dag, &uniform, &cfg, &auto);
    assert_eq!(strat, Strategy::Base);
    assert!(validate(&dag, 8, &r.sched, &r.comm).is_ok());

    // Steep hierarchy: high dominance, multilevel engaged (the DAG is large
    // enough to coarsen).
    assert!(dag.n() >= auto.min_nodes_for_ml);
    let steep = BspParams::new(16, 3, 5).with_numa(NumaTopology::binary_tree(16, 4));
    let (r2, strat2) = schedule_dag_auto(&dag, &steep, &cfg, &auto);
    assert_eq!(strat2, Strategy::Multilevel);
    assert!(validate(&dag, 16, &r2.sched, &r2.comm).is_ok());
}
