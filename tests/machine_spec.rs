//! Property tests for the machine-spec grammar:
//!
//! * any well-formed `MachineSpec` — including the memory clause
//!   (`mem=`/`evict=`) — round-trips through its canonical spec string
//!   (`parse(spec()) == self`) and builds a `BspParams` with the
//!   advertised `(P, g, ℓ, M)`;
//! * `numa=tree` topologies match the paper's doc example — with `Δ` per
//!   hierarchy level, opposite leaves cost `Δ^(log₂P − 1)`, which for
//!   `P = 8` is the documented `λ(0,7) = Δ²` — across powers-of-two `P`;
//! * unknown `bsp?` query keys are *typed* errors, never silently ignored
//!   — also when the machine clause arrives through a full
//!   `"dag? @ bsp?…"` instance spec.

use bsp_sched::prelude::*;
use proptest::prelude::*;

/// Builds one of the five NUMA kinds from drawn raw values, normalizing
/// the parameters so the spec is always self-consistent.
fn numa_of(kind: usize, p: usize, delta: u64) -> NumaSpec {
    match kind {
        0 => NumaSpec::Uniform,
        1 if p >= 2 && p.is_power_of_two() => NumaSpec::Tree { delta },
        2 => NumaSpec::Sockets {
            sockets: if p.is_multiple_of(2) { 2 } else { 1 },
            delta,
        },
        3 if p >= 2 => NumaSpec::Ring,
        4 => NumaSpec::Grid {
            rows: if p.is_multiple_of(2) { 2 } else { 1 },
        },
        _ => NumaSpec::Uniform,
    }
}

/// Builds the memory clause from drawn raw values: none, LRU, or Belady.
fn mem_of(kind: usize, capacity: u64) -> Option<MemorySpec> {
    match kind {
        0 => None,
        1 => Some(MemorySpec::new(capacity)),
        _ => Some(MemorySpec::new(capacity).with_policy(EvictionPolicy::Belady)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn machine_spec_round_trips_through_its_spec_string(
        p_exp in 0u32..6,
        p_off in 0usize..3,
        g in 0u64..20,
        l in 0u64..50,
        kind in 0usize..5,
        delta in 1u64..9,
        mem_kind in 0usize..3,
        capacity in 1u64..100_000,
    ) {
        let p = (1usize << p_exp) + p_off * 3; // mixes powers of two and odd sizes
        let spec = MachineSpec {
            p: p.max(1),
            g,
            l,
            numa: numa_of(kind, p.max(1), delta),
            mem: mem_of(mem_kind, capacity),
        };
        let text = spec.spec();
        let reparsed = MachineSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical spec {text:?} must parse: {e}"));
        prop_assert_eq!(&reparsed, &spec, "round-trip of {}", text);

        let machine = spec.build();
        prop_assert_eq!(machine.p(), spec.p);
        prop_assert_eq!(machine.g(), spec.g);
        prop_assert_eq!(machine.l(), spec.l);
        prop_assert_eq!(machine.memory().copied(), spec.mem);
        prop_assert_eq!(machine.is_memory_bounded(), spec.mem.is_some());
        // The converse does not hold (e.g. tree with Δ=1 is also uniform).
        if spec.numa == NumaSpec::Uniform {
            prop_assert!(machine.is_uniform());
        }
    }

    #[test]
    fn tree_lambda_matches_the_doc_example_across_powers_of_two(
        p_exp in 1u32..6,
        delta in 1u64..9,
    ) {
        let p = 1usize << p_exp;
        let spec = MachineSpec::parse(&format!("bsp?p={p}&numa=tree&delta={delta}")).unwrap();
        let machine = spec.build();
        // Opposite leaves are log₂P levels apart: λ(0, P−1) = Δ^(log₂P − 1).
        prop_assert_eq!(machine.lambda(0, p - 1), delta.pow(p_exp - 1));
        // Siblings always cost 1, and the matrix is symmetric with zero
        // diagonal.
        if p >= 2 {
            prop_assert_eq!(machine.lambda(0, 1), 1);
        }
        for a in 0..p {
            prop_assert_eq!(machine.lambda(a, a), 0);
            for b in 0..p {
                prop_assert_eq!(machine.lambda(a, b), machine.lambda(b, a));
            }
        }
    }

    #[test]
    fn unknown_machine_keys_are_typed_errors(
        key_pick in 0usize..6,
        value in 1u64..100,
    ) {
        // Plausible-but-wrong keys a user might type: none may be
        // silently ignored, and the error must name the offender.
        let key = ["memory", "cache", "evictor", "m", "capacity", "fastmem"][key_pick];
        let err = MachineSpec::parse(&format!("bsp?p=4&{key}={value}"))
            .expect_err("unknown keys must be rejected");
        match err {
            InstanceError::Spec(SpecError::UnknownParam { key: k, .. }) => {
                prop_assert_eq!(k, key);
            }
            other => prop_assert!(false, "expected a typed UnknownParam error, got {other:?}"),
        }
        // The same key through a full instance spec fails identically.
        let full = format!("butterfly?k=2 @ bsp?p=4&{key}={value}");
        let err = bsp_sched::instances().generate(&full, 1).unwrap_err();
        prop_assert!(
            matches!(err, InstanceError::Spec(SpecError::UnknownParam { .. })),
            "instance-spec path must reject unknown machine keys, got {err:?}"
        );
    }

    #[test]
    fn memory_clause_constraints_hold(capacity in 1u64..1000) {
        // evict without mem, zero capacities and unknown policies are
        // rejected with context.
        prop_assert!(MachineSpec::parse("bsp?p=4&evict=lru").is_err());
        prop_assert!(MachineSpec::parse("bsp?p=4&mem=0").is_err());
        prop_assert!(
            MachineSpec::parse(&format!("bsp?p=4&mem={capacity}&evict=fifo")).is_err()
        );
        let m = MachineSpec::parse(&format!("bsp?p=4&mem={capacity}")).unwrap();
        prop_assert_eq!(m.mem, Some(MemorySpec::new(capacity)));
        let built = m.build();
        prop_assert_eq!(built.memory().unwrap().capacity, capacity);
    }
}

#[test]
fn doc_example_p8() {
    // The documented instance of the property: P = 8, λ(0,7) = Δ².
    for delta in [2u64, 3, 4] {
        let m = MachineSpec::parse(&format!("bsp?p=8&numa=tree&delta={delta}"))
            .unwrap()
            .build();
        assert_eq!(m.lambda(0, 7), delta * delta);
    }
}

#[test]
fn memory_machines_reach_instances() {
    // The memory clause flows through the instance registry into the
    // generated machine, and the resolved name replays it.
    let inst = bsp_sched::instances()
        .generate_one("butterfly?k=3 @ bsp?p=4&mem=48&evict=belady", 7)
        .unwrap();
    let mem = inst.machine.memory().expect("machine must carry the bound");
    assert_eq!(mem.capacity, 48);
    assert_eq!(mem.evict, EvictionPolicy::Belady);
    let replay = bsp_sched::instances().generate_one(&inst.name, 7).unwrap();
    assert_eq!(replay, inst);
}
