//! Property tests for the machine-spec grammar:
//!
//! * any well-formed `MachineSpec` round-trips through its canonical spec
//!   string (`parse(spec()) == self`) and builds a `BspParams` with the
//!   advertised `(P, g, ℓ)`;
//! * `numa=tree` topologies match the paper's doc example — with `Δ` per
//!   hierarchy level, opposite leaves cost `Δ^(log₂P − 1)`, which for
//!   `P = 8` is the documented `λ(0,7) = Δ²` — across powers-of-two `P`.

use bsp_sched::prelude::*;
use proptest::prelude::*;

/// Builds one of the five NUMA kinds from drawn raw values, normalizing
/// the parameters so the spec is always self-consistent.
fn numa_of(kind: usize, p: usize, delta: u64) -> NumaSpec {
    match kind {
        0 => NumaSpec::Uniform,
        1 if p >= 2 && p.is_power_of_two() => NumaSpec::Tree { delta },
        2 => NumaSpec::Sockets {
            sockets: if p.is_multiple_of(2) { 2 } else { 1 },
            delta,
        },
        3 if p >= 2 => NumaSpec::Ring,
        4 => NumaSpec::Grid {
            rows: if p.is_multiple_of(2) { 2 } else { 1 },
        },
        _ => NumaSpec::Uniform,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn machine_spec_round_trips_through_its_spec_string(
        p_exp in 0u32..6,
        p_off in 0usize..3,
        g in 0u64..20,
        l in 0u64..50,
        kind in 0usize..5,
        delta in 1u64..9,
    ) {
        let p = (1usize << p_exp) + p_off * 3; // mixes powers of two and odd sizes
        let spec = MachineSpec { p: p.max(1), g, l, numa: numa_of(kind, p.max(1), delta) };
        let text = spec.spec();
        let reparsed = MachineSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical spec {text:?} must parse: {e}"));
        prop_assert_eq!(&reparsed, &spec, "round-trip of {}", text);

        let machine = spec.build();
        prop_assert_eq!(machine.p(), spec.p);
        prop_assert_eq!(machine.g(), spec.g);
        prop_assert_eq!(machine.l(), spec.l);
        // The converse does not hold (e.g. tree with Δ=1 is also uniform).
        if spec.numa == NumaSpec::Uniform {
            prop_assert!(machine.is_uniform());
        }
    }

    #[test]
    fn tree_lambda_matches_the_doc_example_across_powers_of_two(
        p_exp in 1u32..6,
        delta in 1u64..9,
    ) {
        let p = 1usize << p_exp;
        let spec = MachineSpec::parse(&format!("bsp?p={p}&numa=tree&delta={delta}")).unwrap();
        let machine = spec.build();
        // Opposite leaves are log₂P levels apart: λ(0, P−1) = Δ^(log₂P − 1).
        prop_assert_eq!(machine.lambda(0, p - 1), delta.pow(p_exp - 1));
        // Siblings always cost 1, and the matrix is symmetric with zero
        // diagonal.
        if p >= 2 {
            prop_assert_eq!(machine.lambda(0, 1), 1);
        }
        for a in 0..p {
            prop_assert_eq!(machine.lambda(a, a), 0);
            for b in 0..p {
                prop_assert_eq!(machine.lambda(a, b), machine.lambda(b, a));
            }
        }
    }
}

#[test]
fn doc_example_p8() {
    // The documented instance of the property: P = 8, λ(0,7) = Δ².
    for delta in [2u64, 3, 4] {
        let m = MachineSpec::parse(&format!("bsp?p=8&numa=tree&delta={delta}"))
            .unwrap()
            .build();
        assert_eq!(m.lambda(0, 7), delta * delta);
    }
}
