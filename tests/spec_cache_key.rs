//! Cache-key invariance: the canonical spec strings the service uses as
//! cache keys are *byte-stable* fixed points. For instances, machines and
//! schedulers alike,
//!
//! * `parse → canonical/spec()` is idempotent (canonicalizing a canonical
//!   string is the identity),
//! * shuffled parameter order converges to the same canonical bytes, and
//! * a round-trip through serde JSON (the wire format of `bsp-serve`
//!   requests) returns exactly the same bytes — no escaping or re-ordering
//!   may perturb a key in flight.

use bsp_sched::instance::source::InstanceRegistry;
use bsp_sched::instance::MachineSpec;
use bsp_sched::schedule::spec::SchedulerSpec;
use proptest::prelude::*;
use serde::{json, Deserialize, Serialize, Value};

/// JSON round-trip of one string, as a `bsp-serve` request would carry it.
fn through_json(s: &str) -> String {
    let v = Value::Str(s.to_string());
    let text = json::to_string(&v);
    let back: Value = json::from_str(&text).expect("wire strings re-parse");
    match back {
        Value::Str(s) => s,
        other => panic!("string came back as {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machine_specs_are_byte_stable_keys(
        p_exp in 0u32..4,
        g in 1u64..20,
        l in 0u64..50,
        numa in proptest::bool::ANY,
        mem_raw in 0u64..4096,
        shuffle in proptest::bool::ANY,
    ) {
        // No `option` strategy in the vendored proptest: 0 reads as None.
        let mem = (mem_raw >= 64).then_some(mem_raw);
        // NUMA topologies want a power-of-two p ≥ 2.
        let p = 1usize << if numa { p_exp.max(1) } else { p_exp };
        let mut clauses = vec![format!("p={p}"), format!("g={g}"), format!("l={l}")];
        if numa {
            clauses.push("numa=tree".to_string());
        }
        if let Some(m) = mem {
            clauses.push(format!("mem={m}"));
        }
        if shuffle {
            clauses.reverse();
        }
        let raw = format!("bsp?{}", clauses.join("&"));
        let machine = MachineSpec::parse(&raw).expect("assembled machine spec parses");
        let canonical = machine.spec();

        // Fixed point: parse(canonical).spec() == canonical, byte for byte.
        let reparsed = MachineSpec::parse(&canonical).unwrap();
        prop_assert_eq!(reparsed.spec(), canonical.clone());
        // Parameter order does not leak into the key.
        prop_assert_eq!(MachineSpec::parse(&raw).unwrap().spec(), canonical.clone());
        // The wire carries the key untouched.
        prop_assert_eq!(through_json(&canonical), canonical);
    }

    #[test]
    fn scheduler_specs_are_byte_stable_keys(idx in 0usize..32) {
        let registry = bsp_sched::prelude::Registry::standard();
        let entries = registry.entries();
        let descriptor = entries[idx % entries.len()].descriptor();
        let canonical = SchedulerSpec::parse(&descriptor.spec())
            .expect("descriptor specs parse")
            .canonical();

        // Idempotent canonicalization.
        let again = SchedulerSpec::parse(&canonical).unwrap().canonical();
        prop_assert_eq!(again, canonical.clone());
        // JSON round-trip preserves the exact bytes.
        prop_assert_eq!(through_json(&canonical), canonical);
    }

    #[test]
    fn instance_specs_are_byte_stable_keys(
        layers in 2usize..6,
        width in 2usize..8,
        seed in 0u64..500,
        p_exp in 0u32..4,
        g in 1u64..10,
    ) {
        let registry = InstanceRegistry::standard();
        let p = 1usize << p_exp;
        // Deliberately non-canonical parameter order on both halves.
        let raw = format!(
            "layered?width={width}&seed={seed}&layers={layers} @ bsp?g={g}&p={p}"
        );
        let inst = registry.generate_one(&raw, 42).expect("layered spec generates");
        let canonical = inst.name.clone();

        // The canonical name is a fixed point of generation...
        let again = registry.generate_one(&canonical, 42).unwrap();
        prop_assert_eq!(again.name, canonical.clone());
        // ...and of the JSON wire format.
        prop_assert_eq!(through_json(&canonical), canonical.clone());

        // Equal canonical names mean equal problems: same DAG shape and
        // machine (the cache-correctness property the server relies on).
        let twin = registry.generate_one(&raw, 42).unwrap();
        prop_assert_eq!(twin.dag.n(), inst.dag.n());
        prop_assert_eq!(twin.machine.p(), inst.machine.p());
    }
}

/// The full wire trip: a spec embedded in a serialized request struct
/// (field order, escaping, nested objects) comes back byte-identical.
#[test]
fn specs_survive_structured_wire_round_trips() {
    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct WireProbe {
        instance: String,
        sched: String,
    }
    let probes = [
        (
            "spmv?n=500&q=0.25 @ bsp?p=8&numa=tree&delta=2",
            "pipeline/base?ilp=off",
        ),
        (
            "dataset/tiny?scale=0.5 @ bsp?p=4&g=2&l=5&mem=256",
            "race/etf,init/bspg",
        ),
        ("mmio?path=/tmp/a b@c.mtx @ bsp?p=2", "hdagg"),
    ];
    for (instance, sched) in probes {
        let probe = WireProbe {
            instance: instance.to_string(),
            sched: sched.to_string(),
        };
        let back: WireProbe = json::from_str(&json::to_string(&probe)).unwrap();
        assert_eq!(back, probe);
    }
}
