//! The memory-constrained model, end to end: a hand-computed worked
//! example pinning the exact re-fetch cost, plus properties over random
//! instances:
//!
//! * repair never increases the number of `InvalidSchedule` memory
//!   violations, and with enough headroom removes them all;
//! * a machine with unlimited (or simply absent) `mem` reproduces the
//!   unconstrained costs bit-identically — the whole memory path is
//!   invisible until a bound is set.

use bsp_sched::dag::random::{random_layered_dag, LayeredConfig};
use bsp_sched::prelude::*;
use bsp_sched::schedule::cost::schedule_cost;
use proptest::prelude::*;

/// The worked example (also mirrored in `bsp_schedule::memory`'s unit
/// tests): chain `a → x → y` across two processors with a late second use
/// of `a`, and `M = 4` forcing `a` out of p1's memory in between.
///
/// Node (work, comm): a(1,2) on p0 step 0; x(1,2), y(1,2), z(1,0) on p1
/// steps 1–3; edges a→x, x→y, a→z, y→z. Machine P=2, g=1, ℓ=0.
///
/// Hand computation with M=4, LRU:
/// * step 0: p0 computes a; the lazy Γ ships a→p1 (h-relation 2);
/// * step 1: p1 computes x — working set {a, x} = 4 fits exactly;
/// * step 2: p1 computes y — working set {x, y} = 4, so `a` is evicted;
/// * step 3: p1 computes z from {a, y} — `a` is gone and is re-fetched
///   from p0: c(a)·λ(p0,p1) = 2·1 = 2 extra h-relation units in step 3.
///
/// Per-step totals (work + g·(comm+refetch) + ℓ): (1+2) + 1 + 1 + (1+2)
/// = 8, versus 6 for the identical schedule without the bound — the
/// memory constraint costs exactly c(a)·g = 2, all of it `refetch`.
#[test]
fn worked_example_refetch_cost_matches_hand_computation() {
    let mut b = DagBuilder::new();
    let a = b.add_node(1, 2);
    let x = b.add_node(1, 2);
    let y = b.add_node(1, 2);
    let z = b.add_node(1, 0);
    b.add_edge(a, x).unwrap();
    b.add_edge(x, y).unwrap();
    b.add_edge(a, z).unwrap();
    b.add_edge(y, z).unwrap();
    let dag = b.build().unwrap();
    let sched = BspSchedule::from_parts(vec![0, 1, 1, 1], vec![0, 1, 2, 3]);
    let comm = CommSchedule::lazy(&dag, &sched);

    let bounded = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(4));
    assert!(validate_with_memory(&dag, &bounded, &sched, &comm).is_ok());

    let report = simulate_memory(&dag, &bounded, &sched, &comm);
    assert_eq!(report.refetches.len(), 1);
    assert_eq!(
        (report.refetches[0].node, report.refetches[0].step),
        (a, 3),
        "the evicted value of a is re-fetched for superstep 3"
    );

    let cost = memory_cost(&dag, &bounded, &sched, &comm);
    assert_eq!(cost.total, 8);
    assert_eq!(cost.refetch_total, 2);
    assert_eq!(cost.per_step[3].refetch, 2);
    let unbounded = schedule_cost(&dag, &bounded, &sched, &comm);
    assert_eq!(unbounded.total, 6);
    assert_eq!(cost.total - unbounded.total, 2, "exactly c(a)·g");
}

use bsp_sched::schedule::memory::min_repairable_capacity;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn repair_never_increases_the_violation_count(
        seed in 0u64..500,
        layers in 3usize..6,
        width in 3usize..7,
        p in 2usize..5,
        capacity in 1u64..40,
        belady in proptest::bool::ANY,
    ) {
        let dag = random_layered_dag(seed, LayeredConfig {
            layers,
            width,
            ..Default::default()
        });
        let mem = if belady {
            MemorySpec::new(capacity).with_policy(EvictionPolicy::Belady)
        } else {
            MemorySpec::new(capacity)
        };
        let machine = BspParams::new(p, 1, 2).with_memory(mem);
        let sched = ScheduleResult::from_lazy(
            &dag,
            &machine,
            bsp_sched::baselines::blest_bsp(&dag, &machine),
        ).sched;
        let before = memory_violations(&dag, &machine, &sched).len();
        let (fixed, report) = repair_memory(&dag, &machine, &sched);
        let after = memory_violations(&dag, &machine, &fixed).len();
        prop_assert_eq!(after, report.violations_after);
        prop_assert_eq!(before, report.violations_before);
        prop_assert!(after <= before, "repair went backwards: {before} -> {after}");
        prop_assert!(fixed.respects_precedence_lazy(&dag));
        // The repaired schedule is still structurally valid under its
        // lazy communication schedule.
        let comm = CommSchedule::lazy(&dag, &fixed);
        prop_assert!(
            bsp_sched::schedule::validate(&dag, machine.p(), &fixed, &comm).is_ok()
        );
    }

    #[test]
    fn repair_reaches_feasibility_with_enough_headroom(
        seed in 0u64..500,
        layers in 3usize..6,
        width in 3usize..7,
        p in 2usize..5,
    ) {
        let dag = random_layered_dag(seed, LayeredConfig {
            layers,
            width,
            ..Default::default()
        });
        let machine = BspParams::new(p, 1, 2)
            .with_memory(MemorySpec::new(min_repairable_capacity(&dag)));
        let sched = bsp_sched::baselines::blest_bsp(&dag, &machine);
        let (fixed, report) = repair_memory(&dag, &machine, &sched);
        prop_assert_eq!(report.violations_after, 0, "capacity admits every node");
        prop_assert!(validate_memory(&dag, &machine, &fixed).is_ok());
    }

    #[test]
    fn unlimited_mem_reproduces_unbounded_costs_bit_identically(
        seed in 0u64..500,
        layers in 3usize..6,
        width in 3usize..7,
        p in 2usize..5,
        belady in proptest::bool::ANY,
    ) {
        let dag = random_layered_dag(seed, LayeredConfig {
            layers,
            width,
            ..Default::default()
        });
        let plain = BspParams::new(p, 2, 3);
        // Total footprint is an upper bound on any working set: this
        // machine can never evict anything it needs.
        let mem = MemorySpec::new(dag.total_comm().max(1));
        let mem = if belady { mem.with_policy(EvictionPolicy::Belady) } else { mem };
        let roomy = plain.clone().with_memory(mem);
        let sched = bsp_sched::baselines::blest_bsp(&dag, &plain);
        let comm = CommSchedule::lazy(&dag, &sched);

        // Bit-identical breakdowns (totals, every per-step component), no
        // violations, no refetches.
        let unbounded = schedule_cost(&dag, &plain, &sched, &comm);
        let bounded = memory_cost(&dag, &roomy, &sched, &comm);
        prop_assert_eq!(&bounded, &unbounded);
        prop_assert_eq!(bounded.refetch_total, 0);
        let report = simulate_memory(&dag, &roomy, &sched, &comm);
        prop_assert!(report.is_feasible());
        prop_assert!(report.refetches.is_empty());
        // Repair is the identity here.
        let (fixed, rep) = repair_memory(&dag, &roomy, &sched);
        prop_assert_eq!(fixed, sched);
        prop_assert_eq!(rep.splits, 0);
    }
}
