//! Property tests for the spec-addressable registry and the anytime solve
//! contract:
//!
//! * every registry entry's `descriptor.spec()` round-trips through the
//!   parser and `Registry::get` back to the same entry (name, kind, and
//!   canonical form);
//! * `solve` under an already-expired deadline — and under random tiny
//!   deadlines — still returns a *valid* schedule (π respects precedence,
//!   τ is consistent, Γ covers every cross-processor edge) whose reported
//!   cost re-evaluates exactly.

use bsp_sched::prelude::*;
use bsp_sched::schedule::validity::validate;
use proptest::prelude::*;
use std::time::Duration;

fn entry_count() -> usize {
    Registry::standard().entries().len()
}

fn fast_cfg() -> PipelineConfig {
    PipelineConfig {
        enable_ilp: false,
        ..Default::default()
    }
}

fn test_dag(seed: u64, layers: usize, width: usize) -> Dag {
    bsp_sched::dag::random::random_layered_dag(
        seed,
        bsp_sched::dag::random::LayeredConfig {
            layers,
            width,
            edge_prob: 0.35,
            ..Default::default()
        },
    )
}

fn test_machine(numa: bool) -> BspParams {
    let m = BspParams::new(8, 1, 5);
    if numa {
        m.with_numa(NumaTopology::binary_tree(8, 3))
    } else {
        m
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn descriptor_spec_round_trips_through_the_registry(idx in 0usize..12) {
        let registry = Registry::standard();
        let idx = idx % entry_count();
        let descriptor = *registry.entries()[idx].descriptor();

        // spec string → parser → lookup lands on the same entry.
        let spec = descriptor.spec();
        let parsed = SchedulerSpec::parse(&spec).expect("descriptor specs parse");
        prop_assert_eq!(parsed.name(), descriptor.name);
        prop_assert_eq!(parsed.canonical(), spec.clone());

        let entry = registry.entry(parsed.name()).expect("entry findable by name");
        prop_assert_eq!(entry.descriptor().name, descriptor.name);

        // …and `get` builds a scheduler reporting the descriptor's identity.
        let built = registry.get_with(&spec, &fast_cfg()).expect("spec builds");
        prop_assert_eq!(built.name(), descriptor.name);
        prop_assert_eq!(built.kind(), descriptor.kind);
        // The built scheduler's name is itself a spec addressing the entry.
        let name_spec = SchedulerSpec::parse(built.name()).expect("names are specs");
        prop_assert_eq!(name_spec.name(), descriptor.name);
    }

    #[test]
    fn expired_deadline_still_yields_a_valid_schedule(
        idx in 0usize..12,
        dag_seed in 0u64..1000,
        layers in 2usize..5,
        width in 2usize..5,
        numa in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let registry = Registry::standard();
        let idx = idx % entry_count();
        let dag = test_dag(dag_seed, layers, width);
        let machine = test_machine(numa);
        let s = registry.entries()[idx].build_default(&fast_cfg());
        let out = s.solve(
            &SolveRequest::new(&dag, &machine)
                .with_budget(Budget::expired())
                .with_seed(seed),
        );
        let r = &out.result;
        prop_assert!(
            validate(&dag, machine.p(), &r.sched, &r.comm).is_ok(),
            "{} invalid under expired budget", s.name()
        );
        prop_assert_eq!(out.total(), total_cost(&dag, &machine, &r.sched, &r.comm));
        prop_assert!(!out.stages.is_empty());
        prop_assert_eq!(out.stages.last().unwrap().cost_after, out.total());
    }
}

proptest! {
    // Wall-clock-bound cases: fewer iterations, tiny random deadlines.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_tiny_deadlines_never_break_validity(
        idx in 0usize..12,
        budget_us in 0u64..5000,
        dag_seed in 0u64..1000,
    ) {
        let registry = Registry::standard();
        let idx = idx % entry_count();
        let dag = test_dag(dag_seed, 4, 4);
        let machine = test_machine(true);
        let s = registry.entries()[idx].build_default(&fast_cfg());
        let out = s.solve(
            &SolveRequest::new(&dag, &machine)
                .with_budget(Budget::deadline(Duration::from_micros(budget_us))),
        );
        let r = &out.result;
        prop_assert!(validate(&dag, machine.p(), &r.sched, &r.comm).is_ok());
        for w in out.stages.windows(2) {
            prop_assert!(w[1].cost_after <= w[0].cost_after);
        }
        prop_assert_eq!(out.stages.last().unwrap().cost_after, out.total());
    }
}
