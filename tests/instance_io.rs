//! Serde round-trip of spec-generated instances: `serialize →
//! deserialize` must reproduce the instance exactly — in particular its
//! cost under `trivial_cost`, which folds the DAG weights *and* the
//! machine parameters into one number, so any field lost in transit
//! shows up here.

use bsp_sched::instance::io;
use bsp_sched::prelude::*;
use bsp_sched::schedule::trivial::trivial_cost;

#[test]
fn instances_round_trip_through_json_with_identical_trivial_cost() {
    let registry = bsp_sched::instances();
    for spec in [
        "spmv?n=40&q=0.3 @ bsp?p=4&g=2",
        "butterfly?k=3 @ bsp?p=8&numa=tree&delta=3",
        "forkjoin?chains=3&depth=2&stages=2 @ bsp?p=6&numa=sockets&sockets=2&delta=4",
        "erdos?n=30&q=0.2 @ bsp?p=5&numa=ring",
        "mmio?kernel=sptrsv @ bsp?p=4&numa=grid&rows=2",
    ] {
        let inst = registry.generate_one(spec, 42).unwrap();
        let text = io::to_json(&inst);
        let back: Instance = io::from_json(&text)
            .unwrap_or_else(|e| panic!("{spec}: JSON from to_json must parse back: {e}\n{text}"));
        assert_eq!(back, inst, "{spec}: lossy round-trip");
        assert_eq!(
            trivial_cost(&back.dag, &back.machine),
            trivial_cost(&inst.dag, &inst.machine),
            "{spec}: trivial cost changed across the round-trip"
        );
    }
}

#[test]
fn jsonl_round_trips_a_whole_sweep() {
    let registry = bsp_sched::instances();
    let insts = registry
        .generate("dataset/tiny?scale=0.3 @ bsp?p=4&g=3", 42)
        .unwrap();
    assert!(insts.len() > 3);
    let text = io::to_jsonl(&insts);
    let back: Vec<Instance> = io::from_jsonl(&text).unwrap();
    assert_eq!(back, insts);
    for (a, b) in back.iter().zip(&insts) {
        assert_eq!(
            trivial_cost(&a.dag, &a.machine),
            trivial_cost(&b.dag, &b.machine)
        );
    }
}

#[test]
fn deserialized_instances_are_schedulable() {
    // A replayed instance must drop into the solve API unchanged.
    let registry = bsp_sched::instances();
    let inst = registry
        .generate_one("stencil?width=8&steps=4 @ bsp?p=4&numa=tree&delta=2", 42)
        .unwrap();
    let back: Instance = io::from_json(&io::to_json(&inst)).unwrap();
    let sched = Registry::standard()
        .get("etf?numa=on")
        .expect("etf spec builds");
    let out = sched.solve(&SolveRequest::new(&back.dag, &back.machine));
    assert!(out.total() > 0);
    assert!(bsp_sched::schedule::validity::validate(
        &back.dag,
        back.machine.p(),
        &out.result.sched,
        &out.result.comm
    )
    .is_ok());
}
