//! Cross-crate integration tests: database generators → baselines →
//! pipeline → validity/cost invariants, end to end.

use bsp_sched::baselines::hdagg::HDaggConfig;
use bsp_sched::baselines::{blest_bsp, cilk_bsp, etf_bsp, hdagg_schedule};
use bsp_sched::core::multilevel::MultilevelConfig;
use bsp_sched::dagdb::coarse::algorithms::{cg as coarse_cg, spd_matrix, Iterations};
use bsp_sched::dagdb::coarse::Ctx;
use bsp_sched::dagdb::fine::{cg_dag, exp_dag, knn_dag, spmv_dag};
use bsp_sched::dagdb::{dataset, DatasetKind, SparsePattern};
use bsp_sched::prelude::*;
use bsp_sched::schedule::trivial::trivial_cost;
use bsp_sched::schedule::validity::{validate, validate_lazy};

fn family_dags() -> Vec<(&'static str, Dag)> {
    let p = SparsePattern::random_with_diagonal(10, 0.25, 31);
    vec![
        ("spmv", spmv_dag(&p)),
        ("exp", exp_dag(&p, 3)),
        ("cg", cg_dag(&p, 2)),
        ("knn", knn_dag(&p, 0, 3)),
    ]
}

/// Pipeline config with debug-build-friendly ILP budgets.
fn fast_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.ilp.limits.max_nodes = 30;
    cfg.ilp.limits.time_limit = std::time::Duration::from_millis(250);
    cfg.ilp.full_max_vars = 400;
    cfg.ilp.part_target_vars = 200;
    cfg
}

#[test]
fn pipeline_beats_or_matches_every_baseline_family() {
    let machine = BspParams::new(4, 3, 5);
    for (name, dag) in family_dags() {
        let cilk = lazy_cost(&dag, &machine, &cilk_bsp(&dag, &machine, 42));
        let hdagg = lazy_cost(
            &dag,
            &machine,
            &hdagg_schedule(&dag, &machine, HDaggConfig::default()),
        );
        let r = schedule_dag(&dag, &machine, &fast_cfg());
        assert!(validate(&dag, 4, &r.sched, &r.comm).is_ok(), "{name}");
        // The pipeline explores a strict superset of single-processor
        // schedules reachable by HC; it should never lose to both baselines
        // at once on these workloads.
        assert!(
            r.cost <= cilk.max(hdagg),
            "{name}: ours {} vs cilk {cilk}, hdagg {hdagg}",
            r.cost
        );
    }
}

#[test]
fn full_pipeline_with_ilp_is_monotone_per_stage() {
    let dag = exp_dag(&SparsePattern::random(12, 0.25, 77), 3);
    let machine = BspParams::new(4, 2, 5);
    let r = schedule_dag(&dag, &machine, &fast_cfg());
    assert!(r.hc_cost <= r.init_cost);
    assert!(r.part_cost <= r.hc_cost);
    assert!(r.cost <= r.part_cost);
    assert_eq!(r.cost, total_cost(&dag, &machine, &r.sched, &r.comm));
}

#[test]
fn numa_multilevel_end_to_end() {
    let dag = cg_dag(&SparsePattern::random_with_diagonal(8, 0.3, 5), 2);
    let machine = BspParams::new(8, 1, 5).with_numa(NumaTopology::binary_tree(8, 4));
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    let ml = schedule_dag_multilevel(&dag, &machine, &cfg, &MultilevelConfig::default());
    assert!(validate(&dag, 8, &ml.sched, &ml.comm).is_ok());
    // §7.3: the multilevel scheduler consistently beats the trivial
    // schedule even in communication-dominated settings.
    assert!(
        ml.cost <= trivial_cost(&dag, &machine),
        "ml {} vs trivial {}",
        ml.cost,
        trivial_cost(&dag, &machine)
    );
}

#[test]
fn datasets_feed_the_pipeline() {
    let insts = dataset(DatasetKind::Tiny, 0.5);
    assert!(insts.len() >= 10);
    let machine = BspParams::new(4, 1, 5);
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    for inst in insts.iter().take(4) {
        let r = schedule_dag(&inst.dag, &machine, &cfg);
        assert!(
            validate(&inst.dag, 4, &r.sched, &r.comm).is_ok(),
            "{} invalid",
            inst.name
        );
        assert!(r.cost <= trivial_cost(&inst.dag, &machine).max(r.cost));
    }
}

#[test]
fn coarse_trace_schedules_validly() {
    let ctx = Ctx::new();
    let a = spd_matrix(&ctx, 12, 0.25, 3);
    let b = ctx.vector(vec![1.0; 12]);
    coarse_cg(&ctx, &a, &b, Iterations::Fixed(3));
    let dag = ctx.extract_dag();
    let machine = BspParams::new(4, 3, 5);
    let mut cfg = PipelineConfig::default();
    cfg.enable_ilp = false;
    let r = schedule_dag(&dag, &machine, &cfg);
    assert!(validate(&dag, 4, &r.sched, &r.comm).is_ok());
}

#[test]
fn all_baselines_valid_on_all_families() {
    let machine = BspParams::new(4, 3, 5).with_numa(NumaTopology::binary_tree(4, 2));
    for (name, dag) in family_dags() {
        for (bname, sched) in [
            ("cilk", cilk_bsp(&dag, &machine, 1)),
            ("blest", blest_bsp(&dag, &machine)),
            ("etf", etf_bsp(&dag, &machine)),
            (
                "hdagg",
                hdagg_schedule(&dag, &machine, HDaggConfig::default()),
            ),
        ] {
            assert!(
                validate_lazy(&dag, 4, &sched).is_ok(),
                "{bname} invalid on {name}"
            );
        }
    }
}

#[test]
fn hyperdag_round_trip_through_database_instances() {
    for (name, dag) in family_dags() {
        let text = bsp_sched::dag::hyperdag::to_hyperdag_string(&dag);
        let back = bsp_sched::dag::hyperdag::from_hyperdag_str(&text).unwrap();
        assert_eq!(dag, back, "{name}");
    }
}
