//! The paper's Figure 1 as an executable worked example.
//!
//! Figure 1 shows a two-processor BSP schedule: in superstep 1, processor 1
//! computes 4 nodes and processor 2 computes 5; in the communication phase,
//! processor 1 sends one value to processor 2 while processor 2 sends two
//! values to processor 1; superstep 2 then computes on both processors.
//! With unit weights, §3.3 prices this as
//! `C(s) = Cwork(s) + g·Ccomm(s) + ℓ` per superstep, with
//! `Cwork(1) = max(4, 5) = 5` and `Ccomm(1) = max over processors of
//! max(sent, received) = 2` (the h-relation).

use bsp_sched::prelude::*;
use bsp_sched::schedule::cost::schedule_cost;
use bsp_sched::schedule::validity::validate;

/// Builds the Figure-1 instance: nodes `a1..a4` on processor 0 and
/// `b1..b5` on processor 1 in superstep 0; consumers in superstep 1 that
/// need `a1` on processor 1 and `b1`, `b2` on processor 0.
fn figure1() -> (Dag, BspSchedule) {
    let mut b = DagBuilder::new();
    let a: Vec<_> = (0..4).map(|_| b.add_node(1, 1)).collect();
    let bs: Vec<_> = (0..5).map(|_| b.add_node(1, 1)).collect();
    let d1 = b.add_node(1, 1); // proc 0, needs b1
    let d2 = b.add_node(1, 1); // proc 0, needs b2
    let c1 = b.add_node(1, 1); // proc 1, needs a1
    b.add_edge(bs[0], d1).unwrap();
    b.add_edge(bs[1], d2).unwrap();
    b.add_edge(a[0], c1).unwrap();
    // Local edges keep the second superstep attached to the first.
    b.add_edge(a[1], d1).unwrap();
    b.add_edge(bs[2], c1).unwrap();
    let dag = b.build().unwrap();

    let mut proc = vec![0u32; 4];
    proc.extend([1u32; 5]);
    proc.extend([0, 0, 1]);
    let mut step = vec![0u32; 9];
    step.extend([1, 1, 1]);
    (dag, BspSchedule::from_parts(proc, step))
}

#[test]
fn figure1_cost_components_match_section_3_3() {
    let (dag, sched) = figure1();
    let comm = CommSchedule::lazy(&dag, &sched);
    for (g, l) in [(1u64, 0u64), (2, 5), (5, 3)] {
        let machine = BspParams::new(2, g, l);
        assert!(validate(&dag, 2, &sched, &comm).is_ok());
        let cost = schedule_cost(&dag, &machine, &sched, &comm);

        // Superstep 1 of the figure: work max(4,5) = 5, h-relation 2.
        assert_eq!(cost.per_step[0].work, 5, "Cwork(1)");
        assert_eq!(cost.per_step[0].comm, 2, "Ccomm(1) h-relation");
        // Superstep 2: the three consumers, no further communication.
        assert_eq!(cost.per_step[1].work, 2, "Cwork(2) = max(2, 1)");
        assert_eq!(cost.per_step[1].comm, 0);
        // Total follows §3.3 exactly.
        assert_eq!(cost.total, (5 + 2 * g + l) + (2 + l), "g={g}, l={l}");
    }
}

#[test]
fn figure1_communication_phase_contents() {
    let (dag, sched) = figure1();
    let comm = CommSchedule::lazy(&dag, &sched);
    // Exactly three transfers, all in the communication phase of
    // superstep 0: one 0→1 and two 1→0.
    assert_eq!(comm.len(), 3);
    assert!(comm.entries().iter().all(|e| e.step == 0));
    assert_eq!(
        comm.entries()
            .iter()
            .filter(|e| e.from == 0 && e.to == 1)
            .count(),
        1
    );
    assert_eq!(
        comm.entries()
            .iter()
            .filter(|e| e.from == 1 && e.to == 0)
            .count(),
        2
    );
}

#[test]
fn figure1_numa_scales_the_h_relation() {
    let (dag, sched) = figure1();
    let comm = CommSchedule::lazy(&dag, &sched);
    // λ(0,1) = 3 multiplies every transferred unit in both directions.
    let machine = BspParams::new(2, 1, 0).with_numa(NumaTopology::explicit(2, vec![0, 3, 3, 0]));
    let cost = schedule_cost(&dag, &machine, &sched, &comm);
    assert_eq!(cost.per_step[0].comm, 6, "λ-weighted h-relation");
    assert_eq!(cost.total, (5 + 6) + 2);
}
