//! Immutable CSR-backed DAG with node weights.

use serde::{Deserialize, Serialize};

/// Node identifier. DAGs in this framework are bounded well below `u32::MAX`
/// nodes (the paper's largest dataset has 100 000), so a 32-bit id keeps the
/// CSR arrays compact and cache-friendly.
pub type NodeId = u32;

/// A weighted computational DAG in compressed sparse row form.
///
/// Both successor and predecessor adjacency are stored so that schedulers can
/// iterate either direction in O(degree). Edges within each adjacency list
/// are sorted and deduplicated. Node `v` carries a work weight `w(v)` and a
/// communication weight `c(v)` (paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    succ_offsets: Vec<u32>,
    succ: Vec<NodeId>,
    pred_offsets: Vec<u32>,
    pred: Vec<NodeId>,
    work: Vec<u64>,
    comm: Vec<u64>,
}

impl Dag {
    /// Builds a `Dag` directly from parts. `edges` must describe an acyclic
    /// graph; this is checked by [`crate::DagBuilder`], which is the public
    /// construction path.
    pub(crate) fn from_parts(
        n: usize,
        mut edges: Vec<(NodeId, NodeId)>,
        work: Vec<u64>,
        comm: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(work.len(), n);
        debug_assert_eq!(comm.len(), n);
        edges.sort_unstable();
        edges.dedup();

        let mut succ_offsets = vec![0u32; n + 1];
        for &(u, _) in &edges {
            succ_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let succ: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();

        let mut pred_offsets = vec![0u32; n + 1];
        for &(_, v) in &edges {
            pred_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut cursor = pred_offsets.clone();
        let mut pred = vec![0 as NodeId; edges.len()];
        for &(u, v) in &edges {
            let slot = cursor[v as usize] as usize;
            pred[slot] = u;
            cursor[v as usize] += 1;
        }

        Dag {
            succ_offsets,
            succ,
            pred_offsets,
            pred,
            work,
            comm,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.work.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.succ.len()
    }

    /// Work weight `w(v)`.
    #[inline]
    pub fn work(&self, v: NodeId) -> u64 {
        self.work[v as usize]
    }

    /// Communication weight `c(v)` — size of `v`'s output.
    #[inline]
    pub fn comm(&self, v: NodeId) -> u64 {
        self.comm[v as usize]
    }

    /// Direct successors (out-neighbours) of `v`, sorted ascending.
    #[inline]
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.succ[self.succ_offsets[v] as usize..self.succ_offsets[v + 1] as usize]
    }

    /// Direct predecessors (in-neighbours) of `v`, sorted ascending.
    #[inline]
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.pred[self.pred_offsets[v] as usize..self.pred_offsets[v + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.successors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.predecessors(v).len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n() as NodeId
    }

    /// Iterator over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// Whether the edge `(u, v)` exists. O(log out-degree).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// Source nodes (in-degree 0).
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Sink nodes (out-degree 0).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Sum of all work weights.
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Sum of all communication weights.
    pub fn total_comm(&self) -> u64 {
        self.comm.iter().sum()
    }

    /// All work weights as a slice.
    #[inline]
    pub fn work_weights(&self) -> &[u64] {
        &self.work
    }

    /// All communication weights as a slice.
    #[inline]
    pub fn comm_weights(&self) -> &[u64] {
        &self.comm
    }

    /// Returns the sub-DAG induced by `keep` (a set of node ids) together
    /// with the mapping `old id -> new id`. Nodes not in `keep` and edges
    /// touching them are dropped; relative order of ids is preserved.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Dag, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.n()];
        let mut sorted = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (new, &old) in sorted.iter().enumerate() {
            map[old as usize] = Some(new as NodeId);
        }
        let work: Vec<u64> = sorted.iter().map(|&v| self.work(v)).collect();
        let comm: Vec<u64> = sorted.iter().map(|&v| self.comm(v)).collect();
        let mut edges = Vec::new();
        for &u in &sorted {
            for &v in self.successors(u) {
                if let (Some(nu), Some(nv)) = (map[u as usize], map[v as usize]) {
                    edges.push((nu, nv));
                }
            }
        }
        (Dag::from_parts(sorted.len(), edges, work, comm), map)
    }
}

#[cfg(test)]
mod tests {
    use crate::DagBuilder;

    fn diamond() -> crate::Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(2, 3);
        let y = b.add_node(3, 4);
        let d = b.add_node(4, 5);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, d).unwrap();
        b.add_edge(y, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn adjacency_is_consistent() {
        let d = diamond();
        assert_eq!(d.n(), 4);
        assert_eq!(d.m(), 4);
        assert_eq!(d.successors(0), &[1, 2]);
        assert_eq!(d.predecessors(3), &[1, 2]);
        assert_eq!(d.in_degree(0), 0);
        assert_eq!(d.out_degree(3), 0);
        assert!(d.has_edge(0, 1));
        assert!(!d.has_edge(1, 0));
    }

    #[test]
    fn weights_and_totals() {
        let d = diamond();
        assert_eq!(d.work(2), 3);
        assert_eq!(d.comm(2), 4);
        assert_eq!(d.total_work(), 10);
        assert_eq!(d.total_comm(), 14);
    }

    #[test]
    fn sources_and_sinks() {
        let d = diamond();
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![3]);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 1);
        let c = b.add_node(1, 1);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.m(), 1);
    }

    #[test]
    fn induced_subgraph_remaps_edges() {
        let d = diamond();
        let (sub, map) = d.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        // surviving edges: 0->1 and 1->3 (old ids) => (0,1), (1,2) new.
        assert_eq!(sub.m(), 2);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[2], None);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
    }

    #[test]
    fn edges_iterator_matches_m() {
        let d = diamond();
        assert_eq!(d.edges().count(), d.m());
    }
}
