//! Structural statistics over computational DAGs.

use crate::graph::{Dag, NodeId};
use crate::topo::TopoInfo;

/// Summary statistics of a DAG, used for dataset reporting and for the
/// communication-to-computation ratio (CCR) discussion of Appendix A.5.
#[derive(Debug, Clone, PartialEq)]
pub struct DagStats {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Number of source nodes.
    pub sources: usize,
    /// Number of sink nodes.
    pub sinks: usize,
    /// Depth in levels (longest path, in nodes).
    pub depth: usize,
    /// Maximum level-set size ("width").
    pub max_width: usize,
    /// Total work weight.
    pub total_work: u64,
    /// Total communication weight.
    pub total_comm: u64,
    /// Communication-to-computation ratio `Σc(v) / Σw(v)` as defined in \[27\]
    /// and discussed at the end of Appendix A.5.
    pub ccr: f64,
}

impl DagStats {
    /// Computes statistics for `dag`.
    pub fn compute(dag: &Dag) -> Self {
        let topo = TopoInfo::new(dag);
        let level_sets = topo.level_sets();
        let total_work = dag.total_work();
        let total_comm = dag.total_comm();
        DagStats {
            n: dag.n(),
            m: dag.m(),
            sources: dag.sources().len(),
            sinks: dag.sinks().len(),
            depth: topo.depth(),
            max_width: level_sets.iter().map(Vec::len).max().unwrap_or(0),
            total_work,
            total_comm,
            ccr: if total_work == 0 {
                0.0
            } else {
                total_comm as f64 / total_work as f64
            },
        }
    }
}

/// Average out-degree of the DAG, `m / n` (0 for the empty DAG).
pub fn average_degree(dag: &Dag) -> f64 {
    if dag.n() == 0 {
        0.0
    } else {
        dag.m() as f64 / dag.n() as f64
    }
}

/// The generalized CCR of Appendix A.5 for a NUMA machine: multiplies the
/// plain ratio by `g` and the mean off-diagonal λ coefficient.
pub fn numa_ccr(dag: &Dag, g: u64, mean_lambda: f64) -> f64 {
    let w = dag.total_work();
    if w == 0 {
        return 0.0;
    }
    dag.total_comm() as f64 * g as f64 * mean_lambda / w as f64
}

/// Nodes sorted by descending work weight; ties broken by ascending id.
/// Used by the Source heuristic's round-robin assignment (Algorithm 2).
pub fn by_descending_work(dag: &Dag, nodes: &[NodeId]) -> Vec<NodeId> {
    let mut v = nodes.to_vec();
    v.sort_by_key(|&x| (std::cmp::Reverse(dag.work(x)), x));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(4, 1);
        let y = b.add_node(2, 1);
        let z = b.add_node(3, 2);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_are_correct() {
        let s = DagStats::compute(&sample());
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 4);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_width, 2);
        assert_eq!(s.total_work, 10);
        assert_eq!(s.total_comm, 6);
        assert!((s.ccr - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degree_and_numa_ccr() {
        let d = sample();
        assert!((average_degree(&d) - 1.0).abs() < 1e-12);
        // g=3, mean λ = 2 -> ccr = 6*3*2/10 = 3.6
        assert!((numa_ccr(&d, 3, 2.0) - 3.6).abs() < 1e-12);
    }

    #[test]
    fn descending_work_sort_stable_by_id() {
        let d = sample();
        let order = by_descending_work(&d, &[0, 1, 2, 3]);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn empty_dag_stats() {
        let d = DagBuilder::new().build().unwrap();
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 0);
        assert_eq!(s.ccr, 0.0);
        assert_eq!(average_degree(&d), 0.0);
    }
}
