//! Computational DAG substrate for BSP scheduling.
//!
//! This crate provides the directed-acyclic-graph representation used
//! throughout the scheduling framework (paper §3.1): nodes carry a *work
//! weight* `w(v)` (time to execute the operation) and a *communication
//! weight* `c(v)` (size of the operation's output), and directed edges
//! encode precedence constraints.
//!
//! Main entry points:
//!
//! * [`Dag`] — immutable CSR-backed graph with weights, the workhorse type.
//! * [`DagBuilder`] — incremental, cycle-checked construction.
//! * [`MutableDag`] — adjacency-set representation supporting the edge
//!   contractions of the multilevel scheduler (paper §4.5, Appendix A.5).
//! * [`hyperdag`] — the HyperDAG_DB text interchange format (paper §5,
//!   Appendix B).
//! * [`topo`], [`traversal`], [`analysis`] — ordering, reachability and
//!   structural statistics.
//!
//! ```
//! use bsp_dag::DagBuilder;
//!
//! // A tiny diamond: a -> {b, c} -> d.
//! let mut b = DagBuilder::new();
//! let a = b.add_node(1, 1);
//! let x = b.add_node(2, 1);
//! let y = b.add_node(3, 1);
//! let d = b.add_node(1, 1);
//! b.add_edge(a, x).unwrap();
//! b.add_edge(a, y).unwrap();
//! b.add_edge(x, d).unwrap();
//! b.add_edge(y, d).unwrap();
//! let dag = b.build().unwrap();
//! assert_eq!(dag.n(), 4);
//! assert_eq!(dag.total_work(), 7);
//! ```

pub mod analysis;
pub mod builder;
pub mod contraction;
pub mod graph;
pub mod hyperdag;
pub mod random;
pub mod topo;
pub mod traversal;

pub use analysis::DagStats;
pub use builder::{DagBuilder, DagError};
pub use contraction::MutableDag;
pub use graph::{Dag, NodeId};
pub use topo::TopoInfo;
