//! Reachability and connectivity queries.

use crate::graph::{Dag, NodeId};
use crate::topo::TopoInfo;

/// Returns `true` if there is a directed path from `from` to `to`
/// (including the trivial path when `from == to`).
pub fn reaches(dag: &Dag, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let mut visited = vec![false; dag.n()];
    let mut stack = vec![from];
    visited[from as usize] = true;
    while let Some(u) = stack.pop() {
        for &v in dag.successors(u) {
            if v == to {
                return true;
            }
            if !visited[v as usize] {
                visited[v as usize] = true;
                stack.push(v);
            }
        }
    }
    false
}

/// Like [`reaches`] but prunes the search using topological positions:
/// only nodes whose position is below `position[to]` can lie on a path to
/// `to`. Used heavily by the contractability test of the multilevel
/// coarsener (Appendix A.5).
pub fn reaches_pruned(dag: &Dag, topo: &TopoInfo, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let limit = topo.position[to as usize];
    if topo.position[from as usize] > limit {
        return false;
    }
    let mut visited = vec![false; dag.n()];
    let mut stack = vec![from];
    visited[from as usize] = true;
    while let Some(u) = stack.pop() {
        for &v in dag.successors(u) {
            if v == to {
                return true;
            }
            if topo.position[v as usize] < limit && !visited[v as usize] {
                visited[v as usize] = true;
                stack.push(v);
            }
        }
    }
    false
}

/// All nodes reachable from `v` by directed paths, excluding `v` itself.
pub fn descendants(dag: &Dag, v: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.n()];
    let mut stack = vec![v];
    visited[v as usize] = true;
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        for &w in dag.successors(u) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                out.push(w);
                stack.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// All nodes that reach `v` by directed paths, excluding `v` itself.
pub fn ancestors(dag: &Dag, v: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.n()];
    let mut stack = vec![v];
    visited[v as usize] = true;
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        for &w in dag.predecessors(u) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                out.push(w);
                stack.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Weakly connected components; each component is a sorted node list and the
/// components are ordered by their smallest member. The coarse-grained DAG
/// extraction keeps only the largest component (Appendix B.1).
pub fn weakly_connected_components(dag: &Dag) -> Vec<Vec<NodeId>> {
    let n = dag.n();
    let mut comp = vec![u32::MAX; n];
    let mut components = Vec::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        let id = components.len() as u32;
        let mut members = vec![start];
        comp[start as usize] = id;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for &v in dag.successors(u).iter().chain(dag.predecessors(u)) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = id;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// The sub-DAG induced by the largest weakly connected component, with the
/// old-to-new id mapping. Ties broken towards the component containing the
/// smallest node id.
pub fn largest_component(dag: &Dag) -> (Dag, Vec<Option<NodeId>>) {
    let comps = weakly_connected_components(dag);
    let largest = comps
        .iter()
        .max_by_key(|c| c.len())
        .cloned()
        .unwrap_or_default();
    dag.induced_subgraph(&largest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn two_islands() -> Dag {
        // 0 -> 1 -> 2 and 3 -> 4
        let mut b = DagBuilder::new();
        for _ in 0..5 {
            b.add_node(1, 1);
        }
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(3, 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reachability() {
        let d = two_islands();
        assert!(reaches(&d, 0, 2));
        assert!(!reaches(&d, 2, 0));
        assert!(!reaches(&d, 0, 4));
        assert!(reaches(&d, 3, 3));
    }

    #[test]
    fn pruned_reachability_matches_unpruned() {
        let d = two_islands();
        let t = crate::TopoInfo::new(&d);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(reaches(&d, u, v), reaches_pruned(&d, &t, u, v), "{u}->{v}");
            }
        }
    }

    #[test]
    fn descendants_and_ancestors() {
        let d = two_islands();
        assert_eq!(descendants(&d, 0), vec![1, 2]);
        assert_eq!(ancestors(&d, 2), vec![0, 1]);
        assert!(descendants(&d, 2).is_empty());
    }

    #[test]
    fn components_split_and_largest_selected() {
        let d = two_islands();
        let comps = weakly_connected_components(&d);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        let (big, map) = largest_component(&d);
        assert_eq!(big.n(), 3);
        assert_eq!(map[3], None);
    }

    #[test]
    fn single_component_when_connected() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 1);
        let c = b.add_node(1, 1);
        b.add_edge(a, c).unwrap();
        let d = b.build().unwrap();
        assert_eq!(weakly_connected_components(&d).len(), 1);
    }
}
