//! Seeded random DAG generation, for tests and synthetic benchmarks.

use crate::builder::DagBuilder;
use crate::graph::{Dag, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_layered_dag`].
#[derive(Debug, Clone, Copy)]
pub struct LayeredConfig {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Nodes per layer (≥ 1).
    pub width: usize,
    /// Probability of an edge between consecutive-layer node pairs.
    pub edge_prob: f64,
    /// Work weights are drawn uniformly from `1..=max_work`.
    pub max_work: u64,
    /// Communication weights are drawn uniformly from `1..=max_comm`.
    pub max_comm: u64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            layers: 5,
            width: 8,
            edge_prob: 0.3,
            max_work: 8,
            max_comm: 4,
        }
    }
}

/// Generates a layered random DAG: nodes arranged in `layers` rows of
/// `width`, independent edges between consecutive layers with probability
/// `edge_prob`, and every node guaranteed at least one predecessor in the
/// previous layer (except layer 0) so the graph is connected layer-to-layer.
/// Fully deterministic given `seed`.
pub fn random_layered_dag(seed: u64, cfg: LayeredConfig) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::with_capacity(cfg.layers * cfg.width, cfg.layers * cfg.width * 2);
    let mut ids: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.layers);
    for _ in 0..cfg.layers {
        let row: Vec<NodeId> = (0..cfg.width)
            .map(|_| {
                b.add_node(
                    rng.gen_range(1..=cfg.max_work),
                    rng.gen_range(1..=cfg.max_comm),
                )
            })
            .collect();
        ids.push(row);
    }
    for l in 1..cfg.layers {
        for &v in &ids[l] {
            let mut has_pred = false;
            for &u in &ids[l - 1] {
                if rng.gen_bool(cfg.edge_prob) {
                    b.add_edge(u, v).unwrap();
                    has_pred = true;
                }
            }
            if !has_pred {
                let u = ids[l - 1][rng.gen_range(0..cfg.width)];
                b.add_edge(u, v).unwrap();
            }
        }
    }
    b.build().expect("layered construction is acyclic")
}

/// Generates a random DAG on `n` nodes where each ordered pair `(i, j)` with
/// `i < j` gets an edge with probability `p` — a DAG analogue of the
/// Erdős–Rényi model. Deterministic given `seed`.
pub fn random_order_dag(seed: u64, n: usize, p: f64, max_work: u64, max_comm: u64) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::with_capacity(n, (n * n / 4).max(4));
    let ids: Vec<NodeId> = (0..n)
        .map(|_| b.add_node(rng.gen_range(1..=max_work), rng.gen_range(1..=max_comm)))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(ids[i], ids[j]).unwrap();
            }
        }
    }
    b.build().expect("forward edges are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{is_topological_order, TopoInfo};

    #[test]
    fn layered_dag_is_deterministic() {
        let a = random_layered_dag(7, LayeredConfig::default());
        let b = random_layered_dag(7, LayeredConfig::default());
        assert_eq!(a, b);
        let c = random_layered_dag(8, LayeredConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn layered_dag_every_nonfirst_layer_node_has_pred() {
        let d = random_layered_dag(
            3,
            LayeredConfig {
                layers: 6,
                width: 5,
                ..Default::default()
            },
        );
        let t = TopoInfo::new(&d);
        assert!(is_topological_order(&d, &t.order));
        for v in d.nodes() {
            if v >= 5 {
                assert!(
                    d.in_degree(v) > 0,
                    "node {v} in layer >0 must have a predecessor"
                );
            }
        }
    }

    #[test]
    fn order_dag_is_acyclic_and_seeded() {
        let d = random_order_dag(42, 30, 0.2, 5, 5);
        let t = TopoInfo::new(&d);
        assert!(is_topological_order(&d, &t.order));
        assert_eq!(d, random_order_dag(42, 30, 0.2, 5, 5));
    }

    #[test]
    fn degenerate_sizes() {
        let d = random_layered_dag(
            1,
            LayeredConfig {
                layers: 1,
                width: 1,
                ..Default::default()
            },
        );
        assert_eq!(d.n(), 1);
        let e = random_order_dag(1, 1, 0.5, 3, 3);
        assert_eq!(e.n(), 1);
        assert_eq!(e.m(), 0);
    }
}
