//! Mutable DAG supporting the edge contractions of the multilevel scheduler.
//!
//! The multilevel coarsening phase (paper §4.5, Appendix A.5) repeatedly
//! contracts a *contractable* edge `(u, v)` — one with no alternative
//! directed path from `u` to `v` — merging `v` into `u` and summing both the
//! work and the communication weights. Contracting only contractable edges
//! guarantees the graph stays acyclic at every step, so each intermediate
//! graph admits a valid BSP schedule.

use crate::graph::{Dag, NodeId};
use std::collections::BTreeSet;

/// Adjacency-set DAG representation with node removal by merging.
///
/// Node ids are stable: contracting `(u, v)` keeps `u` alive (with merged
/// weights and adjacency) and kills `v`. [`MutableDag::compact`] converts
/// back to a dense [`Dag`] plus the id mapping.
#[derive(Debug, Clone)]
pub struct MutableDag {
    succ: Vec<BTreeSet<NodeId>>,
    pred: Vec<BTreeSet<NodeId>>,
    work: Vec<u64>,
    comm: Vec<u64>,
    alive: Vec<bool>,
    n_alive: usize,
}

impl MutableDag {
    /// Builds a mutable copy of `dag`.
    pub fn from_dag(dag: &Dag) -> Self {
        let n = dag.n();
        let mut succ = vec![BTreeSet::new(); n];
        let mut pred = vec![BTreeSet::new(); n];
        for (u, v) in dag.edges() {
            succ[u as usize].insert(v);
            pred[v as usize].insert(u);
        }
        MutableDag {
            succ,
            pred,
            work: dag.work_weights().to_vec(),
            comm: dag.comm_weights().to_vec(),
            alive: vec![true; n],
            n_alive: n,
        }
    }

    /// Number of live nodes.
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Whether node `v` is still alive (not merged away).
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v as usize]
    }

    /// Current work weight of a live node.
    pub fn work(&self, v: NodeId) -> u64 {
        self.work[v as usize]
    }

    /// Current communication weight of a live node.
    pub fn comm(&self, v: NodeId) -> u64 {
        self.comm[v as usize]
    }

    /// Successor set of a live node.
    pub fn successors(&self, v: NodeId) -> &BTreeSet<NodeId> {
        &self.succ[v as usize]
    }

    /// Predecessor set of a live node.
    pub fn predecessors(&self, v: NodeId) -> &BTreeSet<NodeId> {
        &self.pred[v as usize]
    }

    /// Iterator over live node ids in ascending order.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.alive.len() as NodeId).filter(move |&v| self.alive[v as usize])
    }

    /// All current edges `(u, v)` between live nodes.
    pub fn live_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in self.live_nodes() {
            for &v in &self.succ[u as usize] {
                out.push((u, v));
            }
        }
        out
    }

    /// Whether edge `(u, v)` is contractable: `v` must not be reachable from
    /// `u` through any path other than the direct edge. Implemented as a DFS
    /// from the other successors of `u`; worst case O(E), matching the
    /// paper's implementation notes (Appendix A.5).
    pub fn is_contractable(&self, u: NodeId, v: NodeId) -> bool {
        if !self.alive[u as usize] || !self.alive[v as usize] || !self.succ[u as usize].contains(&v)
        {
            return false;
        }
        // Fast path: if v's only predecessor is u there can be no other path.
        if self.pred[v as usize].len() == 1 {
            return true;
        }
        let mut visited = vec![false; self.alive.len()];
        let mut stack: Vec<NodeId> = self.succ[u as usize]
            .iter()
            .copied()
            .filter(|&w| w != v)
            .collect();
        for &w in &stack {
            visited[w as usize] = true;
        }
        while let Some(x) = stack.pop() {
            if x == v {
                return false;
            }
            for &y in &self.succ[x as usize] {
                if y == v {
                    return false;
                }
                if !visited[y as usize] {
                    visited[y as usize] = true;
                    stack.push(y);
                }
            }
        }
        true
    }

    /// Every contractable edge in deterministic (ascending) order.
    pub fn contractable_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.live_edges()
            .into_iter()
            .filter(|&(u, v)| self.is_contractable(u, v))
            .collect()
    }

    /// Contracts the edge `(u, v)`: merges `v` into `u`, summing work and
    /// communication weights and unioning adjacency (paper A.5: both weight
    /// kinds are summed; the summed `c` is an upper bound on real traffic).
    ///
    /// # Panics
    /// Panics if the edge does not exist between live nodes. Contractability
    /// is the caller's responsibility (checked in debug builds); contracting
    /// a non-contractable edge would create a cycle.
    pub fn contract_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            self.alive[u as usize] && self.alive[v as usize],
            "endpoints must be alive"
        );
        assert!(self.succ[u as usize].contains(&v), "edge must exist");
        debug_assert!(
            self.is_contractable(u, v),
            "contracting ({u},{v}) would create a cycle"
        );
        let (ui, vi) = (u as usize, v as usize);
        self.succ[ui].remove(&v);
        self.pred[vi].remove(&u);
        // Redirect v's predecessors to u.
        let preds: Vec<NodeId> = self.pred[vi].iter().copied().collect();
        for p in preds {
            self.succ[p as usize].remove(&v);
            if p != u {
                self.succ[p as usize].insert(u);
                self.pred[ui].insert(p);
            }
        }
        // Redirect v's successors to come from u.
        let succs: Vec<NodeId> = self.succ[vi].iter().copied().collect();
        for s in succs {
            self.pred[s as usize].remove(&v);
            if s != u {
                self.pred[s as usize].insert(u);
                self.succ[ui].insert(s);
            }
        }
        self.succ[vi].clear();
        self.pred[vi].clear();
        self.work[ui] += self.work[vi];
        self.comm[ui] += self.comm[vi];
        self.alive[vi] = false;
        self.n_alive -= 1;
    }

    /// Extracts a dense [`Dag`] of the live nodes together with the mapping
    /// `old id -> Some(new id)` (dead nodes map to `None`). Live nodes keep
    /// their relative id order.
    pub fn compact(&self) -> (Dag, Vec<Option<NodeId>>) {
        let mut map = vec![None; self.alive.len()];
        let mut work = Vec::with_capacity(self.n_alive);
        let mut comm = Vec::with_capacity(self.n_alive);
        for (new, old) in self.live_nodes().enumerate() {
            map[old as usize] = Some(new as NodeId);
            work.push(self.work[old as usize]);
            comm.push(self.comm[old as usize]);
        }
        let mut edges = Vec::new();
        for u in self.live_nodes() {
            for &v in &self.succ[u as usize] {
                edges.push((map[u as usize].unwrap(), map[v as usize].unwrap()));
            }
        }
        (Dag::from_parts(self.n_alive, edges, work, comm), map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 10);
        let x = b.add_node(2, 20);
        let y = b.add_node(3, 30);
        let d = b.add_node(4, 40);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, d).unwrap();
        b.add_edge(y, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_contractability() {
        let m = MutableDag::from_dag(&diamond());
        // Every edge of the plain diamond is contractable (no alternative paths).
        assert_eq!(m.contractable_edges().len(), 4);
    }

    #[test]
    fn direct_edge_with_alternative_path_is_not_contractable() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2: contracting (0,2) would create a cycle.
        let mut b = DagBuilder::new();
        for _ in 0..3 {
            b.add_node(1, 1);
        }
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        let m = MutableDag::from_dag(&b.build().unwrap());
        assert!(!m.is_contractable(0, 2));
        assert!(m.is_contractable(0, 1));
        assert!(m.is_contractable(1, 2));
    }

    #[test]
    fn contraction_merges_weights_and_adjacency() {
        let dag = diamond();
        let mut m = MutableDag::from_dag(&dag);
        m.contract_edge(0, 1); // merge x into a
        assert_eq!(m.n_alive(), 3);
        assert!(!m.is_alive(1));
        assert_eq!(m.work(0), 3);
        assert_eq!(m.comm(0), 30);
        // a now points at both y(2) and d(3).
        assert!(m.successors(0).contains(&2));
        assert!(m.successors(0).contains(&3));
        let (c, map) = m.compact();
        assert_eq!(c.n(), 3);
        assert_eq!(map[1], None);
        assert_eq!(c.m(), 3); // a->y, a->d, y->d
    }

    #[test]
    fn contraction_to_single_node() {
        let dag = diamond();
        let mut m = MutableDag::from_dag(&dag);
        while m.n_alive() > 1 {
            let (u, v) = m.contractable_edges()[0];
            m.contract_edge(u, v);
        }
        let (c, _) = m.compact();
        assert_eq!(c.n(), 1);
        assert_eq!(c.m(), 0);
        assert_eq!(c.work(0), dag.total_work());
        assert_eq!(c.comm(0), dag.total_comm());
    }

    #[test]
    fn contraction_never_creates_cycle() {
        // Grid-ish DAG; contract greedily and ensure compact() stays buildable
        // (from_parts debug asserts rely on builder, so rebuild via builder).
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..9).map(|_| b.add_node(1, 1)).collect();
        for r in 0..2 {
            for c in 0..2 {
                let i = r * 3 + c;
                b.add_edge(v[i], v[i + 1]).unwrap();
                b.add_edge(v[i], v[i + 3]).unwrap();
            }
        }
        let dag = b.build().unwrap();
        let mut m = MutableDag::from_dag(&dag);
        for _ in 0..5 {
            let edges = m.contractable_edges();
            if edges.is_empty() {
                break;
            }
            let (u, v) = edges[0];
            m.contract_edge(u, v);
            let (c, _) = m.compact();
            // Rebuild through the cycle-checking builder.
            let mut rb = DagBuilder::new();
            for i in 0..c.n() {
                rb.add_node(c.work(i as NodeId), c.comm(i as NodeId));
            }
            for (x, y) in c.edges() {
                rb.add_edge(x, y).unwrap();
            }
            assert!(rb.build().is_ok());
        }
    }

    #[test]
    fn single_pred_fast_path() {
        // chain 0 -> 1 -> 2: (0,1) contractable via fast path.
        let mut b = DagBuilder::new();
        for _ in 0..3 {
            b.add_node(1, 1);
        }
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let m = MutableDag::from_dag(&b.build().unwrap());
        assert!(m.is_contractable(0, 1));
    }
}
