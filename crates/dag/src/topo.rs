//! Topological orderings, level sets, and critical-path metrics.

use crate::graph::{Dag, NodeId};

/// Precomputed ordering information for a DAG.
///
/// * `order[i]` — the i-th node in a deterministic topological order
///   (Kahn's algorithm with a smallest-id-first tie break).
/// * `position[v]` — inverse permutation of `order`.
/// * `level[v]` — length (in edges) of the longest path from any source to
///   `v`; level sets are the "wavefronts" used by the Source heuristic and
///   HDagg (paper §4.1–4.2).
#[derive(Debug, Clone)]
pub struct TopoInfo {
    /// Topological order of all node ids.
    pub order: Vec<NodeId>,
    /// `position[v]` = index of `v` in `order`.
    pub position: Vec<u32>,
    /// Longest-path-from-source depth of each node, in edges.
    pub level: Vec<u32>,
}

impl TopoInfo {
    /// Computes ordering info for `dag`.
    pub fn new(dag: &Dag) -> Self {
        let n = dag.n();
        let mut indeg: Vec<u32> = (0..n).map(|v| dag.in_degree(v as NodeId) as u32).collect();
        // Min-heap on node id for determinism.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n as NodeId)
            .filter(|&v| indeg[v as usize] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut level = vec![0u32; n];
        while let Some(std::cmp::Reverse(u)) = heap.pop() {
            order.push(u);
            for &v in dag.successors(u) {
                level[v as usize] = level[v as usize].max(level[u as usize] + 1);
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    heap.push(std::cmp::Reverse(v));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "input must be acyclic");
        let mut position = vec![0u32; n];
        for (i, &v) in order.iter().enumerate() {
            position[v as usize] = i as u32;
        }
        TopoInfo {
            order,
            position,
            level,
        }
    }

    /// Number of levels (`max level + 1`), i.e. the DAG depth in nodes.
    /// Zero for the empty DAG.
    pub fn depth(&self) -> usize {
        self.level.iter().max().map_or(0, |&d| d as usize + 1)
    }

    /// Groups nodes by [`TopoInfo::level`]: `sets[k]` holds every node at
    /// level `k`, each sorted by id.
    pub fn level_sets(&self) -> Vec<Vec<NodeId>> {
        let mut sets = vec![Vec::new(); self.depth()];
        for v in 0..self.level.len() {
            sets[self.level[v] as usize].push(v as NodeId);
        }
        sets
    }
}

/// Returns `true` if `order` is a permutation of the nodes of `dag` that
/// respects every edge.
pub fn is_topological_order(dag: &Dag, order: &[NodeId]) -> bool {
    if order.len() != dag.n() {
        return false;
    }
    let mut position = vec![usize::MAX; dag.n()];
    for (i, &v) in order.iter().enumerate() {
        if (v as usize) >= dag.n() || position[v as usize] != usize::MAX {
            return false;
        }
        position[v as usize] = i;
    }
    dag.edges()
        .all(|(u, v)| position[u as usize] < position[v as usize])
}

/// Work-weighted *bottom level* of each node: the maximum total work along
/// any path from `v` to a sink, including `w(v)` itself. This is the "longest
/// outgoing path" priority used by the BL-EST list scheduler (paper §4.1).
pub fn bottom_level(dag: &Dag, topo: &TopoInfo) -> Vec<u64> {
    let mut bl = vec![0u64; dag.n()];
    for &v in topo.order.iter().rev() {
        let best = dag
            .successors(v)
            .iter()
            .map(|&s| bl[s as usize])
            .max()
            .unwrap_or(0);
        bl[v as usize] = best + dag.work(v);
    }
    bl
}

/// Work-weighted *top level* of each node: the maximum total work along any
/// path from a source to `v`, excluding `w(v)`. Equals the earliest possible
/// start time on unbounded processors with free communication.
pub fn top_level(dag: &Dag, topo: &TopoInfo) -> Vec<u64> {
    let mut tl = vec![0u64; dag.n()];
    for &v in topo.order.iter() {
        let tv = tl[v as usize] + dag.work(v);
        for &s in dag.successors(v) {
            tl[s as usize] = tl[s as usize].max(tv);
        }
    }
    tl
}

/// Length of the critical path in total work (the classic `T_inf`).
pub fn critical_path_work(dag: &Dag, topo: &TopoInfo) -> u64 {
    bottom_level(dag, topo).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 1);
        let x = b.add_node(2, 1);
        let y = b.add_node(5, 1);
        let d = b.add_node(1, 1);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, d).unwrap();
        b.add_edge(y, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn order_is_topological() {
        let dag = diamond();
        let t = TopoInfo::new(&dag);
        assert!(is_topological_order(&dag, &t.order));
        assert!(!is_topological_order(&dag, &[3, 2, 1, 0]));
        assert!(!is_topological_order(&dag, &[0, 0, 1, 2]));
    }

    #[test]
    fn levels_and_depth() {
        let dag = diamond();
        let t = TopoInfo::new(&dag);
        assert_eq!(t.level, vec![0, 1, 1, 2]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.level_sets(), vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn bottom_and_top_levels() {
        let dag = diamond();
        let t = TopoInfo::new(&dag);
        // Critical path a -> y -> d: 1 + 5 + 1 = 7.
        assert_eq!(bottom_level(&dag, &t), vec![7, 3, 6, 1]);
        assert_eq!(top_level(&dag, &t), vec![0, 1, 1, 6]);
        assert_eq!(critical_path_work(&dag, &t), 7);
    }

    #[test]
    fn empty_dag() {
        let dag = DagBuilder::new().build().unwrap();
        let t = TopoInfo::new(&dag);
        assert_eq!(t.depth(), 0);
        assert!(t.level_sets().is_empty());
        assert_eq!(critical_path_work(&dag, &t), 0);
    }

    #[test]
    fn deterministic_order_breaks_ties_by_id() {
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            b.add_node(1, 1);
        }
        let dag = b.build().unwrap();
        let t = TopoInfo::new(&dag);
        assert_eq!(t.order, vec![0, 1, 2, 3]);
    }
}
