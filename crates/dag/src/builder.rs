//! Incremental, cycle-checked DAG construction.

use crate::graph::{Dag, NodeId};
use std::fmt;

/// Errors produced while building or loading DAGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint referred to a node id that was never added.
    UnknownNode(NodeId),
    /// A self-loop `(v, v)` was added.
    SelfLoop(NodeId),
    /// The edge set contains a directed cycle; the payload is one node on it.
    Cycle(NodeId),
    /// A parse error in an interchange format, with line number and message.
    Parse {
        /// 1-based line number in the parsed input.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownNode(v) => write!(f, "edge endpoint {v} does not exist"),
            DagError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
            DagError::Cycle(v) => write!(f, "directed cycle detected through node {v}"),
            DagError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Builder for [`Dag`]. Nodes are created with explicit work and
/// communication weights; edges are validated for acyclicity at
/// [`DagBuilder::build`] time via Kahn's algorithm.
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    work: Vec<u64>,
    comm: Vec<u64>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with node capacity pre-reserved.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DagBuilder {
            work: Vec::with_capacity(nodes),
            comm: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node with work weight `work` and communication weight `comm`,
    /// returning its id (ids are assigned densely from 0).
    pub fn add_node(&mut self, work: u64, comm: u64) -> NodeId {
        self.work.push(work);
        self.comm.push(comm);
        (self.work.len() - 1) as NodeId
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.work.len()
    }

    /// Adds the precedence edge `u -> v`. Fails fast on unknown endpoints and
    /// self-loops; cycles are detected at build time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), DagError> {
        let n = self.work.len() as NodeId;
        if u >= n {
            return Err(DagError::UnknownNode(u));
        }
        if v >= n {
            return Err(DagError::UnknownNode(v));
        }
        if u == v {
            return Err(DagError::SelfLoop(u));
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// Finalizes the DAG, verifying acyclicity.
    pub fn build(self) -> Result<Dag, DagError> {
        let n = self.work.len();
        // Kahn's algorithm over the (possibly duplicated) edge multiset.
        let mut indeg = vec![0u32; n];
        let mut adj_heads = vec![u32::MAX; n];
        let mut adj_next = vec![u32::MAX; self.edges.len()];
        let mut adj_to = vec![0 as NodeId; self.edges.len()];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            indeg[v as usize] += 1;
            adj_to[i] = v;
            adj_next[i] = adj_heads[u as usize];
            adj_heads[u as usize] = i as u32;
        }
        let mut queue: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            let mut e = adj_heads[u as usize];
            while e != u32::MAX {
                let v = adj_to[e as usize];
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
                e = adj_next[e as usize];
            }
        }
        if seen != n {
            let witness = (0..n).find(|&v| indeg[v] > 0).unwrap() as NodeId;
            return Err(DagError::Cycle(witness));
        }
        Ok(Dag::from_parts(n, self.edges, self.work, self.comm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 1);
        assert_eq!(b.add_edge(a, 7), Err(DagError::UnknownNode(7)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 1);
        assert_eq!(b.add_edge(a, a), Err(DagError::SelfLoop(a)));
    }

    #[test]
    fn detects_two_cycle() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 1);
        let c = b.add_node(1, 1);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, a).unwrap();
        assert!(matches!(b.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn detects_longer_cycle() {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..5).map(|_| b.add_node(1, 1)).collect();
        for i in 0..4 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        b.add_edge(v[4], v[1]).unwrap();
        assert!(matches!(b.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn empty_graph_builds() {
        let d = DagBuilder::new().build().unwrap();
        assert_eq!(d.n(), 0);
        assert_eq!(d.m(), 0);
    }

    #[test]
    fn chain_builds() {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..100).map(|i| b.add_node(i, 1)).collect();
        for i in 0..99 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        let d = b.build().unwrap();
        assert_eq!(d.n(), 100);
        assert_eq!(d.m(), 99);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DagError::Parse {
            line: 3,
            msg: "bad pin".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
