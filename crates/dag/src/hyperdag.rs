//! HyperDAG text interchange format (paper §5, Appendix B).
//!
//! The paper's DAG database stores instances as *hyperDAGs*: one hyperedge
//! per non-sink node `v`, containing `v` (the source pin) and all of `v`'s
//! direct successors. This emphasizes that `v`'s output is a single value
//! that is sent at most once per target processor. The representation is
//! information-equivalent to the DAG, and all algorithms convert back to the
//! plain DAG form first — exactly as in the paper.
//!
//! Concrete grammar (a MatrixMarket-like plain text format):
//!
//! ```text
//! %% comment lines start with '%'
//! <H> <V> <P>          header: hyperedge, vertex and pin counts
//! <h> <v>              P pin lines: hyperedge h contains vertex v;
//!                      the FIRST pin listed for h is its source vertex
//! <v> <w> <c>          V vertex lines: work and communication weights
//! ```

use crate::builder::{DagBuilder, DagError};
use crate::graph::{Dag, NodeId};

/// Serializes `dag` to the hyperDAG text format. Hyperedges are emitted for
/// non-sink nodes in ascending id order; the source pin comes first.
pub fn to_hyperdag_string(dag: &Dag) -> String {
    use std::fmt::Write;
    let hyperedges: Vec<NodeId> = dag.nodes().filter(|&v| dag.out_degree(v) > 0).collect();
    let pins: usize = hyperedges.iter().map(|&v| 1 + dag.out_degree(v)).sum();
    let mut s = String::new();
    writeln!(s, "%% HyperDAG representation").unwrap();
    writeln!(s, "%% first pin of each hyperedge is its source vertex").unwrap();
    writeln!(s, "{} {} {}", hyperedges.len(), dag.n(), pins).unwrap();
    for (h, &v) in hyperedges.iter().enumerate() {
        writeln!(s, "{} {}", h, v).unwrap();
        for &t in dag.successors(v) {
            writeln!(s, "{} {}", h, t).unwrap();
        }
    }
    for v in dag.nodes() {
        writeln!(s, "{} {} {}", v, dag.work(v), dag.comm(v)).unwrap();
    }
    s
}

/// Parses the hyperDAG text format back into a [`Dag`].
pub fn from_hyperdag_str(input: &str) -> Result<Dag, DagError> {
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('%'));

    let (hline_no, header) = lines.next().ok_or(DagError::Parse {
        line: 0,
        msg: "missing header".into(),
    })?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 3 {
        return Err(DagError::Parse {
            line: hline_no,
            msg: "header must be '<H> <V> <P>'".into(),
        });
    }
    let parse_usize = |tok: &str, line: usize| -> Result<usize, DagError> {
        tok.parse().map_err(|_| DagError::Parse {
            line,
            msg: format!("bad integer '{tok}'"),
        })
    };
    let h = parse_usize(parts[0], hline_no)?;
    let v_count = parse_usize(parts[1], hline_no)?;
    let p = parse_usize(parts[2], hline_no)?;

    // Pins: first pin per hyperedge is the source.
    let mut source: Vec<Option<NodeId>> = vec![None; h];
    let mut targets: Vec<Vec<NodeId>> = vec![Vec::new(); h];
    for _ in 0..p {
        let (no, l) = lines.next().ok_or(DagError::Parse {
            line: 0,
            msg: "missing pin line".into(),
        })?;
        let toks: Vec<&str> = l.split_whitespace().collect();
        if toks.len() != 2 {
            return Err(DagError::Parse {
                line: no,
                msg: "pin line must be '<h> <v>'".into(),
            });
        }
        let he = parse_usize(toks[0], no)?;
        let vv = parse_usize(toks[1], no)? as NodeId;
        if he >= h {
            return Err(DagError::Parse {
                line: no,
                msg: format!("hyperedge {he} out of range"),
            });
        }
        if vv as usize >= v_count {
            return Err(DagError::Parse {
                line: no,
                msg: format!("vertex {vv} out of range"),
            });
        }
        match source[he] {
            None => source[he] = Some(vv),
            Some(_) => targets[he].push(vv),
        }
    }

    let mut b = DagBuilder::with_capacity(v_count, p.saturating_sub(h));
    let mut weights_seen = vec![false; v_count];
    let mut work = vec![1u64; v_count];
    let mut comm = vec![1u64; v_count];
    for _ in 0..v_count {
        let (no, l) = lines.next().ok_or(DagError::Parse {
            line: 0,
            msg: "missing vertex weight line".into(),
        })?;
        let toks: Vec<&str> = l.split_whitespace().collect();
        if toks.len() != 3 {
            return Err(DagError::Parse {
                line: no,
                msg: "vertex line must be '<v> <w> <c>'".into(),
            });
        }
        let v = parse_usize(toks[0], no)?;
        if v >= v_count {
            return Err(DagError::Parse {
                line: no,
                msg: format!("vertex {v} out of range"),
            });
        }
        if weights_seen[v] {
            return Err(DagError::Parse {
                line: no,
                msg: format!("duplicate weights for vertex {v}"),
            });
        }
        weights_seen[v] = true;
        work[v] = parse_usize(toks[1], no)? as u64;
        comm[v] = parse_usize(toks[2], no)? as u64;
    }
    for v in 0..v_count {
        b.add_node(work[v], comm[v]);
    }
    for he in 0..h {
        let s = source[he].ok_or(DagError::Parse {
            line: 0,
            msg: format!("hyperedge {he} has no pins"),
        })?;
        for &t in &targets[he] {
            b.add_edge(s, t)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(3, 4);
        let y = b.add_node(5, 6);
        let z = b.add_node(7, 8);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_graph() {
        let d = sample();
        let s = to_hyperdag_string(&d);
        let d2 = from_hyperdag_str(&s).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn hyperedge_counts() {
        let d = sample();
        let s = to_hyperdag_string(&d);
        let header = s.lines().find(|l| !l.starts_with('%')).unwrap();
        // 3 non-sink nodes, 4 vertices, pins = (1+2)+(1+1)+(1+1) = 7.
        assert_eq!(header, "3 4 7");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_hyperdag_str("1 2"),
            Err(DagError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_pin() {
        let bad = "1 2 2\n0 0\n0 9\n0 1 1\n1 1 1\n";
        assert!(matches!(
            from_hyperdag_str(bad),
            Err(DagError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_cyclic_hyperdag() {
        // Two hyperedges forming 0 -> 1 and 1 -> 0.
        let bad = "2 2 4\n0 0\n0 1\n1 1\n1 0\n0 1 1\n1 1 1\n";
        assert!(matches!(from_hyperdag_str(bad), Err(DagError::Cycle(_))));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let d = sample();
        let s = format!("% leading comment\n\n{}", to_hyperdag_string(&d));
        assert_eq!(from_hyperdag_str(&s).unwrap(), d);
    }

    #[test]
    fn isolated_nodes_survive_round_trip() {
        let mut b = DagBuilder::new();
        b.add_node(4, 9);
        b.add_node(2, 7);
        let d = b.build().unwrap();
        let d2 = from_hyperdag_str(&to_hyperdag_string(&d)).unwrap();
        assert_eq!(d, d2);
    }
}
