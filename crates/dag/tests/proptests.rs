//! Property-based tests for the DAG substrate.

use bsp_dag::random::{random_layered_dag, random_order_dag, LayeredConfig};
use bsp_dag::topo::{bottom_level, is_topological_order, top_level};
use bsp_dag::traversal::{reaches, reaches_pruned, weakly_connected_components};
use bsp_dag::{hyperdag, MutableDag, TopoInfo};
use proptest::prelude::*;

fn arb_dag() -> impl Strategy<Value = bsp_dag::Dag> {
    (0u64..1000, 1usize..6, 1usize..7, 0.05f64..0.9).prop_map(|(seed, layers, width, p)| {
        random_layered_dag(
            seed,
            LayeredConfig {
                layers,
                width,
                edge_prob: p,
                max_work: 9,
                max_comm: 5,
            },
        )
    })
}

fn arb_dense_dag() -> impl Strategy<Value = bsp_dag::Dag> {
    (0u64..1000, 1usize..25, 0.0f64..0.5)
        .prop_map(|(seed, n, p)| random_order_dag(seed, n, p, 9, 5))
}

proptest! {
    #[test]
    fn topo_order_always_valid(dag in arb_dag()) {
        let t = TopoInfo::new(&dag);
        prop_assert!(is_topological_order(&dag, &t.order));
    }

    #[test]
    fn level_respects_edges(dag in arb_dense_dag()) {
        let t = TopoInfo::new(&dag);
        for (u, v) in dag.edges() {
            prop_assert!(t.level[u as usize] < t.level[v as usize]);
        }
    }

    #[test]
    fn bottom_plus_top_bounded_by_critical_path(dag in arb_dag()) {
        let t = TopoInfo::new(&dag);
        let bl = bottom_level(&dag, &t);
        let tl = top_level(&dag, &t);
        let cp = bl.iter().copied().max().unwrap_or(0);
        for v in dag.nodes() {
            // Any source-to-sink path through v has length tl(v) + bl(v).
            prop_assert!(tl[v as usize] + bl[v as usize] <= cp);
        }
    }

    #[test]
    fn pruned_reachability_agrees(dag in arb_dense_dag()) {
        let t = TopoInfo::new(&dag);
        let n = dag.n() as u32;
        for u in 0..n.min(12) {
            for v in 0..n.min(12) {
                prop_assert_eq!(reaches(&dag, u, v), reaches_pruned(&dag, &t, u, v));
            }
        }
    }

    #[test]
    fn hyperdag_round_trip(dag in arb_dag()) {
        let s = hyperdag::to_hyperdag_string(&dag);
        let back = hyperdag::from_hyperdag_str(&s).unwrap();
        prop_assert_eq!(dag, back);
    }

    #[test]
    fn components_partition_nodes(dag in arb_dense_dag()) {
        let comps = weakly_connected_components(&dag);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, dag.n());
        let mut seen = vec![false; dag.n()];
        for c in &comps {
            for &v in c {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn contraction_preserves_totals_and_acyclicity(dag in arb_dag(), steps in 0usize..10) {
        let mut m = MutableDag::from_dag(&dag);
        for _ in 0..steps {
            let edges = m.contractable_edges();
            let Some(&(u, v)) = edges.first() else { break };
            m.contract_edge(u, v);
        }
        let (c, map) = m.compact();
        // Weight totals invariant under contraction.
        prop_assert_eq!(c.total_work(), dag.total_work());
        prop_assert_eq!(c.total_comm(), dag.total_comm());
        // Result is still a DAG (TopoInfo would have too short an order otherwise).
        let t = TopoInfo::new(&c);
        prop_assert!(is_topological_order(&c, &t.order));
        // Mapping covers exactly the live nodes.
        let live = map.iter().filter(|x| x.is_some()).count();
        prop_assert_eq!(live, c.n());
    }

    #[test]
    fn contractability_means_no_alternative_path(dag in arb_dense_dag()) {
        let m = MutableDag::from_dag(&dag);
        for (u, v) in dag.edges().take(30) {
            let contractable = m.is_contractable(u, v);
            // Check against a direct definition: remove edge, test reachability.
            let mut b = bsp_dag::DagBuilder::new();
            for x in dag.nodes() {
                b.add_node(dag.work(x), dag.comm(x));
            }
            for (a2, b2) in dag.edges() {
                if (a2, b2) != (u, v) {
                    b.add_edge(a2, b2).unwrap();
                }
            }
            let without = b.build().unwrap();
            prop_assert_eq!(contractable, !reaches(&without, u, v));
        }
    }
}
