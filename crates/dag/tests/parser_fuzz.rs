//! Failure-injection tests for the hyperDAG parser: arbitrary and
//! near-valid inputs must never panic — they either parse or return a
//! structured error.

use bsp_dag::hyperdag::{from_hyperdag_str, to_hyperdag_string};
use bsp_dag::random::{random_layered_dag, LayeredConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_text_never_panics(s in "\\PC{0,200}") {
        let _ = from_hyperdag_str(&s);
    }

    #[test]
    fn arbitrary_numeric_soup_never_panics(
        nums in proptest::collection::vec(0u32..50, 0..60),
        newline_every in 1usize..6,
    ) {
        let mut s = String::new();
        for (i, n) in nums.iter().enumerate() {
            s.push_str(&n.to_string());
            s.push(if i % newline_every == 0 { '\n' } else { ' ' });
        }
        let _ = from_hyperdag_str(&s);
    }

    /// Mutating one character of a valid file either parses or errors.
    #[test]
    fn single_character_corruption_is_handled(seed in 0u64..200, pos_frac in 0.0f64..1.0, c in "[0-9a-z %.\\-]") {
        let dag = random_layered_dag(seed, LayeredConfig { layers: 3, width: 3, ..Default::default() });
        let mut text = to_hyperdag_string(&dag);
        let pos = ((text.len() as f64 - 1.0) * pos_frac) as usize;
        let ch = c.chars().next().unwrap();
        // Splice at a char boundary.
        let pos = (0..=pos).rev().find(|&p| text.is_char_boundary(p)).unwrap_or(0);
        text.replace_range(pos..pos, &ch.to_string());
        let _ = from_hyperdag_str(&text);
    }

    /// Truncating a valid file anywhere is handled gracefully.
    #[test]
    fn truncation_is_handled(seed in 0u64..200, keep_frac in 0.0f64..1.0) {
        let dag = random_layered_dag(seed, LayeredConfig { layers: 3, width: 4, ..Default::default() });
        let text = to_hyperdag_string(&dag);
        let keep = ((text.len() as f64) * keep_frac) as usize;
        let keep = (0..=keep).rev().find(|&p| text.is_char_boundary(p)).unwrap_or(0);
        let _ = from_hyperdag_str(&text[..keep]);
    }
}
