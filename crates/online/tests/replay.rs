//! Property tests for the online arrival runtime — the two ISSUE-level
//! invariants plus the replay/stream equivalences:
//!
//! 1. replaying any full `ArrivalTrace` yields a schedule accepted by
//!    `validate` / `validate_with_memory` (over the revealed DAG and,
//!    re-expressed via `for_source`, over the source DAG);
//! 2. the committed prefix is a valid schedule of the revealed subgraph
//!    after *every* event, the frontier is monotone, and per-batch
//!    re-planning work never exceeds the configured move budget.

use bsp_dag::random::{random_layered_dag, LayeredConfig};
use bsp_dag::Dag;
use bsp_instance::trace::{arrival_trace, ArrivalEvent, ArrivalOrder, TraceConfig};
use bsp_model::BspParams;
use bsp_online::{replay, OnlineConfig, OnlineError, OnlineScheduler};
use bsp_schedule::cost::total_cost;
use bsp_schedule::prefix::validate_prefix;
use bsp_schedule::validity::{validate, validate_with_memory};
use proptest::prelude::*;
use std::time::Duration;

fn arb_dag() -> impl Strategy<Value = Dag> {
    (0u64..300, 2usize..5, 2usize..5, 0.15f64..0.6).prop_map(|(seed, layers, width, p)| {
        random_layered_dag(
            seed,
            LayeredConfig {
                layers,
                width,
                edge_prob: p,
                max_work: 7,
                max_comm: 5,
            },
        )
    })
}

fn arb_trace_cfg() -> impl Strategy<Value = TraceConfig> {
    (0usize..3, 0.0f64..0.6, 0u32..8, 0u64..1000).prop_map(|(o, frac, delay, seed)| TraceConfig {
        order: ArrivalOrder::ALL[o],
        reveal_frac: frac,
        reveal_delay: delay,
        seed,
    })
}

/// Deterministic test configuration: a deadline far beyond what any of
/// these instances need, so the accepted-move cap is the only budget that
/// ever binds and runs are reproducible.
fn test_cfg() -> OnlineConfig {
    let mut cfg = OnlineConfig::default();
    cfg.batch_size = 4;
    cfg.budget_per_arrival = Duration::from_secs(5);
    cfg.moves_per_arrival = Some(32);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: a full-trace replay is a valid schedule of the whole
    /// DAG, under both the plain and the memory-aware validators, with an
    /// exactly-reported cost — and it re-expresses losslessly over the
    /// source instance's node ids.
    #[test]
    fn full_trace_replay_is_valid(
        dag in arb_dag(),
        tcfg in arb_trace_cfg(),
        pi in 0usize..2,
    ) {
        let p = [2usize, 4][pi];
        let machine = BspParams::new(p, 1, 3);
        let trace = arrival_trace(&dag, "prop", &tcfg);
        let outcome = replay(&trace, &machine, &test_cfg()).unwrap();
        prop_assert_eq!(outcome.stats.arrivals as usize, dag.n());
        prop_assert_eq!(outcome.dag.n(), dag.n());
        prop_assert!(validate(&outcome.dag, p, &outcome.sched, &outcome.comm).is_ok());
        prop_assert!(
            validate_with_memory(&outcome.dag, &machine, &outcome.sched, &outcome.comm).is_ok()
        );
        prop_assert_eq!(
            outcome.cost,
            total_cost(&outcome.dag, &machine, &outcome.sched, &outcome.comm)
        );
        let (sched, comm) = outcome.for_source().unwrap();
        prop_assert!(validate(&dag, p, &sched, &comm).is_ok());
        prop_assert_eq!(outcome.cost, total_cost(&dag, &machine, &sched, &comm));
    }

    /// Invariant 2: at every event of the stream the committed prefix is
    /// a valid schedule of the revealed subgraph, the frontier never
    /// retreats, and each batch's accepted hill-climbing moves stay
    /// within `moves_per_arrival × arrivals`.
    #[test]
    fn prefix_stays_valid_and_budget_is_respected(
        dag in arb_dag(),
        tcfg in arb_trace_cfg(),
        pi in 0usize..2,
        ti in 0usize..2,
    ) {
        let p = [2usize, 4][pi];
        let threads = [1usize, 4][ti];
        let machine = BspParams::new(p, 1, 3);
        let trace = arrival_trace(&dag, "prop", &tcfg);
        let mut cfg = test_cfg();
        cfg.pipeline.threads = threads;
        let mut sch = OnlineScheduler::new(&machine, cfg.clone()).unwrap();
        let mut frontier = 0u32;
        for ev in &trace.events {
            let report = sch.push(ev).unwrap();
            prop_assert!(
                validate_prefix(sch.dag(), p, sch.schedule(), sch.frontier()).is_ok(),
                "prefix invalid after {:?}", ev
            );
            prop_assert!(sch.frontier() >= frontier, "frontier retreated");
            frontier = sch.frontier();
            if let Some(r) = report {
                let cap = cfg.moves_per_arrival.unwrap() as u64
                    * r.arrivals.max(cfg.batch_size as u64);
                prop_assert!(
                    r.hc_moves <= cap,
                    "batch {} accepted {} moves, budget {}", r.batch, r.hc_moves, cap
                );
            }
        }
        prop_assert!(sch.is_finalized());
        let outcome = sch.outcome().unwrap();
        prop_assert_eq!(outcome.sched.n_supersteps(), sch.frontier());
        // The suffix view of a finalized stream is empty: all dispatched.
        prop_assert!(sch.suffix().nodes.is_empty());
    }
}

#[test]
fn replay_equals_manual_pushes() {
    let dag = random_layered_dag(
        11,
        LayeredConfig {
            layers: 4,
            width: 4,
            edge_prob: 0.4,
            max_work: 7,
            max_comm: 5,
        },
    );
    let machine = BspParams::new(4, 1, 3);
    let tcfg = TraceConfig {
        order: ArrivalOrder::ShuffledReady,
        reveal_frac: 0.3,
        reveal_delay: 5,
        seed: 7,
    };
    let trace = arrival_trace(&dag, "manual", &tcfg);
    let a = replay(&trace, &machine, &test_cfg()).unwrap();
    let mut sch = OnlineScheduler::new(&machine, test_cfg()).unwrap();
    for ev in &trace.events {
        sch.push(ev).unwrap();
    }
    let b = sch.outcome().unwrap();
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.sched, b.sched);
    assert_eq!(a.ext_ids, b.ext_ids);
}

#[test]
fn thread_count_does_not_change_the_replayed_schedule() {
    let dag = random_layered_dag(
        23,
        LayeredConfig {
            layers: 4,
            width: 4,
            edge_prob: 0.35,
            max_work: 6,
            max_comm: 4,
        },
    );
    let machine = BspParams::new(4, 2, 4);
    let trace = arrival_trace(&dag, "threads", &TraceConfig::default());
    let mut one = test_cfg();
    one.pipeline.threads = 1;
    let mut four = test_cfg();
    four.pipeline.threads = 4;
    let a = replay(&trace, &machine, &one).unwrap();
    let b = replay(&trace, &machine, &four).unwrap();
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.sched, b.sched);
}

#[test]
fn stream_protocol_errors_are_typed() {
    let machine = BspParams::new(2, 1, 2);
    let mut sch = OnlineScheduler::new(&machine, test_cfg()).unwrap();
    sch.push(&ArrivalEvent::Arrive {
        node: 3,
        work: 1,
        comm: 1,
        deps: vec![],
    })
    .unwrap();
    assert_eq!(
        sch.push(&ArrivalEvent::Arrive {
            node: 3,
            work: 1,
            comm: 1,
            deps: vec![]
        }),
        Err(OnlineError::DuplicateNode { node: 3 })
    );
    assert_eq!(
        sch.push(&ArrivalEvent::Arrive {
            node: 4,
            work: 1,
            comm: 1,
            deps: vec![9]
        }),
        Err(OnlineError::UnknownNode { node: 9 })
    );
    assert_eq!(
        sch.push(&ArrivalEvent::Reveal { from: 3, to: 8 }),
        Err(OnlineError::UnknownNode { node: 8 })
    );
    sch.push(&ArrivalEvent::Finalize).unwrap();
    assert_eq!(
        sch.push(&ArrivalEvent::Finalize),
        Err(OnlineError::Finalized)
    );
}

#[test]
fn memory_bounded_machines_are_rejected() {
    use bsp_instance::MachineSpec;
    let machine = MachineSpec::parse("bsp?p=2&mem=64").unwrap().build();
    assert!(
        machine.memory().is_some(),
        "spec should carry a memory bound"
    );
    assert_eq!(
        OnlineScheduler::new(&machine, test_cfg()).err(),
        Some(OnlineError::UnsupportedMachine)
    );
}

#[test]
fn empty_stream_finalizes_cleanly() {
    let machine = BspParams::new(2, 1, 2);
    let mut sch = OnlineScheduler::new(&machine, test_cfg()).unwrap();
    sch.push(&ArrivalEvent::Finalize).unwrap();
    let outcome = sch.outcome().unwrap();
    assert_eq!(outcome.dag.n(), 0);
    assert_eq!(outcome.cost, 0);
}
