//! Streaming DAG arrival: online scheduling with a committed prefix.
//!
//! The paper's framing is *increasingly realistic models*; this crate is
//! the online rung of that ladder. Instead of a one-shot cold solve, the
//! problem arrives as an event stream
//! ([`ArrivalTrace`](bsp_instance::trace::ArrivalTrace)): nodes arrive
//! over time, some edges are disclosed late, and the machine is already
//! *executing* the schedule while it is being extended. The
//! [`OnlineScheduler`] maintains:
//!
//! * a **committed prefix** — supersteps below the commit frontier have
//!   been dispatched and are frozen;
//! * a **tentative suffix** — everything at the frontier and above, free
//!   to be rewritten when new work arrives.
//!
//! Each arrival batch becomes a [`DagEdit`](bsp_instance::DagEdit) list
//! and re-planning reuses the warm-start machinery of `bsp_core::warm`:
//! transplant the surviving assignment, list-insert the new nodes (never
//! below the frontier), precedence-repair the suffix
//! ([`bsp_core::repair_precedence_from`]), then floor-restricted
//! hill climbing ([`bsp_core::solve_warm_suffix`]) under a *per-arrival
//! work budget* enforced through the anytime
//! [`SolveCx`](bsp_schedule::solve::SolveCx) contract — a wall-clock
//! deadline plus an accepted-move cap, both proportional to the number of
//! arrivals in the batch.
//!
//! Two invariants hold at every event (and are proptested):
//!
//! 1. the committed prefix is a valid schedule of the revealed subgraph
//!    ([`bsp_schedule::prefix::validate_prefix`]);
//! 2. re-planning work stays within the configured budget
//!    ([`BatchReport::hc_moves`] never exceeds moves-per-arrival ×
//!    batch arrivals).
//!
//! Commitment is deliberately conservative: the frontier trails the last
//! superstep by [`OnlineConfig::commit_lag`] and never overtakes the
//! [`OnlineConfig::reveal_guard`] most recent arrivals, so a
//! late-revealed edge (bounded by
//! [`bsp_instance::trace::MAX_REVEAL_DELAY`]) always lands on a
//! still-tentative consumer. A trace that violates the bound anyway is
//! rejected with the typed [`OnlineError::CommitConflict`] rather than
//! silently rewriting dispatched work.
//!
//! ```
//! use bsp_dag::DagBuilder;
//! use bsp_instance::trace::{arrival_trace, TraceConfig};
//! use bsp_model::BspParams;
//! use bsp_online::{replay, OnlineConfig};
//! use bsp_schedule::validity::validate;
//!
//! let mut b = DagBuilder::new();
//! let u = b.add_node(2, 1);
//! let v = b.add_node(3, 1);
//! let w = b.add_node(1, 1);
//! b.add_edge(u, v).unwrap();
//! b.add_edge(v, w).unwrap();
//! let dag = b.build().unwrap();
//! let machine = BspParams::new(2, 1, 2);
//!
//! let trace = arrival_trace(&dag, "chain", &TraceConfig::default());
//! let outcome = replay(&trace, &machine, &OnlineConfig::default()).unwrap();
//! // The replayed schedule is valid over the revealed DAG (nodes indexed
//! // by arrival order) …
//! assert!(validate(&outcome.dag, 2, &outcome.sched, &outcome.comm).is_ok());
//! // … and, re-expressed in source ids, over the original DAG too.
//! let (sched, comm) = outcome.for_source().unwrap();
//! assert!(validate(&dag, 2, &sched, &comm).is_ok());
//! assert_eq!(outcome.stats.arrivals, 3);
//! ```

pub mod scheduler;

pub use scheduler::{
    replay, BatchReport, OnlineConfig, OnlineError, OnlineOutcome, OnlineScheduler, OnlineStats,
    SuffixView,
};
