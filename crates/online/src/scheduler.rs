//! The event-driven arrival runtime: [`OnlineScheduler`] and
//! [`replay`].

use bsp_core::hccs::optimize_comm_schedule_threaded;
use bsp_core::pipeline::PipelineConfig;
use bsp_core::{place_new_nodes, repair_precedence_from, solve_warm_suffix};
use bsp_dag::{Dag, DagBuilder, NodeId};
use bsp_instance::trace::{ArrivalEvent, ArrivalTrace, MAX_REVEAL_DELAY};
use bsp_instance::{apply_edits, DagEdit, EditError};
use bsp_model::BspParams;
use bsp_schedule::compact::compact_lazy_from;
use bsp_schedule::cost::{lazy_cost, total_cost};
use bsp_schedule::prefix::{validate_prefix, PrefixViolation};
use bsp_schedule::solve::{Budget, SolveCx, SolveRequest};
use bsp_schedule::{BspSchedule, CommSchedule};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

/// Tuning knobs of an [`OnlineScheduler`].
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Arrivals buffered before a re-plan runs (`Finalize` and
    /// [`OnlineScheduler::flush`] force one earlier).
    pub batch_size: usize,
    /// Wall-clock re-planning budget granted per arrival; a batch of `k`
    /// arrivals re-plans under a `k ×` this deadline.
    pub budget_per_arrival: Duration,
    /// Accepted-move cap per arrival (the deterministic half of the work
    /// budget); `None` = wall-clock only.
    pub moves_per_arrival: Option<usize>,
    /// How many trailing supersteps stay tentative when the frontier
    /// advances: after a re-plan the frontier moves to
    /// `n_supersteps − commit_lag` (but see `reveal_guard`).
    pub commit_lag: u32,
    /// The frontier never overtakes the supersteps of this many most
    /// recent arrivals, so late edge reveals (bounded by
    /// [`MAX_REVEAL_DELAY`] arrivals) always land on tentative
    /// consumers. Must exceed the trace's reveal delay bound.
    pub reveal_guard: usize,
    /// Pipeline configuration for the suffix hill climb (ILP off by
    /// default — per-arrival budgets are far below ILP scale).
    pub pipeline: PipelineConfig,
    /// Optimize the communication schedule once at finalize (node
    /// assignments are not touched, so the committed prefix is safe).
    pub final_polish: bool,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            batch_size: 8,
            budget_per_arrival: Duration::from_millis(2),
            moves_per_arrival: Some(64),
            commit_lag: 2,
            reveal_guard: 2 * MAX_REVEAL_DELAY as usize,
            pipeline: PipelineConfig {
                enable_ilp: false,
                ..PipelineConfig::default()
            },
            final_polish: true,
        }
    }
}

/// Why the online runtime rejected an event (or a whole stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnlineError {
    /// An `Arrive` reused a node id that already arrived.
    DuplicateNode {
        /// The trace-level node id.
        node: u32,
    },
    /// An `Arrive` dep or `Reveal` endpoint never arrived.
    UnknownNode {
        /// The trace-level node id.
        node: u32,
    },
    /// The underlying edit batch was rejected (duplicate edge, cycle).
    Edit(EditError),
    /// A revealed edge (or an edit-induced delay) would rewrite the
    /// committed prefix — the trace out-ran the scheduler's commit
    /// guard.
    CommitConflict(PrefixViolation),
    /// An event arrived after `Finalize`.
    Finalized,
    /// A previous error left the stream unusable.
    Poisoned,
    /// Memory-bounded machines are not supported online (superstep
    /// splitting could rewrite dispatched supersteps).
    UnsupportedMachine,
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::DuplicateNode { node } => write!(f, "node {node} arrived twice"),
            OnlineError::UnknownNode { node } => {
                write!(f, "node {node} referenced before arrival")
            }
            OnlineError::Edit(e) => write!(f, "edit rejected: {e}"),
            OnlineError::CommitConflict(v) => {
                write!(f, "event conflicts with the committed prefix: {v}")
            }
            OnlineError::Finalized => write!(f, "event after finalize"),
            OnlineError::Poisoned => write!(f, "stream poisoned by an earlier error"),
            OnlineError::UnsupportedMachine => {
                write!(f, "online scheduling requires an unbounded-memory machine")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// What one re-plan did. `elapsed_us / arrivals` is the per-arrival
/// latency sample the experiment tables aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Re-plan sequence number (0-based).
    pub batch: u64,
    /// `Arrive` events integrated by this re-plan.
    pub arrivals: u64,
    /// `Reveal` events integrated by this re-plan.
    pub reveals: u64,
    /// Lazy-Γ cost of the full (prefix + suffix) schedule afterwards.
    pub cost: u64,
    /// Superstep count afterwards.
    pub supersteps: u32,
    /// Commit frontier afterwards.
    pub frontier: u32,
    /// Accepted hill-climbing moves (work-budget evidence: never exceeds
    /// `moves_per_arrival × max(arrivals, 1)`).
    pub hc_moves: u64,
    /// Wall-clock time of the re-plan, in microseconds.
    pub elapsed_us: u64,
    /// Whether the work budget cut the hill climb short.
    pub truncated: bool,
}

/// Counters and per-batch reports of one online session.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineStats {
    /// Total `Arrive` events.
    pub arrivals: u64,
    /// Total `Reveal` events.
    pub reveals: u64,
    /// Total re-plans.
    pub replans: u64,
    /// One report per re-plan, in order.
    pub batches: Vec<BatchReport>,
}

impl OnlineStats {
    /// Per-arrival latency samples in microseconds: each re-plan
    /// contributes its `arrivals` samples of `elapsed_us / arrivals`.
    pub fn per_arrival_latencies_us(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for b in &self.batches {
            if let Some(per) = b.elapsed_us.checked_div(b.arrivals) {
                out.extend(std::iter::repeat_n(per, b.arrivals as usize));
            }
        }
        out
    }
}

/// The tentative-suffix view streamed to clients after a re-plan: the
/// assignment of every node at or above the commit frontier, in
/// trace-level node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixView {
    /// Commit frontier (supersteps below it are frozen).
    pub frontier: u32,
    /// Trace-level ids of the tentative nodes.
    pub nodes: Vec<u32>,
    /// Their processor assignments.
    pub procs: Vec<u32>,
    /// Their superstep assignments.
    pub steps: Vec<u32>,
}

/// The final result of a finalized stream.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The fully revealed DAG, nodes indexed by *arrival order*.
    pub dag: Dag,
    /// Final assignment over `dag`'s ids.
    pub sched: BspSchedule,
    /// Final communication schedule (polished iff
    /// [`OnlineConfig::final_polish`]).
    pub comm: CommSchedule,
    /// Final total cost under `comm`.
    pub cost: u64,
    /// Trace-level id of each node of `dag`.
    pub ext_ids: Vec<u32>,
    /// Session counters and per-batch reports.
    pub stats: OnlineStats,
}

impl OnlineOutcome {
    /// Re-expresses the result over the *source* DAG's node ids, when the
    /// trace used a dense id range `0..n` (generator-derived traces do).
    /// Returns `None` for sparse custom id spaces.
    pub fn for_source(&self) -> Option<(BspSchedule, CommSchedule)> {
        let n = self.dag.n();
        let mut seen = vec![false; n];
        for &e in &self.ext_ids {
            if (e as usize) >= n || seen[e as usize] {
                return None;
            }
            seen[e as usize] = true;
        }
        let mut sched = BspSchedule::zeroed(n);
        for v in 0..n as NodeId {
            sched.set(
                self.ext_ids[v as usize],
                self.sched.proc(v),
                self.sched.step(v),
            );
        }
        let comm = CommSchedule::from_entries(
            self.comm
                .entries()
                .iter()
                .map(|e| bsp_schedule::CommStep {
                    node: self.ext_ids[e.node as usize],
                    ..*e
                })
                .collect(),
        );
        Some((sched, comm))
    }
}

/// Buffered, not-yet-integrated events of the current batch.
#[derive(Debug, Default)]
struct PendingBatch {
    edits: Vec<DagEdit>,
    arrivals: u64,
    reveals: u64,
}

/// The event-driven arrival runtime. See the [crate docs](crate) for the
/// model; [`replay`] for the one-call driver.
///
/// ```
/// use bsp_instance::trace::ArrivalEvent;
/// use bsp_model::BspParams;
/// use bsp_online::{OnlineConfig, OnlineScheduler};
///
/// let machine = BspParams::new(2, 1, 2);
/// let mut sch = OnlineScheduler::new(&machine, OnlineConfig::default()).unwrap();
/// sch.push(&ArrivalEvent::Arrive { node: 7, work: 2, comm: 1, deps: vec![] }).unwrap();
/// sch.push(&ArrivalEvent::Arrive { node: 9, work: 3, comm: 1, deps: vec![7] }).unwrap();
/// sch.push(&ArrivalEvent::Finalize).unwrap();
/// let outcome = sch.outcome().unwrap();
/// assert_eq!(outcome.dag.n(), 2);
/// assert_eq!(outcome.ext_ids, vec![7, 9]);
/// ```
pub struct OnlineScheduler {
    machine: BspParams,
    cfg: OnlineConfig,
    /// The integrated (revealed) DAG; node ids are arrival order.
    dag: Dag,
    /// Assignment of every integrated node.
    sched: BspSchedule,
    /// Commit frontier: supersteps below it are frozen.
    frontier: u32,
    /// Trace id → internal id for every arrived node (buffered included).
    ext2int: HashMap<u32, NodeId>,
    /// Internal id → trace id.
    int2ext: Vec<u32>,
    /// Internal ids of the most recent arrivals (commit guard window).
    recent: VecDeque<NodeId>,
    pending: PendingBatch,
    stats: OnlineStats,
    finalized: bool,
    poisoned: bool,
    outcome: Option<OnlineOutcome>,
}

impl OnlineScheduler {
    /// A scheduler for one stream against `machine`. Rejects
    /// memory-bounded machines ([`OnlineError::UnsupportedMachine`]):
    /// feasibility repair there splits supersteps, which could rewrite
    /// dispatched work.
    pub fn new(machine: &BspParams, cfg: OnlineConfig) -> Result<Self, OnlineError> {
        if machine.memory().is_some() {
            return Err(OnlineError::UnsupportedMachine);
        }
        Ok(OnlineScheduler {
            machine: machine.clone(),
            cfg,
            dag: DagBuilder::new().build().expect("empty DAG is acyclic"),
            sched: BspSchedule::zeroed(0),
            frontier: 0,
            ext2int: HashMap::new(),
            int2ext: Vec::new(),
            recent: VecDeque::new(),
            pending: PendingBatch::default(),
            stats: OnlineStats::default(),
            finalized: false,
            poisoned: false,
            outcome: None,
        })
    }

    /// The revealed DAG as of the last re-plan (buffered events are not
    /// integrated yet).
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The current schedule (committed prefix + tentative suffix).
    pub fn schedule(&self) -> &BspSchedule {
        &self.sched
    }

    /// The commit frontier.
    pub fn frontier(&self) -> u32 {
        self.frontier
    }

    /// The machine this stream schedules onto.
    pub fn machine(&self) -> &BspParams {
        &self.machine
    }

    /// Session counters so far.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Whether `Finalize` has been processed.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// The final result, once finalized.
    pub fn outcome(&self) -> Option<&OnlineOutcome> {
        self.outcome.as_ref()
    }

    /// The tentative-suffix view of the current schedule.
    pub fn suffix(&self) -> SuffixView {
        let mut nodes = Vec::new();
        let mut procs = Vec::new();
        let mut steps = Vec::new();
        for v in self.dag.nodes() {
            if self.sched.step(v) >= self.frontier {
                nodes.push(self.int2ext[v as usize]);
                procs.push(self.sched.proc(v));
                steps.push(self.sched.step(v));
            }
        }
        SuffixView {
            frontier: self.frontier,
            nodes,
            procs,
            steps,
        }
    }

    /// Feeds one event. Arrivals and reveals buffer until the batch fills
    /// ([`OnlineConfig::batch_size`] arrivals) — then a re-plan runs and
    /// its report is returned. `Finalize` drains the buffer, runs a last
    /// suffix pass, commits everything and seals the
    /// [`outcome`](Self::outcome).
    pub fn push(&mut self, ev: &ArrivalEvent) -> Result<Option<BatchReport>, OnlineError> {
        if self.poisoned {
            return Err(OnlineError::Poisoned);
        }
        if self.finalized {
            return Err(OnlineError::Finalized);
        }
        match ev {
            ArrivalEvent::Arrive {
                node,
                work,
                comm,
                deps,
            } => {
                if self.ext2int.contains_key(node) {
                    return Err(OnlineError::DuplicateNode { node: *node });
                }
                let mut preds = Vec::with_capacity(deps.len());
                for d in deps {
                    match self.ext2int.get(d) {
                        Some(&u) => preds.push(u),
                        None => return Err(OnlineError::UnknownNode { node: *d }),
                    }
                }
                let int = self.int2ext.len() as NodeId;
                self.ext2int.insert(*node, int);
                self.int2ext.push(*node);
                self.pending.edits.push(DagEdit::AddNode {
                    work: *work,
                    comm: *comm,
                    preds,
                    succs: Vec::new(),
                });
                self.pending.arrivals += 1;
                self.stats.arrivals += 1;
                if self.pending.arrivals as usize >= self.cfg.batch_size {
                    return self.replan().map(Some);
                }
                Ok(None)
            }
            ArrivalEvent::Reveal { from, to } => {
                let f = *self
                    .ext2int
                    .get(from)
                    .ok_or(OnlineError::UnknownNode { node: *from })?;
                let t = *self
                    .ext2int
                    .get(to)
                    .ok_or(OnlineError::UnknownNode { node: *to })?;
                self.pending.edits.push(DagEdit::AddEdge { from: f, to: t });
                self.pending.reveals += 1;
                self.stats.reveals += 1;
                Ok(None)
            }
            ArrivalEvent::Finalize => {
                let report = self.finalize()?;
                Ok(report)
            }
        }
    }

    /// Forces a re-plan of the buffered events (no-op when nothing is
    /// buffered).
    pub fn flush(&mut self) -> Result<Option<BatchReport>, OnlineError> {
        if self.poisoned {
            return Err(OnlineError::Poisoned);
        }
        if self.pending.edits.is_empty() {
            return Ok(None);
        }
        self.replan().map(Some)
    }

    /// Integrates the pending batch and re-optimizes the suffix under the
    /// per-arrival work budget.
    fn replan(&mut self) -> Result<BatchReport, OnlineError> {
        // Fault-injection site for stream sessions: an injected panic
        // unwinds into the serving layer's isolation boundary (which
        // closes the session), an injected slow stretches the re-plan.
        if let Some(plan) = bsp_faults::current() {
            plan.apply_sync(bsp_faults::Site::Online);
        }
        let t0 = Instant::now();
        let pending = std::mem::take(&mut self.pending);

        let out = apply_edits(&self.dag, &pending.edits).map_err(|e| {
            self.poisoned = true;
            OnlineError::Edit(e)
        })?;
        // Arrivals only append: survivors keep their id, so the transplant
        // is the identity on the old range.
        debug_assert_eq!(out.dag.n(), self.dag.n() + pending.arrivals as usize);

        let mut assign: Vec<Option<(u32, u32)>> = vec![None; out.dag.n()];
        for (old, new) in out.node_map.iter().enumerate() {
            let new = new.expect("online edits never remove nodes");
            assign[new as usize] = Some((
                self.sched.proc(old as NodeId),
                self.sched.step(old as NodeId),
            ));
        }
        let mut placed = place_new_nodes(&out.dag, &self.machine, &assign);
        // New nodes may never land below the frontier: dispatched
        // supersteps cannot gain work.
        for &v in &out.added {
            if placed.step(v) < self.frontier {
                placed.set(v, placed.proc(v), self.frontier);
            }
            self.recent.push_back(v);
        }
        while self.recent.len() > self.cfg.reveal_guard {
            self.recent.pop_front();
        }
        let repaired = repair_precedence_from(&out.dag, &placed, self.frontier).map_err(|v| {
            self.poisoned = true;
            OnlineError::CommitConflict(v)
        })?;
        let initial = compact_lazy_from(&out.dag, &repaired, self.frontier);

        // The per-arrival work budget, enforced through the anytime
        // SolveCx contract: deadline + accepted-move cap, both scaled by
        // the batch's arrival count.
        let units = pending.arrivals.max(1) as u32;
        let mut budget = Budget::deadline(self.cfg.budget_per_arrival * units).without_ilp();
        if let Some(m) = self.cfg.moves_per_arrival {
            budget = budget.with_max_stage_moves(m * units as usize);
        }
        let req = SolveRequest::new(&out.dag, &self.machine).with_budget(budget);
        let mut cx = SolveCx::new("online", &req);
        let suffix = solve_warm_suffix(
            &out.dag,
            &self.machine,
            &initial,
            self.frontier,
            &self.cfg.pipeline,
            &mut cx,
        );
        let truncated = cx.check_expired();

        self.dag = out.dag;
        self.sched = suffix.result.sched;
        self.advance_frontier();

        let report = BatchReport {
            batch: self.stats.replans,
            arrivals: pending.arrivals,
            reveals: pending.reveals,
            cost: suffix.result.cost,
            supersteps: self.sched.n_supersteps(),
            frontier: self.frontier,
            hc_moves: suffix.hc.accepted as u64,
            elapsed_us: t0.elapsed().as_micros() as u64,
            truncated,
        };
        self.stats.replans += 1;
        self.stats.batches.push(report);
        debug_assert!(
            validate_prefix(&self.dag, self.machine.p(), &self.sched, self.frontier).is_ok()
        );
        Ok(report)
    }

    /// Advances the commit frontier: trail the last superstep by
    /// `commit_lag`, but never overtake the `reveal_guard` most recent
    /// arrivals (their supersteps may still gain revealed edges). The
    /// frontier is monotone.
    fn advance_frontier(&mut self) {
        let lag = self
            .sched
            .n_supersteps()
            .saturating_sub(self.cfg.commit_lag);
        let guard = self
            .recent
            .iter()
            .map(|&v| self.sched.step(v))
            .min()
            .unwrap_or(lag);
        self.frontier = self.frontier.max(lag.min(guard));
    }

    /// Drains the buffer, runs one final suffix pass, commits everything
    /// and seals the outcome. Returns the last re-plan report, if any
    /// re-plan ran.
    fn finalize(&mut self) -> Result<Option<BatchReport>, OnlineError> {
        let mut last = None;
        if !self.pending.edits.is_empty() {
            last = Some(self.replan()?);
        }
        // One drain pass over the remaining tentative suffix, under a
        // whole-batch budget: the stream is over, so this is the last
        // chance to polish the not-yet-dispatched tail.
        if self.dag.n() > 0 {
            let t0 = Instant::now();
            let units = self.cfg.batch_size.max(1) as u32;
            let mut budget = Budget::deadline(self.cfg.budget_per_arrival * units).without_ilp();
            if let Some(m) = self.cfg.moves_per_arrival {
                budget = budget.with_max_stage_moves(m * units as usize);
            }
            let req = SolveRequest::new(&self.dag, &self.machine).with_budget(budget);
            let mut cx = SolveCx::new("online", &req);
            let suffix = solve_warm_suffix(
                &self.dag,
                &self.machine,
                &self.sched,
                self.frontier,
                &self.cfg.pipeline,
                &mut cx,
            );
            let truncated = cx.check_expired();
            self.sched = suffix.result.sched;
            let report = BatchReport {
                batch: self.stats.replans,
                arrivals: 0,
                reveals: 0,
                cost: suffix.result.cost,
                supersteps: self.sched.n_supersteps(),
                frontier: self.frontier,
                hc_moves: suffix.hc.accepted as u64,
                elapsed_us: t0.elapsed().as_micros() as u64,
                truncated,
            };
            self.stats.replans += 1;
            self.stats.batches.push(report);
            last = Some(report);
        }
        // Everything dispatches now.
        self.frontier = self.sched.n_supersteps();
        self.finalized = true;

        let mut comm = CommSchedule::lazy(&self.dag, &self.sched);
        let mut cost = lazy_cost(&self.dag, &self.machine, &self.sched);
        if self.cfg.final_polish && self.dag.n() > 0 {
            // Γ-only optimization: node assignments are untouched, so the
            // committed prefix is preserved by construction.
            let threads = bsp_par_threads(&self.cfg.pipeline);
            let (cand_comm, cand_cost) = optimize_comm_schedule_threaded(
                &self.dag,
                &self.machine,
                &self.sched,
                &self.cfg.pipeline.hccs,
                threads,
            );
            if cand_cost < cost {
                comm = cand_comm;
                cost = cand_cost;
            }
        }
        debug_assert_eq!(
            cost,
            total_cost(&self.dag, &self.machine, &self.sched, &comm)
        );
        self.outcome = Some(OnlineOutcome {
            dag: self.dag.clone(),
            sched: self.sched.clone(),
            comm,
            cost,
            ext_ids: self.int2ext.clone(),
            stats: self.stats.clone(),
        });
        Ok(last)
    }
}

/// Resolves the pipeline's worker-thread knob the same way the cold
/// pipelines do (`0` = auto-detect).
fn bsp_par_threads(cfg: &PipelineConfig) -> usize {
    bsp_par::resolve_threads(cfg.threads)
}

/// Replays a full trace against `machine`: pushes every event through an
/// [`OnlineScheduler`] and returns the sealed outcome. The trace must end
/// in `Finalize` (a missing one is tolerated: the stream is finalized
/// after the last event).
pub fn replay(
    trace: &ArrivalTrace,
    machine: &BspParams,
    cfg: &OnlineConfig,
) -> Result<OnlineOutcome, OnlineError> {
    let mut sch = OnlineScheduler::new(machine, cfg.clone())?;
    for ev in &trace.events {
        sch.push(ev)?;
    }
    if !sch.is_finalized() {
        sch.push(&ArrivalEvent::Finalize)?;
    }
    Ok(sch
        .outcome()
        .expect("finalized stream has an outcome")
        .clone())
}
