//! Initialization heuristics (paper §4.2, Appendix A.2).

pub mod bspg;
pub mod source;

pub use bspg::bspg_schedule;
pub use source::source_schedule;
