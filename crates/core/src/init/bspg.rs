//! The `BSPg` greedy initializer (paper §4.2, Appendix A.2, Algorithm 1).
//!
//! A BSP-tailored greedy scheduler: it tracks concrete start/finish times
//! inside each superstep (like classical schedulers) to balance work, but
//! only allows assigning a node to a processor if all its predecessors are
//! already available there *within the current superstep* — i.e. computed on
//! that processor, or in an earlier superstep. When at least half of the
//! processors become idle, the computation phase closes and the next
//! superstep starts, releasing every pending ready node to all processors.

use bsp_dag::{Dag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::BspSchedule;
use std::collections::{BTreeSet, BinaryHeap};

/// Runs BSPg and returns the superstep assignment.
pub fn bspg_schedule(dag: &Dag, machine: &BspParams) -> BspSchedule {
    let n = dag.n();
    let p = machine.p();
    let mut sched = BspSchedule::zeroed(n);
    if n == 0 {
        return sched;
    }

    let mut superstep = 0u32;
    let mut end_step = false;
    let mut assigned = vec![false; n];
    let mut finished = vec![false; n];
    let mut unfinished_preds: Vec<u32> =
        (0..n).map(|v| dag.in_degree(v as NodeId) as u32).collect();

    // Global pool of ready-but-unassigned nodes.
    let mut ready: BTreeSet<NodeId> = BTreeSet::new();
    // Per-processor pools: assignable in the current superstep.
    let mut ready_proc: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); p];
    // Pool assignable on every processor in the current superstep.
    let mut ready_all: BTreeSet<NodeId> = BTreeSet::new();
    for s in dag.sources() {
        ready.insert(s);
        ready_all.insert(s);
    }

    let mut free = vec![true; p];
    // Finish events (time, node); a node's processor is in `sched`.
    let mut events: BinaryHeap<std::cmp::Reverse<(u64, NodeId)>> = BinaryHeap::new();
    let mut now = 0u64;
    let mut n_assigned = 0usize;

    while n_assigned < n {
        if end_step && events.is_empty() {
            // Superstep transition: everything ready becomes available to
            // every processor.
            for rp in &mut ready_proc {
                rp.clear();
            }
            ready_all = ready.clone();
            superstep += 1;
            end_step = false;
            now = 0;
            free.iter_mut().for_each(|f| *f = true);
        }

        // Process all nodes finishing at the earliest event time.
        if let Some(&std::cmp::Reverse((t, _))) = events.peek() {
            now = t;
            while let Some(&std::cmp::Reverse((t2, v))) = events.peek() {
                if t2 != now {
                    break;
                }
                events.pop();
                finished[v as usize] = true;
                let pv = sched.proc(v);
                free[pv as usize] = true;
                for &u in dag.successors(v) {
                    unfinished_preds[u as usize] -= 1;
                    if unfinished_preds[u as usize] == 0 {
                        ready.insert(u);
                        // u is assignable on pv within this superstep iff
                        // every predecessor is on pv or in an earlier superstep.
                        let local = dag
                            .predecessors(u)
                            .iter()
                            .all(|&u0| sched.proc(u0) == pv || sched.step(u0) < superstep);
                        if local {
                            ready_proc[pv as usize].insert(u);
                        }
                    }
                }
            }
        }

        if !end_step {
            // Assign nodes to free processors while possible.
            loop {
                let mut progress = false;
                for q in 0..p {
                    if !free[q] {
                        continue;
                    }
                    let from_own = !ready_proc[q].is_empty();
                    if !from_own && ready_all.is_empty() {
                        continue;
                    }
                    let pool: Vec<NodeId> = if from_own {
                        ready_proc[q].iter().copied().collect()
                    } else {
                        ready_all.iter().copied().collect()
                    };
                    let v = choose_node(dag, &sched, &assigned, q as u32, &pool);
                    ready.remove(&v);
                    ready_all.remove(&v);
                    for rp in &mut ready_proc {
                        rp.remove(&v);
                    }
                    sched.set(v, q as u32, superstep);
                    assigned[v as usize] = true;
                    n_assigned += 1;
                    events.push(std::cmp::Reverse((now + dag.work(v), v)));
                    free[q] = false;
                    progress = true;
                }
                if !progress {
                    break;
                }
            }
        }

        // Close the computation phase when at least half the processors are
        // idle, nothing universal remains, AND some ready node is actually
        // blocked waiting for a communication phase. (Without the last
        // condition — which Algorithm 1 leaves implicit — a sequential
        // chain would close a superstep after every node, despite the next
        // node being assignable locally.)
        let idle = (0..p)
            .filter(|&q| free[q] && ready_proc[q].is_empty())
            .count();
        if ready_all.is_empty() && idle * 2 >= p && !ready.is_empty() {
            end_step = true;
        }

        // Nothing running and nothing assigned this round: force the step to
        // end to guarantee progress.
        if events.is_empty() && !end_step && n_assigned < n {
            end_step = true;
        }
    }
    sched
}

/// The `ChooseNode` tie-break of Appendix A.2: prefer the node with the
/// highest communication-saving score `Σ c(u)/outdeg(u)` over predecessors
/// `u` that have (or whose direct successor has) already been assigned to
/// processor `q`. Ties go to the smaller node id.
fn choose_node(
    dag: &Dag,
    sched: &BspSchedule,
    assigned: &[bool],
    q: u32,
    pool: &[NodeId],
) -> NodeId {
    let mut best = pool[0];
    let mut best_score = f64::NEG_INFINITY;
    for &v in pool {
        let mut score = 0.0f64;
        for &u in dag.predecessors(v) {
            let u_on_q = assigned[u as usize] && sched.proc(u) == q;
            let succ_on_q = dag
                .successors(u)
                .iter()
                .any(|&w| assigned[w as usize] && sched.proc(w) == q);
            if u_on_q || succ_on_q {
                score += dag.comm(u) as f64 / dag.out_degree(u).max(1) as f64;
            }
        }
        if score > best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_schedule::validity::validate_lazy;

    #[test]
    fn independent_nodes_fill_processors_in_one_superstep() {
        let mut b = DagBuilder::new();
        for _ in 0..8 {
            b.add_node(2, 1);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(4, 1, 5);
        let s = bspg_schedule(&dag, &machine);
        assert!(validate_lazy(&dag, 4, &s).is_ok());
        assert_eq!(s.n_supersteps(), 1);
        // Load balanced: 2 nodes per processor.
        for q in 0..4 {
            assert_eq!(s.work_of(&dag, q, 0), 4);
        }
    }

    #[test]
    fn chain_stays_on_one_processor_one_superstep() {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..5).map(|_| b.add_node(1, 1)).collect();
        for i in 0..4 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 5);
        let s = bspg_schedule(&dag, &machine);
        assert!(validate_lazy(&dag, 2, &s).is_ok());
        // Each next chain node is ready exactly on the processor that
        // finished its predecessor: no superstep break, no migration.
        assert_eq!(s.n_supersteps(), 1, "chain must not splinter supersteps");
        let q = s.proc(0);
        assert!((0..5).all(|i| s.proc(i) == q));
    }

    #[test]
    fn cross_dependencies_force_new_superstep() {
        // Butterfly: two sources, each feeding both of two sinks. The sinks
        // have predecessors on two processors -> must wait for superstep 2.
        let mut b = DagBuilder::new();
        let s1 = b.add_node(4, 1);
        let s2 = b.add_node(4, 1);
        let t1 = b.add_node(1, 1);
        let t2 = b.add_node(1, 1);
        for s in [s1, s2] {
            for t in [t1, t2] {
                b.add_edge(s, t).unwrap();
            }
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let s = bspg_schedule(&dag, &machine);
        assert!(validate_lazy(&dag, 2, &s).is_ok());
        if s.proc(s1) != s.proc(s2) {
            assert!(s.step(t1) > s.step(s1));
        }
    }

    #[test]
    fn valid_on_random_dags_all_nodes_assigned() {
        for seed in 0..8 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 6,
                    width: 7,
                    edge_prob: 0.35,
                    ..Default::default()
                },
            );
            for p in [1usize, 2, 4, 8] {
                let machine = BspParams::new(p, 2, 3);
                let s = bspg_schedule(&dag, &machine);
                assert!(validate_lazy(&dag, p, &s).is_ok(), "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn empty_dag() {
        let dag = DagBuilder::new().build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let s = bspg_schedule(&dag, &machine);
        assert_eq!(s.n(), 0);
    }
}
