//! The `Source` wavefront initializer (paper §4.2, Appendix A.2,
//! Algorithm 2).
//!
//! Each superstep takes the current source nodes (nodes whose predecessors
//! have all been assigned) and distributes them round-robin. The first
//! superstep first clusters sources that share an out-neighbour (so sibling
//! inputs of the same operation land on one processor); later supersteps
//! sort by descending work weight for load balance. After each round-robin
//! pass, a successor whose in-neighbours all sit on one processor is pulled
//! into the current superstep on that processor — a free extension that
//! avoids unnecessary supersteps.

use bsp_dag::{Dag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::BspSchedule;

/// Runs the Source heuristic and returns the superstep assignment.
pub fn source_schedule(dag: &Dag, machine: &BspParams) -> BspSchedule {
    let n = dag.n();
    let p = machine.p() as u32;
    let mut sched = BspSchedule::zeroed(n);
    let mut assigned = vec![false; n];
    let mut remaining_preds: Vec<u32> = (0..n).map(|v| dag.in_degree(v as NodeId) as u32).collect();
    let mut n_assigned = 0usize;
    let mut superstep = 0u32;

    let assign = |v: NodeId,
                  q: u32,
                  s: u32,
                  sched: &mut BspSchedule,
                  assigned: &mut Vec<bool>,
                  remaining_preds: &mut Vec<u32>,
                  n_assigned: &mut usize| {
        debug_assert!(!assigned[v as usize]);
        sched.set(v, q, s);
        assigned[v as usize] = true;
        *n_assigned += 1;
        for &w in dag.successors(v) {
            remaining_preds[w as usize] -= 1;
        }
    };

    while n_assigned < n {
        let sources: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| !assigned[v as usize] && remaining_preds[v as usize] == 0)
            .collect();
        debug_assert!(
            !sources.is_empty(),
            "a DAG always has a source among unassigned nodes"
        );

        let mut q = 0u32;
        if superstep == 0 {
            // Cluster sources sharing an out-neighbour (union-find), then
            // round-robin whole clusters.
            let clusters = cluster_sources(dag, &sources);
            for c in clusters {
                for v in c {
                    assign(
                        v,
                        q,
                        superstep,
                        &mut sched,
                        &mut assigned,
                        &mut remaining_preds,
                        &mut n_assigned,
                    );
                }
                q = (q + 1) % p;
            }
        } else {
            let mut order = sources.clone();
            order.sort_by_key(|&v| (std::cmp::Reverse(dag.work(v)), v));
            for v in order {
                assign(
                    v,
                    q,
                    superstep,
                    &mut sched,
                    &mut assigned,
                    &mut remaining_preds,
                    &mut n_assigned,
                );
                q = (q + 1) % p;
            }
        }

        // Pull in successors whose in-neighbours all live on one processor.
        for &v in &sources {
            let pv = sched.proc(v);
            for &u in dag.successors(v) {
                if assigned[u as usize] {
                    continue;
                }
                let all_same = dag
                    .predecessors(u)
                    .iter()
                    .all(|&u0| assigned[u0 as usize] && sched.proc(u0) == pv);
                if all_same {
                    assign(
                        u,
                        pv,
                        superstep,
                        &mut sched,
                        &mut assigned,
                        &mut remaining_preds,
                        &mut n_assigned,
                    );
                }
            }
        }
        superstep += 1;
    }
    sched
}

/// Groups `sources` into clusters joined whenever two sources share an
/// out-neighbour; returns clusters ordered by smallest member, members
/// sorted. Sources sharing nothing form singleton clusters.
fn cluster_sources(dag: &Dag, sources: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut parent: Vec<usize> = (0..sources.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    // Union sources that share an out-neighbour.
    let mut by_target: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for (i, &v) in sources.iter().enumerate() {
        for &w in dag.successors(v) {
            match by_target.entry(w) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let a = find(&mut parent, *e.get());
                    let b = find(&mut parent, i);
                    if a != b {
                        parent[b] = a;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
    let mut root_members: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for i in 0..sources.len() {
        let r = find(&mut parent, i);
        root_members.entry(r).or_default().push(sources[i]);
    }
    let mut out: Vec<Vec<NodeId>> = root_members
        .into_values()
        .map(|mut m| {
            m.sort_unstable();
            m
        })
        .collect();
    out.sort_by_key(|c| c[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_schedule::validity::validate_lazy;

    #[test]
    fn siblings_with_common_successor_are_clustered() {
        // Sources a, b share child x; sources c, d share child y.
        let mut bld = DagBuilder::new();
        let a = bld.add_node(1, 1);
        let b = bld.add_node(1, 1);
        let c = bld.add_node(1, 1);
        let d = bld.add_node(1, 1);
        let x = bld.add_node(1, 1);
        let y = bld.add_node(1, 1);
        bld.add_edge(a, x).unwrap();
        bld.add_edge(b, x).unwrap();
        bld.add_edge(c, y).unwrap();
        bld.add_edge(d, y).unwrap();
        let dag = bld.build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let s = source_schedule(&dag, &machine);
        assert!(validate_lazy(&dag, 2, &s).is_ok());
        assert_eq!(s.proc(a), s.proc(b));
        assert_eq!(s.proc(c), s.proc(d));
        // x and y are pulled into superstep 0 on their parents' processor.
        assert_eq!(s.step(x), 0);
        assert_eq!(s.proc(x), s.proc(a));
    }

    #[test]
    fn round_robin_balances_by_descending_work() {
        // Superstep 0: roots r1, r2 (shared child m -> one cluster on p0)
        // and r3 (child m2 -> second cluster on p1); m and m2 are pulled to
        // their parents' processors. Superstep 1: kids with preds {m, m2}
        // on different processors cannot be pulled, so they are distributed
        // round-robin in descending work order: 6,5,4,3 -> p0,p1,p0,p1
        // giving loads 10/8 (id order 6,4,5,3 would give 11/7).
        let mut bld = DagBuilder::new();
        let r1 = bld.add_node(1, 1);
        let r2 = bld.add_node(1, 1);
        let r3 = bld.add_node(1, 1);
        let m = bld.add_node(1, 1);
        let m2 = bld.add_node(1, 1);
        bld.add_edge(r1, m).unwrap();
        bld.add_edge(r2, m).unwrap();
        bld.add_edge(r3, m2).unwrap();
        let works = [6u64, 4, 5, 3];
        for &w in &works {
            let k = bld.add_node(w, 1);
            bld.add_edge(m, k).unwrap();
            bld.add_edge(m2, k).unwrap();
        }
        let dag = bld.build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let s = source_schedule(&dag, &machine);
        assert!(validate_lazy(&dag, 2, &s).is_ok());
        assert_eq!(s.proc(m), s.proc(r1));
        assert_ne!(s.proc(m), s.proc(m2));
        let load0 = s.work_of(&dag, 0, 1);
        let load1 = s.work_of(&dag, 1, 1);
        assert_eq!(load0 + load1, 18);
        assert_eq!(load0.max(load1), 10, "descending round-robin expected");
    }

    #[test]
    fn all_nodes_assigned_and_valid_on_random_dags() {
        for seed in 0..8 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 5,
                    width: 6,
                    edge_prob: 0.4,
                    ..Default::default()
                },
            );
            for p in [1usize, 3, 4] {
                let machine = BspParams::new(p, 1, 5);
                let s = source_schedule(&dag, &machine);
                assert!(validate_lazy(&dag, p, &s).is_ok(), "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn deep_chain_stays_local_with_single_pull_per_step() {
        let mut bld = DagBuilder::new();
        let v: Vec<_> = (0..5).map(|_| bld.add_node(1, 1)).collect();
        for i in 0..4 {
            bld.add_edge(v[i], v[i + 1]).unwrap();
        }
        let dag = bld.build().unwrap();
        let machine = BspParams::new(4, 1, 1);
        let s = source_schedule(&dag, &machine);
        assert!(validate_lazy(&dag, 4, &s).is_ok());
        // Algorithm 2's pull rule is a single pass over edges out of the
        // current sources, so each superstep takes the source plus one
        // pulled successor: ceil(5/2) = 3 supersteps, all on one processor.
        assert_eq!(s.n_supersteps(), 3);
        let q = s.proc(v[0]);
        assert!(v.iter().all(|&x| s.proc(x) == q));
    }

    #[test]
    fn empty_dag() {
        let dag = DagBuilder::new().build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let s = source_schedule(&dag, &machine);
        assert_eq!(s.n(), 0);
    }
}
