//! The historical apply/revert local-search kernel, kept as an
//! executable specification.
//!
//! [`RefScheduleState`] is the pre-probe implementation of
//! [`crate::state::ScheduleState`]: per-(node, processor) `BTreeMap`
//! multisets for the consumer steps, and candidate evaluation by a full
//! `apply_move` + revert pair (allocating scratch `Vec`s on every move).
//! It is *not* used by any scheduler. It exists for two reasons:
//!
//! 1. **Differential testing** — the proptests and
//!    `tests/kernel_equivalence.rs` assert that the flat probe-based
//!    kernel makes bit-identical decisions and produces bit-identical
//!    costs to this implementation on every instance they generate.
//! 2. **Benchmark baseline** — the `local_search` criterion group and
//!    the `bench` experiment's kernel section measure the probe kernel's
//!    speedup against [`best_move_apply_revert`], so `BENCH_*.json`
//!    records the before/after trajectory instead of overwriting it.

use bsp_dag::{Dag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::cost::lazy_cost;
use bsp_schedule::BspSchedule;
use std::collections::BTreeMap;

/// Consumer-step multisets of one node, bucketed by consumer processor.
#[derive(Debug, Clone, Default)]
struct Needs {
    buckets: Vec<(u32, BTreeMap<u32, u32>)>,
}

impl Needs {
    fn bucket_mut(&mut self, q: u32) -> &mut BTreeMap<u32, u32> {
        if let Some(i) = self.buckets.iter().position(|b| b.0 == q) {
            &mut self.buckets[i].1
        } else {
            self.buckets.push((q, BTreeMap::new()));
            &mut self.buckets.last_mut().unwrap().1
        }
    }

    fn min(&self, q: u32) -> Option<u32> {
        self.buckets
            .iter()
            .find(|b| b.0 == q)
            .and_then(|b| b.1.keys().next().copied())
    }

    fn insert(&mut self, q: u32, s: u32) {
        *self.bucket_mut(q).entry(s).or_insert(0) += 1;
    }

    fn remove(&mut self, q: u32, s: u32) {
        let b = self.bucket_mut(q);
        let c = b
            .get_mut(&s)
            .expect("removing a consumer step that is not recorded");
        *c -= 1;
        if *c == 0 {
            b.remove(&s);
        }
    }
}

/// The pre-probe [`crate::state::ScheduleState`]: identical contract
/// (`cost`, `is_move_valid`, `apply_move`), original data layout.
pub struct RefScheduleState<'a> {
    dag: &'a Dag,
    machine: &'a BspParams,
    proc: Vec<u32>,
    step: Vec<u32>,
    n_steps: usize,
    work: Vec<u64>,
    send: Vec<u64>,
    recv: Vec<u64>,
    nodes_count: Vec<u32>,
    comm_count: Vec<u32>,
    step_cost: Vec<u64>,
    total: u64,
    needs: Vec<Needs>,
    touched: Vec<u32>,
}

impl<'a> RefScheduleState<'a> {
    /// Builds the state from an assignment satisfying
    /// [`BspSchedule::respects_precedence_lazy`].
    pub fn new(dag: &'a Dag, machine: &'a BspParams, sched: &BspSchedule) -> Self {
        assert_eq!(sched.n(), dag.n());
        debug_assert!(sched.respects_precedence_lazy(dag));
        let p = machine.p();
        let n_steps = sched.n_supersteps().max(1) as usize;
        let mut st = RefScheduleState {
            dag,
            machine,
            proc: sched.procs().to_vec(),
            step: sched.steps().to_vec(),
            n_steps,
            work: vec![0; n_steps * p],
            send: vec![0; n_steps * p],
            recv: vec![0; n_steps * p],
            nodes_count: vec![0; n_steps],
            comm_count: vec![0; n_steps],
            step_cost: vec![0; n_steps],
            total: 0,
            needs: vec![Needs::default(); dag.n()],
            touched: Vec::new(),
        };
        for v in dag.nodes() {
            let (pv, sv) = (st.proc[v as usize], st.step[v as usize]);
            st.work[sv as usize * p + pv as usize] += dag.work(v);
            st.nodes_count[sv as usize] += 1;
            for &w in dag.successors(v) {
                st.needs[v as usize].insert(st.proc[w as usize], st.step[w as usize]);
            }
        }
        for v in dag.nodes() {
            let pv = st.proc[v as usize];
            let buckets: Vec<(u32, Option<u32>)> = st.needs[v as usize]
                .buckets
                .iter()
                .map(|(q, b)| (*q, b.keys().next().copied()))
                .collect();
            for (q, min) in buckets {
                if q != pv {
                    if let Some(m) = min {
                        st.add_transfer(v, pv, q, m - 1);
                    }
                }
            }
        }
        for s in 0..st.n_steps {
            st.step_cost[s] = st.compute_step_cost(s);
            st.total += st.step_cost[s];
        }
        st
    }

    /// Current total cost (lazy communication model).
    #[inline]
    pub fn cost(&self) -> u64 {
        self.total
    }

    /// Current processor of `v`.
    #[inline]
    pub fn proc(&self, v: NodeId) -> u32 {
        self.proc[v as usize]
    }

    /// Current superstep of `v`.
    #[inline]
    pub fn step(&self, v: NodeId) -> u32 {
        self.step[v as usize]
    }

    /// Snapshot of the current assignment.
    pub fn snapshot(&self) -> BspSchedule {
        BspSchedule::from_parts(self.proc.clone(), self.step.clone())
    }

    /// Whether moving `v` to `(p_new, s_new)` keeps the assignment valid.
    pub fn is_move_valid(&self, v: NodeId, p_new: u32, s_new: u32) -> bool {
        for &u in self.dag.predecessors(v) {
            let ok = if self.proc[u as usize] == p_new {
                self.step[u as usize] <= s_new
            } else {
                self.step[u as usize] < s_new
            };
            if !ok {
                return false;
            }
        }
        for &w in self.dag.successors(v) {
            let ok = if self.proc[w as usize] == p_new {
                s_new <= self.step[w as usize]
            } else {
                s_new < self.step[w as usize]
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Applies the move of `v` to `(p_new, s_new)` and returns the new
    /// total cost, allocating per-move scratch (the historical behaviour).
    pub fn apply_move(&mut self, v: NodeId, p_new: u32, s_new: u32) -> u64 {
        let p = self.machine.p();
        let (p_old, s_old) = (self.proc[v as usize], self.step[v as usize]);
        if p_old == p_new && s_old == s_new {
            return self.total;
        }
        self.ensure_steps(s_new as usize + 1);
        self.touched.clear();

        if p_old != p_new {
            let outgoing: Vec<(u32, u32)> = self.needs[v as usize]
                .buckets
                .iter()
                .filter(|(q, b)| *q != p_old && !b.is_empty())
                .map(|(q, b)| (*q, *b.keys().next().unwrap()))
                .collect();
            for (q, m) in outgoing {
                self.remove_transfer(v, p_old, q, m - 1);
            }
        }

        let preds: Vec<NodeId> = self.dag.predecessors(v).to_vec();
        for u in preds {
            self.retarget_consumer(u, p_old, s_old, p_new, s_new);
        }

        self.work[s_old as usize * p + p_old as usize] -= self.dag.work(v);
        self.nodes_count[s_old as usize] -= 1;
        self.work[s_new as usize * p + p_new as usize] += self.dag.work(v);
        self.nodes_count[s_new as usize] += 1;
        self.touched.push(s_old);
        self.touched.push(s_new);
        self.proc[v as usize] = p_new;
        self.step[v as usize] = s_new;

        if p_old != p_new {
            let outgoing: Vec<(u32, u32)> = self.needs[v as usize]
                .buckets
                .iter()
                .filter(|(q, b)| *q != p_new && !b.is_empty())
                .map(|(q, b)| (*q, *b.keys().next().unwrap()))
                .collect();
            for (q, m) in outgoing {
                self.add_transfer(v, p_new, q, m - 1);
            }
        }

        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        touched.dedup();
        for &s in &touched {
            let s = s as usize;
            self.total -= self.step_cost[s];
            self.step_cost[s] = self.compute_step_cost(s);
            self.total += self.step_cost[s];
        }
        touched.clear();
        self.touched = touched;
        self.total
    }

    fn retarget_consumer(&mut self, u: NodeId, p_old: u32, s_old: u32, p_new: u32, s_new: u32) {
        let pu = self.proc[u as usize];
        let old_min_before = self.needs[u as usize].min(p_old);
        self.needs[u as usize].remove(p_old, s_old);
        let old_min_after = self.needs[u as usize].min(p_old);
        if p_old != pu && old_min_before != old_min_after {
            if let Some(m) = old_min_before {
                self.remove_transfer(u, pu, p_old, m - 1);
            }
            if let Some(m) = old_min_after {
                self.add_transfer(u, pu, p_old, m - 1);
            }
        }
        let new_min_before = self.needs[u as usize].min(p_new);
        self.needs[u as usize].insert(p_new, s_new);
        let new_min_after = self.needs[u as usize].min(p_new);
        if p_new != pu && new_min_before != new_min_after {
            if let Some(m) = new_min_before {
                self.remove_transfer(u, pu, p_new, m - 1);
            }
            if let Some(m) = new_min_after {
                self.add_transfer(u, pu, p_new, m - 1);
            }
        }
    }

    fn add_transfer(&mut self, v: NodeId, src: u32, dst: u32, phase: u32) {
        let p = self.machine.p();
        self.ensure_steps(phase as usize + 1);
        let weighted = self.dag.comm(v) * self.machine.lambda(src as usize, dst as usize);
        self.send[phase as usize * p + src as usize] += weighted;
        self.recv[phase as usize * p + dst as usize] += weighted;
        self.comm_count[phase as usize] += 1;
        self.touched.push(phase);
    }

    fn remove_transfer(&mut self, v: NodeId, src: u32, dst: u32, phase: u32) {
        let p = self.machine.p();
        let weighted = self.dag.comm(v) * self.machine.lambda(src as usize, dst as usize);
        self.send[phase as usize * p + src as usize] -= weighted;
        self.recv[phase as usize * p + dst as usize] -= weighted;
        self.comm_count[phase as usize] -= 1;
        self.touched.push(phase);
    }

    fn ensure_steps(&mut self, want: usize) {
        if want <= self.n_steps {
            return;
        }
        let p = self.machine.p();
        self.work.resize(want * p, 0);
        self.send.resize(want * p, 0);
        self.recv.resize(want * p, 0);
        self.nodes_count.resize(want, 0);
        self.comm_count.resize(want, 0);
        self.step_cost.resize(want, 0);
        self.n_steps = want;
    }

    fn compute_step_cost(&self, s: usize) -> u64 {
        let p = self.machine.p();
        let row = s * p;
        let w = self.work[row..row + p].iter().copied().max().unwrap_or(0);
        let c = (0..p)
            .map(|q| self.send[row + q].max(self.recv[row + q]))
            .max()
            .unwrap_or(0);
        let nonempty = self.nodes_count[s] > 0 || self.comm_count[s] > 0;
        w + self.machine.g() * c + if nonempty { self.machine.l() } else { 0 }
    }

    /// Full recomputation of the total cost; cross-checks the bookkeeping.
    pub fn recomputed_cost(&self) -> u64 {
        lazy_cost(self.dag, self.machine, &self.snapshot())
    }
}

/// The historical steepest-descent neighbourhood scan: every candidate is
/// evaluated by a full `apply_move` + revert pair. Returns the move with
/// the strictly largest cost decrease (ties to the first in scan order).
pub fn best_move_apply_revert(
    state: &mut RefScheduleState<'_>,
    n: u32,
    p: u32,
) -> Option<(NodeId, u32, u32)> {
    let before = state.cost();
    let mut best: Option<(u64, NodeId, u32, u32)> = None;
    for v in 0..n as NodeId {
        let (cur_p, cur_s) = (state.proc(v), state.step(v));
        let lo = cur_s.saturating_sub(1);
        for s in lo..=cur_s + 1 {
            for q in 0..p {
                if (q, s) == (cur_p, cur_s) || !state.is_move_valid(v, q, s) {
                    continue;
                }
                let after = state.apply_move(v, q, s);
                state.apply_move(v, cur_p, cur_s); // revert; moves are exact inverses
                if after < before && best.as_ref().is_none_or(|&(b, ..)| after < b) {
                    best = Some((after, v, q, s));
                }
            }
        }
    }
    best.map(|(_, v, q, s)| (v, q, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    #[test]
    fn reference_cost_matches_full_evaluation() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(2, 3);
        let y = b.add_node(3, 1);
        let d = b.add_node(1, 1);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, d).unwrap();
        b.add_edge(y, d).unwrap();
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 3, 5);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0, 1, 1, 2]);
        let mut st = RefScheduleState::new(&dag, &machine, &sched);
        assert_eq!(st.cost(), st.recomputed_cost());
        assert!(st.is_move_valid(3, 0, 2));
        let c = st.apply_move(3, 0, 2);
        assert_eq!(c, st.recomputed_cost());
        let back = st.apply_move(3, 1, 2);
        assert_eq!(back, st.recomputed_cost());
    }
}
