//! The BSP+NUMA scheduling framework — the paper's primary contribution.
//!
//! This crate implements the full algorithm suite of *Efficient
//! Multi-Processor Scheduling in Increasingly Realistic Models* (IPPS 2024):
//!
//! * **Initialization heuristics** (§4.2): [`init::bspg`] (Algorithm 1),
//!   [`init::source`] (Algorithm 2), and the ILP-based [`ilp::init`].
//! * **Local search** (§4.3): [`hc`] — single-node-move hill climbing over
//!   an incrementally maintained cost ([`state::ScheduleState`]) — and
//!   [`hccs`] — hill climbing on communication-phase choices.
//! * **ILP refinement** (§4.4): [`ilp`] — `ILPfull`, `ILPpart` window
//!   reoptimization, and `ILPcs`, all solved by the in-tree
//!   branch-and-bound solver (`bsp-ilp`) with warm starts and an
//!   accept-only-if-better contract.
//! * **Multilevel scheduling** (§4.5): [`multilevel`] — coarsen / solve /
//!   uncoarsen-and-refine, for communication-dominated instances.
//! * **The combined pipelines** (§6, Figures 3–4): [`pipeline`].
//!
//! Beyond the paper's evaluated configuration, the crate implements the
//! extensions its conclusion (§8) and appendices name as future work:
//!
//! * [`steepest`] — the best-improvement hill-climbing variant of A.3,
//!   scanning its full neighbourhood through the allocation-free
//!   [`state::ScheduleState::probe_move`] gain kernel ([`mod@reference`]
//!   keeps the historical apply/revert kernel as the executable
//!   specification);
//! * [`anneal`] and [`tabu`] — local search that escapes local minima
//!   (Metropolis acceptance / forced best-admissible moves with a tabu
//!   list), both guaranteed never to return worse than their input;
//! * [`auto`] — CCR-driven selection between the base and multilevel
//!   pipelines ("decide if coarsification is even necessary", §7.3/C.6);
//! * [`memrepair`] — feasibility repair for memory-bounded machines
//!   (greedy superstep splitting plus the [`MemoryRepairScheduler`]
//!   wrapper), the memory-constrained rung of the realistic-models ladder.
//!
//! ```
//! use bsp_core::pipeline::{schedule_dag, PipelineConfig};
//! use bsp_dag::random::{random_layered_dag, LayeredConfig};
//! use bsp_model::BspParams;
//!
//! let dag = random_layered_dag(1, LayeredConfig::default());
//! let machine = BspParams::new(4, 3, 5);
//! let mut cfg = PipelineConfig::default();
//! cfg.enable_ilp = false; // quick run
//! let result = schedule_dag(&dag, &machine, &cfg);
//! assert!(result.cost <= result.init_cost);
//! ```

pub mod anneal;
pub mod auto;
pub mod hc;
pub mod hccs;
pub mod ilp;
pub mod init;
pub mod memrepair;
pub mod multilevel;
pub(crate) mod obs;
pub mod pipeline;
pub mod reference;
pub mod schedulers;
pub mod state;
pub mod steepest;
pub mod tabu;
pub mod warm;

pub use auto::{schedule_dag_auto, AutoConfig, Strategy};
pub use memrepair::{repair_memory, repair_memory_with, MemoryRepairScheduler, RepairReport};
pub use pipeline::{
    schedule_dag, schedule_dag_multilevel, EscapeSearch, PipelineConfig, PipelineResult,
};
pub use schedulers::{AutoScheduler, BasePipeline, BspgInit, MultilevelPipeline, SourceInit};
pub use state::ScheduleState;
pub use warm::{
    place_new_nodes, repair_precedence, repair_precedence_from, solve_warm_pipeline,
    solve_warm_suffix, warm_start_from_map, SuffixOutcome,
};
