//! [`Scheduler`] implementations for the paper's own algorithms: the two
//! stand-alone initialization heuristics, the Figure-3 base pipeline, the
//! Figure-4 multilevel pipeline, and the CCR-driven auto-selector.
//!
//! The initializers are costed under the lazy `Γ` (they produce only an
//! assignment); the pipelines return their own optimized communication
//! schedule.

use crate::auto::{schedule_dag_auto, AutoConfig};
use crate::init::bspg::bspg_schedule;
use crate::init::source::source_schedule;
use crate::multilevel::MultilevelConfig;
use crate::pipeline::{schedule_dag, schedule_dag_multilevel, PipelineConfig};
use bsp_dag::Dag;
use bsp_model::BspParams;
use bsp_schedule::scheduler::{ScheduleResult, Scheduler, SchedulerKind};

/// The BSP-tailored greedy initializer (Algorithm 1), run stand-alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct BspgInit;

impl Scheduler for BspgInit {
    fn name(&self) -> &str {
        "init/bspg"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Initializer
    }
    fn schedule(&self, dag: &Dag, machine: &BspParams) -> ScheduleResult {
        ScheduleResult::from_lazy(dag, machine, bspg_schedule(dag, machine))
    }
}

/// The wavefront initializer (Algorithm 2), run stand-alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceInit;

impl Scheduler for SourceInit {
    fn name(&self) -> &str {
        "init/source"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Initializer
    }
    fn schedule(&self, dag: &Dag, machine: &BspParams) -> ScheduleResult {
        ScheduleResult::from_lazy(dag, machine, source_schedule(dag, machine))
    }
}

/// The Figure-3 base pipeline (init → HC/HCcs → ILP stages).
#[derive(Debug, Clone, Default)]
pub struct BasePipeline {
    /// Stage budgets and switches.
    pub cfg: PipelineConfig,
}

impl Scheduler for BasePipeline {
    fn name(&self) -> &str {
        "pipeline/base"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pipeline
    }
    fn schedule(&self, dag: &Dag, machine: &BspParams) -> ScheduleResult {
        let r = schedule_dag(dag, machine, &self.cfg);
        ScheduleResult::from_parts(dag, machine, r.sched, r.comm)
    }
}

/// The Figure-4 multilevel pipeline (coarsen → solve → uncoarsen-refine).
#[derive(Debug, Clone, Default)]
pub struct MultilevelPipeline {
    /// Stage budgets and switches forwarded to the inner base pipeline.
    pub cfg: PipelineConfig,
    /// Coarsening and refinement tuning.
    pub ml: MultilevelConfig,
}

impl Scheduler for MultilevelPipeline {
    fn name(&self) -> &str {
        "pipeline/multilevel"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pipeline
    }
    fn schedule(&self, dag: &Dag, machine: &BspParams) -> ScheduleResult {
        let r = schedule_dag_multilevel(dag, machine, &self.cfg, &self.ml);
        ScheduleResult::from_parts(dag, machine, r.sched, r.comm)
    }
}

/// The communication-dominance-driven selector between the base and
/// multilevel pipelines (§7.3 / Appendix C.6 future work).
#[derive(Debug, Clone, Default)]
pub struct AutoScheduler {
    /// Stage budgets and switches for whichever pipeline runs.
    pub cfg: PipelineConfig,
    /// Selection thresholds and multilevel tuning.
    pub auto: AutoConfig,
}

impl Scheduler for AutoScheduler {
    fn name(&self) -> &str {
        "auto"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pipeline
    }
    fn schedule(&self, dag: &Dag, machine: &BspParams) -> ScheduleResult {
        let (r, _strategy) = schedule_dag_auto(dag, machine, &self.cfg, &self.auto);
        ScheduleResult::from_parts(dag, machine, r.sched, r.comm)
    }
}
