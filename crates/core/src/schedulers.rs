//! [`Scheduler`] implementations for the paper's own algorithms: the two
//! stand-alone initialization heuristics, the Figure-3 base pipeline, the
//! Figure-4 multilevel pipeline, and the CCR-driven auto-selector.
//!
//! The initializers are costed under the lazy `Γ` (they produce only an
//! assignment); the pipelines return their own optimized communication
//! schedule.

use crate::auto::{solve_auto, AutoConfig};
use crate::init::bspg::bspg_schedule;
use crate::init::source::source_schedule;
use crate::multilevel::MultilevelConfig;
use crate::pipeline::{solve_base_pipeline, solve_multilevel_pipeline, PipelineConfig};
use bsp_schedule::scheduler::{ScheduleResult, Scheduler, SchedulerKind};
use bsp_schedule::solve::{solve_single_stage, SolveCx, SolveOutcome, SolveRequest};

/// The BSP-tailored greedy initializer (Algorithm 1), run stand-alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct BspgInit;

impl Scheduler for BspgInit {
    fn name(&self) -> &str {
        "init/bspg"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Initializer
    }
    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
        solve_single_stage(self.name(), req, || {
            ScheduleResult::from_lazy(req.dag, req.machine, bspg_schedule(req.dag, req.machine))
        })
    }
}

/// The wavefront initializer (Algorithm 2), run stand-alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceInit;

impl Scheduler for SourceInit {
    fn name(&self) -> &str {
        "init/source"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Initializer
    }
    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
        solve_single_stage(self.name(), req, || {
            ScheduleResult::from_lazy(req.dag, req.machine, source_schedule(req.dag, req.machine))
        })
    }
}

/// The Figure-3 base pipeline (init → HC/HCcs → ILP stages).
#[derive(Debug, Clone, Default)]
pub struct BasePipeline {
    /// Stage budgets and switches.
    pub cfg: PipelineConfig,
}

impl Scheduler for BasePipeline {
    fn name(&self) -> &str {
        "pipeline/base"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pipeline
    }
    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
        let mut cx = SolveCx::new(self.name(), req);
        let r = solve_base_pipeline(req.dag, req.machine, &self.cfg, &mut cx);
        cx.finish(ScheduleResult::from_parts(
            req.dag,
            req.machine,
            r.sched,
            r.comm,
        ))
    }
}

/// The Figure-4 multilevel pipeline (coarsen → solve → uncoarsen-refine).
#[derive(Debug, Clone, Default)]
pub struct MultilevelPipeline {
    /// Stage budgets and switches forwarded to the inner base pipeline.
    pub cfg: PipelineConfig,
    /// Coarsening and refinement tuning.
    pub ml: MultilevelConfig,
}

impl Scheduler for MultilevelPipeline {
    fn name(&self) -> &str {
        "pipeline/multilevel"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pipeline
    }
    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
        let mut cx = SolveCx::new(self.name(), req);
        let r = solve_multilevel_pipeline(req.dag, req.machine, &self.cfg, &self.ml, &mut cx);
        cx.finish(ScheduleResult::from_parts(
            req.dag,
            req.machine,
            r.sched,
            r.comm,
        ))
    }
}

/// The communication-dominance-driven selector between the base and
/// multilevel pipelines (§7.3 / Appendix C.6 future work).
#[derive(Debug, Clone, Default)]
pub struct AutoScheduler {
    /// Stage budgets and switches for whichever pipeline runs.
    pub cfg: PipelineConfig,
    /// Selection thresholds and multilevel tuning.
    pub auto: AutoConfig,
}

impl Scheduler for AutoScheduler {
    fn name(&self) -> &str {
        "auto"
    }
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pipeline
    }
    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
        let mut cx = SolveCx::new(self.name(), req);
        let (r, _strategy) = solve_auto(req.dag, req.machine, &self.cfg, &self.auto, &mut cx);
        cx.finish(ScheduleResult::from_parts(
            req.dag,
            req.machine,
            r.sched,
            r.comm,
        ))
    }
}
