//! Incremental schedule state for local search (paper §4.3, Appendix A.3).
//!
//! [`ScheduleState`] stores an assignment `(π, τ)` together with the derived
//! *lazy* communication schedule and the per-superstep work/send/receive
//! tallies, so that a single-node move can be *probed* — its exact cost
//! delta computed without mutating anything — and *applied* in time
//! proportional to the node's degree instead of re-evaluating the whole
//! schedule. This is the paper's "sophisticated data structures" claim that
//! makes hill climbing practical, taken one step further: candidate
//! evaluation no longer needs an apply/revert pair at all.
//!
//! # Flat data layout
//!
//! The per-superstep tables (`work`, `send`, `recv`, per-step node and
//! transfer counts, cached step costs) are flat `S·P` arrays. The consumer
//! multisets — for every node `v` and processor `q`, the supersteps at which
//! `v`'s value is needed on `q`, whose minimum determines the lazy transfer
//! phase — are a single CSR arena: `cons[cons_off[v]..cons_off[v+1]]` holds
//! one `(proc, step)` pair per outgoing edge of `v`, kept **sorted**. The
//! multiset cardinality of a node never changes (it is its out-degree), so a
//! consumer retarget is a rotation inside the fixed-size slice and the arena
//! never reallocates. Sorted order makes bucket iteration deterministic
//! (ascending processor, then step) regardless of move history, bucket
//! minima `O(log deg)` lookups, and apply/revert round trips bit-exact.
//!
//! # Probing vs applying
//!
//! [`ScheduleState::probe_move`] computes the exact total-cost delta of a
//! valid candidate move through `&self`: it never grows the step tables,
//! never touches the consumer arena, and performs zero heap allocation
//! (its scratch buffers live behind an uncontended [`Mutex`] and retain
//! their capacity across calls; parallel scans hand each worker its own
//! [`ProbeScratch`] via [`ScheduleState::probe_move_in`] so probing scales
//! without lock traffic). A probe gathers the `O(deg)` changed
//! `(superstep, processor)` cells, then re-derives each touched step's
//! `max` work and h-relation from the cells plus cached top-`K` row maxima
//! — `O(changed)` per step instead of the `O(P)` rescan `apply_move` pays,
//! with an `O(P + changed)` fallback only when every cached top processor
//! changed. Total: `O(deg)` expected, independent of `P`, versus
//! `O(deg + t·P)` twice for an apply/revert pair (`t` = touched steps).
//! The contract, enforced by proptests against the historical
//! implementation ([`crate::reference`]), is
//!
//! ```text
//! probe_move(v, q, s) == apply_move(v, q, s) − cost_before   (bit-for-bit)
//! ```
//!
//! so steepest descent, tabu search and simulated annealing scan their
//! neighbourhoods read-only and mutate the state only for the single move
//! they actually accept. Scans pre-filter candidate steps with
//! [`ScheduleState::valid_procs`] — one `O(deg)` pass per `(node, step)`
//! replaces `P` per-candidate validity checks.

use bsp_dag::{Dag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::cost::lazy_cost;
use bsp_schedule::BspSchedule;
use std::sync::Mutex;

/// How many of a row's largest per-processor values are cached. Probed
/// moves change ≤ 3 processors of a touched step in the common case, so
/// four entries make the `O(P)` fallback rescan vanish even on schedules
/// full of tied maxima (where any changed processor may be "the" max).
const TOP_K: usize = 4;

/// Cached `TOP_K` largest per-processor values of one superstep row (work,
/// or `max(send, recv)` for the h-relation) in descending order, with the
/// processors that attain them. Lets a probe re-derive a row maximum after
/// changing a few cells without rescanning all `P` processors: the first
/// cached entry whose processor did *not* change still bounds the
/// unchanged side of the row exactly.
#[derive(Debug, Clone, Copy)]
struct TopK {
    vals: [u64; TOP_K],
    procs: [u32; TOP_K],
}

impl TopK {
    /// An all-zero row (also used for supersteps beyond the allocated
    /// tables): the sentinel procs match nothing, so the unchanged side
    /// correctly evaluates to 0.
    const EMPTY: TopK = TopK {
        vals: [0; TOP_K],
        procs: [u32::MAX; TOP_K],
    };

    /// Builds the cache from one row of per-processor values.
    fn scan(values: impl Iterator<Item = u64>) -> TopK {
        let mut t = TopK::EMPTY;
        for (q, v) in values.enumerate() {
            let mut k = TOP_K;
            while k > 0 && (t.procs[k - 1] == u32::MAX || v > t.vals[k - 1]) {
                k -= 1;
            }
            if k < TOP_K {
                for j in (k + 1..TOP_K).rev() {
                    t.vals[j] = t.vals[j - 1];
                    t.procs[j] = t.procs[j - 1];
                }
                t.vals[k] = v;
                t.procs[k] = q as u32;
            }
        }
        t
    }

    /// Exact maximum over the processors *not* in `changed`, or `None` if
    /// every cached entry's processor changed (fallback must rescan).
    /// Correct because entries are descending: the first unchanged entry
    /// dominates all non-cached processors and every cached one below it.
    #[inline]
    fn unchanged_max(&self, changed: &[u32]) -> Option<u64> {
        for k in 0..TOP_K {
            if self.procs[k] == u32::MAX {
                // Fewer than K processors exist; the rest of the row is empty.
                return Some(0);
            }
            if !changed.contains(&self.procs[k]) {
                return Some(self.vals[k]);
            }
        }
        None
    }
}

/// One `(superstep, processor)` slot of the flat tables: the work assigned
/// there plus the λ-weighted volume the processor sends and receives in
/// that superstep's communication phase. Interleaved so a probed cell costs
/// one cache fetch instead of three (separate work/send/recv arrays).
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    work: u64,
    send: u64,
    recv: u64,
}

/// Interleaved per-superstep metadata: the node / transfer counts that
/// decide the latency charge, the cached step cost, and the cached [`TopK`]
/// row maxima for work and the h-relation.
#[derive(Debug, Clone, Copy)]
struct StepMeta {
    /// Cached `Cwork + g·Ccomm + ℓ·[nonempty]` of this superstep.
    cost: u64,
    /// Nodes computed in this superstep.
    nodes: u32,
    /// Transfers carried in this superstep's communication phase.
    comm: u32,
    wtop: TopK,
    htop: TopK,
}

impl StepMeta {
    const EMPTY: StepMeta = StepMeta {
        cost: 0,
        nodes: 0,
        comm: 0,
        wtop: TopK::EMPTY,
        htop: TopK::EMPTY,
    };
}

/// One superstep touched by a probed move: net count deltas plus the head
/// of its linked list of per-processor cell deltas.
#[derive(Debug, Clone, Copy)]
struct StepDelta {
    step: u32,
    dnodes: i64,
    dcomm: i64,
    /// Index of the first cell in `ProbeScratch::cells`, `u32::MAX` = none.
    head: u32,
}

/// One changed `(superstep, processor)` cell, linked per step.
#[derive(Debug, Clone, Copy)]
struct CellDelta {
    proc: u32,
    dwork: i64,
    dsend: i64,
    drecv: i64,
    next: u32,
}

/// Reusable scratch for [`ScheduleState::probe_move`]: the per-superstep
/// and per-(superstep, processor) deltas a candidate move would cause.
/// Cleared (capacity retained) on every probe, so probing is allocation-free
/// once the buffers have warmed up to the working degree. Both vectors stay
/// tiny (at most `degree + 2` steps), so lookups are linear scans.
///
/// Sequential callers never see this type — [`ScheduleState::probe_move`]
/// keeps one instance internally. Parallel neighbourhood scans allocate one
/// per worker (`ProbeScratch::default()`) and probe through
/// [`ScheduleState::probe_move_in`], which shares nothing between workers.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    steps: Vec<StepDelta>,
    cells: Vec<CellDelta>,
    /// Epoch-stamped per-processor accumulator for the fallback row rescan:
    /// `(epoch, Δwork, Δsend, Δrecv)`, lazily sized to `P`.
    row: Vec<(u32, i64, i64, i64)>,
    epoch: u32,
    /// Epoch-stamped step → entry index so [`ProbeScratch::step_entry`] is
    /// `O(1)` even when a high-degree move touches many distinct phases:
    /// `(epoch, index into steps)`, lazily sized to the largest step seen.
    step_idx: Vec<(u32, u32)>,
    sepoch: u32,
}

impl ProbeScratch {
    fn clear(&mut self) {
        self.steps.clear();
        self.cells.clear();
        self.sepoch = self.sepoch.wrapping_add(1);
        if self.sepoch == 0 {
            self.step_idx.fill((0, 0));
            self.sepoch = 1;
        }
    }

    fn step_entry(&mut self, s: u32) -> usize {
        let si = s as usize;
        if si >= self.step_idx.len() {
            self.step_idx.resize(si + 1, (0, 0));
        }
        let (ep, idx) = self.step_idx[si];
        if ep == self.sepoch {
            return idx as usize;
        }
        self.steps.push(StepDelta {
            step: s,
            dnodes: 0,
            dcomm: 0,
            head: u32::MAX,
        });
        let idx = self.steps.len() - 1;
        self.step_idx[si] = (self.sepoch, idx as u32);
        idx
    }

    /// Adds `(dwork, dsend, drecv)` to the cell of processor `p` in the
    /// step entry `si`, merging into an existing cell when present.
    fn add_cell(&mut self, si: usize, p: u32, dwork: i64, dsend: i64, drecv: i64) {
        let mut i = self.steps[si].head;
        while i != u32::MAX {
            let c = &mut self.cells[i as usize];
            if c.proc == p {
                c.dwork += dwork;
                c.dsend += dsend;
                c.drecv += drecv;
                return;
            }
            i = c.next;
        }
        self.cells.push(CellDelta {
            proc: p,
            dwork,
            dsend,
            drecv,
            next: self.steps[si].head,
        });
        self.steps[si].head = (self.cells.len() - 1) as u32;
    }

    fn work(&mut self, s: u32, p: u32, dwork: i64, dnodes: i64) {
        let si = self.step_entry(s);
        self.steps[si].dnodes += dnodes;
        self.add_cell(si, p, dwork, 0, 0);
    }

    /// Records adding (`sign = 1`) or removing (`sign = -1`) one transfer of
    /// λ-weighted volume `w` in communication phase `phase`. Zero-volume
    /// transfers still flip the phase's transfer count (they keep a
    /// superstep non-empty) but touch no cells — an unchanged cell never
    /// affects the row maxima, so skipping it is exact.
    fn transfer(&mut self, phase: u32, src: u32, dst: u32, w: u64, sign: i64) {
        let si = self.step_entry(phase);
        self.steps[si].dcomm += sign;
        if w != 0 {
            let dw = sign * w as i64;
            self.add_cell(si, src, 0, dw, 0);
            self.add_cell(si, dst, 0, 0, dw);
        }
    }

    /// Records re-sourcing one transfer within its phase: `src_old → dst`
    /// (volume `w_old`) is replaced by `src_new → dst` (volume `w_new`).
    /// The phase's transfer count is unchanged, and on non-NUMA machines
    /// `w_old == w_new` cancels the receiver delta entirely.
    fn move_transfer_src(
        &mut self,
        phase: u32,
        src_old: u32,
        src_new: u32,
        dst: u32,
        w_old: u64,
        w_new: u64,
    ) {
        let si = self.step_entry(phase);
        if w_old != 0 {
            self.add_cell(si, src_old, 0, -(w_old as i64), 0);
        }
        if w_new != 0 {
            self.add_cell(si, src_new, 0, w_new as i64, 0);
        }
        let dr = w_new as i64 - w_old as i64;
        if dr != 0 {
            self.add_cell(si, dst, 0, 0, dr);
        }
    }
}

/// The set of processors onto which a node may validly move within a fixed
/// superstep (see [`ScheduleState::valid_procs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcWindow {
    /// Every processor admits the move.
    All,
    /// Exactly one processor admits the move (a neighbour occupies the
    /// same superstep, pinning the node to its processor).
    Only(u32),
    /// No processor admits the move.
    None,
}

impl ProcWindow {
    /// Intersects the window with "must be on processor `q`".
    #[inline]
    fn narrow(self, q: u32) -> ProcWindow {
        match self {
            ProcWindow::All => ProcWindow::Only(q),
            ProcWindow::Only(p) if p == q => self,
            _ => ProcWindow::None,
        }
    }
}

/// Mutable schedule with O(degree)-amortized single-node moves, read-only
/// move probing, and an incrementally maintained total cost under the lazy
/// communication model.
pub struct ScheduleState<'a> {
    dag: &'a Dag,
    machine: &'a BspParams,
    proc: Vec<u32>,
    step: Vec<u32>,
    n_steps: usize,
    /// `slots[s*P + p]`: interleaved work / λ-weighted send / receive of
    /// processor `p` in superstep `s` — one cache fetch per probed cell.
    slots: Vec<Slot>,
    /// Per-superstep metadata (counts, cached cost, cached [`TopK`] row
    /// maxima), likewise interleaved.
    meta: Vec<StepMeta>,
    total: u64,
    /// CSR consumer arena: `cons[cons_off[v]..cons_off[v+1]]` is the sorted
    /// multiset of `(proc, step)` placements of `v`'s successors.
    cons: Vec<(u32, u32)>,
    cons_off: Vec<u32>,
    /// Scratch: steps whose cached cost must be refreshed after a move.
    touched: Vec<u32>,
    /// Scratch for read-only probing (allocation-free after warm-up). A
    /// `Mutex` rather than a `RefCell` so `ScheduleState` is `Sync` and
    /// parallel scans can probe through shared references; sequential
    /// probes lock it uncontended.
    probe: Mutex<ProbeScratch>,
}

impl<'a> ScheduleState<'a> {
    /// Builds the state from an assignment. The assignment must satisfy
    /// [`BspSchedule::respects_precedence_lazy`].
    pub fn new(dag: &'a Dag, machine: &'a BspParams, sched: &BspSchedule) -> Self {
        assert_eq!(sched.n(), dag.n());
        debug_assert!(sched.respects_precedence_lazy(dag));
        let p = machine.p();
        let n_steps = sched.n_supersteps().max(1) as usize;
        let mut cons_off = Vec::with_capacity(dag.n() + 1);
        cons_off.push(0u32);
        for v in dag.nodes() {
            cons_off.push(cons_off[v as usize] + dag.out_degree(v) as u32);
        }
        let mut st = ScheduleState {
            dag,
            machine,
            proc: sched.procs().to_vec(),
            step: sched.steps().to_vec(),
            n_steps,
            slots: vec![Slot::default(); n_steps * p],
            meta: vec![StepMeta::EMPTY; n_steps],
            total: 0,
            cons: Vec::with_capacity(dag.m()),
            cons_off,
            touched: Vec::new(),
            probe: Mutex::new(ProbeScratch::default()),
        };
        for v in dag.nodes() {
            let (pv, sv) = (st.proc[v as usize], st.step[v as usize]);
            st.slots[sv as usize * p + pv as usize].work += dag.work(v);
            st.meta[sv as usize].nodes += 1;
            for &w in dag.successors(v) {
                st.cons.push((st.proc[w as usize], st.step[w as usize]));
            }
            let (lo, hi) = (st.cons_off[v as usize] as usize, st.cons.len());
            st.cons[lo..hi].sort_unstable();
        }
        // Materialize lazy transfers: one per non-empty cross-processor
        // bucket, in the phase before the bucket's earliest consumer step.
        for v in dag.nodes() {
            let pv = st.proc[v as usize];
            let (lo, hi) = st.cons_range(v);
            let mut i = lo;
            while i < hi {
                let (q, m) = st.cons[i];
                while i < hi && st.cons[i].0 == q {
                    i += 1;
                }
                if q != pv {
                    st.add_transfer(v, pv, q, m - 1);
                }
            }
        }
        st.touched.clear();
        for s in 0..st.n_steps {
            st.refresh_step(s);
            st.total += st.meta[s].cost;
        }
        st
    }

    /// Underlying DAG.
    pub fn dag(&self) -> &Dag {
        self.dag
    }

    /// Number of DAG nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.dag.n()
    }

    /// Number of processors.
    #[inline]
    pub fn p(&self) -> u32 {
        self.machine.p() as u32
    }

    /// Machine parameters.
    pub fn machine(&self) -> &BspParams {
        self.machine
    }

    /// Current total cost (lazy communication model).
    #[inline]
    pub fn cost(&self) -> u64 {
        self.total
    }

    /// Current processor of `v`.
    #[inline]
    pub fn proc(&self, v: NodeId) -> u32 {
        self.proc[v as usize]
    }

    /// Current superstep of `v`.
    #[inline]
    pub fn step(&self, v: NodeId) -> u32 {
        self.step[v as usize]
    }

    /// Number of allocated supersteps (including possibly empty ones).
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// Snapshot of the current assignment.
    pub fn snapshot(&self) -> BspSchedule {
        BspSchedule::from_parts(self.proc.clone(), self.step.clone())
    }

    /// Which processors admit a valid move of `v` into superstep `s`, in one
    /// `O(degree)` pass — the neighbourhood scans use this instead of `3·P`
    /// separate [`ScheduleState::is_move_valid`] calls. A predecessor
    /// placed *in* step `s` forces the move onto its own processor (lazy
    /// cross-processor edges need a strictly earlier producer step), a
    /// predecessor after `s` forbids the step entirely; successors mirror
    /// this downwards.
    pub fn valid_procs(&self, v: NodeId, s: u32) -> ProcWindow {
        let mut w = ProcWindow::All;
        for &u in self.dag.predecessors(v) {
            let su = self.step[u as usize];
            if su > s {
                return ProcWindow::None;
            }
            if su == s {
                w = match w.narrow(self.proc[u as usize]) {
                    ProcWindow::None => return ProcWindow::None,
                    nw => nw,
                };
            }
        }
        for &x in self.dag.successors(v) {
            let sx = self.step[x as usize];
            if sx < s {
                return ProcWindow::None;
            }
            if sx == s {
                w = match w.narrow(self.proc[x as usize]) {
                    ProcWindow::None => return ProcWindow::None,
                    nw => nw,
                };
            }
        }
        w
    }

    /// Whether moving `v` to `(p_new, s_new)` keeps the assignment valid
    /// under the lazy communication model.
    pub fn is_move_valid(&self, v: NodeId, p_new: u32, s_new: u32) -> bool {
        for &u in self.dag.predecessors(v) {
            let ok = if self.proc[u as usize] == p_new {
                self.step[u as usize] <= s_new
            } else {
                self.step[u as usize] < s_new
            };
            if !ok {
                return false;
            }
        }
        for &w in self.dag.successors(v) {
            let ok = if self.proc[w as usize] == p_new {
                s_new <= self.step[w as usize]
            } else {
                s_new < self.step[w as usize]
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// `v`'s slice bounds in the consumer arena.
    #[inline]
    fn cons_range(&self, v: NodeId) -> (usize, usize) {
        (
            self.cons_off[v as usize] as usize,
            self.cons_off[v as usize + 1] as usize,
        )
    }

    /// Index of the first entry of bucket `q` in `v`'s slice (or of the
    /// next bucket if `q` is empty). Short slices — the common case — are
    /// scanned linearly; long ones binary-searched.
    #[inline]
    fn bucket_start(&self, v: NodeId, q: u32) -> usize {
        let (lo, hi) = self.cons_range(v);
        let sl = &self.cons[lo..hi];
        if sl.len() <= 16 {
            let mut i = 0;
            while i < sl.len() && sl[i].0 < q {
                i += 1;
            }
            lo + i
        } else {
            lo + sl.partition_point(|&(b, _)| b < q)
        }
    }

    /// Earliest consumer step of `v` on processor `q`, if any.
    #[inline]
    fn bucket_min(&self, v: NodeId, q: u32) -> Option<u32> {
        let i = self.bucket_start(v, q);
        let (_, hi) = self.cons_range(v);
        (i < hi && self.cons[i].0 == q).then(|| self.cons[i].1)
    }

    /// λ-weighted volume of one transfer of `v`'s value from `src` to `dst`.
    #[inline]
    fn weighted(&self, v: NodeId, src: u32, dst: u32) -> u64 {
        self.dag.comm(v) * self.machine.lambda(src as usize, dst as usize)
    }

    /// One-walk extraction of everything the consumer-side probe needs from
    /// `u`'s sorted slice: the minimum of bucket `q_rm` *before* and *after*
    /// removing one occurrence of `s_rm`, and the minimum of bucket `q_ins`.
    /// Replaces three independent bucket walks; exits early once the slice
    /// passes both buckets.
    #[inline]
    fn pred_mins(
        &self,
        u: NodeId,
        q_rm: u32,
        s_rm: u32,
        q_ins: u32,
    ) -> (Option<u32>, Option<u32>, Option<u32>) {
        let (lo, hi) = self.cons_range(u);
        let (mut rm_head, mut rm_second, mut ins_head) = (None, None, None);
        if hi - lo > 16 {
            // Long slice: two binary searches beat walking the whole slice.
            let i = self.bucket_start(u, q_rm);
            if i < hi && self.cons[i].0 == q_rm {
                rm_head = Some(self.cons[i].1);
                if i + 1 < hi && self.cons[i + 1].0 == q_rm {
                    rm_second = Some(self.cons[i + 1].1);
                }
            }
            if q_ins == q_rm {
                ins_head = rm_head;
            } else {
                let j = self.bucket_start(u, q_ins);
                if j < hi && self.cons[j].0 == q_ins {
                    ins_head = Some(self.cons[j].1);
                }
            }
        } else {
            let hi_proc = q_rm.max(q_ins);
            let mut i = lo;
            while i < hi {
                let (b, s) = self.cons[i];
                if b > hi_proc {
                    break;
                }
                if b == q_rm {
                    if rm_head.is_none() {
                        rm_head = Some(s);
                    } else if rm_second.is_none() {
                        rm_second = Some(s);
                    }
                }
                if b == q_ins && ins_head.is_none() {
                    ins_head = Some(s);
                }
                i += 1;
            }
        }
        debug_assert!(rm_head.is_some_and(|m| m <= s_rm));
        let rm_after = if rm_head != Some(s_rm) {
            rm_head // the removed step was not the minimum
        } else {
            rm_second
        };
        (rm_head, rm_after, ins_head)
    }

    /// Computes the **exact** total-cost delta of moving `v` to
    /// `(p_new, s_new)` without mutating the state: no table growth, no
    /// consumer retargeting, no heap allocation. The move must be valid
    /// ([`ScheduleState::is_move_valid`]); the returned delta equals
    /// `apply_move(v, p_new, s_new) − cost()` bit-for-bit, including moves
    /// into supersteps beyond the currently allocated table (probed
    /// virtually as empty). Runs in `O(deg · log deg + t · P)` for `t ≤
    /// deg + 2` touched supersteps.
    pub fn probe_move(&self, v: NodeId, p_new: u32, s_new: u32) -> i64 {
        let mut scratch = self
            .probe
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.probe_move_in(&mut scratch, v, p_new, s_new)
    }

    /// [`ScheduleState::probe_move`] with caller-supplied scratch: the
    /// entry point for parallel neighbourhood scans, where each worker owns
    /// a private [`ProbeScratch`] and probes through `&ScheduleState`
    /// without touching the internal mutex. The result is a pure function
    /// of the state and the move — independent of which scratch is passed —
    /// so sequential and parallel scans see bit-identical deltas.
    pub fn probe_move_in(&self, sc: &mut ProbeScratch, v: NodeId, p_new: u32, s_new: u32) -> i64 {
        let (p_old, s_old) = (self.proc[v as usize], self.step[v as usize]);
        if p_old == p_new && s_old == s_new {
            return 0;
        }
        debug_assert!(self.is_move_valid(v, p_new, s_new));
        sc.clear();

        // 1. Work movement and per-step node counts.
        let w = self.dag.work(v) as i64;
        sc.work(s_old, p_old, -w, -1);
        sc.work(s_new, p_new, w, 1);

        // 2. Producer side: v's outgoing transfers change source processor.
        //    Phases are fixed by the consumers, which do not move, so a
        //    bucket that stays remote is one re-sourced transfer in place.
        if p_old != p_new {
            let (lo, hi) = self.cons_range(v);
            let mut i = lo;
            while i < hi {
                let (q, m) = self.cons[i];
                while i < hi && self.cons[i].0 == q {
                    i += 1;
                }
                if q == p_old {
                    sc.transfer(m - 1, p_new, q, self.weighted(v, p_new, q), 1);
                } else if q == p_new {
                    sc.transfer(m - 1, p_old, q, self.weighted(v, p_old, q), -1);
                } else {
                    sc.move_transfer_src(
                        m - 1,
                        p_old,
                        p_new,
                        q,
                        self.weighted(v, p_old, q),
                        self.weighted(v, p_new, q),
                    );
                }
            }
        }

        // 3. Consumer side: each predecessor's bucket minima may shift,
        //    moving (or creating / destroying) its lazy transfer.
        for &u in self.dag.predecessors(v) {
            let pu = self.proc[u as usize];
            if p_old == p_new {
                if p_old == pu {
                    continue; // local consumer stays local: no transfer
                }
                let (before, removed, _) = self.pred_mins(u, p_old, s_old, p_old);
                let after = Some(removed.map_or(s_new, |m| m.min(s_new)));
                if before != after {
                    let w = self.weighted(u, pu, p_old);
                    if let Some(m) = before {
                        sc.transfer(m - 1, pu, p_old, w, -1);
                    }
                    if let Some(m) = after {
                        sc.transfer(m - 1, pu, p_old, w, 1);
                    }
                }
                continue;
            }
            let (rm_before, rm_after, ins_before) = self.pred_mins(u, p_old, s_old, p_new);
            if p_old != pu && rm_before != rm_after {
                let w = self.weighted(u, pu, p_old);
                if let Some(m) = rm_before {
                    sc.transfer(m - 1, pu, p_old, w, -1);
                }
                if let Some(m) = rm_after {
                    sc.transfer(m - 1, pu, p_old, w, 1);
                }
            }
            if p_new != pu {
                let after = Some(ins_before.map_or(s_new, |m| m.min(s_new)));
                if ins_before != after {
                    let w = self.weighted(u, pu, p_new);
                    if let Some(m) = ins_before {
                        sc.transfer(m - 1, pu, p_new, w, -1);
                    }
                    if let Some(m) = after {
                        sc.transfer(m - 1, pu, p_new, w, 1);
                    }
                }
            }
        }

        self.eval_probe(sc)
    }

    /// Folds the accumulated deltas into a total-cost delta. Per touched
    /// superstep, the new row maxima are derived from the changed cells and
    /// the cached [`TopK`] entries — `O(changed)` per step, falling back
    /// to an `O(P)` rescan only when both cached top processors changed.
    /// Steps at or beyond `n_steps` read as empty.
    fn eval_probe(&self, sc: &mut ProbeScratch) -> i64 {
        let p = self.machine.p();
        let (g, l) = (self.machine.g(), self.machine.l());
        let mut delta = 0i64;
        for ei in 0..sc.steps.len() {
            let e = sc.steps[ei];
            let s = e.step as usize;
            let in_range = s < self.n_steps;
            let row = s * p;
            let m = if in_range {
                self.meta[s]
            } else {
                StepMeta::EMPTY
            };
            let (wt, ht) = (m.wtop, m.htop);
            // Maxima over the changed processors (their adjusted values),
            // recording which processors changed at all.
            let (mut wcand, mut hcand) = (0u64, 0u64);
            let mut changed = [0u32; 32];
            let mut n_changed = 0usize;
            let mut i = e.head;
            while i != u32::MAX {
                let c = sc.cells[i as usize];
                let q = c.proc as usize;
                let b = if in_range {
                    self.slots[row + q]
                } else {
                    Slot::default()
                };
                wcand = wcand.max((b.work as i64 + c.dwork) as u64);
                let h = ((b.send as i64 + c.dsend) as u64).max((b.recv as i64 + c.drecv) as u64);
                hcand = hcand.max(h);
                if n_changed < changed.len() {
                    changed[n_changed] = c.proc;
                }
                n_changed += 1;
                i = c.next;
            }
            // Unchanged side: the first cached top entry on an unchanged
            // processor is exact; rescan only if all K tops changed (or
            // the changed set overflowed the inline buffer).
            let (w_unch, h_unch) = if n_changed <= changed.len() {
                let ch = &changed[..n_changed];
                (wt.unchanged_max(ch), ht.unchanged_max(ch))
            } else {
                (None, None)
            };
            let w_max = match w_unch {
                Some(u) => wcand.max(u),
                None => self.rescan_adjusted(sc, e.head, in_range, row, false),
            };
            let c_max = match h_unch {
                Some(u) => hcand.max(u),
                None => self.rescan_adjusted(sc, e.head, in_range, row, true),
            };
            let nonempty = m.nodes as i64 + e.dnodes > 0 || m.comm as i64 + e.dcomm > 0;
            let new_cost = w_max + g * c_max + if nonempty { l } else { 0 };
            delta += new_cost as i64 - m.cost as i64;
        }
        delta
    }

    /// Full adjusted row maximum (work when `hrel` is false, h-relation
    /// otherwise): the rare probe fallback when every cached top processor
    /// of a touched step changed. `O(P + cells)` via the epoch-stamped
    /// per-processor accumulator in the scratch.
    fn rescan_adjusted(
        &self,
        sc: &mut ProbeScratch,
        head: u32,
        in_range: bool,
        row: usize,
        hrel: bool,
    ) -> u64 {
        let p = self.machine.p();
        if sc.row.len() < p {
            sc.row.resize(p, (0, 0, 0, 0));
        }
        sc.epoch = sc.epoch.wrapping_add(1);
        if sc.epoch == 0 {
            sc.row.fill((0, 0, 0, 0));
            sc.epoch = 1;
        }
        let mut i = head;
        while i != u32::MAX {
            let c = sc.cells[i as usize];
            sc.row[c.proc as usize] = (sc.epoch, c.dwork, c.dsend, c.drecv);
            i = c.next;
        }
        let mut best = 0u64;
        for q in 0..p {
            let (ep, dw, ds, dr) = sc.row[q];
            let (dw, ds, dr) = if ep == sc.epoch {
                (dw, ds, dr)
            } else {
                (0, 0, 0)
            };
            let b = if in_range {
                self.slots[row + q]
            } else {
                Slot::default()
            };
            let val = if hrel {
                ((b.send as i64 + ds) as u64).max((b.recv as i64 + dr) as u64)
            } else {
                (b.work as i64 + dw) as u64
            };
            best = best.max(val);
        }
        best
    }

    /// Applies the move of `v` to `(p_new, s_new)` and returns the new total
    /// cost. The caller is responsible for having checked
    /// [`ScheduleState::is_move_valid`]; the move is exactly reversible by
    /// applying the inverse move, and allocation-free apart from one-time
    /// step-table growth when `s_new` exceeds every step seen so far.
    pub fn apply_move(&mut self, v: NodeId, p_new: u32, s_new: u32) -> u64 {
        let p = self.machine.p();
        let (p_old, s_old) = (self.proc[v as usize], self.step[v as usize]);
        if p_old == p_new && s_old == s_new {
            return self.total;
        }
        self.ensure_steps(s_new as usize + 1);
        self.touched.clear();

        // 1. Producer side: drop v's outgoing transfers under the old π(v).
        if p_old != p_new {
            let (lo, hi) = self.cons_range(v);
            let mut i = lo;
            while i < hi {
                let (q, m) = self.cons[i];
                while i < hi && self.cons[i].0 == q {
                    i += 1;
                }
                if q != p_old {
                    self.remove_transfer(v, p_old, q, m - 1);
                }
            }
        }

        // 2. Consumer side: update each predecessor's consumer multiset.
        //    (`self.dag` is a plain reference copy, so iterating its adjacency
        //    while mutating the state borrows nothing from `self`.)
        let dag = self.dag;
        for &u in dag.predecessors(v) {
            self.retarget_consumer(u, p_old, s_old, p_new, s_new);
        }

        // 3. Work movement.
        self.slots[s_old as usize * p + p_old as usize].work -= dag.work(v);
        self.meta[s_old as usize].nodes -= 1;
        self.slots[s_new as usize * p + p_new as usize].work += dag.work(v);
        self.meta[s_new as usize].nodes += 1;
        self.touched.push(s_old);
        self.touched.push(s_new);
        self.proc[v as usize] = p_new;
        self.step[v as usize] = s_new;

        // 4. Producer side: re-add v's outgoing transfers under the new π(v).
        if p_old != p_new {
            let (lo, hi) = self.cons_range(v);
            let mut i = lo;
            while i < hi {
                let (q, m) = self.cons[i];
                while i < hi && self.cons[i].0 == q {
                    i += 1;
                }
                if q != p_new {
                    self.add_transfer(v, p_new, q, m - 1);
                }
            }
        }

        // 5. Refresh cached step costs.
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        touched.dedup();
        for &s in &touched {
            let s = s as usize;
            self.total -= self.meta[s].cost;
            self.refresh_step(s);
            self.total += self.meta[s].cost;
        }
        touched.clear();
        self.touched = touched;
        self.total
    }

    /// Moves consumer `v` of producer `u` from `(p_old, s_old)` to
    /// `(p_new, s_new)` in `u`'s consumer multiset, shifting `u`'s lazy
    /// transfers when a bucket minimum changes.
    fn retarget_consumer(&mut self, u: NodeId, p_old: u32, s_old: u32, p_new: u32, s_new: u32) {
        let pu = self.proc[u as usize];
        let old_min_before = self.bucket_min(u, p_old);
        let new_min_before = self.bucket_min(u, p_new);
        self.slice_retarget(u, (p_old, s_old), (p_new, s_new));
        let old_min_after = self.bucket_min(u, p_old);
        if p_old == p_new {
            // Single bucket: the net min change covers remove + insert.
            if p_old != pu && old_min_before != old_min_after {
                if let Some(m) = old_min_before {
                    self.remove_transfer(u, pu, p_old, m - 1);
                }
                if let Some(m) = old_min_after {
                    self.add_transfer(u, pu, p_old, m - 1);
                }
            }
            return;
        }
        if p_old != pu && old_min_before != old_min_after {
            if let Some(m) = old_min_before {
                self.remove_transfer(u, pu, p_old, m - 1);
            }
            if let Some(m) = old_min_after {
                self.add_transfer(u, pu, p_old, m - 1);
            }
        }
        let new_min_after = self.bucket_min(u, p_new);
        if p_new != pu && new_min_before != new_min_after {
            if let Some(m) = new_min_before {
                self.remove_transfer(u, pu, p_new, m - 1);
            }
            if let Some(m) = new_min_after {
                self.add_transfer(u, pu, p_new, m - 1);
            }
        }
    }

    /// Replaces one `old` entry of `u`'s sorted consumer slice with `new`,
    /// preserving sorted order by rotating the span between the two
    /// positions (the slice length is fixed at `out_degree(u)`).
    fn slice_retarget(&mut self, u: NodeId, old: (u32, u32), new: (u32, u32)) {
        let (lo, hi) = self.cons_range(u);
        let sl = &mut self.cons[lo..hi];
        let i = sl.partition_point(|&e| e < old);
        debug_assert!(sl[i] == old, "retargeting an unrecorded consumer entry");
        let j = sl.partition_point(|&e| e < new);
        if j > i {
            sl[i..j].rotate_left(1);
            sl[j - 1] = new;
        } else {
            sl[j..=i].rotate_right(1);
            sl[j] = new;
        }
    }

    fn add_transfer(&mut self, v: NodeId, src: u32, dst: u32, phase: u32) {
        let p = self.machine.p();
        self.ensure_steps(phase as usize + 1);
        let weighted = self.weighted(v, src, dst);
        self.slots[phase as usize * p + src as usize].send += weighted;
        self.slots[phase as usize * p + dst as usize].recv += weighted;
        self.meta[phase as usize].comm += 1;
        self.touched.push(phase);
    }

    fn remove_transfer(&mut self, v: NodeId, src: u32, dst: u32, phase: u32) {
        let p = self.machine.p();
        let weighted = self.weighted(v, src, dst);
        self.slots[phase as usize * p + src as usize].send -= weighted;
        self.slots[phase as usize * p + dst as usize].recv -= weighted;
        self.meta[phase as usize].comm -= 1;
        self.touched.push(phase);
    }

    fn ensure_steps(&mut self, want: usize) {
        if want <= self.n_steps {
            return;
        }
        let p = self.machine.p();
        self.slots.resize(want * p, Slot::default());
        self.meta.resize(want, StepMeta::EMPTY);
        self.n_steps = want;
    }

    /// Rescans superstep `s`, refreshing its cached cost and [`TopK`]
    /// row maxima in one `O(P)` pass.
    fn refresh_step(&mut self, s: usize) {
        let p = self.machine.p();
        let row = s * p;
        let wt = TopK::scan(self.slots[row..row + p].iter().map(|b| b.work));
        let ht = TopK::scan(self.slots[row..row + p].iter().map(|b| b.send.max(b.recv)));
        let m = &mut self.meta[s];
        let nonempty = m.nodes > 0 || m.comm > 0;
        m.cost = wt.vals[0]
            + self.machine.g() * ht.vals[0]
            + if nonempty { self.machine.l() } else { 0 };
        m.wtop = wt;
        m.htop = ht;
    }

    /// Full O(n + m + S·P) recomputation of the total cost; used by tests to
    /// cross-check the incremental bookkeeping.
    pub fn recomputed_cost(&self) -> u64 {
        lazy_cost(self.dag, self.machine, &self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(2, 3);
        let y = b.add_node(3, 1);
        let d = b.add_node(1, 1);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, d).unwrap();
        b.add_edge(y, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_cost_matches_full_evaluation() {
        let dag = diamond();
        let machine = BspParams::new(2, 3, 5);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0, 1, 1, 2]);
        let st = ScheduleState::new(&dag, &machine, &sched);
        assert_eq!(st.cost(), st.recomputed_cost());
    }

    #[test]
    fn move_validity_rules() {
        let dag = diamond();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0, 1, 1, 2]);
        let st = ScheduleState::new(&dag, &machine, &sched);
        // Moving d (node 3) to proc 0 step 1: pred x on proc 0 at step 1 (ok,
        // same proc), pred y on proc 1 at step 1 (needs strict <) -> invalid.
        assert!(!st.is_move_valid(3, 0, 1));
        // d to proc 0 step 2: x same proc earlier ok, y cross at 1 < 2 ok.
        assert!(st.is_move_valid(3, 0, 2));
        // a (node 0) to step 1 proc 0: succ x at step 1 same proc ok, succ y
        // on proc 1 at step 1 needs <, invalid.
        assert!(!st.is_move_valid(0, 0, 1));
    }

    #[test]
    fn apply_move_updates_cost_incrementally() {
        let dag = diamond();
        let machine = BspParams::new(2, 3, 5);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0, 1, 1, 2]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        assert!(st.is_move_valid(3, 0, 2));
        let c = st.apply_move(3, 0, 2);
        assert_eq!(c, st.recomputed_cost());
        // Revert restores the original cost.
        let back = st.apply_move(3, 1, 2);
        assert_eq!(back, st.recomputed_cost());
    }

    #[test]
    fn probe_equals_apply_delta_on_diamond() {
        let dag = diamond();
        let machine = BspParams::new(2, 3, 5);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0, 1, 1, 2]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        for v in 0..4u32 {
            let (cp, cs) = (st.proc(v), st.step(v));
            for s in cs.saturating_sub(1)..=cs + 2 {
                for q in 0..2u32 {
                    if (q, s) == (cp, cs) || !st.is_move_valid(v, q, s) {
                        continue;
                    }
                    let before = st.cost();
                    let delta = st.probe_move(v, q, s);
                    let after = st.apply_move(v, q, s);
                    assert_eq!(
                        after as i64 - before as i64,
                        delta,
                        "probe mismatch for {v} -> ({q}, {s})"
                    );
                    assert_eq!(st.apply_move(v, cp, cs), before, "revert broken");
                }
            }
        }
    }

    #[test]
    fn probe_is_read_only_beyond_the_step_table() {
        let dag = diamond();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0, 1, 1, 2]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let steps_before = st.n_steps();
        assert!(st.is_move_valid(3, 0, 5));
        let delta = st.probe_move(3, 0, 5);
        assert_eq!(st.n_steps(), steps_before, "probe must never grow state");
        let before = st.cost();
        let after = st.apply_move(3, 0, 5);
        assert_eq!(after as i64 - before as i64, delta);
        assert!(st.n_steps() >= 6);
    }

    #[test]
    fn moves_grow_superstep_axis() {
        let dag = diamond();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0, 1, 1, 2]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        assert!(st.is_move_valid(3, 0, 5));
        let c = st.apply_move(3, 0, 5);
        assert_eq!(c, st.recomputed_cost());
        assert!(st.n_steps() >= 6);
    }

    #[test]
    fn emptying_a_superstep_saves_latency() {
        let dag = diamond();
        let machine = BspParams::new(2, 1, 100);
        // d alone in superstep 2.
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 0], vec![0, 1, 1, 2]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let before = st.cost();
        let probed = st.probe_move(3, 0, 1);
        let after = st.apply_move(3, 0, 1);
        assert_eq!(after, st.recomputed_cost());
        assert_eq!(after as i64 - before as i64, probed);
        assert!(
            after + 100 <= before,
            "latency saving not captured: {before} -> {after}"
        );
    }
}
