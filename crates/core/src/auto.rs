//! Communication-dominance–driven scheduler selection.
//!
//! The paper observes that the multilevel scheduler is a *specialist*: it
//! clearly wins when communication costs dominate (large Δ and/or P) and
//! clearly loses otherwise (§7.3, Appendix C.6), and names "deciding if
//! coarsification is even necessary" as future work. This module implements
//! that decision using the generalized communication-to-computation ratio
//! of Appendix A.5: `CCR_λ = g · λ̄ · Σc(v) / Σw(v)` with `λ̄` the mean
//! off-diagonal NUMA coefficient. (As the paper notes, folding the latency
//! ℓ into this formula is not straightforward; like the paper, we leave ℓ
//! out of the metric.)
//!
//! Selection uses a hysteresis band calibrated on the paper's reported
//! crossover (ML loses at Δ=2, wins from Δ=3 with P=16 upward):
//!
//! * `CCR_λ < lo` → base pipeline only (Figure 3),
//! * `CCR_λ ≥ hi` → multilevel pipeline only (Figure 4),
//! * in between → run both and keep the cheaper schedule.

use crate::multilevel::MultilevelConfig;
use crate::pipeline::{
    solve_base_pipeline, solve_multilevel_pipeline, PipelineConfig, PipelineResult,
};
use bsp_dag::analysis::numa_ccr;
use bsp_dag::Dag;
use bsp_model::BspParams;
use bsp_schedule::solve::SolveCx;

/// Which strategy the auto-scheduler committed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Figure-3 base pipeline only.
    Base,
    /// Figure-4 multilevel pipeline only.
    Multilevel,
    /// Both were run; the cheaper result was kept.
    Both,
}

/// Tuning for [`schedule_dag_auto`].
#[derive(Debug, Clone)]
pub struct AutoConfig {
    /// Below this generalized CCR the base pipeline runs alone.
    pub ccr_lo: f64,
    /// From this generalized CCR upward the multilevel pipeline runs alone.
    pub ccr_hi: f64,
    /// Smallest DAG worth coarsening (the paper excludes `tiny` from ML
    /// because coarsening it yields degenerate graphs).
    pub min_nodes_for_ml: usize,
    /// Multilevel tuning forwarded to the Figure-4 pipeline.
    pub ml: MultilevelConfig,
}

impl Default for AutoConfig {
    fn default() -> Self {
        AutoConfig {
            ccr_lo: 4.0,
            ccr_hi: 8.0,
            min_nodes_for_ml: 40,
            ml: MultilevelConfig::default(),
        }
    }
}

/// The generalized communication-to-computation ratio used for the
/// decision: `g · λ̄ · Σc / Σw` (0 when the DAG has no work).
pub fn comm_dominance(dag: &Dag, machine: &BspParams) -> f64 {
    numa_ccr(dag, machine.g(), machine.numa().mean_lambda_offdiag())
}

/// Schedules `dag` with the strategy selected by [`comm_dominance`], and
/// reports which strategy was used. The result is always the cheaper of
/// whatever was run, so enabling auto-selection never loses to the chosen
/// single strategy.
///
/// ```
/// use bsp_core::auto::{schedule_dag_auto, AutoConfig, Strategy};
/// use bsp_core::pipeline::PipelineConfig;
/// use bsp_dag::random::{random_layered_dag, LayeredConfig};
/// use bsp_model::BspParams;
///
/// let dag = random_layered_dag(5, LayeredConfig::default());
/// let machine = BspParams::new(4, 1, 5); // uniform, low dominance
/// let cfg = PipelineConfig { enable_ilp: false, ..Default::default() };
/// let (result, strategy) = schedule_dag_auto(&dag, &machine, &cfg, &AutoConfig::default());
/// assert_eq!(strategy, Strategy::Base);
/// assert!(result.cost > 0);
/// ```
pub fn schedule_dag_auto(
    dag: &Dag,
    machine: &BspParams,
    cfg: &PipelineConfig,
    auto: &AutoConfig,
) -> (PipelineResult, Strategy) {
    let req = bsp_schedule::solve::SolveRequest::new(dag, machine);
    let mut cx = SolveCx::new("auto", &req);
    solve_auto(dag, machine, cfg, auto, &mut cx)
}

/// [`schedule_dag_auto`] under `cx`'s budget clock. The CCR decision is
/// instantaneous; the selected pipeline's stages report through `cx`. In
/// the hysteresis band both pipelines run (budget permitting) and only the
/// winner's stage trajectory is kept, so reports stay monotone.
pub fn solve_auto(
    dag: &Dag,
    machine: &BspParams,
    cfg: &PipelineConfig,
    auto: &AutoConfig,
    cx: &mut SolveCx<'_>,
) -> (PipelineResult, Strategy) {
    let dominance = comm_dominance(dag, machine);
    let ml_viable = dag.n() >= auto.min_nodes_for_ml;
    if !ml_viable || dominance < auto.ccr_lo {
        return (solve_base_pipeline(dag, machine, cfg, cx), Strategy::Base);
    }
    if dominance >= auto.ccr_hi {
        return (
            solve_multilevel_pipeline(dag, machine, cfg, &auto.ml, cx),
            Strategy::Multilevel,
        );
    }
    let base_from = cx.mark();
    let base = solve_base_pipeline(dag, machine, cfg, cx);
    if cx.check_expired() {
        // No budget left for the multilevel run: the base result stands.
        return (base, Strategy::Both);
    }
    let ml_from = cx.mark();
    let ml = solve_multilevel_pipeline(dag, machine, cfg, &auto.ml, cx);
    if ml.cost < base.cost {
        cx.discard_stages(base_from, ml_from);
        (ml, Strategy::Both)
    } else {
        let end = cx.mark();
        cx.discard_stages(ml_from, end);
        (base, Strategy::Both)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{schedule_dag, schedule_dag_multilevel};
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_model::NumaTopology;
    use bsp_schedule::cost::total_cost;
    use bsp_schedule::validity::validate;

    fn fast_cfg() -> PipelineConfig {
        PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        }
    }

    fn sample(n_layers: usize) -> Dag {
        random_layered_dag(
            17,
            LayeredConfig {
                layers: n_layers,
                width: 8,
                edge_prob: 0.3,
                ..Default::default()
            },
        )
    }

    #[test]
    fn low_dominance_selects_base() {
        let dag = sample(8);
        let machine = BspParams::new(4, 1, 5); // g=1, uniform λ: dominance ≈ Σc/Σw
        let auto = AutoConfig::default();
        assert!(comm_dominance(&dag, &machine) < auto.ccr_lo);
        let (r, strat) = schedule_dag_auto(&dag, &machine, &fast_cfg(), &auto);
        assert_eq!(strat, Strategy::Base);
        assert!(validate(&dag, 4, &r.sched, &r.comm).is_ok());
    }

    #[test]
    fn high_dominance_selects_multilevel() {
        let dag = sample(8);
        // P=16, Δ=4: λ̄ well above 8 even at g=1.
        let machine = BspParams::new(16, 1, 5).with_numa(NumaTopology::binary_tree(16, 4));
        let auto = AutoConfig::default();
        assert!(comm_dominance(&dag, &machine) >= auto.ccr_hi);
        let (r, strat) = schedule_dag_auto(&dag, &machine, &fast_cfg(), &auto);
        assert_eq!(strat, Strategy::Multilevel);
        assert!(validate(&dag, 16, &r.sched, &r.comm).is_ok());
        assert_eq!(r.cost, total_cost(&dag, &machine, &r.sched, &r.comm));
    }

    #[test]
    fn band_runs_both_and_keeps_cheaper() {
        let dag = sample(8);
        let machine = BspParams::new(4, 1, 5);
        let auto = AutoConfig {
            ccr_lo: 0.0,
            ccr_hi: f64::INFINITY,
            min_nodes_for_ml: 1,
            ..AutoConfig::default()
        };
        let (r, strat) = schedule_dag_auto(&dag, &machine, &fast_cfg(), &auto);
        assert_eq!(strat, Strategy::Both);
        let base = schedule_dag(&dag, &machine, &fast_cfg());
        let ml = schedule_dag_multilevel(&dag, &machine, &fast_cfg(), &auto.ml);
        assert_eq!(r.cost, base.cost.min(ml.cost));
    }

    #[test]
    fn small_dags_never_use_ml() {
        let dag = sample(2); // well under min_nodes_for_ml with width 8
        let machine = BspParams::new(16, 5, 5).with_numa(NumaTopology::binary_tree(16, 4));
        let auto = AutoConfig {
            min_nodes_for_ml: 1_000,
            ..AutoConfig::default()
        };
        let (_, strat) = schedule_dag_auto(&dag, &machine, &fast_cfg(), &auto);
        assert_eq!(strat, Strategy::Base);
    }

    #[test]
    fn dominance_scales_with_g_and_lambda() {
        let dag = sample(4);
        let base = comm_dominance(&dag, &BspParams::new(8, 1, 5));
        let with_g = comm_dominance(&dag, &BspParams::new(8, 3, 5));
        assert!((with_g - 3.0 * base).abs() < 1e-9);
        let with_numa = comm_dominance(
            &dag,
            &BspParams::new(8, 1, 5).with_numa(NumaTopology::binary_tree(8, 3)),
        );
        assert!(with_numa > base);
    }
}
