//! The combined scheduling framework (paper §6, Figures 3 and 4).
//!
//! Figure 3 pipeline: run the initialization heuristics (`BSPg`, `Source`,
//! optionally `ILPinit`), improve each with `HC` + `HCcs`, select the best,
//! then apply the ILP stages (`ILPfull` when small enough, otherwise
//! `ILPpart`, then `ILPcs`). Every stage is monotone: the reported cost
//! never increases along the pipeline.
//!
//! Figure 4 pipeline: coarsen, run the Figure-3 pipeline (without `ILPcs`)
//! on the coarse DAG, uncoarsen with refinement, then run `HCcs` + `ILPcs`
//! on the original DAG.
//!
//! Both pipelines are *anytime*: [`solve_base_pipeline`] and
//! [`solve_multilevel_pipeline`] thread a
//! [`SolveCx`] through the stages, checking
//! the request's deadline at every stage boundary, clamping each stage's
//! internal wall-clock/move budgets to what remains, and emitting stage and
//! improvement events to the request's observer. Because every stage holds
//! the monotone contract, early exit always returns the valid best-so-far
//! schedule. [`schedule_dag`] / [`schedule_dag_multilevel`] are the
//! unbudgeted wrappers.

use crate::anneal::{simulated_annealing, AnnealConfig};
use crate::hc::{hill_climb, HillClimbConfig};
use crate::hccs::{optimize_comm_schedule_threaded, CommHillClimbConfig};
use crate::ilp::comm::ilp_comm;
use crate::ilp::init::ilp_init;
use crate::ilp::{ilp_full, ilp_part, IlpConfig};
use crate::init::bspg::bspg_schedule;
use crate::init::source::source_schedule;
use crate::multilevel::{multilevel_schedule, MultilevelConfig};
use crate::state::ScheduleState;
use crate::tabu::{tabu_search_threaded, TabuConfig};
use bsp_dag::Dag;
use bsp_model::BspParams;
use bsp_schedule::compact::compact_lazy;
use bsp_schedule::cost::lazy_cost;
use bsp_schedule::solve::{Budget, SolveCx, SolveRequest};
use bsp_schedule::{BspSchedule, CommSchedule};
use std::time::{Duration, Instant};

/// Which initializer produced a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initializer {
    /// The BSP-tailored greedy of Algorithm 1.
    BspG,
    /// The wavefront heuristic of Algorithm 2.
    Source,
    /// The ILP-based initializer.
    IlpInit,
}

/// An optional escape-local-minima stage run on the best candidate after
/// hill climbing (the paper's §8 future-work replacement for plain HC).
/// Both methods hold the monotone contract: they never return a schedule
/// worse than their input.
#[derive(Debug, Clone)]
pub enum EscapeSearch {
    /// Simulated annealing over the HC move space.
    Anneal(AnnealConfig),
    /// Tabu search over the HC move space.
    Tabu(TabuConfig),
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Budgets for the schedule hill climbing.
    pub hc: HillClimbConfig,
    /// Budgets for the communication-schedule hill climbing.
    pub hccs: CommHillClimbConfig,
    /// ILP stage configuration.
    pub ilp: IlpConfig,
    /// Master switch for all ILP stages (`false` for the huge dataset runs).
    pub enable_ilp: bool,
    /// Run `ILPinit` as a third initializer; `None` = auto (only for P ≤ 4,
    /// following the paper's tuning experiments in Appendix C.1).
    pub use_ilp_init: Option<bool>,
    /// Optional escape-local-minima search applied to the winning candidate
    /// after HC (folded into the reported `hc_cost` stage). `None`
    /// reproduces the paper's evaluated configuration.
    pub escape: Option<EscapeSearch>,
    /// Worker threads for the parallel neighbourhood scans (HCcs and the
    /// tabu escape stage): `0` = auto-detect, `1` = sequential. A
    /// [`SolveRequest::with_threads`] override wins over this default.
    /// Never changes the schedule — parallel scans are bit-identical to
    /// sequential ones — only wall-clock time.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            hc: HillClimbConfig::default(),
            hccs: CommHillClimbConfig::default(),
            ilp: IlpConfig::default(),
            enable_ilp: true,
            use_ilp_init: None,
            escape: None,
            threads: bsp_par::default_threads(),
        }
    }
}

/// Full pipeline result with per-stage costs (the `Init` / `HCcs` / `ILP`
/// columns of the paper's figures).
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Final assignment.
    pub sched: BspSchedule,
    /// Final (optimized) communication schedule.
    pub comm: CommSchedule,
    /// Final total cost.
    pub cost: u64,
    /// Cost of the best initialization (lazy Γ), before local search.
    pub init_cost: u64,
    /// Initializer that won the selection.
    pub best_init: Initializer,
    /// Cost after HC + HCcs on the best candidate.
    pub hc_cost: u64,
    /// Cost after the assignment ILP stages (`ILPfull`/`ILPpart`, with Γ
    /// re-optimized by HCcs) but before `ILPcs`.
    pub part_cost: u64,
    /// Cost after the ILP stages (equals `cost`).
    pub ilp_cost: u64,
    /// Wall-clock time the pipeline spent end to end.
    pub elapsed: Duration,
}

/// Runs the Figure-3 pipeline with an unlimited budget and no observer.
pub fn schedule_dag(dag: &Dag, machine: &BspParams, cfg: &PipelineConfig) -> PipelineResult {
    let req = SolveRequest::new(dag, machine);
    let mut cx = SolveCx::new("pipeline/base", &req);
    solve_base_pipeline(dag, machine, cfg, &mut cx)
}

/// `cfg` with the remaining solve budget folded into every stage's own
/// wall-clock/move limits and the ILP master switch. Re-evaluated before
/// each stage, so earlier stages shrink the budgets of later ones.
fn clamped(cfg: &PipelineConfig, cx: &SolveCx<'_>) -> PipelineConfig {
    let mut c = cfg.clone();
    c.hc.max_moves = cx.clamp_moves(cfg.hc.max_moves);
    c.hc.time_limit = cx.clamp_time(cfg.hc.time_limit);
    c.hccs.max_moves = cx.clamp_moves(cfg.hccs.max_moves);
    c.hccs.time_limit = cx.clamp_time(cfg.hccs.time_limit);
    if let Some(t) = cx.clamp_time(Some(cfg.ilp.limits.time_limit)) {
        c.ilp.limits.time_limit = t;
    }
    c.enable_ilp = cx.ilp_enabled(cfg.enable_ilp);
    c
}

/// [`clamped`] for the warm-start pipeline (`crate::warm`), which shares
/// the budget-folding behaviour but lives in another module.
pub(crate) fn clamped_for_warm(cfg: &PipelineConfig, cx: &SolveCx<'_>) -> PipelineConfig {
    clamped(cfg, cx)
}

/// Runs the Figure-3 pipeline under `cx`'s budget clock: stages `init`,
/// `hc` (HC + HCcs + optional escape search) and `ilp`, with the deadline
/// checked at every stage boundary. Always returns a valid schedule — under
/// an already-expired deadline, the best initialization with its lazy `Γ`.
pub fn solve_base_pipeline(
    dag: &Dag,
    machine: &BspParams,
    cfg: &PipelineConfig,
    cx: &mut SolveCx<'_>,
) -> PipelineResult {
    let began = Instant::now();
    let _pipeline_span = bsp_obs::trace::global().span("pipeline/base", "pipeline");
    let enable_ilp = cx.ilp_enabled(cfg.enable_ilp);
    let use_ilp_init = cfg.use_ilp_init.unwrap_or(machine.p() <= 4 && enable_ilp) && enable_ilp;
    let threads = cx.threads(cfg.threads);

    // Stage 1 — initialization. Runs even under an expired deadline: some
    // valid schedule must exist before anything can be truncated.
    cx.begin("init");
    let init_span = bsp_obs::trace::global().span("init", "pipeline");
    let mut candidates: Vec<(Initializer, BspSchedule)> = vec![
        (Initializer::BspG, bspg_schedule(dag, machine)),
        (Initializer::Source, source_schedule(dag, machine)),
    ];
    if use_ilp_init && !cx.expired() {
        let icfg = clamped(cfg, cx).ilp;
        candidates.push((Initializer::IlpInit, ilp_init(dag, machine, &icfg)));
    }
    let costed: Vec<(u64, Initializer, BspSchedule)> = candidates
        .into_iter()
        .map(|(which, init)| (lazy_cost(dag, machine, &init), which, init))
        .collect();
    let (init_cost, mut best_init) = costed
        .iter()
        .map(|&(c, which, _)| (c, which))
        .min_by_key(|&(c, _)| c)
        .expect("at least two initializers ran");
    cx.improved(init_cost);
    init_span.finish();
    cx.end(init_cost, false);

    // Best-so-far: the cheapest initialization under its lazy Γ. Every
    // later stage only replaces it with something strictly cheaper.
    let mut sched = costed
        .iter()
        .min_by_key(|&&(c, ..)| c)
        .map(|(_, _, s)| s.clone())
        .unwrap();
    let mut comm = CommSchedule::lazy(dag, &sched);
    let mut hc_cost = init_cost;

    // Stage 2 — HC, then HCcs, per candidate; keep the cheapest.
    cx.begin("hc");
    let hc_span = bsp_obs::trace::global().span("hc", "pipeline");
    for (_, which, init) in &costed {
        if cx.check_expired() {
            break;
        }
        let c = clamped(cfg, cx);
        let mut st = ScheduleState::new(dag, machine, init);
        hill_climb(&mut st, &c.hc);
        let cand = compact_lazy(dag, &st.snapshot());
        let (cand_comm, cand_cost) =
            optimize_comm_schedule_threaded(dag, machine, &cand, &c.hccs, threads);
        if cand_cost < hc_cost {
            hc_cost = cand_cost;
            best_init = *which;
            sched = cand;
            comm = cand_comm;
            cx.improved(cand_cost);
        }
    }

    // Optional escape-local-minima stage on the winning candidate; folded
    // into the local-search stage cost because it refines the same move
    // space (never worse than its input by construction).
    if let Some(escape) = &cfg.escape {
        if !cx.check_expired() {
            let _escape_span = bsp_obs::trace::global().span(
                match escape {
                    EscapeSearch::Anneal(_) => "escape/anneal",
                    EscapeSearch::Tabu(_) => "escape/tabu",
                },
                "pipeline",
            );
            let c = clamped(cfg, cx);
            let refined = match escape {
                EscapeSearch::Anneal(a) => {
                    let mut a = a.clone();
                    a.seed = a.seed.wrapping_add(cx.seed());
                    a.time_limit = cx.clamp_time(a.time_limit);
                    simulated_annealing(dag, machine, &sched, &a).0
                }
                EscapeSearch::Tabu(t) => {
                    let mut t = t.clone();
                    t.time_limit = cx.clamp_time(t.time_limit);
                    tabu_search_threaded(dag, machine, &sched, &t, threads).0
                }
            };
            let refined = compact_lazy(dag, &refined);
            let (r_comm, r_cost) =
                optimize_comm_schedule_threaded(dag, machine, &refined, &c.hccs, threads);
            if r_cost < hc_cost {
                hc_cost = r_cost;
                sched = refined;
                comm = r_comm;
                cx.improved(r_cost);
            }
        }
    }
    hc_span.finish();
    let hc_truncated = cx.expired();
    cx.end(hc_cost, hc_truncated);

    let mut cost = hc_cost;
    let mut part_cost = hc_cost;

    if enable_ilp && dag.n() > 0 && !cx.check_expired() {
        cx.begin("ilp");
        let _ilp_span = bsp_obs::trace::global().span("ilp", "pipeline");
        // ILPfull when small; always followed by ILPpart unless optimality
        // was proven (paper §6). Budgets re-clamp between solver calls.
        let (after_full, proven) = ilp_full(dag, machine, &sched, &clamped(cfg, cx).ilp);
        let mut assignment = after_full;
        if !proven && !cx.expired() {
            assignment = ilp_part(dag, machine, &assignment, &clamped(cfg, cx).ilp);
        }
        // Re-optimize Γ on the (possibly) new assignment: HCcs then ILPcs.
        let c = clamped(cfg, cx);
        let (hccs_comm, hccs_cost) =
            optimize_comm_schedule_threaded(dag, machine, &assignment, &c.hccs, threads);
        part_cost = part_cost.min(hccs_cost);
        let (ilpcs_comm, ilpcs_cost) =
            ilp_comm(dag, machine, &assignment, &hccs_comm, &c.ilp.limits);
        let (new_comm, new_cost) = if ilpcs_cost <= hccs_cost {
            (ilpcs_comm, ilpcs_cost)
        } else {
            (hccs_comm, hccs_cost)
        };
        if new_cost < cost {
            sched = assignment;
            comm = new_comm;
            cost = new_cost;
            cx.improved(cost);
        }
        let ilp_truncated = cx.expired();
        cx.end(cost, ilp_truncated);
    }

    PipelineResult {
        sched,
        comm,
        cost,
        init_cost,
        best_init,
        hc_cost,
        part_cost,
        ilp_cost: cost,
        elapsed: began.elapsed(),
    }
}

/// Runs the Figure-4 multilevel pipeline with an unlimited budget.
pub fn schedule_dag_multilevel(
    dag: &Dag,
    machine: &BspParams,
    cfg: &PipelineConfig,
    ml: &MultilevelConfig,
) -> PipelineResult {
    let req = SolveRequest::new(dag, machine);
    let mut cx = SolveCx::new("pipeline/multilevel", &req);
    solve_multilevel_pipeline(dag, machine, cfg, ml, &mut cx)
}

/// Runs the Figure-4 multilevel pipeline under `cx`'s budget clock: coarsen,
/// schedule the coarse DAG with the Figure-3 pipeline (without `ILPcs`),
/// uncoarsen and refine (stage `multilevel`), then optimize the
/// communication schedule on the original DAG (stage `polish`).
pub fn solve_multilevel_pipeline(
    dag: &Dag,
    machine: &BspParams,
    cfg: &PipelineConfig,
    ml: &MultilevelConfig,
    cx: &mut SolveCx<'_>,
) -> PipelineResult {
    let began = Instant::now();
    let _pipeline_span = bsp_obs::trace::global().span("pipeline/multilevel", "pipeline");
    cx.begin("multilevel");
    let ml_span = bsp_obs::trace::global().span("multilevel", "pipeline");
    // Each inner base run gets a real deadline — the outer budget's
    // remaining time at the moment it starts — so its own stages re-check
    // and re-clamp instead of all snapshotting the same allowance. The
    // inner runs skip ILPcs (Γ is re-optimized after uncoarsening);
    // solve_base_pipeline applies ILPcs internally but its result is only
    // used through the assignment, so this is naturally satisfied.
    let ilp_override = Some(cx.ilp_enabled(cfg.enable_ilp));
    let inner_budget = |cx: &SolveCx<'_>| Budget {
        deadline: cx.remaining(),
        max_stage_moves: cx.clamp_moves(None),
        ilp: ilp_override,
        cancel: cx.cancel_token(),
    };
    let mut base = |d: &Dag, m: &BspParams| -> BspSchedule {
        let req = SolveRequest::new(d, m).with_budget(inner_budget(cx));
        let mut inner = SolveCx::new("pipeline/multilevel/base", &req);
        solve_base_pipeline(d, m, cfg, &mut inner).sched
    };
    let sched = multilevel_schedule(dag, machine, ml, &mut base);
    let init_cost = lazy_cost(dag, machine, &sched);
    cx.improved(init_cost);
    ml_span.finish();
    let ml_truncated = cx.expired();
    cx.end(init_cost, ml_truncated);

    if cx.check_expired() {
        // Deadline hit: the uncoarsened schedule under its lazy Γ is the
        // valid best-so-far.
        let comm = CommSchedule::lazy(dag, &sched);
        return PipelineResult {
            sched,
            comm,
            cost: init_cost,
            init_cost,
            best_init: Initializer::BspG,
            hc_cost: init_cost,
            part_cost: init_cost,
            ilp_cost: init_cost,
            elapsed: began.elapsed(),
        };
    }

    // Final polish on the original DAG: HCcs, then ILPcs.
    cx.begin("polish");
    let _polish_span = bsp_obs::trace::global().span("polish", "pipeline");
    let c = clamped(cfg, cx);
    let (hccs_comm, hccs_cost) =
        optimize_comm_schedule_threaded(dag, machine, &sched, &c.hccs, cx.threads(cfg.threads));
    let (comm, cost) = if c.enable_ilp && !cx.expired() {
        let (c2, k2) = ilp_comm(dag, machine, &sched, &hccs_comm, &c.ilp.limits);
        if k2 <= hccs_cost {
            (c2, k2)
        } else {
            (hccs_comm, hccs_cost)
        }
    } else {
        (hccs_comm, hccs_cost)
    };
    if cost < init_cost {
        cx.improved(cost);
    }
    let polish_truncated = cx.expired();
    cx.end(cost, polish_truncated);
    PipelineResult {
        sched,
        comm,
        cost,
        init_cost,
        best_init: Initializer::BspG,
        hc_cost: hccs_cost,
        part_cost: hccs_cost,
        ilp_cost: cost,
        elapsed: began.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_model::NumaTopology;
    use bsp_schedule::cost::total_cost;
    use bsp_schedule::validity::validate;

    fn check_result(dag: &Dag, machine: &BspParams, r: &PipelineResult) {
        assert!(validate(dag, machine.p(), &r.sched, &r.comm).is_ok());
        assert_eq!(r.cost, total_cost(dag, machine, &r.sched, &r.comm));
        assert!(r.hc_cost <= r.init_cost, "HC must not worsen the best init");
        assert!(r.cost <= r.hc_cost, "ILP stages must not worsen");
    }

    /// Debug-build-friendly budgets: the defaults allow seconds per ILP.
    fn fast_cfg() -> PipelineConfig {
        let mut cfg = PipelineConfig::default();
        cfg.ilp.limits.max_nodes = 30;
        cfg.ilp.limits.time_limit = std::time::Duration::from_millis(250);
        cfg.ilp.full_max_vars = 400;
        cfg.ilp.part_target_vars = 200;
        cfg
    }

    #[test]
    fn pipeline_monotone_and_valid() {
        for seed in 0..3 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 4,
                    width: 5,
                    edge_prob: 0.35,
                    ..Default::default()
                },
            );
            let machine = BspParams::new(4, 3, 5);
            let r = schedule_dag(&dag, &machine, &fast_cfg());
            check_result(&dag, &machine, &r);
        }
    }

    #[test]
    fn pipeline_without_ilp() {
        let dag = random_layered_dag(7, LayeredConfig::default());
        let machine = BspParams::new(8, 1, 5);
        let cfg = PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        };
        let r = schedule_dag(&dag, &machine, &cfg);
        check_result(&dag, &machine, &r);
    }

    #[test]
    fn pipeline_with_numa() {
        let dag = random_layered_dag(
            11,
            LayeredConfig {
                layers: 5,
                width: 4,
                ..Default::default()
            },
        );
        let machine = BspParams::new(8, 1, 5).with_numa(NumaTopology::binary_tree(8, 3));
        let cfg = PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        };
        let r = schedule_dag(&dag, &machine, &cfg);
        check_result(&dag, &machine, &r);
    }

    #[test]
    fn pipeline_with_escape_stages_monotone() {
        use crate::anneal::AnnealConfig;
        use crate::tabu::TabuConfig;
        let dag = random_layered_dag(
            21,
            LayeredConfig {
                layers: 5,
                width: 5,
                edge_prob: 0.35,
                ..Default::default()
            },
        );
        let machine = BspParams::new(4, 3, 5);
        for escape in [
            EscapeSearch::Anneal(AnnealConfig {
                max_steps: 5_000,
                time_limit: None,
                ..AnnealConfig::default()
            }),
            EscapeSearch::Tabu(TabuConfig {
                max_iters: 120,
                time_limit: None,
                ..TabuConfig::default()
            }),
        ] {
            let mut cfg = fast_cfg();
            cfg.escape = Some(escape);
            let r = schedule_dag(&dag, &machine, &cfg);
            check_result(&dag, &machine, &r);
        }
    }

    #[test]
    fn escape_stage_beats_plain_hc_on_plateau() {
        use crate::tabu::TabuConfig;
        // Independent heavy nodes: greedy HC is plateau-stuck (see the tabu
        // module tests); the escape stage must get the pipeline through.
        let mut b = bsp_dag::DagBuilder::new();
        for _ in 0..4 {
            b.add_node(10, 1);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(4, 1, 2);
        let mut cfg = PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        };
        let plain = schedule_dag(&dag, &machine, &cfg);
        cfg.escape = Some(EscapeSearch::Tabu(TabuConfig {
            max_iters: 300,
            time_limit: None,
            ..TabuConfig::default()
        }));
        let escaped = schedule_dag(&dag, &machine, &cfg);
        assert!(escaped.cost <= plain.cost);
        assert_eq!(escaped.cost, 12, "tabu escape should reach the optimum");
    }

    #[test]
    fn multilevel_pipeline_valid() {
        let dag = random_layered_dag(
            13,
            LayeredConfig {
                layers: 6,
                width: 5,
                ..Default::default()
            },
        );
        let machine = BspParams::new(4, 10, 5).with_numa(NumaTopology::binary_tree(4, 4));
        let cfg = PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        };
        let r = schedule_dag_multilevel(&dag, &machine, &cfg, &MultilevelConfig::default());
        assert!(validate(&dag, 4, &r.sched, &r.comm).is_ok());
        assert_eq!(r.cost, total_cost(&dag, &machine, &r.sched, &r.comm));
    }
}
