//! Simulated annealing over the hill-climbing move space.
//!
//! The paper's conclusion names "more complex local search techniques that
//! also attempt to escape local minima" as a natural replacement for plain
//! hill climbing (§8). This module implements that extension: the same
//! single-node neighbourhood as [`crate::hc`] (any processor, superstep
//! within ±1), but with Metropolis acceptance — a cost-increasing move is
//! accepted with probability `exp(−Δ/T)` under a geometrically cooling
//! temperature `T`.
//!
//! The run keeps the best schedule encountered, so the result is never
//! worse than the input even though the walk itself may climb. Every
//! proposal is evaluated through the read-only
//! [`ScheduleState::probe_move`] gain kernel; the state is mutated only on
//! acceptance, so rejected proposals cost no apply/revert pair.

use crate::state::ScheduleState;
use bsp_dag::Dag;
use bsp_model::BspParams;
use bsp_schedule::BspSchedule;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Simulated-annealing parameters.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Starting temperature; `None` calibrates it from sampled move deltas
    /// so that an average uphill move starts ~60% likely to be accepted.
    pub initial_temp: Option<f64>,
    /// Geometric cooling factor applied after every temperature plateau.
    pub cooling: f64,
    /// Proposals per temperature plateau.
    pub steps_per_temp: usize,
    /// Stop once the temperature falls below this value.
    pub min_temp: f64,
    /// Hard cap on total proposals.
    pub max_steps: usize,
    /// Wall-clock limit.
    pub time_limit: Option<Duration>,
    /// RNG seed (runs are deterministic for a fixed seed and input).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            initial_temp: None,
            cooling: 0.95,
            steps_per_temp: 64,
            min_temp: 0.05,
            max_steps: 200_000,
            time_limit: Some(Duration::from_secs(5)),
            seed: 0xB5B5_5EED,
        }
    }
}

/// Outcome counters of an annealing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnealStats {
    /// Total proposals drawn.
    pub proposed: usize,
    /// Accepted moves (downhill or Metropolis-accepted uphill).
    pub accepted: usize,
    /// Accepted moves that increased the cost (escapes).
    pub uphill: usize,
    /// Times a new global best was recorded.
    pub improved_best: usize,
}

/// Runs simulated annealing starting from `sched` and returns the best
/// schedule found together with its lazy cost and run statistics. The
/// returned cost is never above the lazy cost of the input.
///
/// ```
/// use bsp_core::anneal::{simulated_annealing, AnnealConfig};
/// use bsp_core::init::bspg_schedule;
/// use bsp_dag::random::{random_layered_dag, LayeredConfig};
/// use bsp_model::BspParams;
/// use bsp_schedule::cost::lazy_cost;
///
/// let dag = random_layered_dag(7, LayeredConfig::default());
/// let machine = BspParams::new(4, 3, 5);
/// let start = bspg_schedule(&dag, &machine);
/// let cfg = AnnealConfig { max_steps: 2_000, time_limit: None, ..Default::default() };
/// let (best, cost, _stats) = simulated_annealing(&dag, &machine, &start, &cfg);
/// assert!(cost <= lazy_cost(&dag, &machine, &start));
/// assert_eq!(cost, lazy_cost(&dag, &machine, &best));
/// ```
pub fn simulated_annealing(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    cfg: &AnnealConfig,
) -> (BspSchedule, u64, AnnealStats) {
    let mut state = ScheduleState::new(dag, machine, sched);
    let mut stats = AnnealStats::default();
    let mut best = sched.clone();
    let mut best_cost = state.cost();
    if dag.n() == 0 {
        return (best, best_cost, stats);
    }

    let deadline = cfg.time_limit.map(|t| Instant::now() + t);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut temp = cfg
        .initial_temp
        .unwrap_or_else(|| calibrate_temperature(&state, &mut rng));

    'outer: while temp >= cfg.min_temp && stats.proposed < cfg.max_steps {
        for _ in 0..cfg.steps_per_temp {
            if stats.proposed >= cfg.max_steps {
                break 'outer;
            }
            if let Some(d) = deadline {
                // Checking the clock every proposal would dominate small
                // instances; every 32nd proposal is precise enough.
                if stats.proposed % 32 == 0 && Instant::now() >= d {
                    break 'outer;
                }
            }
            stats.proposed += 1;
            let Some((v, q, s)) = propose(&state, &mut rng) else {
                continue;
            };
            // Probe first: rejected proposals (the vast majority at low
            // temperatures) cost one read-only gain evaluation and zero
            // mutation instead of an apply/revert pair.
            let delta = state.probe_move(v, q, s);
            let accept = delta <= 0 || rng.gen::<f64>() < (-(delta as f64) / temp).exp();
            if accept {
                let before = state.cost();
                let after = state.apply_move(v, q, s);
                debug_assert_eq!(after as i64 - before as i64, delta);
                stats.accepted += 1;
                if delta > 0 {
                    stats.uphill += 1;
                }
                if after < best_cost {
                    best_cost = after;
                    best = state.snapshot();
                    stats.improved_best += 1;
                }
            }
        }
        temp *= cfg.cooling;
    }
    (best, best_cost, stats)
}

/// Draws one uniformly random valid move from the hill-climbing
/// neighbourhood, or `None` if the sampled node has no valid alternative.
fn propose(state: &ScheduleState<'_>, rng: &mut SmallRng) -> Option<(bsp_dag::NodeId, u32, u32)> {
    let (n, p) = (state.n() as u32, state.p());
    let v = rng.gen_range(0..n);
    let (cur_p, cur_s) = (state.proc(v), state.step(v));
    let q = rng.gen_range(0..p);
    let s = match rng.gen_range(0..3u32) {
        0 => cur_s.checked_sub(1)?,
        1 => cur_s,
        _ => cur_s + 1,
    };
    if (q, s) == (cur_p, cur_s) || !state.is_move_valid(v, q, s) {
        return None;
    }
    Some((v, q, s))
}

/// Samples random valid moves and returns a temperature at which the mean
/// uphill delta is accepted with probability ≈ 0.6 (T = Δ̄ / ln(1/0.6)).
/// Probes only — the walk has not started yet and the state must not move.
fn calibrate_temperature(state: &ScheduleState<'_>, rng: &mut SmallRng) -> f64 {
    let mut total_uphill = 0u64;
    let mut count = 0u32;
    for _ in 0..256 {
        let Some((v, q, s)) = propose(state, rng) else {
            continue;
        };
        let delta = state.probe_move(v, q, s);
        if delta > 0 {
            total_uphill += delta as u64;
            count += 1;
        }
    }
    if count == 0 {
        return 1.0;
    }
    let mean = total_uphill as f64 / count as f64;
    (mean / (1.0f64 / 0.6).ln()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hc::{hill_climb, HillClimbConfig};
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_schedule::cost::lazy_cost;
    use bsp_schedule::validity::validate_lazy;

    fn quick_cfg(seed: u64) -> AnnealConfig {
        AnnealConfig {
            steps_per_temp: 48,
            max_steps: 20_000,
            time_limit: None,
            seed,
            ..AnnealConfig::default()
        }
    }

    #[test]
    fn never_worse_than_input_and_valid() {
        for seed in 0..5 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 5,
                    width: 5,
                    edge_prob: 0.4,
                    ..Default::default()
                },
            );
            let machine = BspParams::new(4, 3, 5);
            let sched = BspSchedule::zeroed(dag.n());
            let input = lazy_cost(&dag, &machine, &sched);
            let (best, cost, _) = simulated_annealing(&dag, &machine, &sched, &quick_cfg(seed));
            assert!(cost <= input, "seed {seed}: {cost} > {input}");
            assert_eq!(cost, lazy_cost(&dag, &machine, &best), "seed {seed}");
            assert!(validate_lazy(&dag, 4, &best).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dag = random_layered_dag(3, LayeredConfig::default());
        let machine = BspParams::new(4, 2, 3);
        let sched = BspSchedule::zeroed(dag.n());
        let (a, ca, sa) = simulated_annealing(&dag, &machine, &sched, &quick_cfg(7));
        let (b, cb, sb) = simulated_annealing(&dag, &machine, &sched, &quick_cfg(7));
        assert_eq!(ca, cb);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn escapes_record_uphill_moves() {
        // On a non-trivial instance at sensible temperatures, some uphill
        // moves must be accepted (that is the entire point of annealing).
        let dag = random_layered_dag(
            11,
            LayeredConfig {
                layers: 6,
                width: 5,
                edge_prob: 0.35,
                ..Default::default()
            },
        );
        let machine = BspParams::new(4, 4, 5);
        let sched = BspSchedule::zeroed(dag.n());
        let (_, _, stats) = simulated_annealing(&dag, &machine, &sched, &quick_cfg(5));
        assert!(stats.uphill > 0, "no uphill moves accepted: {stats:?}");
        assert!(stats.accepted >= stats.uphill);
        assert!(stats.proposed >= stats.accepted);
    }

    #[test]
    fn can_escape_a_plateau_greedy_cannot_cross() {
        // Four independent weight-10 nodes, 4 processors, started as two
        // pairs. Every single move keeps max-load at 20 (a plateau), so
        // greedy HC is stuck at cost 22; annealing can cross and find the
        // 1-per-processor optimum of 12 (cost 10 work + 2 latency).
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            b.add_node(10, 1);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(4, 1, 2);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0; 4]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        hill_climb(
            &mut st,
            &HillClimbConfig {
                max_moves: None,
                time_limit: None,
            },
        );
        let greedy = st.cost();
        assert_eq!(greedy, 22, "premise: greedy is plateau-stuck");

        let mut found_optimum = false;
        for seed in 0..8 {
            let (_, cost, _) = simulated_annealing(&dag, &machine, &sched, &quick_cfg(seed));
            if cost <= 12 {
                found_optimum = true;
                break;
            }
        }
        assert!(found_optimum, "annealing never crossed the plateau");
    }

    #[test]
    fn empty_dag() {
        let dag = DagBuilder::new().build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::zeroed(0);
        let (best, cost, stats) =
            simulated_annealing(&dag, &machine, &sched, &AnnealConfig::default());
        assert_eq!(best.n(), 0);
        assert_eq!(cost, 0);
        assert_eq!(stats.proposed, 0);
    }

    #[test]
    fn respects_step_budget() {
        let dag = random_layered_dag(1, LayeredConfig::default());
        let machine = BspParams::new(4, 2, 3);
        let sched = BspSchedule::zeroed(dag.n());
        let cfg = AnnealConfig {
            max_steps: 100,
            time_limit: None,
            ..AnnealConfig::default()
        };
        let (_, _, stats) = simulated_annealing(&dag, &machine, &sched, &cfg);
        assert!(stats.proposed <= 100);
    }
}
