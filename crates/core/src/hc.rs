//! Hill-climbing local search over node moves (paper §4.3, A.3).
//!
//! From the current schedule, the neighbourhood of a node `v` at
//! `(p, s)` is: every other processor in superstep `s`, and every processor
//! in supersteps `s − 1` and `s + 1`. The search greedily applies the first
//! cost-decreasing valid move it finds (the paper found greedy
//! first-improvement as good as steepest-descent and much faster), until a
//! local minimum or a budget is reached. Candidates are evaluated through
//! the read-only [`ScheduleState::probe_move`] gain kernel; the state is
//! mutated only for accepted moves.

use crate::state::{ProcWindow, ScheduleState};
use bsp_dag::NodeId;
use std::time::{Duration, Instant};

/// Budgets for a hill-climbing run.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbConfig {
    /// Maximum number of *accepted* (improving) moves; `None` = unlimited.
    pub max_moves: Option<usize>,
    /// Wall-clock limit; `None` = unlimited.
    pub time_limit: Option<Duration>,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            max_moves: None,
            time_limit: Some(Duration::from_secs(5)),
        }
    }
}

/// Outcome of a hill-climbing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HillClimbStats {
    /// Number of improving moves applied.
    pub accepted: usize,
    /// Whether a local minimum was certified (a full sweep found nothing).
    pub local_minimum: bool,
}

/// Runs greedy first-improvement hill climbing in place. The cost of
/// `state` never increases.
pub fn hill_climb(state: &mut ScheduleState<'_>, cfg: &HillClimbConfig) -> HillClimbStats {
    hill_climb_from(state, cfg, 0)
}

/// [`hill_climb`] restricted to the tentative suffix of an online
/// schedule: nodes in supersteps below `floor` are *committed* (already
/// dispatched) — they are never moved, and no node is ever moved into a
/// superstep below `floor`. Committed nodes still participate in every
/// cost and precedence computation, so a suffix move is accepted only if
/// it is valid against the frozen prefix too. `floor == 0` is exactly
/// [`hill_climb`].
pub fn hill_climb_from(
    state: &mut ScheduleState<'_>,
    cfg: &HillClimbConfig,
    floor: u32,
) -> HillClimbStats {
    let stats = hill_climb_from_inner(state, cfg, floor);
    // One flush per run: the sweeps themselves stay counter-free.
    crate::obs::ls_metrics().moves.add(stats.accepted as u64);
    stats
}

fn hill_climb_from_inner(
    state: &mut ScheduleState<'_>,
    cfg: &HillClimbConfig,
    floor: u32,
) -> HillClimbStats {
    let deadline = cfg.time_limit.map(|t| Instant::now() + t);
    let max_moves = cfg.max_moves.unwrap_or(usize::MAX);
    let n = state.dag().n() as u32;
    let p = state.machine().p() as u32;
    let mut accepted = 0usize;

    if n == 0 {
        return HillClimbStats {
            accepted: 0,
            local_minimum: true,
        };
    }

    loop {
        let mut improved_this_sweep = false;
        for v in 0..n as NodeId {
            if accepted >= max_moves {
                return HillClimbStats {
                    accepted,
                    local_minimum: false,
                };
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return HillClimbStats {
                        accepted,
                        local_minimum: false,
                    };
                }
            }
            if state.step(v) < floor {
                continue;
            }
            // Try moves for v until none improves (a node can profitably
            // move several times across sweeps; within the sweep we retry
            // the same node after a success, matching greedy descent).
            loop {
                match try_improve_node(state, v, p, floor) {
                    true => {
                        accepted += 1;
                        improved_this_sweep = true;
                        if accepted >= max_moves {
                            return HillClimbStats {
                                accepted,
                                local_minimum: false,
                            };
                        }
                    }
                    false => break,
                }
            }
        }
        if !improved_this_sweep {
            return HillClimbStats {
                accepted,
                local_minimum: true,
            };
        }
    }
}

/// Attempts the neighbourhood of `v`; probes candidates read-only and
/// applies the first improving move. Steps are pre-filtered with
/// [`ScheduleState::valid_procs`], preserving the `(s, q)` probe order.
/// Steps below `floor` are never probed (committed-prefix protection).
fn try_improve_node(state: &mut ScheduleState<'_>, v: NodeId, p: u32, floor: u32) -> bool {
    let (cur_p, cur_s) = (state.proc(v), state.step(v));
    let lo = cur_s.saturating_sub(1).max(floor);
    let hi = cur_s + 1;
    for s in lo..=hi {
        let try_one = |state: &mut ScheduleState<'_>, q: u32| {
            if (q, s) != (cur_p, cur_s) && state.probe_move(v, q, s) < 0 {
                state.apply_move(v, q, s);
                true
            } else {
                false
            }
        };
        match state.valid_procs(v, s) {
            ProcWindow::None => {}
            ProcWindow::Only(q) => {
                if try_one(state, q) {
                    return true;
                }
            }
            ProcWindow::All => {
                for q in 0..p {
                    if try_one(state, q) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_model::BspParams;
    use bsp_schedule::validity::validate_lazy;
    use bsp_schedule::BspSchedule;

    #[test]
    fn gathers_scattered_chain_onto_one_processor() {
        // A chain spread over processors pays communication every step; HC
        // should pull it together (or at least strictly reduce cost).
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_node(1, 5)).collect();
        for i in 0..5 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 5, 3);
        let sched = BspSchedule::from_parts(vec![0, 1, 0, 1, 0, 1], vec![0, 1, 2, 3, 4, 5]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let before = st.cost(); // 6 work + 5 transfers * 25 + 6 latencies = 149
        assert_eq!(before, 149);
        let stats = hill_climb(
            &mut st,
            &HillClimbConfig {
                max_moves: None,
                time_limit: None,
            },
        );
        assert!(stats.local_minimum);
        assert_eq!(st.cost(), st.recomputed_cost());
        assert!(validate_lazy(&dag, 2, &st.snapshot()).is_ok());
        // Greedy first-improvement reaches a local minimum; it must at least
        // eliminate every transfer (any cross-processor edge costs g*c = 25,
        // more than the entire all-local schedule), i.e. land within a few
        // latency charges of the global optimum 9.
        assert!(st.cost() <= 6 + 3 * machine.l(), "stuck at {}", st.cost());
    }

    #[test]
    fn spreads_parallel_work() {
        // Independent heavy nodes all on one processor: HC moves them apart.
        // Strict first-improvement cannot cross the plateau from the
        // 2+2-per-processor split (cost 22) to the perfect 1-per-processor
        // split (cost 12) — every single move keeps the max load at 20 — so
        // the guaranteed outcome is cost <= 22 (vs. 42 initially).
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            b.add_node(10, 1);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(4, 1, 2);
        let sched = BspSchedule::zeroed(4);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        assert_eq!(st.cost(), 42);
        hill_climb(
            &mut st,
            &HillClimbConfig {
                max_moves: None,
                time_limit: None,
            },
        );
        assert!(st.cost() <= 22, "got {}", st.cost());
        assert_eq!(st.cost(), st.recomputed_cost());
    }

    #[test]
    fn floor_freezes_the_committed_prefix() {
        // The scattered chain again, but supersteps 0..3 are committed:
        // nodes 0..3 must keep their exact assignment and nothing may move
        // below superstep 3.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_node(1, 5)).collect();
        for i in 0..5 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 5, 3);
        let sched = BspSchedule::from_parts(vec![0, 1, 0, 1, 0, 1], vec![0, 1, 2, 3, 4, 5]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let before = st.cost();
        let cfg = HillClimbConfig {
            max_moves: None,
            time_limit: None,
        };
        hill_climb_from(&mut st, &cfg, 3);
        let after = st.snapshot();
        for v in 0..3 {
            assert_eq!(after.proc(v), sched.proc(v), "committed node {v} moved");
            assert_eq!(after.step(v), sched.step(v), "committed node {v} moved");
        }
        for v in 3..6 {
            assert!(after.step(v) >= 3, "node {v} moved below the floor");
        }
        assert!(st.cost() <= before);
        assert!(validate_lazy(&dag, 2, &after).is_ok());

        // floor 0 reproduces plain hill_climb exactly.
        let mut a = ScheduleState::new(&dag, &machine, &sched);
        let mut b2 = ScheduleState::new(&dag, &machine, &sched);
        hill_climb(&mut a, &cfg);
        hill_climb_from(&mut b2, &cfg, 0);
        assert_eq!(a.snapshot(), b2.snapshot());
    }

    #[test]
    fn respects_move_budget() {
        let dag = random_layered_dag(
            1,
            LayeredConfig {
                layers: 4,
                width: 6,
                ..Default::default()
            },
        );
        let machine = BspParams::new(4, 2, 3);
        let sched = BspSchedule::zeroed(dag.n());
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let stats = hill_climb(
            &mut st,
            &HillClimbConfig {
                max_moves: Some(3),
                time_limit: None,
            },
        );
        assert!(stats.accepted <= 3);
    }

    #[test]
    fn never_increases_cost_and_stays_valid() {
        for seed in 0..6 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 5,
                    width: 5,
                    edge_prob: 0.4,
                    ..Default::default()
                },
            );
            let machine = BspParams::new(4, 3, 5);
            let sched = BspSchedule::zeroed(dag.n());
            let mut st = ScheduleState::new(&dag, &machine, &sched);
            let before = st.cost();
            hill_climb(
                &mut st,
                &HillClimbConfig {
                    max_moves: Some(500),
                    time_limit: None,
                },
            );
            assert!(st.cost() <= before, "seed {seed}");
            assert_eq!(st.cost(), st.recomputed_cost(), "seed {seed}");
            assert!(
                validate_lazy(&dag, 4, &st.snapshot()).is_ok(),
                "seed {seed}"
            );
        }
    }
}
