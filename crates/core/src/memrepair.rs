//! Feasibility repair for memory-bounded machines: greedy superstep
//! splitting.
//!
//! A schedule violates a machine's fast-memory bound when some compute
//! phase's working set — the cell's distinct inputs plus its own outputs —
//! exceeds the capacity `M`
//! ([`InvalidSchedule::MemoryExceeded`](bsp_schedule::InvalidSchedule)).
//! Cross-superstep pressure is never a feasibility problem (eviction plus
//! re-fetch handles it, at a cost the residency simulator charges), so
//! repair only has to break up oversized cells: the offending cell's nodes
//! are partitioned, in topological order, into consecutive groups whose
//! individual working sets fit, and `k − 1` fresh supersteps are inserted
//! to hold groups `1..k` (every later superstep shifts up). The
//! transformation preserves schedule validity — same-processor precedence
//! is kept by the topological grouping, and cross-processor consumers only
//! move further into the future — and is deterministic.
//!
//! Spill traffic is *not* inserted explicitly: splitting re-exposes the
//! eviction points to the residency simulator, which charges the implied
//! re-fetches into the cost model (`SuperstepCost::refetch`). This mirrors
//! the greedy spill-insertion view — each group boundary is exactly a
//! point where the evicted inputs of later groups spill to their
//! producers' backing stores.
//!
//! The pass is *monotone in feasibility*: it never increases the number of
//! memory violations, and a node whose own working set exceeds `M` (no
//! split can help) is left in place and reported, so the result is always
//! feasible-or-best-effort — also under an expired budget, which simply
//! stops the splitting early ([`repair_memory_with`]).

use bsp_dag::topo::TopoInfo;
use bsp_dag::{Dag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::memory::{memory_cost, memory_violations, node_working_set};
use bsp_schedule::scheduler::{ScheduleResult, Scheduler, SchedulerKind};
use bsp_schedule::solve::{Budget, SolveCx, SolveOutcome, SolveRequest};
use bsp_schedule::{BspSchedule, CommSchedule};
use std::collections::HashSet;

/// What one repair pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Memory violations in the input schedule.
    pub violations_before: usize,
    /// Memory violations remaining (0 unless a single node's working set
    /// exceeds `M`, or the budget expired mid-repair).
    pub violations_after: usize,
    /// Oversized cells split.
    pub splits: usize,
    /// Supersteps inserted across all splits.
    pub inserted_supersteps: u32,
    /// Whether the budget stopped the pass before it ran dry.
    pub truncated: bool,
}

/// [`repair_memory`] with a budget probe: `expired()` is polled between
/// splits, and a `true` stops the pass, returning the current best-effort
/// schedule (always at least as feasible as the input).
pub fn repair_memory_with(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    mut expired: impl FnMut() -> bool,
) -> (BspSchedule, RepairReport) {
    let mut report = RepairReport {
        violations_before: memory_violations(dag, machine, sched).len(),
        ..RepairReport::default()
    };
    let mut cur = sched.clone();
    if report.violations_before == 0 {
        return (cur, report);
    }
    let spec = machine
        .memory()
        .expect("violations exist only on memory-bounded machines");
    let topo = TopoInfo::new(dag);
    // A node whose own working set (its output plus all inputs) exceeds M
    // cannot be made feasible by any split.
    let unrepairable: Vec<bool> = dag
        .nodes()
        .map(|v| !spec.fits(node_working_set(dag, v)))
        .collect();
    // Each iteration splits one oversized multi-node cell into groups that
    // individually fit (or a single unrepairable node), so no cell is ever
    // attempted twice and the loop is bounded by the cell count. Cells
    // holding two or more unrepairable nodes are skipped outright:
    // splitting them would turn one violation into several, breaking the
    // never-more-violations contract.
    loop {
        if expired() {
            report.truncated = true;
            break;
        }
        let violations = memory_violations(dag, machine, &cur);
        let Some(target) = violations.iter().find(|v| {
            let mut nodes = 0usize;
            let mut bad = 0usize;
            for w in dag.nodes() {
                if cur.proc(w) == v.proc && cur.step(w) == v.step {
                    nodes += 1;
                    bad += unrepairable[w as usize] as usize;
                }
            }
            nodes > 1 && bad <= 1
        }) else {
            break; // only unsplittable cells remain (if any)
        };
        let (q, s) = (target.proc, target.step);
        let mut cell: Vec<NodeId> = dag
            .nodes()
            .filter(|&w| cur.proc(w) == q && cur.step(w) == s)
            .collect();
        cell.sort_unstable_by_key(|&w| (topo.position[w as usize], w));

        // Greedy grouping: add nodes while the group's working set fits.
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut counted: HashSet<NodeId> = HashSet::new();
        let mut need = 0u64;
        for &v in &cell {
            let mut delta = 0;
            let fresh: Vec<NodeId> = std::iter::once(v)
                .chain(dag.predecessors(v).iter().copied())
                .filter(|u| !counted.contains(u))
                .collect();
            for &u in &fresh {
                delta += dag.comm(u);
            }
            if !groups.is_empty() && !counted.is_empty() && !spec.fits(need + delta) {
                counted.clear();
                need = 0;
                groups.push(Vec::new());
            } else if groups.is_empty() {
                groups.push(Vec::new());
            }
            if counted.is_empty() {
                // (Re)opening a group: count v and all its inputs.
                for u in std::iter::once(v).chain(dag.predecessors(v).iter().copied()) {
                    if counted.insert(u) {
                        need += dag.comm(u);
                    }
                }
            } else {
                for &u in &fresh {
                    counted.insert(u);
                }
                need += delta;
            }
            groups.last_mut().unwrap().push(v);
        }
        let k = groups.len() as u32;
        debug_assert!(k >= 2, "an oversized multi-node cell must split");
        // Insert k−1 supersteps: later steps shift, group j lands at s+j.
        for w in dag.nodes() {
            if cur.step(w) > s {
                cur.set(w, cur.proc(w), cur.step(w) + k - 1);
            }
        }
        for (j, group) in groups.iter().enumerate() {
            for &v in group {
                cur.set(v, q, s + j as u32);
            }
        }
        report.splits += 1;
        report.inserted_supersteps += k - 1;
        debug_assert!(cur.respects_precedence_lazy(dag));
    }
    report.violations_after = memory_violations(dag, machine, &cur).len();
    debug_assert!(report.violations_after <= report.violations_before);
    (cur, report)
}

/// Makes a schedule memory-feasible by splitting oversized supersteps
/// (see the module docs). On machines without a memory bound, or for
/// already-feasible schedules, the input is returned unchanged.
pub fn repair_memory(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
) -> (BspSchedule, RepairReport) {
    repair_memory_with(dag, machine, sched, || false)
}

/// Wraps any [`Scheduler`] with the feasibility repair pass: solve, then —
/// on memory-bounded machines only — repair the result and re-cost it
/// under the residency simulator ([`memory_cost`]). This is how the
/// registry builds the memory-aware variants (`blest/mem`,
/// `pipeline/base?mem=on`, …).
///
/// The appended `"mem-repair"` stage is the one stage exempt from the
/// monotone `cost_after` contract: its objective is feasibility, and
/// making an infeasible schedule feasible (extra supersteps, re-fetch
/// traffic surfaced in the cost) may legitimately raise the reported
/// cost. On machines without a memory bound the wrapper is invisible —
/// the inner outcome is returned untouched, bit for bit.
pub struct MemoryRepairScheduler<S> {
    name: String,
    inner: S,
}

impl<S: Scheduler> MemoryRepairScheduler<S> {
    /// Wraps `inner` under the registry name `name`.
    pub fn new(name: impl Into<String>, inner: S) -> Self {
        MemoryRepairScheduler {
            name: name.into(),
            inner,
        }
    }
}

impl<S: Scheduler> Scheduler for MemoryRepairScheduler<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> SchedulerKind {
        self.inner.kind()
    }

    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
        let inner_out = self.inner.solve(req);
        if !req.machine.is_memory_bounded() {
            return inner_out;
        }
        // The repair stage runs on whatever budget the inner solve left.
        let sub_req = SolveRequest {
            dag: req.dag,
            machine: req.machine,
            budget: Budget {
                deadline: req
                    .budget
                    .deadline
                    .map(|d| d.saturating_sub(inner_out.elapsed)),
                ..req.budget.clone()
            },
            seed: req.seed,
            threads: req.threads,
            observer: req.observer,
        };
        let mut cx = SolveCx::new(&self.name, &sub_req);
        cx.begin("mem-repair");
        let (repaired, report) =
            repair_memory_with(req.dag, req.machine, &inner_out.result.sched, || {
                cx.expired()
            });
        // An untouched assignment keeps the inner solver's (possibly
        // optimized) Γ; a split one needs its communication schedule
        // re-derived because superstep indices moved.
        let (sched, comm) = if report.splits == 0 {
            (
                inner_out.result.sched.clone(),
                inner_out.result.comm.clone(),
            )
        } else {
            let comm = CommSchedule::lazy(req.dag, &repaired);
            (repaired, comm)
        };
        let cost = memory_cost(req.dag, req.machine, &sched, &comm);
        let total = cost.total;
        cx.improved(total);
        cx.end(total, report.truncated);
        let repair_out = cx.finish(ScheduleResult { sched, comm, cost });

        let mut stages = inner_out.stages;
        stages.extend(repair_out.stages);
        SolveOutcome {
            result: repair_out.result,
            stages,
            elapsed: inner_out.elapsed + repair_out.elapsed,
            budget_exhausted: inner_out.budget_exhausted || repair_out.budget_exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_model::MemorySpec;
    use bsp_schedule::validity::{validate_memory, validate_with_memory};

    /// Six footprint-2 values computed in one superstep on one processor.
    fn fat_cell() -> (Dag, BspSchedule) {
        let mut b = DagBuilder::new();
        for _ in 0..6 {
            b.add_node(1, 2);
        }
        (b.build().unwrap(), BspSchedule::zeroed(6))
    }

    #[test]
    fn splits_an_oversized_cell_into_fitting_steps() {
        let (dag, sched) = fat_cell();
        let machine = BspParams::new(1, 1, 0).with_memory(MemorySpec::new(4));
        let (fixed, report) = repair_memory(&dag, &machine, &sched);
        assert_eq!(report.violations_before, 1);
        assert_eq!(report.violations_after, 0);
        assert_eq!(report.splits, 1);
        // 12 units over capacity 4: three groups of two nodes each.
        assert_eq!(report.inserted_supersteps, 2);
        assert_eq!(fixed.n_supersteps(), 3);
        assert!(validate_memory(&dag, &machine, &fixed).is_ok());
    }

    #[test]
    fn no_bound_and_feasible_inputs_pass_through_unchanged() {
        let (dag, sched) = fat_cell();
        let unbounded = BspParams::new(1, 1, 0);
        let (same, report) = repair_memory(&dag, &unbounded, &sched);
        assert_eq!(same, sched);
        assert_eq!(report, RepairReport::default());
        let roomy = BspParams::new(1, 1, 0).with_memory(MemorySpec::new(12));
        let (same, report) = repair_memory(&dag, &roomy, &sched);
        assert_eq!(same, sched);
        assert_eq!(report.splits, 0);
    }

    #[test]
    fn respects_dependencies_inside_the_split_cell() {
        // A chain of four nodes in one cell: groups must follow topological
        // order, and the downstream consumer on another processor must
        // still come strictly later.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_node(1, 2)).collect();
        for w in v.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let tail = b.add_node(1, 1);
        b.add_edge(v[3], tail).unwrap();
        let dag = b.build().unwrap();
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 0, 1], vec![0, 0, 0, 0, 1]);
        // Working set of the cell: 4 values of 2 = 8 (chained inputs are
        // also outputs); capacity 5 forces a split.
        let machine = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(5));
        let (fixed, report) = repair_memory(&dag, &machine, &sched);
        assert!(report.splits >= 1);
        assert!(fixed.respects_precedence_lazy(&dag));
        let comm = CommSchedule::lazy(&dag, &fixed);
        assert!(validate_with_memory(&dag, &machine, &fixed, &comm).is_ok());
        for w in v.windows(2) {
            assert!(fixed.step(w[0]) <= fixed.step(w[1]));
        }
        assert!(fixed.step(v[3]) < fixed.step(tail));
    }

    #[test]
    fn unrepairable_single_node_is_reported_not_looped() {
        // One node whose own inputs exceed M: no split can fix it.
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 4);
        let v = b.add_node(1, 4);
        let w = b.add_node(1, 1);
        b.add_edge(u, w).unwrap();
        b.add_edge(v, w).unwrap();
        let dag = b.build().unwrap();
        let sched = BspSchedule::from_parts(vec![0, 1, 0], vec![0, 0, 1]);
        let machine = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(6));
        let (fixed, report) = repair_memory(&dag, &machine, &sched);
        // w needs 4 + 4 + 1 = 9 > 6 forever; the pass terminates and never
        // makes things worse.
        assert_eq!(fixed, sched);
        assert_eq!(report.violations_after, report.violations_before);
        assert!(report.violations_after > 0);
        assert_eq!(report.splits, 0);
    }

    #[test]
    fn expired_budget_stops_early_but_stays_valid() {
        let (dag, sched) = fat_cell();
        let machine = BspParams::new(1, 1, 0).with_memory(MemorySpec::new(4));
        let (fixed, report) = repair_memory_with(&dag, &machine, &sched, || true);
        assert!(report.truncated);
        assert_eq!(fixed, sched, "no time: best-effort input passthrough");
        assert!(report.violations_after <= report.violations_before);
    }

    #[test]
    fn repair_is_deterministic_on_random_instances() {
        for seed in 0..4 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 5,
                    width: 6,
                    ..Default::default()
                },
            );
            let machine = BspParams::new(4, 1, 2).with_memory(MemorySpec::new(16));
            let sched = crate::init::bspg::bspg_schedule(&dag, &machine);
            let (a, ra) = repair_memory(&dag, &machine, &sched);
            let (b, rb) = repair_memory(&dag, &machine, &sched);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(ra, rb, "seed {seed}");
            assert!(ra.violations_after <= ra.violations_before, "seed {seed}");
            assert!(a.respects_precedence_lazy(&dag), "seed {seed}");
        }
    }

    #[test]
    fn wrapper_repairs_and_recosts_on_bounded_machines_only() {
        use crate::schedulers::BspgInit;
        use bsp_schedule::memory::simulate_memory;

        let dag = random_layered_dag(
            3,
            LayeredConfig {
                layers: 4,
                width: 5,
                ..Default::default()
            },
        );
        let wrapped = MemoryRepairScheduler::new("init/bspg+mem", BspgInit);
        assert_eq!(wrapped.name(), "init/bspg+mem");
        assert_eq!(wrapped.kind(), SchedulerKind::Initializer);

        // Unbounded machine: bit-identical to the inner scheduler.
        let plain = BspParams::new(4, 1, 2);
        let req = SolveRequest::new(&dag, &plain);
        let inner = BspgInit.solve(&req);
        let outer = wrapped.solve(&req);
        assert_eq!(outer.result.sched, inner.result.sched);
        assert_eq!(outer.result.cost, inner.result.cost);
        assert_eq!(outer.stages.len(), inner.stages.len());

        // Bounded machine: the outcome gains a mem-repair stage, is
        // feasible, and its cost matches the memory-aware re-evaluation.
        // Capacity = the largest single-node working set, so splitting can
        // always reach feasibility.
        let min_capacity = bsp_schedule::memory::min_repairable_capacity(&dag);
        let bounded = BspParams::new(4, 1, 2).with_memory(MemorySpec::new(min_capacity));
        let req = SolveRequest::new(&dag, &bounded);
        let out = wrapped.solve(&req);
        assert_eq!(out.stages.last().unwrap().stage, "mem-repair");
        let r = &out.result;
        assert!(validate_with_memory(&dag, &bounded, &r.sched, &r.comm).is_ok());
        assert!(simulate_memory(&dag, &bounded, &r.sched, &r.comm).is_feasible());
        assert_eq!(
            out.total(),
            memory_cost(&dag, &bounded, &r.sched, &r.comm).total
        );
        assert_eq!(out.stages.last().unwrap().cost_after, out.total());
    }
}
