//! Warm-started re-solves: schedule an edited DAG starting from a cached
//! schedule of its base instance instead of from scratch.
//!
//! This is the algorithmic core of the `bsp-serve` delta-instance API and
//! the service-side twin of online-arrival scheduling: a DAG edit arrives
//! against an instance we already solved, and the new schedule should cost
//! a *repair*, not a cold solve. The pipeline is
//!
//! 1. **transplant** — surviving nodes keep their cached `(processor,
//!    superstep)` assignment through the edit's node map
//!    ([`warm_start_from_map`]);
//! 2. **list insertion** — nodes the edit introduced are placed greedily:
//!    earliest superstep their placed predecessors allow, cheapest
//!    processor of that superstep under a comm-aware score
//!    ([`place_new_nodes`]);
//! 3. **precedence repair** — one topological pass pushes nodes later
//!    until every edge is satisfied again (edits only ever *delay*
//!    nodes, so the pass terminates and is deterministic;
//!    [`repair_precedence`]), then empty supersteps are compacted away;
//! 4. **feasibility repair** — on memory-bounded machines, the
//!    `memrepair` superstep-splitting pass restores the working-set
//!    condition;
//! 5. **local re-optimization** — the PR 5 probe kernel (hill climbing +
//!    communication-schedule search) polishes the repaired schedule under
//!    the request's remaining budget.
//!
//! The monotone guarantee of the anytime API carries over: the warm
//! result is **never worse than its repaired starting point** (stage 5
//! only replaces the incumbent with strictly cheaper schedules), and any
//! budget — including an already-expired one — yields a valid schedule.
//!
//! ```
//! use bsp_core::pipeline::{schedule_dag, PipelineConfig};
//! use bsp_core::{solve_warm_pipeline, warm_start_from_map};
//! use bsp_dag::DagBuilder;
//! use bsp_model::BspParams;
//! use bsp_schedule::cost::lazy_cost;
//! use bsp_schedule::solve::{SolveCx, SolveRequest};
//!
//! // Base instance u → v, solved cold.
//! let mut b = DagBuilder::new();
//! let u = b.add_node(4, 1);
//! let v = b.add_node(3, 1);
//! b.add_edge(u, v).unwrap();
//! let base_dag = b.build().unwrap();
//! let machine = BspParams::new(2, 1, 2);
//! let cfg = PipelineConfig { enable_ilp: false, ..Default::default() };
//! let base = schedule_dag(&base_dag, &machine, &cfg);
//!
//! // The edit appended a consumer w of v; nodes 0 and 1 survive as-is.
//! let mut b = DagBuilder::new();
//! let u = b.add_node(4, 1);
//! let v = b.add_node(3, 1);
//! let w = b.add_node(2, 1);
//! b.add_edge(u, v).unwrap();
//! b.add_edge(v, w).unwrap();
//! let edited = b.build().unwrap();
//!
//! let initial = warm_start_from_map(&edited, &machine, &base.sched, &[Some(0), Some(1)]);
//! let start = lazy_cost(&edited, &machine, &initial);
//! let req = SolveRequest::new(&edited, &machine);
//! let mut cx = SolveCx::new("warm", &req);
//! let r = solve_warm_pipeline(&edited, &machine, &initial, &cfg, &mut cx);
//! assert!(r.cost <= start); // monotone: never worse than the repaired start
//! ```

use crate::hc::{hill_climb, hill_climb_from, HillClimbStats};
use crate::hccs::optimize_comm_schedule_threaded;
use crate::memrepair::repair_memory_with;
use crate::pipeline::{clamped_for_warm, PipelineConfig, PipelineResult};
use crate::state::ScheduleState;
use bsp_dag::topo::TopoInfo;
use bsp_dag::{Dag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::compact::{compact_lazy, compact_lazy_from};
use bsp_schedule::cost::lazy_cost;
use bsp_schedule::prefix::PrefixViolation;
use bsp_schedule::solve::SolveCx;
use bsp_schedule::{BspSchedule, CommSchedule};

/// Transplants `base` (a schedule of the *pre-edit* DAG) onto the edited
/// `dag`: surviving nodes keep their assignment through `node_map`
/// (`node_map[old] = Some(new)` as produced by
/// `bsp_instance::apply_edits`), added nodes are list-inserted, and the
/// result is precedence-repaired and compacted into a valid schedule.
///
/// `node_map` must map into `0..dag.n()`; nodes of the edited DAG that no
/// map entry hits are treated as new.
pub fn warm_start_from_map(
    dag: &Dag,
    machine: &BspParams,
    base: &BspSchedule,
    node_map: &[Option<NodeId>],
) -> BspSchedule {
    let p = machine.p() as u32;
    let mut assign: Vec<Option<(u32, u32)>> = vec![None; dag.n()];
    for (old, new) in node_map.iter().enumerate() {
        if let Some(new) = *new {
            debug_assert!((new as usize) < dag.n(), "node_map out of range");
            // Clamp the cached processor in case the machine shrank.
            let proc = base.proc(old as NodeId).min(p.saturating_sub(1));
            assign[new as usize] = Some((proc, base.step(old as NodeId)));
        }
    }
    let placed = place_new_nodes(dag, machine, &assign);
    compact_lazy(dag, &repair_precedence(dag, &placed))
}

/// Greedy list insertion for unplaced nodes: in topological order, each
/// `None` slot gets the earliest superstep after its placed predecessors
/// and the processor minimizing a cost-model score — the NUMA-weighted
/// communication from its predecessors (`g · Σ c(u)·λ(π(u), q)`) plus
/// the marginal work-imbalance increase of that superstep — tie-broken
/// by superstep load, then processor id. On uniform machines with light
/// comm weights this degrades to least-loaded insertion; on NUMA
/// machines it keeps consumers near their producers' subtree, which the
/// floor-restricted hill climb cannot recover after the fact.
/// Already-placed nodes are untouched; the result still needs a
/// [`repair_precedence`] pass (placed nodes' precedence is not yet
/// re-checked here).
pub fn place_new_nodes(
    dag: &Dag,
    machine: &BspParams,
    assign: &[Option<(u32, u32)>],
) -> BspSchedule {
    debug_assert_eq!(assign.len(), dag.n());
    let p = machine.p() as u32;
    let topo = TopoInfo::new(dag);
    let mut order: Vec<NodeId> = dag.nodes().collect();
    order.sort_unstable_by_key(|&v| (topo.position[v as usize], v));

    let mut proc = vec![0u32; dag.n()];
    let mut step = vec![0u32; dag.n()];
    let mut placed = vec![false; dag.n()];
    for (v, a) in assign.iter().enumerate() {
        if let Some((q, s)) = *a {
            proc[v] = q.min(p.saturating_sub(1));
            step[v] = s;
            placed[v] = true;
        }
    }
    // work[(q, s)] tracked sparsely: steps grow as insertions demand.
    let mut work: Vec<Vec<u64>> = Vec::new(); // work[s][q]
    let ensure_step = |work: &mut Vec<Vec<u64>>, s: u32| {
        while work.len() <= s as usize {
            work.push(vec![0u64; p as usize]);
        }
    };
    for v in dag.nodes() {
        if placed[v as usize] {
            ensure_step(&mut work, step[v as usize]);
            work[step[v as usize] as usize][proc[v as usize] as usize] += dag.work(v);
        }
    }

    for &v in &order {
        if placed[v as usize] {
            continue;
        }
        // Earliest superstep strictly after every placed predecessor (a
        // same-superstep read is only legal on the producer's processor;
        // the conservative +1 keeps the choice processor-independent).
        let s = dag
            .predecessors(v)
            .iter()
            .map(|&u| step[u as usize] + 1)
            .max()
            .unwrap_or(0);
        ensure_step(&mut work, s);
        let row = &work[s as usize];
        let numa = machine.numa();
        let q = (0..p)
            .min_by_key(|&q| {
                let comm: u64 = dag
                    .predecessors(v)
                    .iter()
                    .map(|&u| dag.comm(u) * numa.lambda(proc[u as usize] as usize, q as usize))
                    .sum();
                (row[q as usize] + dag.work(v) + machine.g() * comm, q)
            })
            .unwrap_or(0);
        proc[v as usize] = q;
        step[v as usize] = s;
        placed[v as usize] = true;
        work[s as usize][q as usize] += dag.work(v);
    }
    BspSchedule::from_parts(proc, step)
}

/// Restores lazy-Γ precedence by delaying nodes: one topological pass
/// sets `τ(v) ← max(τ(v), τ(u))` over same-processor predecessors `u`
/// and `max(τ(v), τ(u)+1)` over cross-processor ones. Processors never
/// change, nodes only move later, and the pass visits each edge once, so
/// the result is valid (lazily) and deterministic.
pub fn repair_precedence(dag: &Dag, sched: &BspSchedule) -> BspSchedule {
    let topo = TopoInfo::new(dag);
    let mut order: Vec<NodeId> = dag.nodes().collect();
    order.sort_unstable_by_key(|&v| (topo.position[v as usize], v));
    let mut step: Vec<u32> = sched.steps().to_vec();
    for &v in &order {
        let mut s = step[v as usize];
        for &u in dag.predecessors(v) {
            let min = if sched.proc(u) == sched.proc(v) {
                step[u as usize]
            } else {
                step[u as usize] + 1
            };
            s = s.max(min);
        }
        step[v as usize] = s;
    }
    BspSchedule::from_parts(sched.procs().to_vec(), step)
}

/// [`repair_precedence`] for online schedules with a committed prefix:
/// supersteps below `floor` are frozen, so only nodes at `floor` and
/// above may be delayed. A precedence violation that would require
/// delaying a *committed* node (equivalently: an edge into a committed
/// consumer from a tentative producer, or a committed-committed edge the
/// frozen assignment breaks) cannot be repaired by delay and is returned
/// as the typed [`PrefixViolation`] instead. Nodes with `τ(v) < floor`
/// count as committed; `floor == 0` is exactly [`repair_precedence`]
/// (and never fails).
pub fn repair_precedence_from(
    dag: &Dag,
    sched: &BspSchedule,
    floor: u32,
) -> Result<BspSchedule, PrefixViolation> {
    let topo = TopoInfo::new(dag);
    let mut order: Vec<NodeId> = dag.nodes().collect();
    order.sort_unstable_by_key(|&v| (topo.position[v as usize], v));
    let mut step: Vec<u32> = sched.steps().to_vec();
    for &v in &order {
        let committed = step[v as usize] < floor;
        let mut s = step[v as usize];
        for &u in dag.predecessors(v) {
            if committed && step[u as usize] >= floor {
                return Err(PrefixViolation::ProducerTentative { from: u, to: v });
            }
            let min = if sched.proc(u) == sched.proc(v) {
                step[u as usize]
            } else {
                step[u as usize] + 1
            };
            if committed && min > s {
                return Err(PrefixViolation::EdgeViolation {
                    from: u,
                    to: v,
                    from_step: step[u as usize],
                    to_step: s,
                });
            }
            s = s.max(min);
        }
        step[v as usize] = s;
    }
    Ok(BspSchedule::from_parts(sched.procs().to_vec(), step))
}

/// What [`solve_warm_suffix`] did: the pipeline result plus the
/// hill-climbing counters (the per-arrival work-budget evidence an online
/// runtime records).
#[derive(Debug, Clone)]
pub struct SuffixOutcome {
    /// The re-optimized schedule, lazy Γ and cost.
    pub result: PipelineResult,
    /// Accepted-move counters of the suffix hill climb.
    pub hc: HillClimbStats,
}

/// The incremental warm entry point for online re-planning: re-optimizes
/// the *tentative suffix* (supersteps `floor` and above) of `initial`
/// under `cx`'s work budget, leaving the committed prefix untouched.
///
/// `initial` must be lazily valid (the output of
/// [`repair_precedence_from`] + [`compact_lazy_from`]). The stages mirror
/// [`solve_warm_pipeline`] — `warm-init` then `hc` — but hill climbing is
/// floor-restricted ([`hill_climb_from`]), compaction preserves committed
/// superstep indices, and the communication schedule stays lazy (the
/// suffix is still tentative; Γ is finalized at dispatch time). The
/// monotone contract carries over: the result never costs more than
/// `initial`, and an expired budget returns `initial` as-is.
pub fn solve_warm_suffix(
    dag: &Dag,
    machine: &BspParams,
    initial: &BspSchedule,
    floor: u32,
    cfg: &PipelineConfig,
    cx: &mut SolveCx<'_>,
) -> SuffixOutcome {
    let began = std::time::Instant::now();
    let _span = bsp_obs::trace::global().span("pipeline/warm-suffix", "pipeline");
    cx.begin("warm-init");
    let mut sched = initial.clone();
    let init_cost = lazy_cost(dag, machine, &sched);
    cx.improved(init_cost);
    cx.end(init_cost, false);

    let mut cost = init_cost;
    let mut hc_stats = HillClimbStats {
        accepted: 0,
        local_minimum: false,
    };

    if !cx.check_expired() {
        cx.begin("hc");
        let c = clamped_for_warm(cfg, cx);
        let mut st = ScheduleState::new(dag, machine, &sched);
        hc_stats = hill_climb_from(&mut st, &c.hc, floor);
        let cand = compact_lazy_from(dag, &st.snapshot(), floor);
        let cand_cost = lazy_cost(dag, machine, &cand);
        if cand_cost < cost {
            cost = cand_cost;
            sched = cand;
            cx.improved(cand_cost);
        }
        let truncated = cx.expired();
        cx.end(cost, truncated);
    }

    let comm = CommSchedule::lazy(dag, &sched);
    SuffixOutcome {
        result: PipelineResult {
            sched,
            comm,
            cost,
            init_cost,
            best_init: crate::pipeline::Initializer::BspG,
            hc_cost: cost,
            part_cost: cost,
            ilp_cost: cost,
            elapsed: began.elapsed(),
        },
        hc: hc_stats,
    }
}

/// Runs the warm-start pipeline under `cx`'s budget clock: stage
/// `warm-init` (feasibility repair of `initial` — precedence is assumed
/// already valid, memory is repaired on bounded machines) and stage `hc`
/// (probe-kernel hill climbing plus communication-schedule search).
///
/// `initial` must be a valid (lazy-Γ) schedule of `dag` — the output of
/// [`warm_start_from_map`]. The result never costs more than the repaired
/// starting point, and an expired budget returns that starting point.
pub fn solve_warm_pipeline(
    dag: &Dag,
    machine: &BspParams,
    initial: &BspSchedule,
    cfg: &PipelineConfig,
    cx: &mut SolveCx<'_>,
) -> PipelineResult {
    let began = std::time::Instant::now();
    let _span = bsp_obs::trace::global().span("pipeline/warm", "pipeline");
    let threads = cx.threads(cfg.threads);

    // Stage 1 — repair. Runs even under an expired deadline so that a
    // valid best-so-far exists (mirrors the cold pipeline's init stage).
    cx.begin("warm-init");
    let mut sched = initial.clone();
    if machine.memory().is_some() {
        let (repaired, _) = repair_memory_with(dag, machine, &sched, || cx.expired());
        sched = repaired;
    }
    let init_cost = lazy_cost(dag, machine, &sched);
    cx.improved(init_cost);
    cx.end(init_cost, false);

    let mut comm = CommSchedule::lazy(dag, &sched);
    let mut cost = init_cost;

    // Stage 2 — local re-optimization with the probe kernel.
    if !cx.check_expired() {
        cx.begin("hc");
        let c = clamped_for_warm(cfg, cx);
        let mut st = ScheduleState::new(dag, machine, &sched);
        hill_climb(&mut st, &c.hc);
        let cand = compact_lazy(dag, &st.snapshot());
        let (cand_comm, cand_cost) =
            optimize_comm_schedule_threaded(dag, machine, &cand, &c.hccs, threads);
        if cand_cost < cost {
            cost = cand_cost;
            sched = cand;
            comm = cand_comm;
            cx.improved(cand_cost);
        }
        let truncated = cx.expired();
        cx.end(cost, truncated);
    }

    PipelineResult {
        sched,
        comm,
        cost,
        init_cost,
        best_init: crate::pipeline::Initializer::BspG,
        hc_cost: cost,
        part_cost: cost,
        ilp_cost: cost,
        elapsed: began.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_schedule::solve::SolveRequest;
    use bsp_schedule::validity::validate_lazy;

    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_node(1, 1)).collect();
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn repair_precedence_pushes_consumers_later() {
        let dag = chain3();
        // Node 2 on another processor in the same superstep as node 1:
        // cross-processor needs a strictly later step.
        let broken = BspSchedule::from_parts(vec![0, 0, 1], vec![0, 1, 1]);
        let fixed = repair_precedence(&dag, &broken);
        assert_eq!(fixed.step(2), 2);
        assert!(validate_lazy(&dag, 2, &fixed).is_ok());
        // An already-valid schedule passes through unchanged.
        let ok = BspSchedule::from_parts(vec![0, 0, 0], vec![0, 0, 0]);
        assert_eq!(repair_precedence(&dag, &ok), ok);
    }

    #[test]
    fn place_new_nodes_picks_least_loaded_processor() {
        let dag = chain3();
        let machine = BspParams::new(2, 1, 1);
        // Only node 0 placed (on proc 1); 1 and 2 are "new".
        let placed = place_new_nodes(&dag, &machine, &[Some((1, 0)), None, None]);
        assert_eq!(placed.step(1), 1);
        assert_eq!(placed.step(2), 2);
        assert!(validate_lazy(&dag, 2, &repair_precedence(&dag, &placed)).is_ok());
    }

    #[test]
    fn repair_precedence_from_delays_only_the_suffix() {
        let dag = chain3();
        // Node 0 committed (step 0); nodes 1, 2 tentative but too early.
        let broken = BspSchedule::from_parts(vec![0, 1, 0], vec![0, 1, 1]);
        let fixed = repair_precedence_from(&dag, &broken, 1).unwrap();
        assert_eq!(fixed.step(0), 0);
        assert_eq!(fixed.step(2), 2);
        assert!(validate_lazy(&dag, 2, &fixed).is_ok());
        // floor 0 agrees with the unconstrained repair.
        assert_eq!(
            repair_precedence_from(&dag, &broken, 0).unwrap(),
            repair_precedence(&dag, &broken)
        );
    }

    #[test]
    fn repair_precedence_from_rejects_committed_conflicts() {
        let dag = chain3();
        use bsp_schedule::prefix::PrefixViolation;
        // Node 1 committed at step 0 but its producer 0 is tentative.
        let sched = BspSchedule::from_parts(vec![0, 0, 0], vec![1, 0, 2]);
        assert_eq!(
            repair_precedence_from(&dag, &sched, 1),
            Err(PrefixViolation::ProducerTentative { from: 0, to: 1 })
        );
        // Both committed, cross-processor in the same superstep: the
        // frozen consumer would need delaying.
        let sched = BspSchedule::from_parts(vec![0, 1, 0], vec![0, 0, 3]);
        assert_eq!(
            repair_precedence_from(&dag, &sched, 1),
            Err(PrefixViolation::EdgeViolation {
                from: 0,
                to: 1,
                from_step: 0,
                to_step: 0
            })
        );
    }

    #[test]
    fn suffix_solve_is_monotone_and_preserves_the_prefix() {
        let dag = random_layered_dag(
            11,
            LayeredConfig {
                layers: 6,
                width: 5,
                edge_prob: 0.3,
                ..Default::default()
            },
        );
        let machine = BspParams::new(4, 2, 3);
        let initial = warm_start_from_map(
            &dag,
            &machine,
            &crate::init::bspg::bspg_schedule(&dag, &machine),
            &(0..dag.n() as NodeId).map(Some).collect::<Vec<_>>(),
        );
        let floor = initial.n_supersteps() / 2;
        let start_cost = lazy_cost(&dag, &machine, &initial);
        let req = SolveRequest::new(&dag, &machine);
        let mut cx = SolveCx::new("online", &req);
        let cfg = PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        };
        let out = solve_warm_suffix(&dag, &machine, &initial, floor, &cfg, &mut cx);
        assert!(out.result.cost <= start_cost);
        assert!(validate_lazy(&dag, 4, &out.result.sched).is_ok());
        for v in dag.nodes() {
            if initial.step(v) < floor {
                assert_eq!(out.result.sched.proc(v), initial.proc(v), "node {v}");
                assert_eq!(out.result.sched.step(v), initial.step(v), "node {v}");
            } else {
                assert!(out.result.sched.step(v) >= floor, "node {v}");
            }
        }
        assert!(bsp_schedule::prefix::validate_prefix(&dag, 4, &out.result.sched, floor).is_ok());
    }

    #[test]
    fn suffix_solve_respects_move_caps() {
        let dag = random_layered_dag(4, LayeredConfig::default());
        let machine = BspParams::new(4, 2, 3);
        let initial = warm_start_from_map(
            &dag,
            &machine,
            &crate::init::bspg::bspg_schedule(&dag, &machine),
            &(0..dag.n() as NodeId).map(Some).collect::<Vec<_>>(),
        );
        let req = SolveRequest::new(&dag, &machine)
            .with_budget(bsp_schedule::solve::Budget::unlimited().with_max_stage_moves(3));
        let mut cx = SolveCx::new("online", &req);
        let cfg = PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        };
        let out = solve_warm_suffix(&dag, &machine, &initial, 0, &cfg, &mut cx);
        assert!(out.hc.accepted <= 3);
    }

    #[test]
    fn warm_start_from_map_survives_node_removal() {
        let dag = random_layered_dag(5, LayeredConfig::default());
        let machine = BspParams::new(4, 2, 3);
        let base = crate::init::bspg::bspg_schedule(&dag, &machine);
        // "Edit": drop node 0 — build the induced sub-DAG and its map.
        let keep: Vec<NodeId> = (1..dag.n() as NodeId).collect();
        let (sub, map) = dag.induced_subgraph(&keep);
        let warm = warm_start_from_map(&sub, &machine, &base, &map);
        assert!(validate_lazy(&sub, 4, &warm).is_ok());
    }

    #[test]
    fn warm_pipeline_never_worse_than_repaired_start() {
        let dag = random_layered_dag(
            9,
            LayeredConfig {
                layers: 5,
                width: 5,
                edge_prob: 0.3,
                ..Default::default()
            },
        );
        let machine = BspParams::new(4, 2, 3);
        let initial = warm_start_from_map(
            &dag,
            &machine,
            &crate::init::bspg::bspg_schedule(&dag, &machine),
            &(0..dag.n() as NodeId).map(Some).collect::<Vec<_>>(),
        );
        let start_cost = lazy_cost(&dag, &machine, &initial);
        let req = SolveRequest::new(&dag, &machine);
        let mut cx = SolveCx::new("warm", &req);
        let cfg = PipelineConfig {
            enable_ilp: false,
            ..Default::default()
        };
        let r = solve_warm_pipeline(&dag, &machine, &initial, &cfg, &mut cx);
        assert!(r.cost <= start_cost, "warm solve must be monotone");
        assert!(validate_lazy(&dag, 4, &r.sched).is_ok());
        assert_eq!(
            r.cost,
            bsp_schedule::cost::total_cost(&dag, &machine, &r.sched, &r.comm)
        );
    }

    #[test]
    fn warm_pipeline_expired_budget_returns_valid_start() {
        let dag = random_layered_dag(3, LayeredConfig::default());
        let machine = BspParams::new(4, 2, 3);
        let initial = warm_start_from_map(
            &dag,
            &machine,
            &crate::init::bspg::bspg_schedule(&dag, &machine),
            &(0..dag.n() as NodeId).map(Some).collect::<Vec<_>>(),
        );
        let req =
            SolveRequest::new(&dag, &machine).with_budget(bsp_schedule::solve::Budget::expired());
        let mut cx = SolveCx::new("warm", &req);
        let r = solve_warm_pipeline(
            &dag,
            &machine,
            &initial,
            &PipelineConfig::default(),
            &mut cx,
        );
        assert!(validate_lazy(&dag, 4, &r.sched).is_ok());
        assert_eq!(r.cost, lazy_cost(&dag, &machine, &r.sched));
    }
}
