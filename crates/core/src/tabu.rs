//! Tabu search over the hill-climbing move space.
//!
//! A second "escape local minima" strategy from the paper's future-work list
//! (§8), complementing [`crate::anneal`]: the search always applies the best
//! available move — *even when it worsens the cost* — but forbids returning
//! a node to a placement it recently left (the *tabu list*), which forces
//! the walk out of local minima instead of oscillating. A tabu move is
//! still allowed when it would beat the best schedule seen so far (the
//! standard *aspiration* criterion).
//!
//! The best schedule encountered is returned, so the result is never worse
//! than the input. The per-iteration neighbourhood scan probes every
//! candidate read-only ([`ScheduleState::probe_move`]) and applies only the
//! chosen move.

use crate::state::{ProbeScratch, ProcWindow, ScheduleState};
use bsp_dag::{Dag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::BspSchedule;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Tabu-search parameters.
#[derive(Debug, Clone)]
pub struct TabuConfig {
    /// Iterations for which a reversed placement stays forbidden.
    pub tenure: usize,
    /// Stop after this many consecutive iterations without a new best.
    pub stall_limit: usize,
    /// Hard cap on iterations.
    pub max_iters: usize,
    /// Wall-clock limit.
    pub time_limit: Option<Duration>,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            tenure: 12,
            stall_limit: 60,
            max_iters: 5_000,
            time_limit: Some(Duration::from_secs(5)),
        }
    }
}

/// Outcome counters of a tabu run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TabuStats {
    /// Iterations executed (one move each, unless the neighbourhood was empty).
    pub iterations: usize,
    /// Applied moves that increased the cost.
    pub uphill: usize,
    /// Moves admitted through the aspiration criterion.
    pub aspirated: usize,
    /// Times a new global best was recorded.
    pub improved_best: usize,
}

/// Runs tabu search from `sched`; returns the best schedule found, its lazy
/// cost, and statistics. The returned cost is never above the input's.
///
/// ```
/// use bsp_core::tabu::{tabu_search, TabuConfig};
/// use bsp_core::init::bspg_schedule;
/// use bsp_dag::random::{random_layered_dag, LayeredConfig};
/// use bsp_model::BspParams;
/// use bsp_schedule::cost::lazy_cost;
///
/// let dag = random_layered_dag(3, LayeredConfig::default());
/// let machine = BspParams::new(4, 2, 5);
/// let start = bspg_schedule(&dag, &machine);
/// let cfg = TabuConfig { max_iters: 50, time_limit: None, ..Default::default() };
/// let (best, cost, _stats) = tabu_search(&dag, &machine, &start, &cfg);
/// assert!(cost <= lazy_cost(&dag, &machine, &start));
/// assert_eq!(cost, lazy_cost(&dag, &machine, &best));
/// ```
pub fn tabu_search(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    cfg: &TabuConfig,
) -> (BspSchedule, u64, TabuStats) {
    tabu_search_threaded(dag, machine, sched, cfg, 1)
}

/// [`tabu_search`] with each iteration's neighbourhood scan fanned out over
/// `threads` workers (`0` = auto-detect, `1` = sequential). Every iteration
/// selects the same move as the sequential run — the per-chunk winners are
/// folded under the sequential tie-break — so the returned schedule, cost,
/// and statistics are **bit-identical** for every thread count.
pub fn tabu_search_threaded(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    cfg: &TabuConfig,
    threads: usize,
) -> (BspSchedule, u64, TabuStats) {
    let mut state = ScheduleState::new(dag, machine, sched);
    let mut stats = TabuStats::default();
    let mut best = sched.clone();
    let mut best_cost = state.cost();
    if dag.n() == 0 {
        return (best, best_cost, stats);
    }

    let deadline = cfg.time_limit.map(|t| Instant::now() + t);
    // (node, proc, step) → iteration index until which the placement is tabu.
    let mut tabu: HashMap<(NodeId, u32, u32), usize> = HashMap::new();
    let mut stall = 0usize;

    for iter in 0..cfg.max_iters {
        if stall >= cfg.stall_limit {
            break;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        let Some((v, q, s, after, aspirated)) =
            best_admissible_move_threaded(&state, &tabu, iter, best_cost, threads)
        else {
            break; // no valid move anywhere (degenerate neighbourhood)
        };
        let before = state.cost();
        let (old_p, old_s) = (state.proc(v), state.step(v));
        state.apply_move(v, q, s);
        // Forbid undoing this move for `tenure` iterations.
        tabu.insert((v, old_p, old_s), iter + cfg.tenure);
        stats.iterations += 1;
        if aspirated {
            stats.aspirated += 1;
        }
        if after > before {
            stats.uphill += 1;
        }
        if after < best_cost {
            best_cost = after;
            best = state.snapshot();
            stats.improved_best += 1;
            stall = 0;
        } else {
            stall += 1;
        }
        // Keep the tabu map from growing without bound on long runs.
        if tabu.len() > 4 * dag.n() + 64 {
            tabu.retain(|_, &mut until| until > iter);
        }
    }
    (best, best_cost, stats)
}

/// Scans the neighbourhoods of nodes `lo..hi` read-only (via
/// [`ScheduleState::probe_move_in`]) and returns the admissible move with
/// the lowest resulting cost as `(after, v, q, s, aspirated)`: non-tabu
/// moves always qualify; tabu moves qualify only if they beat `best_cost`
/// (aspiration). The strict-`<` fold over the `v asc, s asc, q asc`
/// enumeration reproduces the sequential first-encountered-best tie-break.
fn scan_admissible(
    state: &ScheduleState<'_>,
    sc: &mut ProbeScratch,
    tabu: &HashMap<(NodeId, u32, u32), usize>,
    iter: usize,
    best_cost: u64,
    lo: u32,
    hi: u32,
) -> Option<(u64, NodeId, u32, u32, bool)> {
    let p = state.p();
    let before = state.cost() as i64;
    let mut best: Option<(u64, NodeId, u32, u32, bool)> = None;
    let mut consider = |sc: &mut ProbeScratch, v: NodeId, q: u32, s: u32| {
        let is_tabu = tabu.get(&(v, q, s)).is_some_and(|&until| until > iter);
        let after = (before + state.probe_move_in(sc, v, q, s)) as u64;
        let aspirated = is_tabu && after < best_cost;
        if is_tabu && !aspirated {
            return;
        }
        if best.as_ref().is_none_or(|&(b, ..)| after < b) {
            best = Some((after, v, q, s, aspirated));
        }
    };
    for v in lo..hi {
        let (cur_p, cur_s) = (state.proc(v), state.step(v));
        let first = cur_s.saturating_sub(1);
        for s in first..=cur_s + 1 {
            match state.valid_procs(v, s) {
                ProcWindow::None => {}
                ProcWindow::Only(q) => {
                    if (q, s) != (cur_p, cur_s) {
                        consider(sc, v, q, s);
                    }
                }
                ProcWindow::All => {
                    for q in 0..p {
                        if (q, s) != (cur_p, cur_s) {
                            consider(sc, v, q, s);
                        }
                    }
                }
            }
        }
    }
    best
}

/// Whole-neighbourhood admissible-move scan, optionally fanned out over
/// `threads` workers with one private [`ProbeScratch`] per chunk. Chunk
/// winners come back in ascending node order and are folded with the same
/// strict-`<` rule [`scan_admissible`] uses internally, so the selected
/// move — `(node, proc, step, resulting_cost, was_aspirated)` — is
/// identical to a sequential scan for any thread count.
fn best_admissible_move_threaded(
    state: &ScheduleState<'_>,
    tabu: &HashMap<(NodeId, u32, u32), usize>,
    iter: usize,
    best_cost: u64,
    threads: usize,
) -> Option<(NodeId, u32, u32, u64, bool)> {
    let n = state.n();
    let threads = bsp_par::resolve_threads(threads);
    let best = if threads <= 1 || n < 2 * PAR_CHUNK {
        let mut sc = ProbeScratch::default();
        scan_admissible(state, &mut sc, tabu, iter, best_cost, 0, n as u32)
    } else {
        let per_chunk = bsp_par::par_chunks(threads, n, PAR_CHUNK, |range| {
            let mut sc = ProbeScratch::default();
            scan_admissible(
                state,
                &mut sc,
                tabu,
                iter,
                best_cost,
                range.start as u32,
                range.end as u32,
            )
        });
        let mut best: Option<(u64, NodeId, u32, u32, bool)> = None;
        for cand in per_chunk.into_iter().flatten() {
            if best.as_ref().is_none_or(|&(b, ..)| cand.0 < b) {
                best = Some(cand);
            }
        }
        best
    };
    best.map(|(c, v, q, s, a)| (v, q, s, c, a))
}

/// Nodes per parallel work unit (see [`crate::steepest`]).
const PAR_CHUNK: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hc::{hill_climb, HillClimbConfig};
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_schedule::cost::lazy_cost;
    use bsp_schedule::validity::validate_lazy;

    fn quick_cfg() -> TabuConfig {
        TabuConfig {
            max_iters: 400,
            stall_limit: 40,
            time_limit: None,
            ..TabuConfig::default()
        }
    }

    #[test]
    fn never_worse_than_input_and_valid() {
        for seed in 0..5 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 5,
                    width: 5,
                    edge_prob: 0.4,
                    ..Default::default()
                },
            );
            let machine = BspParams::new(4, 3, 5);
            let sched = BspSchedule::zeroed(dag.n());
            let input = lazy_cost(&dag, &machine, &sched);
            let (out, cost, _) = tabu_search(&dag, &machine, &sched, &quick_cfg());
            assert!(cost <= input, "seed {seed}");
            assert_eq!(cost, lazy_cost(&dag, &machine, &out), "seed {seed}");
            assert!(validate_lazy(&dag, 4, &out).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn crosses_the_plateau_greedy_cannot() {
        // Same construction as the annealing test: greedy HC is stuck at 22;
        // tabu's forced best-admissible move walks across the plateau
        // deterministically.
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            b.add_node(10, 1);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(4, 1, 2);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1], vec![0; 4]);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        hill_climb(
            &mut st,
            &HillClimbConfig {
                max_moves: None,
                time_limit: None,
            },
        );
        assert_eq!(st.cost(), 22, "premise: greedy is plateau-stuck");

        let (_, cost, stats) = tabu_search(&dag, &machine, &sched, &quick_cfg());
        assert_eq!(cost, 12, "tabu should reach the 1-per-processor optimum");
        assert!(stats.improved_best >= 1);
    }

    #[test]
    fn tabu_is_deterministic() {
        let dag = random_layered_dag(9, LayeredConfig::default());
        let machine = BspParams::new(4, 2, 3);
        let sched = BspSchedule::zeroed(dag.n());
        let (a, ca, sa) = tabu_search(&dag, &machine, &sched, &quick_cfg());
        let (b, cb, sb) = tabu_search(&dag, &machine, &sched, &quick_cfg());
        assert_eq!(ca, cb);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn stall_limit_bounds_iterations() {
        let dag = random_layered_dag(2, LayeredConfig::default());
        let machine = BspParams::new(4, 2, 3);
        let sched = BspSchedule::zeroed(dag.n());
        let cfg = TabuConfig {
            stall_limit: 5,
            max_iters: 10_000,
            time_limit: None,
            tenure: 3,
        };
        let (_, _, stats) = tabu_search(&dag, &machine, &sched, &cfg);
        // Each improvement resets the stall counter, but iterations are
        // bounded by improvements · stall_limit + stall_limit.
        assert!(stats.iterations <= (stats.improved_best + 1) * 5 + 5);
    }

    #[test]
    fn empty_and_single_node() {
        let machine = BspParams::new(2, 1, 1);
        let empty = DagBuilder::new().build().unwrap();
        let (_, c, stats) = tabu_search(&empty, &machine, &BspSchedule::zeroed(0), &quick_cfg());
        assert_eq!((c, stats.iterations), (0, 0));

        let mut b = DagBuilder::new();
        b.add_node(3, 1);
        let one = b.build().unwrap();
        let (out, c, _) = tabu_search(&one, &machine, &BspSchedule::zeroed(1), &quick_cfg());
        assert_eq!(c, lazy_cost(&one, &machine, &out));
    }
}
