//! Multilevel scheduling: coarsen → solve → uncoarsen + refine
//! (paper §4.5, Appendix A.5).
//!
//! The DAG is repeatedly coarsened by contracting a *contractable* edge
//! (one with no alternative directed path), preferring edges with small
//! merged work weight `w(u) + w(v)` and large communication weight `c(u)`.
//! The coarse DAG is scheduled with the base scheduler; the contractions
//! are then undone in reverse order in small chunks, projecting the
//! schedule onto the finer DAG (children inherit the merged node's
//! processor and superstep — always valid, since the coarse graph was a
//! DAG) and running a bounded hill-climbing refinement after every chunk.
//!
//! As in the paper, the algorithm is run for coarsening ratios 30% and 15%
//! and the cheaper result is kept, and the communication-schedule
//! optimizers are applied once at the end on the original DAG.

use crate::hc::{hill_climb, HillClimbConfig};
use crate::state::ScheduleState;
use bsp_dag::{Dag, MutableDag, NodeId};
use bsp_model::BspParams;
use bsp_schedule::compact::compact_lazy;
use bsp_schedule::cost::lazy_cost;
use bsp_schedule::BspSchedule;

/// Multilevel tuning parameters.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Coarsening ratios to try; the cheapest final schedule wins.
    /// Paper default: `[0.3, 0.15]`.
    pub ratios: Vec<f64>,
    /// Number of uncontractions between refinement passes (paper: 5).
    pub refine_interval: usize,
    /// Accepted-move budget per refinement pass (paper: 100).
    pub refine_moves: usize,
    /// Candidate list refresh period during coarsening (a deviation from
    /// the paper's per-step re-sort, which is O(|E|) per contraction; the
    /// list is refreshed every this many contractions and every candidate
    /// is still exactly re-verified before being applied).
    pub refresh_period: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            ratios: vec![0.3, 0.15],
            refine_interval: 5,
            refine_moves: 100,
            refresh_period: 64,
        }
    }
}

/// One recorded contraction: `merged` was merged into `kept`.
#[derive(Debug, Clone, Copy)]
pub struct Contraction {
    /// Surviving node (original id space).
    pub kept: NodeId,
    /// Node merged away.
    pub merged: NodeId,
}

/// Coarsens `dag` down to (at most) `target` live nodes. Returns the
/// contraction log in application order; fewer contractions are returned if
/// the graph runs out of contractable edges.
pub fn coarsen(dag: &Dag, target: usize, cfg: &MultilevelConfig) -> Vec<Contraction> {
    let mut m = MutableDag::from_dag(dag);
    let mut log = Vec::new();
    let mut queue: Vec<(NodeId, NodeId)> = Vec::new();
    let mut since_refresh = usize::MAX; // force initial refresh

    while m.n_alive() > target.max(1) {
        if queue.is_empty() || since_refresh >= cfg.refresh_period {
            queue = ranked_candidates(&m);
            since_refresh = 0;
            if queue.is_empty() {
                break;
            }
        }
        let mut contracted = false;
        while let Some((u, v)) = queue.pop() {
            if m.is_alive(u) && m.is_alive(v) && m.is_contractable(u, v) {
                m.contract_edge(u, v);
                log.push(Contraction { kept: u, merged: v });
                since_refresh += 1;
                contracted = true;
                break;
            }
        }
        if !contracted {
            // Stale queue exhausted; force a refresh (or stop if none left).
            since_refresh = usize::MAX;
            let fresh = ranked_candidates(&m);
            if fresh.is_empty() {
                break;
            }
            queue = fresh;
        }
    }
    log
}

/// Candidate edges ordered so that popping from the *back* follows the
/// paper's rule: ascending merged work weight, and within the lightest
/// third, larger `c(u)` first.
fn ranked_candidates(m: &MutableDag) -> Vec<(NodeId, NodeId)> {
    let mut edges = m.contractable_edges();
    if edges.is_empty() {
        return edges;
    }
    // Ascending by merged work; ties by ids for determinism.
    edges.sort_by_key(|&(u, v)| (m.work(u) + m.work(v), u, v));
    let third = edges.len().div_ceil(3);
    let mut head: Vec<(NodeId, NodeId)> = edges[..third].to_vec();
    let tail: Vec<(NodeId, NodeId)> = edges[third..].to_vec();
    // Within the lightest third: prefer large c(u): sort ascending so the
    // best sits at the very back for pop().
    head.sort_by_key(|&(u, v)| (m.comm(u), std::cmp::Reverse(u), std::cmp::Reverse(v)));
    // Final pop order: head (best last), preceded by tail as fallback.
    let mut out = tail;
    out.reverse(); // lightest of the tail popped first once head exhausts
    out.extend(head);
    out
}

/// Builds the coarse [`Dag`] after applying `log[..k]`, together with the
/// original-to-coarse node mapping.
pub fn stage_graph(dag: &Dag, log: &[Contraction]) -> (Dag, Vec<Option<NodeId>>) {
    let mut m = MutableDag::from_dag(dag);
    for c in log {
        m.contract_edge(c.kept, c.merged);
    }
    m.compact()
}

/// Representative (surviving original id) of every node after `log`.
fn representatives(n: usize, log: &[Contraction]) -> Vec<NodeId> {
    let mut parent: Vec<NodeId> = (0..n as NodeId).collect();
    fn find(parent: &mut [NodeId], v: NodeId) -> NodeId {
        if parent[v as usize] != v {
            let r = find(parent, parent[v as usize]);
            parent[v as usize] = r;
        }
        parent[v as usize]
    }
    for c in log {
        let r = find(&mut parent, c.kept);
        parent[c.merged as usize] = r;
    }
    (0..n as NodeId).map(|v| find(&mut parent, v)).collect()
}

/// Runs the full multilevel scheme for a single coarsening `log`, given a
/// base scheduler for the coarse graph. Returns the refined assignment on
/// the original DAG.
pub fn multilevel_with_log(
    dag: &Dag,
    machine: &BspParams,
    log: &[Contraction],
    cfg: &MultilevelConfig,
    base: &mut dyn FnMut(&Dag, &BspParams) -> BspSchedule,
) -> BspSchedule {
    // Solve on the fully coarsened graph.
    let (coarse, _) = stage_graph(dag, log);
    let coarse_sched = base(&coarse, machine);
    debug_assert!(coarse_sched.respects_precedence_lazy(&coarse));

    // Walk back towards the original graph, refining every chunk.
    let mut prev_k = log.len();
    let mut prev_sched = coarse_sched;
    while prev_k > 0 {
        let k = prev_k.saturating_sub(cfg.refine_interval);
        let (stage, stage_map) = stage_graph(dag, &log[..k]);
        // Project: each stage-k node inherits from its representative at
        // stage prev_k.
        let reps = representatives(dag.n(), &log[..prev_k]);
        let (_, prev_map) = stage_graph(dag, &log[..prev_k]);
        let mut proc = vec![0u32; stage.n()];
        let mut step = vec![0u32; stage.n()];
        for orig in dag.nodes() {
            if let Some(sid) = stage_map[orig as usize] {
                let rep = reps[orig as usize];
                let pid = prev_map[rep as usize].expect("representative must be alive");
                proc[sid as usize] = prev_sched.proc(pid);
                step[sid as usize] = prev_sched.step(pid);
            }
        }
        let projected = BspSchedule::from_parts(proc, step);
        debug_assert!(projected.respects_precedence_lazy(&stage));
        let mut st = ScheduleState::new(&stage, machine, &projected);
        hill_climb(
            &mut st,
            &HillClimbConfig {
                max_moves: Some(cfg.refine_moves),
                time_limit: None,
            },
        );
        prev_sched = st.snapshot();
        prev_k = k;
    }
    compact_lazy(dag, &prev_sched)
}

/// Full multilevel scheduler: tries every configured coarsening ratio and
/// returns the assignment with the lowest lazy cost. `base` schedules the
/// coarse DAG (the paper uses the Figure-3 pipeline without `ILPcs`).
pub fn multilevel_schedule(
    dag: &Dag,
    machine: &BspParams,
    cfg: &MultilevelConfig,
    base: &mut dyn FnMut(&Dag, &BspParams) -> BspSchedule,
) -> BspSchedule {
    // Coarsen once to the smallest ratio; larger ratios are prefixes.
    let min_ratio = cfg.ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let deepest_target = ((dag.n() as f64) * min_ratio).ceil() as usize;
    let full_log = coarsen(dag, deepest_target.max(2), cfg);

    let mut best: Option<(u64, BspSchedule)> = None;
    for &ratio in &cfg.ratios {
        let target = ((dag.n() as f64) * ratio).ceil() as usize;
        let k = full_log.len().min(dag.n().saturating_sub(target));
        let sched = multilevel_with_log(dag, machine, &full_log[..k], cfg, base);
        let cost = lazy_cost(dag, machine, &sched);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, sched));
        }
    }
    best.expect("at least one ratio configured").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::TopoInfo;
    use bsp_schedule::validity::validate_lazy;

    fn sample(seed: u64) -> Dag {
        random_layered_dag(
            seed,
            LayeredConfig {
                layers: 6,
                width: 6,
                edge_prob: 0.3,
                max_work: 5,
                max_comm: 6,
            },
        )
    }

    #[test]
    fn coarsen_reaches_target_and_stays_acyclic() {
        let dag = sample(1);
        let log = coarsen(&dag, dag.n() / 4, &MultilevelConfig::default());
        assert!(dag.n() - log.len() <= dag.n() / 4 + 1);
        let (coarse, _) = stage_graph(&dag, &log);
        let topo = TopoInfo::new(&coarse);
        assert!(bsp_dag::topo::is_topological_order(&coarse, &topo.order));
        assert_eq!(coarse.total_work(), dag.total_work());
    }

    #[test]
    fn representatives_follow_contraction_chains() {
        let dag = sample(2);
        let log = coarsen(&dag, dag.n() / 3, &MultilevelConfig::default());
        let reps = representatives(dag.n(), &log);
        let (_, map) = stage_graph(&dag, &log);
        for v in dag.nodes() {
            assert!(
                map[reps[v as usize] as usize].is_some(),
                "rep of {v} must be alive"
            );
        }
    }

    #[test]
    fn multilevel_produces_valid_schedules() {
        let dag = sample(3);
        let machine = BspParams::new(4, 5, 5);
        let mut base = |d: &Dag, m: &BspParams| crate::init::bspg::bspg_schedule(d, m);
        let sched = multilevel_schedule(&dag, &machine, &MultilevelConfig::default(), &mut base);
        assert!(validate_lazy(&dag, 4, &sched).is_ok());
    }

    #[test]
    fn multilevel_beats_trivial_on_comm_heavy_instance() {
        // High g and NUMA-like conditions: communication dominates; the
        // multilevel result must at least stay within the trivial cost.
        let dag = sample(4);
        let machine = BspParams::new(4, 20, 10);
        let trivial = dag.total_work() + machine.l();
        let mut base = |d: &Dag, m: &BspParams| {
            let s = crate::init::bspg::bspg_schedule(d, m);
            let mut st = ScheduleState::new(d, m, &s);
            hill_climb(
                &mut st,
                &HillClimbConfig {
                    max_moves: Some(300),
                    time_limit: None,
                },
            );
            st.snapshot()
        };
        let sched = multilevel_schedule(&dag, &machine, &MultilevelConfig::default(), &mut base);
        assert!(validate_lazy(&dag, 4, &sched).is_ok());
        let cost = lazy_cost(&dag, &machine, &sched);
        assert!(
            cost <= trivial + trivial / 2,
            "multilevel wildly off: {cost} vs trivial {trivial}"
        );
    }
}
