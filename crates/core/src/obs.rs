//! Process-global operation counters for the local-search kernels.
//!
//! The hot loops (probe scans, greedy sweeps) tally into locals and
//! flush once per scan/call with a single relaxed `fetch_add`, so the
//! counters cost nothing measurable (the `obs_overhead` bench guards
//! this). Exposed series: `bsp_ls_probes_total` (gain-kernel probes),
//! `bsp_ls_scans_total` (full neighbourhood scans) and
//! `bsp_ls_moves_total` (accepted moves).

use std::sync::OnceLock;

pub(crate) struct LsMetrics {
    pub probes: bsp_obs::Counter,
    pub scans: bsp_obs::Counter,
    pub moves: bsp_obs::Counter,
}

pub(crate) fn ls_metrics() -> &'static LsMetrics {
    static METRICS: OnceLock<LsMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = bsp_obs::global();
        LsMetrics {
            probes: reg.counter("bsp_ls_probes_total", &[]),
            scans: reg.counter("bsp_ls_scans_total", &[]),
            moves: reg.counter("bsp_ls_moves_total", &[]),
        }
    })
}
