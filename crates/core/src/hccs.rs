//! Hill climbing on the communication schedule (HCcs, paper §4.3, A.3).
//!
//! With `(π, τ)` fixed, every required transfer `(v, π(v) → q)` may be
//! scheduled in any communication phase `s ∈ [τ(v), s0 − 1]`, where `s0` is
//! the first superstep computing a successor of `v` on `q` (the
//! direct-from-source model). HCcs greedily moves single transfers to
//! cheaper phases until no move improves the cost.

use bsp_dag::Dag;
use bsp_model::BspParams;
use bsp_schedule::comm::{required_transfers, Transfer};
use bsp_schedule::{BspSchedule, CommSchedule, CommStep};
use std::time::{Duration, Instant};

/// Budgets for an HCcs run.
#[derive(Debug, Clone, Copy)]
pub struct CommHillClimbConfig {
    /// Maximum accepted moves (`None` = unlimited).
    pub max_moves: Option<usize>,
    /// Wall-clock limit (`None` = unlimited).
    pub time_limit: Option<Duration>,
}

impl Default for CommHillClimbConfig {
    fn default() -> Self {
        CommHillClimbConfig {
            max_moves: None,
            time_limit: Some(Duration::from_secs(2)),
        }
    }
}

/// Incremental state for the communication-scheduling subproblem.
pub struct CommState<'a> {
    dag: &'a Dag,
    machine: &'a BspParams,
    transfers: Vec<Transfer>,
    /// Chosen phase per transfer.
    phase: Vec<u32>,
    /// λ-weighted bytes sent per `[step][proc]`.
    send: Vec<u64>,
    recv: Vec<u64>,
    comm_count: Vec<u32>,
    /// Whether the superstep computes any node (fixed by the assignment).
    has_work: Vec<bool>,
    /// Max work per superstep (fixed).
    work_max: Vec<u64>,
    step_cost: Vec<u64>,
    total: u64,
    n_steps: usize,
}

impl<'a> CommState<'a> {
    /// Builds the state from an assignment, placing every transfer *lazily*
    /// (at its latest feasible phase), which is the schedule the rest of the
    /// framework assumes.
    pub fn new(dag: &'a Dag, machine: &'a BspParams, sched: &BspSchedule) -> Self {
        let transfers = required_transfers(dag, sched);
        let phase: Vec<u32> = transfers.iter().map(|t| t.latest).collect();
        Self::with_phases(dag, machine, sched, transfers, phase)
    }

    fn with_phases(
        dag: &'a Dag,
        machine: &'a BspParams,
        sched: &BspSchedule,
        transfers: Vec<Transfer>,
        phase: Vec<u32>,
    ) -> Self {
        let p = machine.p();
        let comp_steps = sched.n_supersteps() as usize;
        let comm_steps = phase.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
        let n_steps = comp_steps.max(comm_steps).max(1);
        let mut st = CommState {
            dag,
            machine,
            transfers,
            phase,
            send: vec![0; n_steps * p],
            recv: vec![0; n_steps * p],
            comm_count: vec![0; n_steps],
            has_work: vec![false; n_steps],
            work_max: vec![0; n_steps],
            step_cost: vec![0; n_steps],
            total: 0,
            n_steps,
        };
        let mut work = vec![0u64; n_steps * p];
        for v in dag.nodes() {
            let (q, s) = (sched.proc(v) as usize, sched.step(v) as usize);
            work[s * p + q] += dag.work(v);
            st.has_work[s] = true;
        }
        for s in 0..n_steps {
            st.work_max[s] = work[s * p..(s + 1) * p].iter().copied().max().unwrap_or(0);
        }
        for i in 0..st.transfers.len() {
            let t = st.transfers[i];
            let s = st.phase[i] as usize;
            let weighted = dag.comm(t.node) * machine.lambda(t.from as usize, t.to as usize);
            st.send[s * p + t.from as usize] += weighted;
            st.recv[s * p + t.to as usize] += weighted;
            st.comm_count[s] += 1;
        }
        for s in 0..n_steps {
            st.step_cost[s] = st.compute_step_cost(s);
            st.total += st.step_cost[s];
        }
        st
    }

    /// Current total schedule cost (work + g·comm + latency).
    pub fn cost(&self) -> u64 {
        self.total
    }

    /// Number of supersteps tracked (computation or communication).
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// Number of required transfers.
    pub fn n_transfers(&self) -> usize {
        self.transfers.len()
    }

    fn compute_step_cost(&self, s: usize) -> u64 {
        let p = self.machine.p();
        let row = s * p;
        let c = (0..p)
            .map(|q| self.send[row + q].max(self.recv[row + q]))
            .max()
            .unwrap_or(0);
        let nonempty = self.has_work[s] || self.comm_count[s] > 0;
        self.work_max[s] + self.machine.g() * c + if nonempty { self.machine.l() } else { 0 }
    }

    /// Computes the exact total-cost delta of moving transfer `i` to
    /// `new_phase` without mutating anything: the mirror of
    /// [`crate::state::ScheduleState::probe_move`] for the communication
    /// subproblem. A transfer touches exactly two supersteps, so no scratch
    /// is needed; runs in `O(P)` with zero allocation.
    fn probe_phase(&self, i: usize, new_phase: u32) -> i64 {
        let t = self.transfers[i];
        let old = self.phase[i] as usize;
        let new = new_phase as usize;
        if old == new {
            return 0;
        }
        let p = self.machine.p();
        let weighted = self.dag.comm(t.node) * self.machine.lambda(t.from as usize, t.to as usize);
        let mut delta = 0i64;
        for (s, sign) in [(old, -1i64), (new, 1i64)] {
            let row = s * p;
            let dsendrow = sign * weighted as i64;
            let c = (0..p)
                .map(|q| {
                    let mut send = self.send[row + q] as i64;
                    let mut recv = self.recv[row + q] as i64;
                    if q == t.from as usize {
                        send += dsendrow;
                    }
                    if q == t.to as usize {
                        recv += dsendrow;
                    }
                    send.max(recv) as u64
                })
                .max()
                .unwrap_or(0);
            let count = (self.comm_count[s] as i64 + sign) as u32;
            let nonempty = self.has_work[s] || count > 0;
            let new_cost = self.work_max[s]
                + self.machine.g() * c
                + if nonempty { self.machine.l() } else { 0 };
            delta += new_cost as i64 - self.step_cost[s] as i64;
        }
        delta
    }

    /// Moves transfer `i` to `new_phase`, returning the new total cost.
    fn apply(&mut self, i: usize, new_phase: u32) -> u64 {
        let p = self.machine.p();
        let t = self.transfers[i];
        let old = self.phase[i] as usize;
        let new = new_phase as usize;
        if old == new {
            return self.total;
        }
        let weighted = self.dag.comm(t.node) * self.machine.lambda(t.from as usize, t.to as usize);
        self.send[old * p + t.from as usize] -= weighted;
        self.recv[old * p + t.to as usize] -= weighted;
        self.comm_count[old] -= 1;
        self.send[new * p + t.from as usize] += weighted;
        self.recv[new * p + t.to as usize] += weighted;
        self.comm_count[new] += 1;
        self.phase[i] = new_phase;
        for s in [old, new] {
            self.total -= self.step_cost[s];
            self.step_cost[s] = self.compute_step_cost(s);
            self.total += self.step_cost[s];
        }
        self.total
    }

    /// Extracts the explicit communication schedule.
    pub fn comm_schedule(&self) -> CommSchedule {
        CommSchedule::from_entries(
            self.transfers
                .iter()
                .zip(&self.phase)
                .map(|(t, &s)| CommStep {
                    node: t.node,
                    from: t.from,
                    to: t.to,
                    step: s,
                })
                .collect(),
        )
    }
}

/// Runs greedy first-improvement hill climbing over transfer phases.
/// Returns the number of accepted moves; the cost never increases.
pub fn comm_hill_climb(state: &mut CommState<'_>, cfg: &CommHillClimbConfig) -> usize {
    comm_hill_climb_threaded(state, cfg, 1)
}

/// The first improving phase for transfer `i`, probing candidate phases in
/// window order — exactly the sequential inner loop's acceptance test.
fn first_improving_phase(state: &CommState<'_>, i: usize) -> Option<u32> {
    let t = state.transfers[i];
    let cur = state.phase[i];
    (t.earliest..=t.latest).find(|&s| s != cur && state.probe_phase(i, s) < 0)
}

/// [`comm_hill_climb`] with the transfer scan fanned out over `threads`
/// workers (`0` = auto-detect, `1` = sequential). First-improvement search
/// parallelizes exactly because probes are pure between applies: each round
/// finds the **lowest-index** transfer at or after the resume position with
/// an improving phase ([`bsp_par::par_find_first`]), applies it, and
/// resumes after it — the accepted move sequence is **bit-identical** to
/// the sequential scan for every thread count. Budget limits are checked
/// once per accepted move rather than once per probed transfer, so a
/// deadline may be overshot by one scan round.
pub fn comm_hill_climb_threaded(
    state: &mut CommState<'_>,
    cfg: &CommHillClimbConfig,
    threads: usize,
) -> usize {
    let deadline = cfg.time_limit.map(|t| Instant::now() + t);
    let max_moves = cfg.max_moves.unwrap_or(usize::MAX);
    let threads = bsp_par::resolve_threads(threads);
    let mut accepted = 0usize;
    if threads <= 1 || state.transfers.len() < 2 * PAR_CHUNK {
        loop {
            let mut improved = false;
            for i in 0..state.transfers.len() {
                if accepted >= max_moves {
                    return accepted;
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return accepted;
                    }
                }
                if let Some(s) = first_improving_phase(state, i) {
                    state.apply(i, s);
                    accepted += 1;
                    improved = true;
                }
            }
            if !improved {
                return accepted;
            }
        }
    }
    loop {
        let mut improved = false;
        let mut pos = 0usize;
        while pos < state.transfers.len() {
            if accepted >= max_moves {
                return accepted;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return accepted;
                }
            }
            let found = {
                let st: &CommState<'_> = &*state;
                bsp_par::par_find_first(threads, st.transfers.len() - pos, PAR_CHUNK, |k| {
                    first_improving_phase(st, pos + k)
                })
            };
            match found {
                Some((k, s)) => {
                    let i = pos + k;
                    state.apply(i, s);
                    accepted += 1;
                    improved = true;
                    pos = i + 1;
                }
                None => break,
            }
        }
        if !improved {
            return accepted;
        }
    }
}

/// Transfers per parallel work unit in the first-improvement scan.
const PAR_CHUNK: usize = 64;

/// Convenience wrapper: derives transfers from `sched`, optimizes their
/// phases, and returns the explicit `Γ` plus its total cost.
pub fn optimize_comm_schedule(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    cfg: &CommHillClimbConfig,
) -> (CommSchedule, u64) {
    optimize_comm_schedule_threaded(dag, machine, sched, cfg, 1)
}

/// [`optimize_comm_schedule`] running the climb through
/// [`comm_hill_climb_threaded`]; the returned `Γ` and cost are identical
/// to the sequential wrapper for every thread count.
pub fn optimize_comm_schedule_threaded(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    cfg: &CommHillClimbConfig,
    threads: usize,
) -> (CommSchedule, u64) {
    let mut st = CommState::new(dag, machine, sched);
    comm_hill_climb_threaded(&mut st, cfg, threads);
    let cost = st.cost();
    (st.comm_schedule(), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;
    use bsp_schedule::cost::total_cost;
    use bsp_schedule::validity::validate;

    /// h-relation economics: moving a transfer helps when it is its phase's
    /// bottleneck and the destination phase's bottleneck lives on a
    /// *disjoint* processor pair. Setup (g = 1, four processors):
    ///
    /// * `a` (c=8) p0→p1, fixed at phase 0 (consumer in superstep 1);
    /// * `e` (c=3) p0→p1, fixed at phase 1;
    /// * `b` (c=7) p2→p3, window `[0, 1]`, lazily at phase 1.
    ///
    /// Lazy cost: phases 8 + max(3,7) = 15. Moving `b` to phase 0 overlaps
    /// it with `a` on disjoint pairs: max(8,7) + 3 = 11.
    #[test]
    fn spreads_transfers_across_phases() {
        let mut bld = DagBuilder::new();
        let a = bld.add_node(1, 8);
        let e = bld.add_node(1, 3);
        let b = bld.add_node(1, 7);
        let wa = bld.add_node(1, 1);
        let we = bld.add_node(1, 1);
        let wb = bld.add_node(1, 1);
        bld.add_edge(a, wa).unwrap();
        bld.add_edge(e, we).unwrap();
        bld.add_edge(b, wb).unwrap();
        let dag = bld.build().unwrap();
        let machine = BspParams::new(4, 1, 0);
        // a: (p0, s0) -> wa: (p1, s1); e: (p0, s1) -> we: (p1, s2);
        // b: (p2, s0) -> wb: (p3, s2).
        let sched = BspSchedule::from_parts(vec![0, 0, 2, 1, 1, 3], vec![0, 1, 0, 1, 2, 2]);
        let mut st = CommState::new(&dag, &machine, &sched);
        let lazy = st.cost();
        let moves = comm_hill_climb(
            &mut st,
            &CommHillClimbConfig {
                max_moves: None,
                time_limit: None,
            },
        );
        assert!(moves >= 1);
        assert_eq!(st.cost(), lazy - 4, "expected 15 -> 11 comm units");
        // Result must stay a valid explicit schedule.
        let comm = st.comm_schedule();
        assert!(validate(&dag, 4, &sched, &comm).is_ok());
        assert_eq!(st.cost(), total_cost(&dag, &machine, &sched, &comm));
    }

    #[test]
    fn no_transfers_no_moves() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 1);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::from_parts(vec![0, 0], vec![0, 1]);
        let mut st = CommState::new(&dag, &machine, &sched);
        assert_eq!(st.n_transfers(), 0);
        assert_eq!(comm_hill_climb(&mut st, &CommHillClimbConfig::default()), 0);
    }

    #[test]
    fn cost_matches_external_evaluation_after_moves() {
        let mut b = DagBuilder::new();
        let mut prev = Vec::new();
        for _ in 0..3 {
            prev.push(b.add_node(2, 3));
        }
        let mut next = Vec::new();
        for i in 0..3 {
            let v = b.add_node(1, 1);
            b.add_edge(prev[i], v).unwrap();
            next.push(v);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(3, 2, 4);
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 1, 2, 1], vec![0, 0, 1, 2, 2, 3]);
        let (comm, cost) = optimize_comm_schedule(
            &dag,
            &machine,
            &sched,
            &CommHillClimbConfig {
                max_moves: None,
                time_limit: None,
            },
        );
        assert!(validate(&dag, 3, &sched, &comm).is_ok());
        assert_eq!(cost, total_cost(&dag, &machine, &sched, &comm));
        // Never worse than lazy.
        let lazy = CommSchedule::lazy(&dag, &sched);
        assert!(cost <= total_cost(&dag, &machine, &sched, &lazy));
    }
}
