//! `ILPinit`: ILP-based initialization (paper §4.2, Appendix A.4).
//!
//! Nodes are taken in topological order in batches; each batch is scheduled
//! into the next few supersteps by a window ILP, with previously scheduled
//! batches fixed (their availability folded into the window model as
//! boundary constants) and later nodes ignored. Batches are cut both by the
//! variable-count estimate and by the intra-batch depth (which must fit the
//! superstep window so that a feasible schedule always exists).

use super::window::{WindowIlp, WindowOptions};
use super::IlpConfig;
use bsp_dag::{Dag, NodeId, TopoInfo};
use bsp_model::BspParams;
use bsp_schedule::compact::compact_lazy;
use bsp_schedule::BspSchedule;

/// Supersteps per batch window (the paper uses 3).
const BATCH_STEPS: u32 = 3;

/// Runs `ILPinit` and returns a complete assignment.
pub fn ilp_init(dag: &Dag, machine: &BspParams, cfg: &IlpConfig) -> BspSchedule {
    let n = dag.n();
    let mut sched = BspSchedule::zeroed(n);
    if n == 0 {
        return sched;
    }
    let topo = TopoInfo::new(dag);
    let p = machine.p();

    let mut pos = 0usize;
    let mut next_step = 0u32;
    let mut batch_of = vec![u32::MAX; n]; // batch index per node, MAX = future
    let mut batch_idx = 0u32;
    while pos < topo.order.len() {
        // Grow the batch: bounded by variable estimate and depth <= BATCH_STEPS.
        let mut batch: Vec<NodeId> = Vec::new();
        let mut level_in_batch = vec![0u32; n];
        while pos < topo.order.len() {
            let v = topo.order[pos];
            let lvl = dag
                .predecessors(v)
                .iter()
                .filter(|&&u| batch_of[u as usize] == batch_idx)
                .map(|&u| level_in_batch[u as usize] + 1)
                .max()
                .unwrap_or(0);
            if lvl >= BATCH_STEPS {
                break;
            }
            let est = WindowIlp::estimate_vars(batch.len() + 1, BATCH_STEPS as usize, p);
            if est > cfg.part_target_vars && !batch.is_empty() {
                break;
            }
            level_in_batch[v as usize] = lvl;
            batch_of[v as usize] = batch_idx;
            batch.push(v);
            pos += 1;
        }
        debug_assert!(!batch.is_empty());

        let s1 = next_step;
        let s2 = s1 + BATCH_STEPS - 1;
        // Feasible default: batch levels on processor 0.
        for &v in &batch {
            sched.set(v, 0, s1 + level_in_batch[v as usize]);
        }
        // Temporarily park all future nodes far beyond the window so that
        // the window model treats only the batch as free and sees no
        // external successors (ILPinit ignores unscheduled successors).
        let park = s2 + 1_000_000;
        for &v in &topo.order[pos..] {
            sched.set(v, 0, park);
        }
        let w = WindowIlp::build(
            dag,
            machine,
            &sched,
            s1,
            s2,
            WindowOptions {
                require_external_delivery: false,
            },
        );
        let warm = w.warm_start(dag, machine, &sched);
        debug_assert!(
            w.model.is_feasible(&warm, 1e-5),
            "ILPinit warm start must be feasible"
        );
        let sol = super::solve_model(&w.model, Some(&warm), &cfg.limits, cfg.use_presolve);
        if !sol.x.is_empty() {
            let cand = w.extract(&sol.x, &sched);
            // Keep only if still valid for the scheduled prefix.
            let mut ok = true;
            'check: for &v in &batch {
                for &u in dag.predecessors(v) {
                    let valid = if cand.proc(u) == cand.proc(v) {
                        cand.step(u) <= cand.step(v)
                    } else {
                        cand.step(u) < cand.step(v)
                    };
                    if !valid {
                        ok = false;
                        break 'check;
                    }
                }
            }
            if ok {
                for &v in &batch {
                    sched.set(v, cand.proc(v), cand.step(v));
                }
            }
        }
        next_step = s2 + 1;
        batch_idx += 1;
    }
    compact_lazy(dag, &sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_schedule::cost::lazy_cost;
    use bsp_schedule::validity::validate_lazy;

    #[test]
    fn produces_valid_schedules_on_random_dags() {
        for seed in 0..4 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 4,
                    width: 4,
                    edge_prob: 0.4,
                    ..Default::default()
                },
            );
            let machine = BspParams::new(2, 1, 3);
            let s = ilp_init(&dag, &machine, &IlpConfig::default());
            assert!(validate_lazy(&dag, 2, &s).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn parallelizes_independent_work() {
        let mut b = DagBuilder::new();
        for _ in 0..6 {
            b.add_node(4, 1);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let s = ilp_init(&dag, &machine, &IlpConfig::default());
        assert!(validate_lazy(&dag, 2, &s).is_ok());
        // The trivial one-processor cost is 24 + l; the ILP should split.
        assert!(lazy_cost(&dag, &machine, &s) < 24);
    }

    #[test]
    fn deep_chain_fits_via_multiple_batches() {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..10).map(|_| b.add_node(1, 1)).collect();
        for i in 0..9 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let s = ilp_init(&dag, &machine, &IlpConfig::default());
        assert!(validate_lazy(&dag, 2, &s).is_ok());
    }
}
