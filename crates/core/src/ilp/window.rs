//! Window ILP formulation shared by `ILPfull` and `ILPpart`
//! (paper §4.4, Appendix A.4).
//!
//! The formulation follows the FS model of \[28\] with the paper's variable
//! reductions: binary `comp[v,p,s]` and `comm[v,p1,p2,s]` variables,
//! continuous presence variables `pres[v,p,s]` (inductively bounded by the
//! recursion, so they need no integrality), continuous `workMax[s]` /
//! `commMax[s]` h-relation aggregates, and binary `used[s]` latency
//! indicators with aggregated big-M rows.
//!
//! For a *partial* window `[s1, s2]` (ILPpart) the boundary is handled as in
//! Appendix A.4:
//!
//! * external predecessors are only allowed to send *directly from their
//!   fixed processor* (`π(u)`), starting at the last phase before the window;
//! * presence that the current schedule already establishes outside the
//!   window is folded in as constants, as is communication traffic crossing
//!   the window that the reassignment cannot affect;
//! * a node with an external consumer on processor `q` must be delivered to
//!   `q` by the end of the window (potential gains from removing
//!   post-window transfers are ignored).
//!
//! The model is an *approximation at the boundary*; the driver therefore
//! re-evaluates every extracted schedule under the true lazy cost and keeps
//! it only when it improves the incumbent — the same monotone-improvement
//! contract the paper's pipeline has.

use bsp_dag::{Dag, NodeId};
use bsp_ilp::{Model, Sense, VarId};
use bsp_model::BspParams;
use bsp_schedule::{BspSchedule, CommSchedule};
use std::collections::HashMap;

/// Options controlling boundary handling.
#[derive(Debug, Clone, Copy)]
pub struct WindowOptions {
    /// Require in-window delivery to processors hosting external consumers
    /// (`true` for ILPpart; `false` for ILPinit, which has no successors
    /// scheduled yet).
    pub require_external_delivery: bool,
}

impl Default for WindowOptions {
    fn default() -> Self {
        WindowOptions {
            require_external_delivery: true,
        }
    }
}

/// Reference to a presence value: a known constant or a model variable.
#[derive(Debug, Clone, Copy)]
enum Pres {
    Zero,
    One,
    Var(VarId),
}

/// A built window ILP with the maps needed for warm starts and extraction.
pub struct WindowIlp {
    /// The underlying MILP (minimization).
    pub model: Model,
    s1: u32,
    s2: u32,
    phase_lo: u32,
    p: usize,
    v0: Vec<NodeId>,
    in_v0: Vec<bool>,
    comp: HashMap<(NodeId, u32, u32), VarId>,
    comm: HashMap<(NodeId, u32, u32, u32), VarId>,
    pres: HashMap<(NodeId, u32, u32), VarId>,
    /// `avail_const[v] -> (proc -> first constantly-present step)`.
    avail: HashMap<(NodeId, u32), u32>,
    work_max: HashMap<u32, VarId>,
    comm_max: HashMap<u32, VarId>,
    used: HashMap<u32, VarId>,
}

impl WindowIlp {
    /// Paper-style size estimate `|V0| · |S0| · P²` used to pick window
    /// extents before building (§6).
    pub fn estimate_vars(n_window_nodes: usize, n_steps: usize, p: usize) -> usize {
        n_window_nodes * n_steps * p * p
    }

    /// Builds the window ILP over supersteps `[s1, s2]` of `sched` (which
    /// must be a valid lazy assignment). Nodes currently scheduled in the
    /// window become free; everything else is fixed boundary data.
    pub fn build(
        dag: &Dag,
        machine: &BspParams,
        sched: &BspSchedule,
        s1: u32,
        s2: u32,
        opts: WindowOptions,
    ) -> WindowIlp {
        let p = machine.p();
        let phase_lo = s1.saturating_sub(1);
        let mut w = WindowIlp {
            model: Model::new(),
            s1,
            s2,
            phase_lo,
            p,
            v0: Vec::new(),
            in_v0: vec![false; dag.n()],
            comp: HashMap::new(),
            comm: HashMap::new(),
            pres: HashMap::new(),
            avail: HashMap::new(),
            work_max: HashMap::new(),
            comm_max: HashMap::new(),
            used: HashMap::new(),
        };
        for v in dag.nodes() {
            if sched.step(v) >= s1 && sched.step(v) <= s2 {
                w.v0.push(v);
                w.in_v0[v as usize] = true;
            }
        }
        // Boundary predecessors.
        let mut boundary: Vec<NodeId> = Vec::new();
        let mut is_boundary = vec![false; dag.n()];
        for &v in &w.v0 {
            for &u in dag.predecessors(v) {
                if !w.in_v0[u as usize] && !is_boundary[u as usize] {
                    is_boundary[u as usize] = true;
                    boundary.push(u);
                }
            }
        }
        boundary.sort_unstable();

        // Constant availability for boundary nodes and constant cross-window
        // traffic: derive the "external lazy" schedule (window consumers
        // removed).
        let mut const_send = HashMap::<(u32, u32), u64>::new(); // (phase, proc)
        let mut const_recv = HashMap::<(u32, u32), u64>::new();
        for u in dag.nodes() {
            if w.in_v0[u as usize] {
                continue; // producers inside the window are fully modeled
            }
            let pu = sched.proc(u);
            w.avail.insert((u, pu), 0); // present on its own processor always
                                        // first external need per processor
            let mut fne: HashMap<u32, u32> = HashMap::new();
            for &c in dag.successors(u) {
                if w.in_v0[c as usize] {
                    continue;
                }
                let q = sched.proc(c);
                if q == pu {
                    continue;
                }
                let e = fne.entry(q).or_insert(u32::MAX);
                *e = (*e).min(sched.step(c));
            }
            for (q, f) in fne {
                w.avail.insert((u, q), f);
                let phase = f - 1;
                if phase >= phase_lo && phase <= s2 {
                    let weight = dag.comm(u) * machine.lambda(pu as usize, q as usize);
                    *const_send.entry((phase, pu)).or_insert(0) += weight;
                    *const_recv.entry((phase, q)).or_insert(0) += weight;
                }
            }
        }

        // --- Variables.
        for &v in &w.v0 {
            for q in 0..p as u32 {
                for s in s1..=s2 {
                    let id = w.model.add_binary(0.0);
                    w.comp.insert((v, q, s), id);
                }
            }
        }
        // comm vars: V0 producers (any source pair, phases s1..=s2) and
        // boundary producers (direct from π(u), phases phase_lo..s2-1, only
        // when some window node consumes u).
        for &v in &w.v0 {
            if dag.out_degree(v) == 0 {
                continue;
            }
            for p1 in 0..p as u32 {
                for p2 in 0..p as u32 {
                    if p1 == p2 {
                        continue;
                    }
                    for s in s1..=s2 {
                        let id = w.model.add_binary(0.0);
                        w.comm.insert((v, p1, p2, s), id);
                    }
                }
            }
        }
        for &u in &boundary {
            let pu = sched.proc(u);
            for q in 0..p as u32 {
                if q == pu {
                    continue;
                }
                for s in phase_lo..s2 {
                    let id = w.model.add_binary(0.0);
                    w.comm.insert((u, pu, q, s), id);
                }
            }
        }
        // pres vars where presence is not constant.
        let all_pres_nodes: Vec<NodeId> = w.v0.iter().chain(boundary.iter()).copied().collect();
        for &v in &all_pres_nodes {
            for q in 0..p as u32 {
                for s in s1..=s2 {
                    if w.const_pres(v, q, s).is_none() {
                        let id = w.model.add_continuous(0.0, 1.0, 0.0);
                        w.pres.insert((v, q, s), id);
                    }
                }
            }
        }
        for s in s1..=s2 {
            let id = w.model.add_continuous(0.0, f64::INFINITY, 1.0);
            w.work_max.insert(s, id);
        }
        for s in phase_lo..=s2 {
            let id = w
                .model
                .add_continuous(0.0, f64::INFINITY, machine.g() as f64);
            w.comm_max.insert(s, id);
        }
        for s in phase_lo..=s2 {
            let has_const = (0..p as u32)
                .any(|q| const_send.contains_key(&(s, q)) || const_recv.contains_key(&(s, q)));
            if !has_const {
                let id = w.model.add_binary(machine.l() as f64);
                w.used.insert(s, id);
            }
            // Constant-traffic steps are always non-empty: the ℓ charge is a
            // constant, identical for every solution, so it is omitted.
        }

        // --- Constraints.
        // 1. Each window node computed exactly once.
        for &v in &w.v0 {
            let terms: Vec<(VarId, f64)> = (0..p as u32)
                .flat_map(|q| (s1..=s2).map(move |s| (q, s)))
                .map(|(q, s)| (w.comp[&(v, q, s)], 1.0))
                .collect();
            w.model.add_constraint(terms, Sense::Eq, 1.0);
        }
        // 2. Presence recursion for pres variables.
        for &v in &all_pres_nodes {
            for q in 0..p as u32 {
                for s in s1..=s2 {
                    let Some(&pv) = w.pres.get(&(v, q, s)) else {
                        continue;
                    };
                    // pres <= prev + comp(v,q,s) + sum comm into q at s-1.
                    let mut terms: Vec<(VarId, f64)> = vec![(pv, 1.0)];
                    let mut rhs = 0.0;
                    let prev = if s == s1 {
                        w.pres_base(v, q)
                    } else {
                        w.pres_ref(v, q, s - 1)
                    };
                    match prev {
                        Pres::One => rhs += 1.0,
                        Pres::Zero => {}
                        Pres::Var(prev) => terms.push((prev, -1.0)),
                    }
                    if let Some(&c) = w.comp.get(&(v, q, s)) {
                        terms.push((c, -1.0));
                    }
                    if s >= 1 {
                        let phase = s - 1;
                        for p1 in 0..p as u32 {
                            if let Some(&cm) = w.comm.get(&(v, p1, q, phase)) {
                                terms.push((cm, -1.0));
                            }
                        }
                    }
                    w.model.add_constraint(terms, Sense::Le, rhs);
                }
            }
        }
        // 3. Computation requires predecessors present.
        for &v in &w.v0 {
            for &u in dag.predecessors(v) {
                for q in 0..p as u32 {
                    for s in s1..=s2 {
                        let c = w.comp[&(v, q, s)];
                        match w.pres_ref(u, q, s) {
                            Pres::One => {}
                            Pres::Zero => {
                                w.model.set_bounds(c, 0.0, 0.0);
                            }
                            Pres::Var(pu) => {
                                w.model
                                    .add_constraint(vec![(c, 1.0), (pu, -1.0)], Sense::Le, 0.0);
                            }
                        }
                    }
                }
            }
        }
        // 4. Sending requires presence at the source. At the pre-window
        // phase (s1 - 1) only boundary producers exist, sending from their
        // own fixed processor, where they are present by definition.
        let comm_keys: Vec<(NodeId, u32, u32, u32)> = w.comm.keys().copied().collect();
        for (v, p1, _p2, s) in comm_keys {
            let cm = w.comm[&(v, p1, _p2, s)];
            let pres = if s < s1 {
                w.pres_base(v, p1)
            } else {
                w.pres_ref(v, p1, s)
            };
            match pres {
                Pres::One => {}
                Pres::Zero => {
                    w.model.set_bounds(cm, 0.0, 0.0);
                }
                Pres::Var(pv) => {
                    w.model
                        .add_constraint(vec![(cm, 1.0), (pv, -1.0)], Sense::Le, 0.0);
                }
            }
        }
        // 5. External delivery requirements.
        if opts.require_external_delivery {
            for &v in &w.v0 {
                let mut ext_procs: Vec<u32> = dag
                    .successors(v)
                    .iter()
                    .filter(|&&c| !w.in_v0[c as usize])
                    .map(|&c| sched.proc(c))
                    .collect();
                ext_procs.sort_unstable();
                ext_procs.dedup();
                for q in ext_procs {
                    let mut terms: Vec<(VarId, f64)> =
                        (s1..=s2).map(|s| (w.comp[&(v, q, s)], 1.0)).collect();
                    for p1 in 0..p as u32 {
                        for s in s1..=s2 {
                            if let Some(&cm) = w.comm.get(&(v, p1, q, s)) {
                                terms.push((cm, 1.0));
                            }
                        }
                    }
                    w.model.add_constraint(terms, Sense::Ge, 1.0);
                }
            }
        }
        // 6. Work aggregation rows.
        for s in s1..=s2 {
            for q in 0..p as u32 {
                let mut terms: Vec<(VarId, f64)> =
                    w.v0.iter()
                        .map(|&v| (w.comp[&(v, q, s)], dag.work(v) as f64))
                        .collect();
                terms.push((w.work_max[&s], -1.0));
                w.model.add_constraint(terms, Sense::Le, 0.0);
            }
        }
        // 7. Communication aggregation rows (send and receive).
        for s in phase_lo..=s2 {
            for q in 0..p as u32 {
                let mut send_terms: Vec<(VarId, f64)> = Vec::new();
                let mut recv_terms: Vec<(VarId, f64)> = Vec::new();
                for (&(v, p1, p2, sp), &cm) in &w.comm {
                    if sp != s {
                        continue;
                    }
                    let weight = (dag.comm(v) * machine.lambda(p1 as usize, p2 as usize)) as f64;
                    if p1 == q {
                        send_terms.push((cm, weight));
                    }
                    if p2 == q {
                        recv_terms.push((cm, weight));
                    }
                }
                let cs = *const_send.get(&(s, q)).unwrap_or(&0) as f64;
                let cr = *const_recv.get(&(s, q)).unwrap_or(&0) as f64;
                send_terms.push((w.comm_max[&s], -1.0));
                recv_terms.push((w.comm_max[&s], -1.0));
                w.model.add_constraint(send_terms, Sense::Le, -cs);
                w.model.add_constraint(recv_terms, Sense::Le, -cr);
            }
        }
        // 8. Latency indicators (aggregated big-M).
        for s in phase_lo..=s2 {
            let Some(&us) = w.used.get(&s) else { continue };
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            if s >= s1 {
                for &v in &w.v0 {
                    for q in 0..p as u32 {
                        terms.push((w.comp[&(v, q, s)], 1.0));
                    }
                }
            }
            for (&(_, _, _, sp), &cm) in &w.comm {
                if sp == s {
                    terms.push((cm, 1.0));
                }
            }
            if terms.is_empty() {
                w.model.set_bounds(us, 0.0, 0.0);
                continue;
            }
            let m = terms.len() as f64;
            terms.push((us, -m));
            w.model.add_constraint(terms, Sense::Le, 0.0);
        }
        w
    }

    fn const_pres(&self, v: NodeId, q: u32, s: u32) -> Option<bool> {
        if self.in_v0[v as usize] {
            return None; // window nodes are never constantly present
        }
        match self.avail.get(&(v, q)) {
            Some(&f) if f <= s => Some(true),
            _ => None, // boundary node not yet constantly present: variable
        }
    }

    /// Presence "before the window" (by end of step `s1 - 1`): a constant.
    fn pres_base(&self, v: NodeId, q: u32) -> Pres {
        if self.in_v0[v as usize] || self.s1 == 0 {
            return Pres::Zero;
        }
        match self.avail.get(&(v, q)) {
            Some(&f) if f < self.s1 => Pres::One,
            _ => Pres::Zero,
        }
    }

    /// Presence of `v` on `q` at an in-window step `s ∈ [s1, s2]`.
    fn pres_ref(&self, v: NodeId, q: u32, s: u32) -> Pres {
        debug_assert!(s >= self.s1 && s <= self.s2);
        if let Some(true) = self.const_pres(v, q, s) {
            return Pres::One;
        }
        match self.pres.get(&(v, q, s)) {
            Some(&id) => Pres::Var(id),
            None => Pres::Zero,
        }
    }

    /// Builds a feasible warm-start vector from the current schedule.
    pub fn warm_start(&self, dag: &Dag, machine: &BspParams, sched: &BspSchedule) -> Vec<f64> {
        let mut x = vec![0.0; self.model.n_vars()];
        // comp
        for &v in &self.v0 {
            x[self.comp[&(v, sched.proc(v), sched.step(v))].index()] = 1.0;
        }
        // comm: lazy transfers clipped into the window; late ones pulled to s2.
        let lazy = CommSchedule::lazy(dag, sched);
        for e in lazy.entries() {
            let producer_in_window = self.in_v0[e.node as usize];
            let key_phase = if producer_in_window {
                // consumers may lie beyond the window: clamp to s2
                e.step.min(self.s2).max(self.s1)
            } else {
                e.step
            };
            if let Some(&cm) = self.comm.get(&(e.node, e.from, e.to, key_phase)) {
                x[cm.index()] = 1.0;
            }
        }
        // pres: forward simulation of presence.
        for (&(v, q, s), &id) in &self.pres {
            let present = self.present_in_warm(&x, v, q, s, sched);
            x[id.index()] = if present { 1.0 } else { 0.0 };
        }
        // aggregates
        let p = self.p;
        for (&s, &wid) in &self.work_max {
            let mut per_proc = vec![0u64; p];
            for &v in &self.v0 {
                if sched.step(v) == s {
                    per_proc[sched.proc(v) as usize] += dag.work(v);
                }
            }
            x[wid.index()] = per_proc.iter().copied().max().unwrap_or(0) as f64;
        }
        for (&s, &cid) in &self.comm_max {
            let mut send = vec![0.0f64; p];
            let mut recv = vec![0.0f64; p];
            for (&(v, p1, p2, sp), &cm) in &self.comm {
                if sp == s && x[cm.index()] > 0.5 {
                    let wgt = (dag.comm(v) * machine.lambda(p1 as usize, p2 as usize)) as f64;
                    send[p1 as usize] += wgt;
                    recv[p2 as usize] += wgt;
                }
            }
            // constants are on the rhs of the rows; commMax must cover
            // var-traffic + constants: recompute from the rows directly is
            // complex, so over-cover by adding the largest constant.
            let mut base = 0.0f64;
            for c in self.model.constraints() {
                // rows are  Σ terms - commMax <= -const; find rows with this commMax
                if c.terms
                    .iter()
                    .any(|&(vid, coef)| vid == cid && coef == -1.0)
                {
                    let mut lhs = 0.0;
                    for &(vid, coef) in &c.terms {
                        if vid != cid {
                            lhs += coef * x[vid.index()];
                        }
                    }
                    base = base.max(lhs - c.rhs);
                }
            }
            let max_var = (0..p).map(|i| send[i].max(recv[i])).fold(0.0f64, f64::max);
            x[cid.index()] = max_var.max(base).max(0.0);
        }
        for (&s, &uid) in &self.used {
            if self.model.upper(uid) < 0.5 {
                continue; // fixed to 0
            }
            let mut nonempty = false;
            if s >= self.s1 {
                nonempty |= self.v0.iter().any(|&v| sched.step(v) == s);
            }
            nonempty |= self
                .comm
                .iter()
                .any(|(&(_, _, _, sp), &cm)| sp == s && x[cm.index()] > 0.5);
            x[uid.index()] = if nonempty { 1.0 } else { 0.0 };
        }
        x
    }

    /// Presence of `v` on `q` by end of computation phase `s`, simulated
    /// over a warm-start vector.
    fn present_in_warm(&self, x: &[f64], v: NodeId, q: u32, s: u32, sched: &BspSchedule) -> bool {
        if let Some(&f) = self.avail.get(&(v, q)) {
            if f <= s {
                return true;
            }
        }
        if self.in_v0[v as usize] && sched.proc(v) == q && sched.step(v) <= s {
            return true;
        }
        // arrival via any comm var at phase < s
        for p1 in 0..self.p as u32 {
            for phase in self.phase_lo..s {
                if let Some(&cm) = self.comm.get(&(v, p1, q, phase)) {
                    if x[cm.index()] > 0.5 {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Reads the `comp` variables of a solution back into a full assignment
    /// (non-window nodes keep their schedule).
    pub fn extract(&self, x: &[f64], base: &BspSchedule) -> BspSchedule {
        let mut out = base.clone();
        for &v in &self.v0 {
            'search: for q in 0..self.p as u32 {
                for s in self.s1..=self.s2 {
                    if x[self.comp[&(v, q, s)].index()] > 0.5 {
                        out.set(v, q, s);
                        break 'search;
                    }
                }
            }
        }
        out
    }
}
