//! ILP-based refinement stages (paper §4.4, Appendix A.4).
//!
//! * [`ilp_full`] — the whole scheduling problem as one ILP (`ILPfull`),
//!   attempted only when the estimated variable count is small;
//! * [`ilp_part`] — superstep-window reoptimization (`ILPpart`): supersteps
//!   are split into intervals from back to front, each interval's nodes are
//!   reassigned by a windowed ILP;
//! * [`comm::ilp_comm`] — communication-schedule optimization (`ILPcs`);
//! * [`init::ilp_init`] — the ILP-based initializer (`ILPinit`).
//!
//! Every stage is warm-started from the incumbent and *accepts the result
//! only if the true lazy-model cost improves*, so the pipeline is monotone
//! regardless of solver limits.

pub mod comm;
pub mod init;
pub mod window;

use bsp_dag::Dag;
use bsp_ilp::SolveLimits;
use bsp_model::BspParams;
use bsp_schedule::compact::compact_lazy;
use bsp_schedule::cost::lazy_cost;
use bsp_schedule::BspSchedule;
use window::{WindowIlp, WindowOptions};

/// Configuration of the ILP stages.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// `ILPfull` is attempted when `n · S · P² ≤ full_max_vars` (the paper
    /// used 20 000 with CBC; the built-in solver defaults lower).
    pub full_max_vars: usize,
    /// Target window size for `ILPpart` (paper: 4 000 with CBC).
    pub part_target_vars: usize,
    /// Solver budgets per ILP invocation.
    pub limits: SolveLimits,
    /// Number of back-to-front passes of `ILPpart`.
    pub part_rounds: usize,
    /// Run the presolver (bound tightening, redundancy elimination) before
    /// each branch-and-bound call — the analogue of CBC's preprocessing.
    pub use_presolve: bool,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            full_max_vars: 1200,
            part_target_vars: 600,
            limits: SolveLimits {
                max_nodes: 300,
                time_limit: std::time::Duration::from_secs(3),
                gap: 1e-6,
            },
            part_rounds: 1,
            use_presolve: true,
        }
    }
}

/// Solves `model` with or without the presolve pass, per `use_presolve`.
pub(crate) fn solve_model(
    model: &bsp_ilp::Model,
    warm: Option<&[f64]>,
    limits: &SolveLimits,
    use_presolve: bool,
) -> bsp_ilp::MipSolution {
    if use_presolve {
        bsp_ilp::solve_with_presolve(model, warm, limits)
    } else {
        model.solve(warm, limits)
    }
}

/// Attempts `ILPfull` on the whole (compacted) schedule. Returns an
/// improved schedule or the input if no improvement was found / the problem
/// is too large. The second component is `true` when the solver proved
/// optimality of its incumbent within the model.
pub fn ilp_full(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    cfg: &IlpConfig,
) -> (BspSchedule, bool) {
    let base = compact_lazy(dag, sched);
    let s_max = base.n_supersteps();
    if s_max == 0 {
        return (base, true);
    }
    let est = WindowIlp::estimate_vars(dag.n(), s_max as usize, machine.p());
    if est > cfg.full_max_vars {
        return (base, false);
    }
    let w = WindowIlp::build(dag, machine, &base, 0, s_max - 1, WindowOptions::default());
    let warm = w.warm_start(dag, machine, &base);
    debug_assert!(
        w.model.is_feasible(&warm, 1e-5),
        "warm start must satisfy the window model"
    );
    let sol = solve_model(&w.model, Some(&warm), &cfg.limits, cfg.use_presolve);
    let proven = sol.status == bsp_ilp::MipStatus::Optimal;
    if sol.x.is_empty() {
        return (base, false);
    }
    let cand = w.extract(&sol.x, &base);
    accept_if_better(dag, machine, base, cand, proven)
}

/// Runs `ILPpart`: splits the supersteps into back-to-front intervals sized
/// by the variable estimate and reoptimizes each window. Monotone in true
/// cost.
pub fn ilp_part(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    cfg: &IlpConfig,
) -> BspSchedule {
    let mut current = compact_lazy(dag, sched);
    for _ in 0..cfg.part_rounds {
        let s_total = current.n_supersteps();
        if s_total <= 1 {
            break;
        }
        // Build disjoint intervals from back to front, growing each until
        // the variable estimate exceeds the target (paper §6).
        let mut intervals: Vec<(u32, u32)> = Vec::new();
        let mut hi = s_total as i64 - 1;
        while hi >= 0 {
            let mut lo = hi;
            loop {
                let nodes = count_nodes_in(&current, lo as u32, hi as u32);
                let est = WindowIlp::estimate_vars(nodes, (hi - lo + 1) as usize, machine.p());
                if est > cfg.part_target_vars && lo < hi {
                    lo += 1; // revert the last extension
                    break;
                }
                if lo == 0 || est > cfg.part_target_vars {
                    break;
                }
                lo -= 1;
            }
            intervals.push((lo as u32, hi as u32));
            hi = lo - 1;
        }
        for &(s1, s2) in &intervals {
            if count_nodes_in(&current, s1, s2) == 0 {
                continue;
            }
            let w = WindowIlp::build(dag, machine, &current, s1, s2, WindowOptions::default());
            let warm = w.warm_start(dag, machine, &current);
            debug_assert!(
                w.model.is_feasible(&warm, 1e-5),
                "warm start must satisfy the window model"
            );
            let sol = solve_model(&w.model, Some(&warm), &cfg.limits, cfg.use_presolve);
            if sol.x.is_empty() {
                continue;
            }
            let cand = w.extract(&sol.x, &current);
            let (next, _) = accept_if_better(dag, machine, current, cand, false);
            current = next;
        }
        current = compact_lazy(dag, &current);
    }
    current
}

fn count_nodes_in(sched: &BspSchedule, s1: u32, s2: u32) -> usize {
    sched
        .steps()
        .iter()
        .filter(|&&s| s >= s1 && s <= s2)
        .count()
}

fn accept_if_better(
    dag: &Dag,
    machine: &BspParams,
    base: BspSchedule,
    cand: BspSchedule,
    proven: bool,
) -> (BspSchedule, bool) {
    if !cand.respects_precedence_lazy(dag) {
        return (base, false);
    }
    let base_cost = lazy_cost(dag, machine, &base);
    let cand_cost = lazy_cost(dag, machine, &compact_lazy(dag, &cand));
    if cand_cost < base_cost {
        (compact_lazy(dag, &cand), proven)
    } else {
        (base, proven && cand_cost == base_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;
    use bsp_schedule::validity::validate_lazy;

    fn tiny_dag() -> Dag {
        // Two independent chains of 2 plus one join node.
        let mut b = DagBuilder::new();
        let a1 = b.add_node(2, 1);
        let a2 = b.add_node(2, 1);
        let b1 = b.add_node(2, 1);
        let b2 = b.add_node(2, 1);
        let j = b.add_node(1, 1);
        b.add_edge(a1, a2).unwrap();
        b.add_edge(b1, b2).unwrap();
        b.add_edge(a2, j).unwrap();
        b.add_edge(b2, j).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ilp_full_improves_bad_schedule() {
        let dag = tiny_dag();
        let machine = BspParams::new(2, 1, 2);
        // Deliberately bad: everything serialized on one processor across
        // many supersteps.
        let bad = BspSchedule::from_parts(vec![0, 0, 0, 0, 0], vec![0, 1, 2, 3, 4]);
        let before = lazy_cost(&dag, &machine, &bad);
        let (better, _) = ilp_full(&dag, &machine, &bad, &IlpConfig::default());
        let after = lazy_cost(&dag, &machine, &better);
        assert!(validate_lazy(&dag, 2, &better).is_ok());
        assert!(after <= before);
        assert!(
            after < before,
            "expected strict improvement: {before} -> {after}"
        );
    }

    #[test]
    fn ilp_full_skips_oversized_problems() {
        let dag = tiny_dag();
        let machine = BspParams::new(2, 1, 2);
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 0, 0], vec![0, 1, 2, 3, 4]);
        let cfg = IlpConfig {
            full_max_vars: 1,
            ..Default::default()
        };
        let (out, proven) = ilp_full(&dag, &machine, &sched, &cfg);
        assert!(!proven);
        assert_eq!(
            lazy_cost(&dag, &machine, &out),
            lazy_cost(&dag, &machine, &sched)
        );
    }

    #[test]
    fn ilp_part_never_worsens() {
        let dag = tiny_dag();
        let machine = BspParams::new(2, 2, 3);
        let sched = BspSchedule::from_parts(vec![0, 1, 1, 0, 1], vec![0, 1, 0, 1, 2]);
        assert!(validate_lazy(&dag, 2, &sched).is_ok());
        let before = lazy_cost(&dag, &machine, &sched);
        let cfg = IlpConfig {
            part_target_vars: 200,
            ..Default::default()
        };
        let out = ilp_part(&dag, &machine, &sched, &cfg);
        assert!(validate_lazy(&dag, 2, &out).is_ok());
        assert!(lazy_cost(&dag, &machine, &out) <= before);
    }

    #[test]
    fn warm_start_is_always_model_feasible() {
        // The strongest formulation test: the incumbent schedule must map to
        // a feasible point of the window model, for full and partial windows.
        let dag = tiny_dag();
        let machine = BspParams::new(2, 1, 2);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 1, 0], vec![0, 1, 0, 1, 2]);
        assert!(validate_lazy(&dag, 2, &sched).is_ok());
        let s_max = sched.n_supersteps();
        for s1 in 0..s_max {
            for s2 in s1..s_max {
                let w = window::WindowIlp::build(
                    &dag,
                    &machine,
                    &sched,
                    s1,
                    s2,
                    window::WindowOptions::default(),
                );
                let warm = w.warm_start(&dag, &machine, &sched);
                assert!(
                    w.model.is_feasible(&warm, 1e-5),
                    "warm start infeasible for window [{s1},{s2}]"
                );
            }
        }
    }
}
