//! `ILPcs`: ILP optimization of the communication schedule
//! (paper §4.4, Appendix A.4).
//!
//! With `(π, τ)` fixed, each required transfer `(v, π(v) → q)` gets binary
//! variables over its feasible phase window `[τ(v), s0 − 1]`; continuous
//! `commMax[s]` variables aggregate the λ-weighted h-relation, and binary
//! `used[s]` variables charge latency for otherwise-empty supersteps that
//! only exist to carry communication. This subproblem has far fewer degrees
//! of freedom than full scheduling, so it scales to whole DAGs.

use bsp_dag::Dag;
use bsp_ilp::{Model, Sense, SolveLimits, VarId};
use bsp_model::BspParams;
use bsp_schedule::comm::required_transfers;
use bsp_schedule::cost::total_cost;
use bsp_schedule::{BspSchedule, CommSchedule, CommStep};

/// Runs `ILPcs` on the assignment, warm-started from `initial`
/// (typically the HCcs output or the lazy schedule). Returns the better of
/// the ILP result and `initial` by true cost, with that cost.
pub fn ilp_comm(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    initial: &CommSchedule,
    limits: &SolveLimits,
) -> (CommSchedule, u64) {
    let p = machine.p();
    let transfers = required_transfers(dag, sched);
    let init_cost = total_cost(dag, machine, sched, initial);
    if transfers.is_empty() {
        return (initial.clone(), init_cost);
    }
    let n_steps = sched
        .n_supersteps()
        .max(transfers.iter().map(|t| t.latest + 1).max().unwrap_or(0)) as usize;

    // Fixed facts per superstep.
    let mut work_max = vec![0u64; n_steps];
    let mut has_work = vec![false; n_steps];
    {
        let mut per = vec![0u64; n_steps * p];
        for v in dag.nodes() {
            let (q, s) = (sched.proc(v) as usize, sched.step(v) as usize);
            per[s * p + q] += dag.work(v);
            has_work[s] = true;
        }
        for s in 0..n_steps {
            work_max[s] = per[s * p..(s + 1) * p].iter().copied().max().unwrap_or(0);
        }
    }

    let mut model = Model::new();
    // x[i][s] per transfer i over its window.
    let mut x: Vec<Vec<(u32, VarId)>> = Vec::with_capacity(transfers.len());
    for t in &transfers {
        let mut vars = Vec::with_capacity((t.latest - t.earliest + 1) as usize);
        for s in t.earliest..=t.latest {
            vars.push((s, model.add_binary(0.0)));
        }
        model.add_constraint(
            vars.iter().map(|&(_, v)| (v, 1.0)).collect(),
            Sense::Eq,
            1.0,
        );
        x.push(vars);
    }
    // commMax per step (objective g) and used for workless steps (objective ℓ).
    let comm_max: Vec<VarId> = (0..n_steps)
        .map(|_| model.add_continuous(0.0, f64::INFINITY, machine.g() as f64))
        .collect();
    let used: Vec<Option<VarId>> = (0..n_steps)
        .map(|s| {
            if has_work[s] {
                None
            } else {
                Some(model.add_binary(machine.l() as f64))
            }
        })
        .collect();

    // h-relation rows.
    for s in 0..n_steps as u32 {
        for q in 0..p as u32 {
            let mut send_terms: Vec<(VarId, f64)> = Vec::new();
            let mut recv_terms: Vec<(VarId, f64)> = Vec::new();
            for (i, t) in transfers.iter().enumerate() {
                if s < t.earliest || s > t.latest {
                    continue;
                }
                let var = x[i].iter().find(|&&(sp, _)| sp == s).unwrap().1;
                let w = (dag.comm(t.node) * machine.lambda(t.from as usize, t.to as usize)) as f64;
                if t.from == q {
                    send_terms.push((var, w));
                }
                if t.to == q {
                    recv_terms.push((var, w));
                }
            }
            if !send_terms.is_empty() {
                send_terms.push((comm_max[s as usize], -1.0));
                model.add_constraint(send_terms, Sense::Le, 0.0);
            }
            if !recv_terms.is_empty() {
                recv_terms.push((comm_max[s as usize], -1.0));
                model.add_constraint(recv_terms, Sense::Le, 0.0);
            }
        }
    }
    // Latency rows for workless steps.
    for s in 0..n_steps as u32 {
        let Some(us) = used[s as usize] else { continue };
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for (i, t) in transfers.iter().enumerate() {
            if s >= t.earliest && s <= t.latest {
                terms.push((x[i].iter().find(|&&(sp, _)| sp == s).unwrap().1, 1.0));
            }
        }
        if terms.is_empty() {
            model.set_bounds(us, 0.0, 0.0);
            continue;
        }
        let m = terms.len() as f64;
        terms.push((us, -m));
        model.add_constraint(terms, Sense::Le, 0.0);
    }

    // Warm start from `initial` (fall back to lazy for unmatched transfers).
    let mut warm = vec![0.0; model.n_vars()];
    for (i, t) in transfers.iter().enumerate() {
        let phase = initial
            .entries()
            .iter()
            .find(|e| e.node == t.node && e.from == t.from && e.to == t.to)
            .map(|e| e.step.clamp(t.earliest, t.latest))
            .unwrap_or(t.latest);
        let var = x[i].iter().find(|&&(sp, _)| sp == phase).unwrap().1;
        warm[var.index()] = 1.0;
    }
    // Aggregates for the warm start.
    let mut send = vec![0u64; n_steps * p];
    let mut recv = vec![0u64; n_steps * p];
    let mut carries = vec![false; n_steps];
    for (i, t) in transfers.iter().enumerate() {
        let phase = x[i]
            .iter()
            .find(|&&(_, v)| warm[v.index()] > 0.5)
            .unwrap()
            .0 as usize;
        let wgt = dag.comm(t.node) * machine.lambda(t.from as usize, t.to as usize);
        send[phase * p + t.from as usize] += wgt;
        recv[phase * p + t.to as usize] += wgt;
        carries[phase] = true;
    }
    for s in 0..n_steps {
        let m = (0..p)
            .map(|q| send[s * p + q].max(recv[s * p + q]))
            .max()
            .unwrap_or(0);
        warm[comm_max[s].index()] = m as f64;
        if let Some(us) = used[s] {
            if model.upper(us) > 0.5 {
                warm[us.index()] = if carries[s] { 1.0 } else { 0.0 };
            }
        }
    }
    debug_assert!(
        model.is_feasible(&warm, 1e-5),
        "ILPcs warm start must be feasible"
    );

    // ILPcs models are pure-binary with tight LP relaxations; the presolve
    // pass (region-preserving, see `bsp_ilp::presolve`) only shrinks them.
    let sol = bsp_ilp::solve_with_presolve(&model, Some(&warm), limits);
    if sol.x.is_empty() {
        return (initial.clone(), init_cost);
    }
    let entries: Vec<CommStep> = transfers
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let phase = x[i]
                .iter()
                .find(|&&(_, v)| sol.x[v.index()] > 0.5)
                .map(|&(sp, _)| sp)
                .unwrap_or(t.latest);
            CommStep {
                node: t.node,
                from: t.from,
                to: t.to,
                step: phase,
            }
        })
        .collect();
    let cand = CommSchedule::from_entries(entries);
    let cand_cost = total_cost(dag, machine, sched, &cand);
    if cand_cost < init_cost {
        (cand, cand_cost)
    } else {
        (initial.clone(), init_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;
    use bsp_schedule::validity::validate;

    #[test]
    fn finds_the_overlap_that_reduces_the_h_relation() {
        // Same scenario as the HCcs spread test: transfer b (c=7, p2->p3,
        // window [0,1]) should overlap with a (c=8, p0->p1, fixed phase 0)
        // instead of sharing phase 1 with e (c=3, p0->p1): 15 -> 11.
        let mut bld = DagBuilder::new();
        let a = bld.add_node(1, 8);
        let e = bld.add_node(1, 3);
        let b = bld.add_node(1, 7);
        let wa = bld.add_node(1, 1);
        let we = bld.add_node(1, 1);
        let wb = bld.add_node(1, 1);
        bld.add_edge(a, wa).unwrap();
        bld.add_edge(e, we).unwrap();
        bld.add_edge(b, wb).unwrap();
        let dag = bld.build().unwrap();
        let machine = BspParams::new(4, 1, 0);
        let sched = BspSchedule::from_parts(vec![0, 0, 2, 1, 1, 3], vec![0, 1, 0, 1, 2, 2]);
        let lazy = CommSchedule::lazy(&dag, &sched);
        let lazy_cost_v = total_cost(&dag, &machine, &sched, &lazy);
        let (opt, cost) = ilp_comm(&dag, &machine, &sched, &lazy, &SolveLimits::default());
        assert_eq!(cost, lazy_cost_v - 4, "expected 15 -> 11 comm units");
        assert!(validate(&dag, 4, &sched, &opt).is_ok());
        assert_eq!(cost, total_cost(&dag, &machine, &sched, &opt));
    }

    #[test]
    fn no_transfers_short_circuits() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 1);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::from_parts(vec![0, 0], vec![0, 1]);
        let lazy = CommSchedule::lazy(&dag, &sched);
        let (out, _) = ilp_comm(&dag, &machine, &sched, &lazy, &SolveLimits::default());
        assert!(out.is_empty());
    }

    #[test]
    fn never_worse_than_initial() {
        let mut b = DagBuilder::new();
        let mut tops = Vec::new();
        for _ in 0..4 {
            tops.push(b.add_node(1, 2));
        }
        let mut bots = Vec::new();
        for i in 0..4 {
            let v = b.add_node(1, 1);
            b.add_edge(tops[i], v).unwrap();
            bots.push(v);
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(4, 2, 3);
        let sched =
            BspSchedule::from_parts(vec![0, 1, 2, 3, 1, 2, 3, 0], vec![0, 0, 0, 0, 2, 2, 3, 3]);
        let lazy = CommSchedule::lazy(&dag, &sched);
        let before = total_cost(&dag, &machine, &sched, &lazy);
        let (out, cost) = ilp_comm(&dag, &machine, &sched, &lazy, &SolveLimits::default());
        assert!(cost <= before);
        assert!(validate(&dag, 4, &sched, &out).is_ok());
    }
}
