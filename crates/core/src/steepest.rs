//! Steepest-descent hill climbing (paper Appendix A.3, variant (ii)).
//!
//! The paper describes two hill-climbing variants: greedy first-improvement
//! (implemented in [`crate::hc`]) and the variant implemented here, which
//! scans the *entire* neighbourhood of the current schedule and applies the
//! move with the largest cost decrease. The authors report that neither
//! variant is clearly superior in final schedule quality while steepest
//! descent is much slower per step; this module exists so that the claim can
//! be reproduced (see the `ablation` experiment and the `bench_ablations`
//! target).
//!
//! The `n · 3 · P` neighbourhood scan evaluates every candidate through the
//! read-only [`ScheduleState::probe_move`] gain kernel and mutates the state
//! only for the single winning move, so a scan allocates nothing and never
//! grows the superstep tables. The scan's decisions are bit-identical to the
//! historical apply/revert implementation
//! ([`crate::reference::best_move_apply_revert`]), which the
//! `kernel_equivalence` tests enforce.

use crate::hc::{HillClimbConfig, HillClimbStats};
use crate::obs::ls_metrics;
use crate::state::{ProbeScratch, ProcWindow, ScheduleState};
use bsp_dag::NodeId;
use std::time::Instant;

/// Runs steepest-descent hill climbing in place: in every round, the whole
/// `n · 3 · P` move neighbourhood is evaluated and the single best improving
/// move is applied. Stops at a local minimum or when the budget runs out.
/// The cost of `state` never increases.
pub fn hill_climb_steepest(state: &mut ScheduleState<'_>, cfg: &HillClimbConfig) -> HillClimbStats {
    hill_climb_steepest_threaded(state, cfg, 1)
}

/// [`hill_climb_steepest`] with the neighbourhood scan fanned out over
/// `threads` workers (`0` = auto-detect, `1` = sequential). The move
/// sequence — and therefore the final schedule — is **bit-identical** to
/// the sequential run for every thread count: each round's winner is the
/// same move (see [`best_move_threaded`]), only wall-clock time changes.
pub fn hill_climb_steepest_threaded(
    state: &mut ScheduleState<'_>,
    cfg: &HillClimbConfig,
    threads: usize,
) -> HillClimbStats {
    let deadline = cfg.time_limit.map(|t| Instant::now() + t);
    let max_moves = cfg.max_moves.unwrap_or(usize::MAX);
    let mut accepted = 0usize;

    if state.n() == 0 {
        return HillClimbStats {
            accepted: 0,
            local_minimum: true,
        };
    }

    let mut local_minimum = false;
    while accepted < max_moves {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        match best_move_threaded(state, threads) {
            Some((v, q, s, _)) => {
                state.apply_move(v, q, s);
                accepted += 1;
            }
            None => {
                local_minimum = true;
                break;
            }
        }
    }
    ls_metrics().moves.add(accepted as u64);
    HillClimbStats {
        accepted,
        local_minimum,
    }
}

/// Scans the neighbourhoods of nodes `lo..hi` with a private scratch and
/// returns the best improving move as `(delta, v, s, q)` — the strict-`<`
/// fold over the `v asc, s asc, q asc` enumeration makes the result the
/// lexicographic minimum of that tuple, which is exactly the sequential
/// scan's first-encountered-best tie-break.
fn scan_best(
    state: &ScheduleState<'_>,
    sc: &mut ProbeScratch,
    lo: u32,
    hi: u32,
) -> Option<(i64, NodeId, u32, u32)> {
    let p = state.p();
    let mut best: Option<(i64, NodeId, u32, u32)> = None;
    let mut probes = 0u64;
    let mut consider = |sc: &mut ProbeScratch, v: NodeId, q: u32, s: u32| {
        probes += 1;
        let delta = state.probe_move_in(sc, v, q, s);
        if delta < 0 && best.as_ref().is_none_or(|&(b, ..)| delta < b) {
            best = Some((delta, v, s, q));
        }
    };
    for v in lo..hi {
        let (cur_p, cur_s) = (state.proc(v), state.step(v));
        let first = cur_s.saturating_sub(1);
        for s in first..=cur_s + 1 {
            match state.valid_procs(v, s) {
                ProcWindow::None => {}
                ProcWindow::Only(q) => {
                    if (q, s) != (cur_p, cur_s) {
                        consider(sc, v, q, s);
                    }
                }
                ProcWindow::All => {
                    for q in 0..p {
                        if (q, s) != (cur_p, cur_s) {
                            consider(sc, v, q, s);
                        }
                    }
                }
            }
        }
    }
    // One flush per scanned range, not per probe: a single relaxed
    // fetch_add covers the whole chunk, keeping the kernel unperturbed.
    ls_metrics().probes.add(probes);
    best
}

/// Probes every valid move and returns the one with the strictly largest
/// cost decrease (ties to the first found in scan order) together with its
/// negative delta, or `None` at a local minimum. Read-only: the scan never
/// mutates `state`, grows its superstep tables, or allocates beyond a
/// one-time scratch warm-up. Candidate steps are pre-filtered with
/// [`ScheduleState::valid_procs`] (one `O(degree)` pass per step instead
/// of `P` validity checks), preserving the historical `(v, s, q)`
/// enumeration order exactly.
pub fn best_move(state: &ScheduleState<'_>) -> Option<(NodeId, u32, u32, i64)> {
    ls_metrics().scans.inc();
    let mut sc = ProbeScratch::default();
    scan_best(state, &mut sc, 0, state.n() as u32).map(|(d, v, s, q)| (v, q, s, d))
}

/// [`best_move`] with the node range split over `threads` workers (`0` =
/// auto-detect, `1` = no spawns). Each worker scans a contiguous node chunk
/// with its own [`ProbeScratch`]; per-chunk winners come back in chunk
/// order and are folded with the same strict-`<` rule the sequential scan
/// uses, so the returned move is **bit-identical** to [`best_move`] — the
/// global lexicographic minimum of `(delta, v, s, q)` — for any thread
/// count and any chunk size.
pub fn best_move_threaded(
    state: &ScheduleState<'_>,
    threads: usize,
) -> Option<(NodeId, u32, u32, i64)> {
    let n = state.n();
    let threads = bsp_par::resolve_threads(threads);
    if threads <= 1 || n < 2 * PAR_CHUNK {
        return best_move(state);
    }
    ls_metrics().scans.inc();
    let per_chunk = bsp_par::par_chunks(threads, n, PAR_CHUNK, |range| {
        let mut sc = ProbeScratch::default();
        scan_best(state, &mut sc, range.start as u32, range.end as u32)
    });
    let mut best: Option<(i64, NodeId, u32, u32)> = None;
    for cand in per_chunk.into_iter().flatten() {
        if best.as_ref().is_none_or(|&(b, ..)| cand.0 < b) {
            best = Some(cand);
        }
    }
    best.map(|(d, v, s, q)| (v, q, s, d))
}

/// Nodes per parallel work unit: small enough to balance skewed
/// neighbourhood sizes, large enough that the atomic chunk-claim is noise.
/// Has no effect on results (the reduce is order-independent), only on
/// load balance.
const PAR_CHUNK: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hc::hill_climb;
    use bsp_dag::random::{random_layered_dag, LayeredConfig};
    use bsp_dag::DagBuilder;
    use bsp_model::BspParams;
    use bsp_schedule::validity::validate_lazy;
    use bsp_schedule::BspSchedule;

    #[test]
    fn steepest_picks_the_largest_drop() {
        // Two independent improvements exist: moving the heavy node away
        // (large gain) and moving the light node (small gain). The first
        // accepted move must be the heavy one.
        let mut b = DagBuilder::new();
        b.add_node(10, 1);
        b.add_node(2, 1);
        b.add_node(1, 1);
        let dag = b.build().unwrap();
        let machine = BspParams::new(3, 1, 1);
        let sched = BspSchedule::zeroed(3);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let before = st.cost(); // max work 13 + latency
        let stats = hill_climb_steepest(
            &mut st,
            &HillClimbConfig {
                max_moves: Some(1),
                time_limit: None,
            },
        );
        assert_eq!(stats.accepted, 1);
        // Best single move separates the 10-weight node (or equivalently
        // leaves max at 10): cost drop of 3 beats any other option.
        assert!(
            before - st.cost() >= 3,
            "drop {} too small",
            before - st.cost()
        );
        assert_eq!(st.cost(), st.recomputed_cost());
    }

    #[test]
    fn reaches_local_minimum_and_stays_valid() {
        for seed in 0..4 {
            let dag = random_layered_dag(
                seed,
                LayeredConfig {
                    layers: 4,
                    width: 5,
                    edge_prob: 0.4,
                    ..Default::default()
                },
            );
            let machine = BspParams::new(4, 3, 5);
            let sched = BspSchedule::zeroed(dag.n());
            let mut st = ScheduleState::new(&dag, &machine, &sched);
            let before = st.cost();
            let stats = hill_climb_steepest(
                &mut st,
                &HillClimbConfig {
                    max_moves: None,
                    time_limit: None,
                },
            );
            assert!(stats.local_minimum, "seed {seed}");
            assert!(st.cost() <= before, "seed {seed}");
            assert_eq!(st.cost(), st.recomputed_cost(), "seed {seed}");
            assert!(
                validate_lazy(&dag, 4, &st.snapshot()).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn steepest_final_cost_close_to_greedy() {
        // Paper A.3: the two variants land in comparably good local minima.
        // We assert the weaker reproducible property: both strictly improve
        // the scattered start and end within 2x of each other.
        let dag = random_layered_dag(
            99,
            LayeredConfig {
                layers: 5,
                width: 6,
                edge_prob: 0.35,
                ..Default::default()
            },
        );
        let machine = BspParams::new(4, 2, 3);
        let sched = BspSchedule::zeroed(dag.n());
        let unlimited = HillClimbConfig {
            max_moves: None,
            time_limit: None,
        };

        let mut greedy_state = ScheduleState::new(&dag, &machine, &sched);
        hill_climb(&mut greedy_state, &unlimited);
        let mut steep_state = ScheduleState::new(&dag, &machine, &sched);
        hill_climb_steepest(&mut steep_state, &unlimited);

        let (g, s) = (greedy_state.cost(), steep_state.cost());
        assert!(s <= 2 * g && g <= 2 * s, "greedy {g} vs steepest {s}");
    }

    #[test]
    fn empty_dag_is_a_trivial_minimum() {
        let dag = DagBuilder::new().build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::zeroed(0);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let stats = hill_climb_steepest(
            &mut st,
            &HillClimbConfig {
                max_moves: None,
                time_limit: None,
            },
        );
        assert!(stats.local_minimum);
        assert_eq!(stats.accepted, 0);
    }
}
