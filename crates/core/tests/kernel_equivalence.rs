//! Pinned-seed regression tests for the local-search kernel.
//!
//! The probe-based kernel must make *bit-identical decisions* to the
//! historical apply/revert implementation. These tests pin the final
//! costs of steepest descent, tabu search, and simulated annealing on
//! fixed instances; the expected values were recorded from the
//! pre-probe (apply/revert, BTreeMap-bucket) implementation and must
//! never drift.

use bsp_core::anneal::{simulated_annealing, AnnealConfig};
use bsp_core::hc::HillClimbConfig;
use bsp_core::reference::{best_move_apply_revert, RefScheduleState};
use bsp_core::state::ScheduleState;
use bsp_core::steepest::{best_move, hill_climb_steepest};
use bsp_core::tabu::{tabu_search, TabuConfig};
use bsp_dag::random::{random_layered_dag, random_order_dag, LayeredConfig};
use bsp_dag::{Dag, TopoInfo};
use bsp_model::{BspParams, NumaTopology};
use bsp_schedule::BspSchedule;

/// A deliberately bad but valid start: topological level as superstep,
/// round-robin processors — plenty of cross-processor traffic to descend
/// from (an all-zero start is already a steepest local minimum here).
fn spread_start(dag: &Dag, p: u32) -> BspSchedule {
    let topo = TopoInfo::new(dag);
    let mut s = BspSchedule::zeroed(dag.n());
    for v in dag.nodes() {
        s.set(v, v % p, topo.level[v as usize]);
    }
    s
}

fn layered_instance() -> (Dag, BspParams) {
    let dag = random_layered_dag(
        42,
        LayeredConfig {
            layers: 6,
            width: 6,
            edge_prob: 0.35,
            max_work: 7,
            max_comm: 5,
        },
    );
    (dag, BspParams::new(4, 3, 5))
}

fn erdos_instance() -> (Dag, BspParams) {
    let dag = random_order_dag(7, 24, 0.15, 7, 5);
    let machine = BspParams::new(8, 2, 4).with_numa(NumaTopology::binary_tree(8, 3));
    (dag, machine)
}

fn final_costs(dag: &Dag, machine: &BspParams) -> (u64, u64, u64) {
    let start = spread_start(dag, machine.p() as u32);

    let mut st = ScheduleState::new(dag, machine, &start);
    hill_climb_steepest(
        &mut st,
        &HillClimbConfig {
            max_moves: None,
            time_limit: None,
        },
    );
    let steepest = st.cost();

    let tabu_cfg = TabuConfig {
        max_iters: 300,
        stall_limit: 40,
        tenure: 12,
        time_limit: None,
    };
    let (_, tabu, _) = tabu_search(dag, machine, &start, &tabu_cfg);

    let anneal_cfg = AnnealConfig {
        max_steps: 8_000,
        time_limit: None,
        seed: 42,
        ..AnnealConfig::default()
    };
    let (_, anneal, _) = simulated_annealing(dag, machine, &start, &anneal_cfg);

    (steepest, tabu, anneal)
}

#[test]
fn pinned_layered_instance_costs() {
    let (dag, machine) = layered_instance();
    // Recorded from the pre-probe apply/revert kernel (PR 4 tree).
    assert_eq!(final_costs(&dag, &machine), (176, 145, 191));
}

#[test]
fn pinned_erdos_instance_costs() {
    let (dag, machine) = erdos_instance();
    // Recorded from the pre-probe apply/revert kernel (PR 4 tree).
    assert_eq!(final_costs(&dag, &machine), (328, 208, 137));
}

/// Steepest descent with probing must pick the *identical move sequence*
/// as the historical apply/revert scan — not just land at an equal cost.
#[test]
fn steepest_move_sequence_matches_apply_revert_reference() {
    for (dag, machine) in [layered_instance(), erdos_instance()] {
        let start = spread_start(&dag, machine.p() as u32);
        let mut probed = ScheduleState::new(&dag, &machine, &start);
        let mut reference = RefScheduleState::new(&dag, &machine, &start);
        let (n, p) = (dag.n() as u32, machine.p() as u32);
        let mut moves = 0usize;
        loop {
            let a = best_move(&probed).map(|(v, q, s, _)| (v, q, s));
            let b = best_move_apply_revert(&mut reference, n, p);
            assert_eq!(a, b, "kernels diverged after {moves} moves");
            let Some((v, q, s)) = a else { break };
            let ca = probed.apply_move(v, q, s);
            let cb = reference.apply_move(v, q, s);
            assert_eq!(ca, cb, "costs diverged after {moves} moves");
            moves += 1;
            assert!(moves <= 10_000, "steepest descent failed to converge");
        }
        assert!(moves > 0, "instance too trivial to exercise the kernel");
        assert_eq!(probed.snapshot(), reference.snapshot());
    }
}
