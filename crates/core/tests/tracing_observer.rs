//! `TracingObserver` against a real pipeline run: the span tree recorded
//! into an isolated trace buffer must mirror the `StageReport`s the solve
//! emits, and the per-stage duration histograms must count one sample per
//! report. Uses injected (non-global) targets so parallel tests cannot
//! perturb the counts.

use bsp_core::pipeline::{solve_base_pipeline, PipelineConfig};
use bsp_dag::random::{random_layered_dag, LayeredConfig};
use bsp_model::BspParams;
use bsp_obs::{MetricRegistry, TraceBuffer};
use bsp_schedule::obs::TracingObserver;
use bsp_schedule::solve::{SolveCx, SolveRequest};
use bsp_schedule::ScheduleResult;

#[test]
fn span_tree_matches_stage_reports() {
    let reg = MetricRegistry::new();
    let buf = TraceBuffer::new(256);
    let obs = TracingObserver::with_targets(reg.clone(), buf.clone());

    let dag = random_layered_dag(
        5,
        LayeredConfig {
            layers: 4,
            width: 5,
            edge_prob: 0.35,
            ..Default::default()
        },
    );
    let machine = BspParams::new(4, 3, 5);
    let cfg = PipelineConfig {
        enable_ilp: false, // pinned stage list: init, hc
        ..Default::default()
    };
    let req = SolveRequest::new(&dag, &machine).with_observer(&obs);
    let mut cx = SolveCx::new("pipeline/base", &req);
    let result = solve_base_pipeline(&dag, &machine, &cfg, &mut cx);
    let outcome = cx.finish(ScheduleResult::from_lazy(&dag, &machine, result.sched));

    // The pinned pipeline emits exactly these stages, in order.
    let stages: Vec<&str> = outcome.stages.iter().map(|r| r.stage.as_str()).collect();
    assert_eq!(stages, vec!["init", "hc"]);

    // One observer span per report, closed in emission order, all roots
    // in the isolated buffer with the solver's category.
    let spans = buf.snapshot();
    assert_eq!(
        spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
        stages
    );
    assert!(spans.iter().all(|s| s.cat == "solve" && s.parent == 0));

    // Span durations and report durations measure the same interval —
    // the span opens at on_stage_start and closes at on_stage_end, so it
    // can only be (slightly) longer than the report's own clock.
    for (span, report) in spans.iter().zip(&outcome.stages) {
        assert!(
            span.dur_us + 1_000 >= report.elapsed.as_micros() as u64,
            "span {} ({}us) much shorter than its report ({}us)",
            span.name,
            span.dur_us,
            report.elapsed.as_micros()
        );
    }

    // Metrics side: one histogram sample and one stage count per report.
    for report in &outcome.stages {
        assert_eq!(
            reg.histogram("bsp_solve_stage_duration_us", &[("stage", &report.stage)])
                .count(),
            1,
            "stage {}",
            report.stage
        );
        assert_eq!(
            reg.counter("bsp_solve_stages_total", &[("stage", &report.stage)])
                .get(),
            1
        );
    }
    // The pipeline reported at least the initial incumbent.
    assert!(reg.counter("bsp_solve_improvements_total", &[]).get() >= 1);

    // The pipeline also timed itself end to end.
    assert!(result.elapsed >= outcome.stages.iter().map(|r| r.elapsed).sum());
}
