//! Property tests for the scheduling framework.
//!
//! The central invariants:
//! 1. the incremental cost bookkeeping of `ScheduleState` agrees with a
//!    from-scratch evaluation after arbitrary valid move sequences;
//! 2. every algorithm's output is a valid BSP schedule;
//! 3. every refinement stage is monotone (never returns something worse).

use bsp_core::hc::{hill_climb, HillClimbConfig};
use bsp_core::hccs::{optimize_comm_schedule, CommHillClimbConfig};
use bsp_core::init::{bspg_schedule, source_schedule};
use bsp_core::multilevel::{coarsen, multilevel_schedule, stage_graph, MultilevelConfig};
use bsp_core::reference::RefScheduleState;
use bsp_core::state::{ProcWindow, ScheduleState};
use bsp_dag::random::{random_layered_dag, random_order_dag, LayeredConfig};
use bsp_dag::topo::is_topological_order;
use bsp_dag::{Dag, TopoInfo};
use bsp_model::{BspParams, NumaTopology};
use bsp_schedule::cost::{lazy_cost, total_cost};
use bsp_schedule::validity::{validate, validate_lazy};
use bsp_schedule::BspSchedule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_dag() -> impl Strategy<Value = Dag> {
    (0u64..400, 2usize..6, 2usize..6, 0.15f64..0.7).prop_map(|(seed, layers, width, p)| {
        random_layered_dag(
            seed,
            LayeredConfig {
                layers,
                width,
                edge_prob: p,
                max_work: 7,
                max_comm: 5,
            },
        )
    })
}

fn arb_machine() -> impl Strategy<Value = BspParams> {
    (1usize..3u32 as usize, 1u64..6, 0u64..8, proptest::bool::ANY).prop_map(|(pe, g, l, numa)| {
        let p = [2usize, 4, 8][pe];
        let m = BspParams::new(p, g, l);
        if numa {
            m.with_numa(NumaTopology::binary_tree(p, 2 + g % 3))
        } else {
            m
        }
    })
}

fn arb_erdos_dag() -> impl Strategy<Value = Dag> {
    (0u64..400, 2usize..28, 0.02f64..0.4)
        .prop_map(|(seed, n, q)| random_order_dag(seed, n, q, 7, 5))
}

fn random_valid_assignment(dag: &Dag, p: u32, seed: u64) -> BspSchedule {
    let topo = TopoInfo::new(dag);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sched = BspSchedule::zeroed(dag.n());
    for &v in &topo.order {
        let proc = rng.gen_range(0..p);
        let mut min_step = 0u32;
        for &u in dag.predecessors(v) {
            let req = if sched.proc(u) == proc {
                sched.step(u)
            } else {
                sched.step(u) + 1
            };
            min_step = min_step.max(req);
        }
        sched.set(v, proc, min_step + rng.gen_range(0..2));
    }
    sched
}

/// Drives random valid moves through the flat kernel and the historical
/// reference side by side: `probe_move` must equal the applied delta
/// bit-for-bit, and both kernels must track identical total costs.
fn probe_contract(
    dag: &Dag,
    machine: &BspParams,
    seed: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let p = machine.p() as u32;
    let sched = random_valid_assignment(dag, p, seed);
    let mut st = ScheduleState::new(dag, machine, &sched);
    let mut reference = RefScheduleState::new(dag, machine, &sched);
    prop_assert_eq!(st.cost(), reference.cost());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9b0b);
    let mut checked = 0;
    for _ in 0..60 {
        if dag.n() == 0 {
            break;
        }
        let v = rng.gen_range(0..dag.n() as u32);
        let q = rng.gen_range(0..p);
        let s = st.step(v).saturating_sub(1) + rng.gen_range(0..3);
        // The batched validity window must agree with the per-candidate check.
        let windowed = match st.valid_procs(v, s) {
            ProcWindow::All => true,
            ProcWindow::Only(w) => w == q,
            ProcWindow::None => false,
        };
        prop_assert_eq!(st.is_move_valid(v, q, s), windowed, "window disagrees");
        if (q, s) == (st.proc(v), st.step(v)) || !st.is_move_valid(v, q, s) {
            continue;
        }
        let steps_before = st.n_steps();
        let before = st.cost();
        let delta = st.probe_move(v, q, s);
        prop_assert_eq!(st.n_steps(), steps_before, "probe grew the step table");
        prop_assert_eq!(st.cost(), before, "probe changed the cost");
        let after = st.apply_move(v, q, s);
        prop_assert_eq!(
            after as i64 - before as i64,
            delta,
            "probe({}, {}, {}) disagrees with the applied delta",
            v,
            q,
            s
        );
        prop_assert_eq!(reference.apply_move(v, q, s), after, "kernels diverged");
        checked += 1;
        if rng.gen_bool(0.25) {
            prop_assert_eq!(st.cost(), st.recomputed_cost());
        }
    }
    // The generators above always admit some valid move on non-trivial DAGs.
    prop_assert!(dag.n() < 2 || checked > 0);
    prop_assert_eq!(st.cost(), st.recomputed_cost());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heart of HC: incremental cost == full re-evaluation after any
    /// sequence of random valid moves (applied AND reverted).
    #[test]
    fn incremental_cost_matches_full_recompute(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        let p = machine.p() as u32;
        let sched = random_valid_assignment(&dag, p, seed);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        prop_assert_eq!(st.cost(), st.recomputed_cost());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..40 {
            let v = rng.gen_range(0..dag.n() as u32);
            let q = rng.gen_range(0..p);
            let s = st.step(v).saturating_sub(1) + rng.gen_range(0..3);
            if st.is_move_valid(v, q, s) {
                st.apply_move(v, q, s);
                if rng.gen_bool(0.3) {
                    prop_assert_eq!(
                        st.cost(),
                        st.recomputed_cost(),
                        "after move of {} to ({}, {})",
                        v,
                        q,
                        s
                    );
                }
            }
        }
        prop_assert_eq!(st.cost(), st.recomputed_cost());
        prop_assert!(validate_lazy(&dag, machine.p(), &st.snapshot()).is_ok());
    }

    /// The probe contract on layered DAGs:
    /// `probe_move(v,q,s) == apply_move(v,q,s) − cost_before`, bit-for-bit,
    /// for random valid moves — and the flat kernel agrees move-by-move
    /// with the historical BTreeMap/apply-revert implementation.
    #[test]
    fn probe_equals_apply_delta_layered(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        probe_contract(&dag, &machine, seed)?;
    }

    /// Same probe contract on Erdős–Rényi (random-order) DAGs, whose degree
    /// distribution and bucket shapes differ from the layered family.
    #[test]
    fn probe_equals_apply_delta_erdos(
        dag in arb_erdos_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        probe_contract(&dag, &machine, seed)?;
    }

    /// Hill climbing: monotone, consistent, valid.
    #[test]
    fn hill_climb_monotone_and_consistent(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        let sched = random_valid_assignment(&dag, machine.p() as u32, seed);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let before = st.cost();
        hill_climb(&mut st, &HillClimbConfig { max_moves: Some(200), time_limit: None });
        prop_assert!(st.cost() <= before);
        prop_assert_eq!(st.cost(), st.recomputed_cost());
        prop_assert!(validate_lazy(&dag, machine.p(), &st.snapshot()).is_ok());
    }

    /// Initializers always produce valid schedules covering all nodes.
    #[test]
    fn initializers_always_valid(dag in arb_dag(), machine in arb_machine()) {
        let a = bspg_schedule(&dag, &machine);
        prop_assert!(validate_lazy(&dag, machine.p(), &a).is_ok());
        let b = source_schedule(&dag, &machine);
        prop_assert!(validate_lazy(&dag, machine.p(), &b).is_ok());
    }

    /// HCcs: the explicit Γ it returns is valid and costs no more than lazy.
    #[test]
    fn hccs_valid_and_never_worse_than_lazy(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        let sched = random_valid_assignment(&dag, machine.p() as u32, seed);
        let (comm, cost) = optimize_comm_schedule(
            &dag,
            &machine,
            &sched,
            &CommHillClimbConfig { max_moves: Some(300), time_limit: None },
        );
        prop_assert!(validate(&dag, machine.p(), &sched, &comm).is_ok());
        prop_assert_eq!(cost, total_cost(&dag, &machine, &sched, &comm));
        prop_assert!(cost <= lazy_cost(&dag, &machine, &sched));
    }

    /// Coarsening invariants: acyclic at every prefix, weights conserved.
    #[test]
    fn coarsening_prefixes_stay_acyclic(dag in arb_dag(), keep in 0.1f64..0.9) {
        let target = ((dag.n() as f64) * keep) as usize;
        let log = coarsen(&dag, target.max(1), &MultilevelConfig::default());
        for k in [log.len() / 2, log.len()] {
            let (stage, map) = stage_graph(&dag, &log[..k]);
            let topo = TopoInfo::new(&stage);
            prop_assert!(is_topological_order(&stage, &topo.order));
            prop_assert_eq!(stage.total_work(), dag.total_work());
            prop_assert_eq!(map.iter().filter(|m| m.is_some()).count(), stage.n());
        }
    }

    /// The window-ILP formulation: the incumbent schedule always maps to a
    /// feasible point of the model, for random windows — the strongest
    /// single check of the ILPfull/ILPpart constraint system.
    #[test]
    fn window_ilp_warm_start_always_feasible(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        use bsp_core::ilp::window::{WindowIlp, WindowOptions};
        use bsp_schedule::compact::compact_lazy;
        let sched = random_valid_assignment(&dag, machine.p() as u32, seed);
        let sched = compact_lazy(&dag, &sched);
        let s_max = sched.n_supersteps();
        if s_max == 0 {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc1);
        let s1 = rng.gen_range(0..s_max);
        let s2 = rng.gen_range(s1..s_max);
        let w = WindowIlp::build(&dag, &machine, &sched, s1, s2, WindowOptions::default());
        let warm = w.warm_start(&dag, &machine, &sched);
        prop_assert!(
            w.model.is_feasible(&warm, 1e-5),
            "warm start infeasible for window [{},{}] of {} steps", s1, s2, s_max
        );
    }

    /// End-to-end multilevel produces valid schedules.
    #[test]
    fn multilevel_valid(dag in arb_dag(), machine in arb_machine()) {
        let mut base = |d: &Dag, m: &BspParams| {
            let s = bspg_schedule(d, m);
            let mut st = ScheduleState::new(d, m, &s);
            hill_climb(&mut st, &HillClimbConfig { max_moves: Some(100), time_limit: None });
            st.snapshot()
        };
        let cfg = MultilevelConfig { ratios: vec![0.3], ..Default::default() };
        let sched = multilevel_schedule(&dag, &machine, &cfg, &mut base);
        prop_assert!(validate_lazy(&dag, machine.p(), &sched).is_ok());
    }

    /// Steepest-descent HC: monotone, incrementally consistent, valid.
    #[test]
    fn steepest_monotone_and_consistent(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        use bsp_core::steepest::hill_climb_steepest;
        let sched = random_valid_assignment(&dag, machine.p() as u32, seed);
        let mut st = ScheduleState::new(&dag, &machine, &sched);
        let before = st.cost();
        hill_climb_steepest(&mut st, &HillClimbConfig { max_moves: Some(40), time_limit: None });
        prop_assert!(st.cost() <= before);
        prop_assert_eq!(st.cost(), st.recomputed_cost());
        prop_assert!(validate_lazy(&dag, machine.p(), &st.snapshot()).is_ok());
    }

    /// Simulated annealing: the returned best is valid, its reported cost is
    /// exact, and it never loses to the input — even though the walk climbs.
    #[test]
    fn annealing_never_worse_and_exact(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        use bsp_core::anneal::{simulated_annealing, AnnealConfig};
        let sched = random_valid_assignment(&dag, machine.p() as u32, seed);
        let input = lazy_cost(&dag, &machine, &sched);
        let cfg = AnnealConfig {
            max_steps: 3_000,
            time_limit: None,
            seed,
            ..AnnealConfig::default()
        };
        let (best, cost, stats) = simulated_annealing(&dag, &machine, &sched, &cfg);
        prop_assert!(cost <= input);
        prop_assert_eq!(cost, lazy_cost(&dag, &machine, &best));
        prop_assert!(validate_lazy(&dag, machine.p(), &best).is_ok());
        prop_assert!(stats.accepted <= stats.proposed);
        prop_assert!(stats.uphill <= stats.accepted);
    }

    /// Tabu search: same contract as annealing, plus determinism.
    #[test]
    fn tabu_never_worse_and_deterministic(
        dag in arb_dag(),
        machine in arb_machine(),
        seed in 0u64..10_000,
    ) {
        use bsp_core::tabu::{tabu_search, TabuConfig};
        let sched = random_valid_assignment(&dag, machine.p() as u32, seed);
        let input = lazy_cost(&dag, &machine, &sched);
        let cfg = TabuConfig { max_iters: 60, stall_limit: 25, time_limit: None, tenure: 8 };
        let (best, cost, _) = tabu_search(&dag, &machine, &sched, &cfg);
        prop_assert!(cost <= input);
        prop_assert_eq!(cost, lazy_cost(&dag, &machine, &best));
        prop_assert!(validate_lazy(&dag, machine.p(), &best).is_ok());
        let (best2, cost2, _) = tabu_search(&dag, &machine, &sched, &cfg);
        prop_assert_eq!(cost, cost2);
        prop_assert_eq!(best, best2);
    }

    /// Auto-selection: the chosen strategy is consistent with the dominance
    /// metric and the result is always a valid schedule.
    #[test]
    fn auto_strategy_consistent_with_dominance(
        dag in arb_dag(),
        machine in arb_machine(),
    ) {
        use bsp_core::auto::{comm_dominance, schedule_dag_auto, AutoConfig, Strategy};
        use bsp_core::pipeline::PipelineConfig;
        let pipe = PipelineConfig { enable_ilp: false, ..Default::default() };
        let auto = AutoConfig { min_nodes_for_ml: 10, ..AutoConfig::default() };
        let (r, strat) = schedule_dag_auto(&dag, &machine, &pipe, &auto);
        prop_assert!(validate(&dag, machine.p(), &r.sched, &r.comm).is_ok());
        let dom = comm_dominance(&dag, &machine);
        if dag.n() >= auto.min_nodes_for_ml {
            match strat {
                Strategy::Base => prop_assert!(dom < auto.ccr_lo),
                Strategy::Multilevel => prop_assert!(dom >= auto.ccr_hi),
                Strategy::Both => prop_assert!(dom >= auto.ccr_lo && dom < auto.ccr_hi),
            }
        } else {
            prop_assert_eq!(strat, Strategy::Base);
        }
    }
}
