//! Bit-identity of the parallel neighbourhood scans (PR 6 tentpole).
//!
//! The `*_threaded` local-search entry points must make the *same
//! decisions* as their sequential counterparts for every thread count —
//! not merely land at an equal cost. These properties pin that contract:
//! identical winning move per scan, identical move sequence over a full
//! run, identical final schedules and statistics, at thread counts that
//! straddle the chunking (2, 3) and oversubscribe a small host (8).
//!
//! The instances are sized past the sequential fallback threshold
//! (`n ≥ 64` nodes / `≥ 128` transfers) so the parallel code path really
//! runs; the thread counts exceed the CI host's core count on purpose —
//! determinism must hold regardless of physical parallelism.

use bsp_core::hc::HillClimbConfig;
use bsp_core::hccs::{
    comm_hill_climb, comm_hill_climb_threaded, optimize_comm_schedule,
    optimize_comm_schedule_threaded, CommHillClimbConfig, CommState,
};
use bsp_core::state::ScheduleState;
use bsp_core::steepest::{
    best_move, best_move_threaded, hill_climb_steepest, hill_climb_steepest_threaded,
};
use bsp_core::tabu::{tabu_search, tabu_search_threaded, TabuConfig};
use bsp_dag::random::{random_layered_dag, random_order_dag, LayeredConfig};
use bsp_dag::{Dag, TopoInfo};
use bsp_model::{BspParams, NumaTopology};
use bsp_schedule::BspSchedule;
use proptest::prelude::*;

const THREADS: [usize; 3] = [2, 3, 8];

/// Layered DAGs big enough (≥ 64 nodes) to engage the chunked scan.
fn arb_big_dag() -> impl Strategy<Value = Dag> {
    (0u64..200, 8usize..12, 8usize..14, 0.1f64..0.4).prop_map(|(seed, layers, width, q)| {
        random_layered_dag(
            seed,
            LayeredConfig {
                layers,
                width,
                edge_prob: q,
                max_work: 7,
                max_comm: 5,
            },
        )
    })
}

fn arb_machine() -> impl Strategy<Value = BspParams> {
    (1usize..3u32 as usize, 1u64..6, 0u64..8, proptest::bool::ANY).prop_map(|(pe, g, l, numa)| {
        let p = [2usize, 4, 8][pe];
        let m = BspParams::new(p, g, l);
        if numa {
            m.with_numa(NumaTopology::binary_tree(p, 2 + g % 3))
        } else {
            m
        }
    })
}

/// Scattered but valid start with plenty of improving moves.
fn spread_start(dag: &Dag, p: u32) -> BspSchedule {
    let topo = TopoInfo::new(dag);
    let mut s = BspSchedule::zeroed(dag.n());
    for v in dag.nodes() {
        s.set(v, v % p, topo.level[v as usize]);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One steepest scan: the winning `(v, q, s, delta)` tuple is identical
    /// for every thread count.
    #[test]
    fn steepest_scan_winner_is_thread_invariant(
        dag in arb_big_dag(),
        machine in arb_machine(),
    ) {
        let start = spread_start(&dag, machine.p() as u32);
        let st = ScheduleState::new(&dag, &machine, &start);
        let reference = best_move(&st);
        for t in THREADS {
            prop_assert_eq!(best_move_threaded(&st, t), reference, "threads = {}", t);
        }
    }

    /// A full steepest descent: identical move count and final schedule.
    #[test]
    fn steepest_full_run_is_thread_invariant(
        dag in arb_big_dag(),
        machine in arb_machine(),
    ) {
        let cfg = HillClimbConfig { max_moves: Some(60), time_limit: None };
        let start = spread_start(&dag, machine.p() as u32);
        let mut seq = ScheduleState::new(&dag, &machine, &start);
        let seq_stats = hill_climb_steepest(&mut seq, &cfg);
        for t in THREADS {
            let mut par = ScheduleState::new(&dag, &machine, &start);
            let par_stats = hill_climb_steepest_threaded(&mut par, &cfg, t);
            prop_assert_eq!(par_stats.accepted, seq_stats.accepted, "threads = {}", t);
            prop_assert_eq!(par.cost(), seq.cost(), "threads = {}", t);
            prop_assert_eq!(par.snapshot(), seq.snapshot(), "threads = {}", t);
        }
    }

    /// Tabu search: identical best schedule, cost and counters — the
    /// admissibility filter (tabu list + aspiration) must not perturb the
    /// parallel reduce's tie-break.
    #[test]
    fn tabu_run_is_thread_invariant(
        dag in arb_big_dag(),
        machine in arb_machine(),
    ) {
        let cfg = TabuConfig { max_iters: 40, stall_limit: 20, time_limit: None, tenure: 6 };
        let start = spread_start(&dag, machine.p() as u32);
        let (seq_best, seq_cost, seq_stats) = tabu_search(&dag, &machine, &start, &cfg);
        for t in THREADS {
            let (best, cost, stats) = tabu_search_threaded(&dag, &machine, &start, &cfg, t);
            prop_assert_eq!(cost, seq_cost, "threads = {}", t);
            prop_assert_eq!(&best, &seq_best, "threads = {}", t);
            prop_assert_eq!(stats, seq_stats, "threads = {}", t);
        }
    }

    /// HCcs: the first-improvement phase assignment — and therefore the
    /// explicit Γ — is identical for every thread count.
    #[test]
    fn hccs_run_is_thread_invariant(
        dag in arb_big_dag(),
        machine in arb_machine(),
        seed in 0u64..1000,
    ) {
        // A second scattered start (keyed by seed) varies the transfer set.
        let mut start = spread_start(&dag, machine.p() as u32);
        if seed % 2 == 1 {
            let topo = TopoInfo::new(&dag);
            for v in dag.nodes() {
                start.set(v, (v + 1) % machine.p() as u32, topo.level[v as usize]);
            }
        }
        let cfg = CommHillClimbConfig { max_moves: Some(200), time_limit: None };
        let (seq_comm, seq_cost) = optimize_comm_schedule(&dag, &machine, &start, &cfg);
        for t in THREADS {
            let (comm, cost) =
                optimize_comm_schedule_threaded(&dag, &machine, &start, &cfg, t);
            prop_assert_eq!(cost, seq_cost, "threads = {}", t);
            prop_assert_eq!(&comm, &seq_comm, "threads = {}", t);
        }
    }
}

/// A pinned large Erdős instance where the parallel path demonstrably
/// engages (n well past the fallback threshold) — a fast, deterministic
/// smoke check that needs no proptest shrinking when it fails.
#[test]
fn pinned_large_instance_thread_invariant() {
    let dag = random_order_dag(11, 300, 0.02, 9, 5);
    let machine = BspParams::new(8, 2, 4).with_numa(NumaTopology::binary_tree(8, 3));
    let start = spread_start(&dag, 8);

    let st = ScheduleState::new(&dag, &machine, &start);
    let reference = best_move(&st);
    assert!(reference.is_some(), "instance too trivial");
    for t in THREADS {
        assert_eq!(best_move_threaded(&st, t), reference, "threads = {t}");
    }

    // The comm scan too, through the stateful entry point.
    let cfg = CommHillClimbConfig {
        max_moves: Some(500),
        time_limit: None,
    };
    let mut seq = CommState::new(&dag, &machine, &start);
    let seq_accepted = comm_hill_climb(&mut seq, &cfg);
    assert!(seq_accepted > 0, "no transfers to improve");
    for t in THREADS {
        let mut par = CommState::new(&dag, &machine, &start);
        let par_accepted = comm_hill_climb_threaded(&mut par, &cfg, t);
        assert_eq!(par_accepted, seq_accepted, "threads = {t}");
        assert_eq!(par.cost(), seq.cost(), "threads = {t}");
        assert_eq!(par.comm_schedule(), seq.comm_schedule(), "threads = {t}");
    }
}

/// `threads = 0` auto-detects and must behave like any explicit count.
#[test]
fn auto_detect_is_equivalent_too() {
    let dag = random_order_dag(5, 150, 0.03, 7, 5);
    let machine = BspParams::new(4, 2, 3);
    let start = spread_start(&dag, 4);
    let st = ScheduleState::new(&dag, &machine, &start);
    assert_eq!(best_move_threaded(&st, 0), best_move(&st));
}
