//! Std-only scoped-thread parallel runtime for the scheduling workspace.
//!
//! Every parallel code path in the workspace — the sharded local-search
//! neighbourhood scans, the portfolio-racing scheduler, and the experiment
//! sweeps — runs on the primitives in this crate, which are built entirely
//! on [`std::thread::scope`]: no external dependency, no global thread
//! pool, no unsafe code. Work is distributed over a *chunked atomic
//! cursor* (workers repeatedly claim the next chunk index), results are
//! returned **in chunk order** so deterministic reductions are trivial,
//! and a panicking worker propagates its panic to the caller at join.
//!
//! Thread-count conventions, shared by every consumer:
//!
//! * `threads == 0` means "auto": [`resolve_threads`] replaces it with
//!   [`detect_threads`] (the machine's available parallelism).
//! * `threads == 1` is always the plain sequential path — no threads are
//!   spawned, so single-threaded callers pay nothing.
//! * The `BSP_THREADS` environment variable ([`env_threads`]) provides a
//!   process-wide default ([`default_threads`]) used by configuration
//!   defaults, so e.g. `BSP_THREADS=4 cargo test` exercises the parallel
//!   paths without touching any call site.
//!
//! Cooperative cancellation uses [`CancelToken`], a shared atomic flag
//! with optional parent chaining: cancelling a parent cancels every child
//! token derived from it, while a child can be cancelled without touching
//! its siblings — exactly the shape portfolio racing needs.
//!
//! Panic isolation: every chunk body in the threaded paths runs under
//! `catch_unwind`, so a panicking chunk never tears down the scoped pool
//! mid-flight. Siblings drain quickly via a shared abort flag, the panic
//! from the **lowest** chunk index is re-raised at join (deterministic
//! regardless of worker interleaving), and `bsp_par_chunk_panics_total`
//! counts every caught chunk panic. Callers still observe "a worker panic
//! propagates", but the pool itself always joins cleanly first.

use std::any::Any;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Runtime counters, registered once in the process-global registry:
/// `bsp_par_scopes_total` (threaded scopes entered), `bsp_par_chunks_total`
/// (chunks/jobs distributed), `bsp_par_worker_busy_us` (summed worker
/// wall-time) and `bsp_par_chunk_panics_total` (chunk bodies that
/// panicked and were caught). Only the threaded paths record —
/// `threads <= 1` stays zero-cost.
struct ParMetrics {
    scopes: bsp_obs::Counter,
    chunks: bsp_obs::Counter,
    busy: bsp_obs::Counter,
    chunk_panics: bsp_obs::Counter,
}

fn par_metrics() -> &'static ParMetrics {
    static METRICS: OnceLock<ParMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = bsp_obs::global();
        ParMetrics {
            scopes: reg.counter("bsp_par_scopes_total", &[]),
            chunks: reg.counter("bsp_par_chunks_total", &[]),
            busy: reg.counter("bsp_par_worker_busy_us", &[]),
            chunk_panics: reg.counter("bsp_par_chunk_panics_total", &[]),
        }
    })
}

/// The first (lowest-index) panic caught across a scope's chunk bodies,
/// plus the abort flag that tells sibling workers to stop claiming work.
struct PanicSlot {
    first: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
    abort: AtomicBool,
}

impl PanicSlot {
    fn new() -> Self {
        PanicSlot {
            first: Mutex::new(None),
            abort: AtomicBool::new(false),
        }
    }

    /// Records a caught chunk panic, keeping only the lowest chunk index so
    /// the re-raised payload is deterministic, and raises the abort flag.
    fn record(&self, idx: usize, payload: Box<dyn Any + Send>) {
        par_metrics().chunk_panics.inc();
        self.abort.store(true, Ordering::Relaxed);
        let mut slot = self.first.lock().unwrap_or_else(|p| p.into_inner());
        if slot.as_ref().is_none_or(|&(prev, _)| idx < prev) {
            *slot = Some((idx, payload));
        }
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Re-raises the recorded panic, if any. Called after the scope joined.
    fn resume(self) {
        let slot = self.first.into_inner().unwrap_or_else(|p| p.into_inner());
        if let Some((_, payload)) = slot {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs one chunk body under `catch_unwind`, applying the installed fault
/// plan's `par` site first (an injected panic is indistinguishable from an
/// organic one downstream). `AssertUnwindSafe` is sound here: a panicking
/// chunk contributes no result, the abort flag drains the scope, and the
/// caller re-raises — partially-mutated captures are never observed again
/// on the panicking path.
fn run_chunk<R>(
    plan: &Option<Arc<bsp_faults::FaultPlan>>,
    body: impl FnOnce() -> R,
) -> Result<R, Box<dyn Any + Send>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(p) = plan {
            p.apply_sync(bsp_faults::Site::Par);
        }
        body()
    }))
}

/// Microseconds elapsed since `start`, saturating.
fn us_since(start: std::time::Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// The machine's available parallelism, or 4 when undetectable.
///
/// ```
/// assert!(bsp_par::detect_threads() >= 1);
/// ```
pub fn detect_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The `BSP_THREADS` environment override, if set and parseable. `0` is
/// accepted and means "auto-detect" (see [`resolve_threads`]).
pub fn env_threads() -> Option<usize> {
    std::env::var("BSP_THREADS").ok()?.trim().parse().ok()
}

/// Resolves a requested thread count: `0` means auto-detect, anything
/// else is taken literally.
///
/// ```
/// assert_eq!(bsp_par::resolve_threads(3), 3);
/// assert_eq!(bsp_par::resolve_threads(0), bsp_par::detect_threads());
/// ```
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        detect_threads()
    } else {
        requested
    }
}

/// The process-wide default thread count for configuration defaults:
/// `BSP_THREADS` (resolved through [`resolve_threads`]) when set,
/// otherwise 1 (sequential). Deliberately *not* auto-detecting: parallel
/// scans are opt-in via explicit configuration, a CLI flag, or the
/// environment, so default runs stay reproducible on any machine.
pub fn default_threads() -> usize {
    env_threads().map(resolve_threads).unwrap_or(1)
}

/// A shared cooperative-cancellation flag with optional parent chaining.
///
/// Cloning shares the flag. [`CancelToken::child`] derives a token that is
/// cancelled when *either* it or its parent is cancelled, while cancelling
/// the child leaves the parent (and the child's siblings) untouched.
///
/// ```
/// use bsp_par::CancelToken;
///
/// let parent = CancelToken::new();
/// let child = parent.child();
/// assert!(!child.is_cancelled());
/// child.cancel();
/// assert!(child.is_cancelled() && !parent.is_cancelled());
///
/// let sibling = parent.child();
/// parent.cancel();
/// assert!(sibling.is_cancelled(), "parent cancellation reaches children");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A new token that is also cancelled whenever `self` is.
    pub fn child(&self) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// Raises the flag on this token (and so on every child derived from
    /// it). Idempotent and safe to call from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

/// Splits `0..n_items` into chunks of `chunk_size`, runs `f` on every
/// chunk across `threads` scoped workers (chunks are claimed through an
/// atomic cursor), and returns the per-chunk results **in chunk order** —
/// so folding the returned vector left-to-right is bit-identical to a
/// sequential pass, regardless of which worker ran which chunk. With
/// `threads <= 1` no thread is spawned. A worker panic propagates to the
/// caller.
///
/// ```
/// // Deterministic parallel min: fold chunk results in chunk order.
/// let data: Vec<u64> = (0..1000).map(|i| (i * 7919) % 101).collect();
/// let partials = bsp_par::par_chunks(4, data.len(), 64, |r| {
///     data[r].iter().copied().min()
/// });
/// let m = partials.into_iter().flatten().min();
/// assert_eq!(m, data.iter().copied().min());
/// ```
pub fn par_chunks<R, F>(threads: usize, n_items: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunk = chunk_size.max(1);
    let n_chunks = n_items.div_ceil(chunk);
    let threads = resolve_threads(threads).min(n_chunks.max(1));
    if threads <= 1 {
        return (0..n_chunks)
            .map(|c| f(c * chunk..((c + 1) * chunk).min(n_items)))
            .collect();
    }
    let metrics = par_metrics();
    metrics.scopes.inc();
    metrics.chunks.add(n_chunks as u64);
    let plan = bsp_faults::current();
    let panics = PanicSlot::new();
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let began = std::time::Instant::now();
                    let mut local = Vec::new();
                    loop {
                        if panics.aborted() {
                            break;
                        }
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk;
                        match run_chunk(&plan, || f(lo..(lo + chunk).min(n_items))) {
                            Ok(r) => local.push((c, r)),
                            Err(payload) => {
                                panics.record(c, payload);
                                break;
                            }
                        }
                    }
                    metrics.busy.add(us_since(began));
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bsp-par worker died outside a chunk body"))
            .collect()
    });
    panics.resume();
    tagged.sort_unstable_by_key(|&(c, _)| c);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Parallel first-improvement search: finds the **lowest** index `i` in
/// `0..n_items` for which `f(i)` is `Some`, exactly as a sequential scan
/// would, but probing chunks on `threads` workers. Workers share the best
/// index found so far and skip chunks (and suffixes of chunks) that cannot
/// beat it, so the early-exit behaviour of sequential first-improvement is
/// preserved in spirit while the *result* is preserved exactly.
///
/// ```
/// let hit = bsp_par::par_find_first(4, 1000, 32, |i| (i >= 123).then_some(i * 2));
/// assert_eq!(hit, Some((123, 246)));
/// assert_eq!(bsp_par::par_find_first(4, 50, 8, |_| None::<()>), None);
/// ```
pub fn par_find_first<R, F>(
    threads: usize,
    n_items: usize,
    chunk_size: usize,
    f: F,
) -> Option<(usize, R)>
where
    R: Send,
    F: Fn(usize) -> Option<R> + Sync,
{
    let chunk = chunk_size.max(1);
    let threads = resolve_threads(threads);
    if threads <= 1 || n_items <= chunk {
        return (0..n_items).find_map(|i| f(i).map(|r| (i, r)));
    }
    let n_chunks = n_items.div_ceil(chunk);
    let threads = threads.min(n_chunks);
    let metrics = par_metrics();
    metrics.scopes.inc();
    metrics.chunks.add(n_chunks as u64);
    let plan = bsp_faults::current();
    let panics = PanicSlot::new();
    let cursor = AtomicUsize::new(0);
    let best_idx = AtomicUsize::new(usize::MAX);
    let mut hits: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let began = std::time::Instant::now();
                    let mut local: Option<(usize, R)> = None;
                    loop {
                        if panics.aborted() {
                            break;
                        }
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk;
                        // Chunks are claimed in ascending order, so once the
                        // chunk start passes the best hit no later chunk can
                        // improve on it.
                        if lo > best_idx.load(Ordering::Relaxed) {
                            break;
                        }
                        let scanned = run_chunk(&plan, || {
                            for i in lo..(lo + chunk).min(n_items) {
                                if i > best_idx.load(Ordering::Relaxed) {
                                    break;
                                }
                                if let Some(r) = f(i) {
                                    best_idx.fetch_min(i, Ordering::Relaxed);
                                    return Some((i, r));
                                }
                            }
                            None
                        });
                        match scanned {
                            Ok(Some((i, r))) => {
                                if local.as_ref().is_none_or(|&(j, _)| i < j) {
                                    local = Some((i, r));
                                }
                            }
                            Ok(None) => {}
                            Err(payload) => {
                                panics.record(c, payload);
                                break;
                            }
                        }
                    }
                    metrics.busy.add(us_since(began));
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("bsp-par worker died outside a chunk body"))
            .collect()
    });
    panics.resume();
    hits.sort_unstable_by_key(|&(i, _)| i);
    hits.into_iter().next()
}

/// Runs `f` over `jobs` on `threads` scoped workers, preserving job order
/// in the output. Jobs are claimed one at a time through an atomic cursor,
/// so long and short jobs interleave without static partitioning skew.
/// With `threads <= 1` (or one job) everything runs on the caller's
/// thread.
///
/// ```
/// let squares = bsp_par::parallel_map(3, (0..10u64).collect(), |&x| x * x);
/// assert_eq!(squares, (0..10u64).map(|x| x * x).collect::<Vec<_>>());
/// ```
pub fn parallel_map<T, R, F>(threads: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = jobs.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let metrics = par_metrics();
    metrics.scopes.inc();
    metrics.chunks.add(n as u64);
    let plan = bsp_faults::current();
    let panics = PanicSlot::new();
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let began = std::time::Instant::now();
                    let mut local = Vec::new();
                    loop {
                        if panics.aborted() {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match run_chunk(&plan, || f(&jobs[i])) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                panics.record(i, payload);
                                break;
                            }
                        }
                    }
                    metrics.busy.add(us_since(began));
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bsp-par worker died outside a chunk body"))
            .collect()
    });
    panics.resume();
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_and_defaults() {
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
        assert!(detect_threads() >= 1);
        // default_threads is 1 or the BSP_THREADS override; never 0.
        assert!(default_threads() >= 1);
    }

    #[test]
    fn par_chunks_returns_chunk_order_at_every_thread_count() {
        for threads in [1, 2, 3, 8] {
            let ids = par_chunks(threads, 103, 10, |r| r.start);
            let expected: Vec<usize> = (0..11).map(|c| c * 10).collect();
            assert_eq!(ids, expected, "threads={threads}");
        }
        assert!(par_chunks(4, 0, 16, |r| r.len()).is_empty());
    }

    #[test]
    fn par_chunks_min_reduce_matches_sequential() {
        let data: Vec<i64> = (0..997)
            .map(|i| ((i * 2654435761u64) % 4093) as i64 - 2000)
            .collect();
        let seq = data.iter().copied().min();
        for threads in [2, 3, 8] {
            let partials = par_chunks(threads, data.len(), 37, |r| data[r].iter().copied().min());
            assert_eq!(partials.into_iter().flatten().min(), seq);
        }
    }

    #[test]
    fn par_find_first_matches_sequential_scan() {
        // Several hits: the lowest index must win at any thread count.
        let hit = |i: usize| (i % 97 == 13).then_some(i);
        let seq = (0..5000).find_map(|i| hit(i).map(|r| (i, r)));
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                par_find_first(threads, 5000, 64, hit),
                seq,
                "threads={threads}"
            );
        }
        assert_eq!(par_find_first(8, 5000, 64, |_| None::<usize>), None);
        assert_eq!(par_find_first(8, 0, 64, Some), None);
    }

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 2, 5] {
            let out = parallel_map(threads, (0..57usize).collect(), |&x| 2 * x + 1);
            assert_eq!(out, (0..57).map(|x| 2 * x + 1).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = parallel_map(4, Vec::<usize>::new(), |&x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            par_chunks(4, 100, 8, |r| {
                if r.contains(&50) {
                    panic!("boom");
                }
                r.len()
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn lowest_chunk_panic_wins_and_pool_survives() {
        // Two chunks panic with distinct payloads; the re-raised payload
        // must be the lowest chunk's regardless of worker interleaving,
        // and the scope must join cleanly enough to run again right after.
        for _ in 0..20 {
            let caught = std::panic::catch_unwind(|| {
                par_chunks(4, 100, 10, |r| {
                    if r.start == 30 || r.start == 70 {
                        panic!("chunk-{}", r.start);
                    }
                    r.len()
                })
            });
            let payload = caught.expect_err("must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, "chunk-30", "lowest chunk index must win");
            // The pool is reusable immediately after a panic.
            let ok = par_chunks(4, 50, 5, |r| r.len());
            assert_eq!(ok.iter().sum::<usize>(), 50);
        }
    }

    #[test]
    fn injected_par_panic_propagates_and_counts() {
        let plan = Arc::new(
            bsp_faults::FaultPlan::parse("faults?seed=3&panic=1.0&only=par&max=1").unwrap(),
        );
        let _guard = bsp_faults::install(plan.clone());
        let caught = std::panic::catch_unwind(|| par_chunks(2, 40, 10, |r| r.len()));
        assert!(caught.is_err(), "injected panic must surface at join");
        assert_eq!(plan.injected_total(), 1);
        // max=1 exhausted: the very next scope runs clean under the same plan.
        let ok = par_chunks(2, 40, 10, |r| r.len());
        assert_eq!(ok.iter().sum::<usize>(), 40);
    }

    #[test]
    fn cancel_token_chain() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        let shared = a.clone();
        a.cancel();
        assert!(shared.is_cancelled(), "clones share the flag");
        assert!(!b.is_cancelled() && !root.is_cancelled());
        root.cancel();
        assert!(b.is_cancelled());
    }
}
