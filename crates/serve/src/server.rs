//! The scheduling daemon: accept loop, connection readers, worker pool,
//! request handlers, graceful shutdown.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!  accept loop ──spawns──▶ connection reader ──try_push──▶ JobQueue
//!       │                      │ (typed protocol errors,       │
//!       │                      │  pong/stats inline)           ▼
//!       │                      ▼                         worker pool
//!       │                 CancelToken chain          (Registry per worker)
//!       │            server ⊃ connection ⊃ job            │
//!       ▼                                                 ▼
//!   stop token ◀──────── shutdown request          result/event frames
//! ```
//!
//! Cancellation is hierarchical: the server's stop token is the parent of
//! every connection token, which parents every job token. A client
//! disconnect cancels its connection token, so in-flight solves for that
//! client wind down to their best-so-far and the (still valid) results
//! land in the cache for the next request. A shutdown cancels the server
//! token: every in-flight solve returns its best-so-far, queued jobs are
//! drained under the already-cancelled budget (valid results, fast), and
//! the result store is flushed to disk.

use crate::cache::{CachedResult, InstanceCache, ResultKey, ResultStore};
use crate::protocol::{
    codes, parse_line, read_line_capped, to_line, Frame, LineRead, Request, ServerStats, MAX_LINE,
};
use crate::queue::{JobQueue, PushError};
use bsp_core::pipeline::PipelineConfig;
use bsp_core::{solve_warm_pipeline, warm_start_from_map};
use bsp_faults::{Fault, FaultPlan, Site};
use bsp_instance::source::{InstanceRegistry, DEFAULT_SEED};
use bsp_instance::{apply_edits, Instance, MachineSpec};
use bsp_obs::{Counter, Gauge, Histogram};
use bsp_online::{OnlineConfig, OnlineScheduler};
use bsp_par::CancelToken;
use bsp_sched::race::RACE_PREFIX;
use bsp_sched::registry::Registry;
use bsp_schedule::events::{EventObserver, StageReportWire};
use bsp_schedule::scheduler::ScheduleResult;
use bsp_schedule::solve::{Budget, SolveCx, SolveOutcome, SolveRequest};
use bsp_schedule::spec::SchedulerSpec;
use bsp_schedule::BspSchedule;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning: a handler panic is already
/// isolated (counted and answered as `internal_error`), so the shared
/// state it may have been holding must keep serving — the store and the
/// instance cache are always internally consistent between operations.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A human-readable rendering of a caught panic payload.
fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (tests).
    pub addr: String,
    /// Worker threads draining the job queue. `0` resolves through
    /// `BSP_THREADS` ([`bsp_par::default_threads`]); an explicit `n` is
    /// passed through [`bsp_par::resolve_threads`].
    pub threads: usize,
    /// Job-queue capacity; pushes beyond it answer `queue_full`.
    pub queue_cap: usize,
    /// Persist the result store here (loaded at startup, flushed on
    /// shutdown). `None` = in-memory only.
    pub store_path: Option<PathBuf>,
    /// LRU entry cap of the result store (`--store-cap`); `None` =
    /// unbounded (the default). Evictions are counted in `stats`.
    pub store_cap: Option<usize>,
    /// Default per-request wall-clock budget when a request names none.
    /// `None` = unlimited (not recommended for a shared server).
    pub default_budget_ms: Option<u64>,
    /// Scheduler spec used when a request names none.
    pub default_sched: String,
    /// Base pipeline configuration; request spec parameters override it.
    pub pipeline: PipelineConfig,
    /// Per-line byte cap of the protocol reader.
    pub max_line: usize,
    /// Bind address of the observability sidecar (`GET /metrics`
    /// Prometheus exposition, `GET /trace` Chrome trace JSON). `None`
    /// (the default) disables the sidecar; port `0` picks a free port.
    pub metrics_addr: Option<String>,
    /// Per-connection read timeout of the sidecar's HTTP handler, so a
    /// slow scraper cannot hold a handler thread forever.
    pub sidecar_read_timeout: Duration,
    /// Fault-injection spec (e.g. `"faults?seed=7&io_err=0.01"`); `None`
    /// (the default) disables injection entirely — the hooks are a single
    /// relaxed atomic load. Parsed at startup; a malformed spec fails
    /// [`start`].
    pub faults: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let mut pipeline = PipelineConfig::default();
        // ILP refinement is off by default server-side: interactive
        // budgets are milliseconds, not the seconds ILP wants. A request
        // can turn it back on via its scheduler spec (`?ilp=on`).
        pipeline.enable_ilp = false;
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_cap: 64,
            store_path: None,
            store_cap: None,
            default_budget_ms: Some(2000),
            default_sched: "pipeline/base?ilp=off".to_string(),
            pipeline,
            max_line: MAX_LINE,
            metrics_addr: None,
            sidecar_read_timeout: Duration::from_secs(2),
            faults: None,
        }
    }
}

impl ServeConfig {
    /// The resolved worker-pool size: `0` → `BSP_THREADS` or 1, explicit
    /// `n` → [`bsp_par::resolve_threads`] (so `--threads 0` means
    /// auto-detect only when the env says so).
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            bsp_par::default_threads()
        } else {
            bsp_par::resolve_threads(self.threads)
        }
        .max(1)
    }
}

/// One queued unit of work: a `solve`/`delta` request plus where to write
/// its frames and the token that cancels it.
struct Job {
    req: Request,
    out: Arc<Mutex<TcpStream>>,
    cancel: CancelToken,
    /// Absolute deadline computed at admission from `req.deadline_ms`;
    /// a job still queued past it is shed instead of solved.
    deadline: Option<Instant>,
}

/// Per-method request metrics (one set each for `solve` and `delta`).
struct MethodMetrics {
    requests: Counter,
    latency: Histogram,
}

/// The server's handles into the process-wide [`bsp_obs`] registry,
/// registered once at startup so the hot paths are single atomic ops.
/// Counters are process-global and monotone; a test running several
/// servers in one process should assert with `>=`, not `==`.
struct ServeMetrics {
    queue_depth: Gauge,
    inflight: Gauge,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    warm_solves: Counter,
    cold_solves: Counter,
    /// Jobs whose handler panicked (isolated, answered `internal_error`).
    jobs_failed: Counter,
    /// Jobs shed because their deadline expired before a worker started.
    deadline_shed: Counter,
    solve: MethodMetrics,
    delta: MethodMetrics,
    /// Store evictions already forwarded to `cache_evictions` — the
    /// store's own counter is monotone, so the delta since the last sync
    /// is exactly what is new.
    evictions_seen: AtomicU64,
}

impl ServeMetrics {
    fn new() -> Self {
        let reg = bsp_obs::global();
        let method = |m: &str| MethodMetrics {
            requests: reg.counter("bsp_serve_requests_total", &[("method", m)]),
            latency: reg.histogram("bsp_serve_request_duration_us", &[("method", m)]),
        };
        ServeMetrics {
            queue_depth: reg.gauge("bsp_serve_queue_depth", &[]),
            inflight: reg.gauge("bsp_serve_inflight_jobs", &[]),
            cache_hits: reg.counter("bsp_serve_cache_hits_total", &[]),
            cache_misses: reg.counter("bsp_serve_cache_misses_total", &[]),
            cache_evictions: reg.counter("bsp_serve_cache_evictions_total", &[]),
            warm_solves: reg.counter("bsp_serve_warm_solves_total", &[]),
            cold_solves: reg.counter("bsp_serve_cold_solves_total", &[]),
            jobs_failed: reg.counter("bsp_jobs_failed_total", &[]),
            deadline_shed: reg.counter("bsp_deadline_shed_total", &[]),
            solve: method("solve"),
            delta: method("delta"),
            evictions_seen: AtomicU64::new(0),
        }
    }

    fn method(&self, name: &str) -> &MethodMetrics {
        match name {
            "delta" => &self.delta,
            _ => &self.solve,
        }
    }

    /// Forwards store evictions accrued since the last sync. `fetch_max`
    /// makes concurrent syncs race-free: each eviction is counted by
    /// exactly one caller, whichever observed it first.
    fn sync_evictions(&self, evictions_now: u64) {
        let seen = self
            .evictions_seen
            .fetch_max(evictions_now, Ordering::Relaxed);
        self.cache_evictions.add(evictions_now.saturating_sub(seen));
    }
}

/// Retries of an in-flight idempotent request attach here instead of
/// enqueuing a duplicate job: key → the extra `(writer, id)` pairs to
/// answer when the original job completes.
type InflightWaiters = HashMap<String, Vec<(Arc<Mutex<TcpStream>>, Option<u64>)>>;

struct Shared {
    cfg: ServeConfig,
    queue: JobQueue<Job>,
    store: Mutex<ResultStore>,
    icache: Mutex<InstanceCache>,
    stop: CancelToken,
    jobs_done: AtomicU64,
    workers: usize,
    metrics: ServeMetrics,
    /// The parsed fault plan (`cfg.faults`), installed on every worker
    /// and connection thread; `None` = injection disabled.
    faults: Option<Arc<FaultPlan>>,
    inflight_keys: Mutex<InflightWaiters>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.stop.cancel();
        self.queue.close();
    }

    /// The `retry_after_ms` hint for a `queue_full` answer: roughly how
    /// long the backlog needs to half-drain, assuming each queued job
    /// burns its default budget, clamped to a sane interactive range.
    fn retry_after_hint(&self) -> u64 {
        let depth = self.queue.len() as u64;
        let per_job = self.cfg.default_budget_ms.unwrap_or(100).max(1);
        (depth * per_job / (2 * self.workers.max(1) as u64)).clamp(10, 5_000)
    }

    fn stats(&self) -> ServerStats {
        let s = lock(&self.store).stats();
        ServerStats {
            cached_results: s.len,
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            corrupt: s.corrupt,
            cached_instances: lock(&self.icache).len() as u64,
            jobs_done: self.jobs_done.load(Ordering::Relaxed),
            queued: self.queue.len() as u64,
            workers: self.workers as u64,
        }
    }
}

/// A running server: bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    sidecar: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability sidecar's bound address, if one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Signals shutdown without waiting: stops accepting, closes the
    /// queue (remaining jobs drain), cancels in-flight budgets.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether a shutdown (request, signal or [`Self::begin_shutdown`])
    /// is in progress.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.is_cancelled()
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Blocks until the server has fully stopped (accept loop exited,
    /// workers drained), then flushes the result store. Returns the final
    /// counters.
    pub fn wait(self) -> ServerStats {
        let _ = self.accept.join();
        if let Some(sidecar) = self.sidecar {
            let _ = sidecar.join();
        }
        for w in self.workers {
            let _ = w.join();
        }
        let stats = self.shared.stats();
        let mut store = lock(&self.shared.store);
        if let Some(path) = &self.shared.cfg.store_path {
            if store.is_dirty() {
                let _guard = self.shared.faults.clone().map(bsp_faults::install);
                if let Err(e) = store.save(path) {
                    eprintln!("bsp-serve: store flush failed: {e}");
                }
            }
        }
        stats
    }

    /// [`Self::begin_shutdown`] + [`Self::wait`].
    pub fn shutdown(self) -> ServerStats {
        self.begin_shutdown();
        self.wait()
    }
}

/// Starts the daemon: binds `cfg.addr`, loads the persisted store (if
/// any), spawns the worker pool and the accept loop, and returns.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let faults = match &cfg.faults {
        Some(spec) => Some(Arc::new(FaultPlan::parse(spec).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
        })?)),
        None => None,
    };
    let mut store = match &cfg.store_path {
        Some(path) => {
            // The plan covers the startup load too (`store.load` site).
            let _guard = faults.clone().map(bsp_faults::install);
            ResultStore::load(path)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        }
        None => ResultStore::new(),
    };
    store.set_cap(cfg.store_cap);
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = cfg.worker_threads();

    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_cap),
        store: Mutex::new(store),
        icache: Mutex::new(InstanceCache::new()),
        stop: CancelToken::new(),
        jobs_done: AtomicU64::new(0),
        workers,
        metrics: ServeMetrics::new(),
        faults,
        inflight_keys: Mutex::new(HashMap::new()),
        cfg,
    });

    let (metrics_addr, sidecar) = match &shared.cfg.metrics_addr {
        Some(addr) => {
            let (addr, handle) =
                crate::sidecar::start(addr, shared.stop.clone(), shared.cfg.sidecar_read_timeout)?;
            (Some(addr), Some(handle))
        }
        None => (None, None),
    };

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("bsp-serve-worker-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("bsp-serve-accept".to_string())
            .spawn(move || accept_loop(listener, shared))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle {
        addr,
        metrics_addr,
        shared,
        accept,
        sidecar,
        workers: worker_handles,
    })
}

/// Installs a SIGINT handler that triggers the same graceful shutdown as
/// a `shutdown` request would on `handle`'s server. Call at most once per
/// process; non-Unix platforms get a no-op.
pub fn shutdown_on_sigint(handle: &ServerHandle) {
    sigint::install(handle.shared.clone());
}

#[cfg(unix)]
mod sigint {
    use super::Shared;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    static TARGET: OnceLock<Mutex<Option<Arc<Shared>>>> = OnceLock::new();
    static FIRED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_sig: i32) {
        // Async-signal-safe: set a flag; the watcher thread does the work.
        FIRED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // `signal(2)` from the C runtime std already links against —
        // enough for a graceful-shutdown hook without a libc crate.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install(shared: Arc<Shared>) {
        let slot = TARGET.get_or_init(|| Mutex::new(None));
        *slot.lock().unwrap() = Some(shared);
        unsafe {
            signal(2 /* SIGINT */, on_sigint as *const () as usize);
        }
        std::thread::Builder::new()
            .name("bsp-serve-sigint".to_string())
            .spawn(|| loop {
                if FIRED.swap(false, Ordering::SeqCst) {
                    if let Some(slot) = TARGET.get() {
                        if let Some(shared) = slot.lock().unwrap().take() {
                            shared.begin_shutdown();
                            return;
                        }
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            })
            .expect("spawn sigint watcher");
    }
}

#[cfg(not(unix))]
mod sigint {
    use super::Shared;
    use std::sync::Arc;
    pub fn install(_shared: Arc<Shared>) {}
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("bsp-serve-conn".to_string())
                    .spawn(move || conn_loop(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Writes one frame (plus newline) to the shared connection writer,
/// swallowing errors — a vanished client only means nobody is reading.
/// The `write` fault site drops the frame entirely (any injected kind
/// reads as a lost write here: this is the one site where panicking
/// would kill a pool thread outside the isolation boundary).
fn send(out: &Mutex<TcpStream>, frame: &Frame) {
    if let Some(plan) = bsp_faults::current() {
        match plan.fault_at(Site::Write) {
            Some(Fault::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(_) => return,
            None => {}
        }
    }
    let line = to_line(frame);
    let mut stream = lock(out);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Applies any injected fault for a serve-side handler site. `Some` is a
/// typed `internal_error` frame the caller answers with (io_err/drop);
/// an injected panic unwinds into the caller's isolation boundary, and a
/// slow fault just sleeps in place.
fn inject_handler_fault(site: Site, id: Option<u64>, what: &str) -> Option<Frame> {
    let plan = bsp_faults::current()?;
    match plan.fault_at(site)? {
        Fault::IoErr | Fault::Drop => Some(Frame::error(
            id,
            codes::INTERNAL_ERROR,
            format!("injected fault: io_err during {what}"),
        )),
        Fault::Panic => panic!("injected fault: panic during {what}"),
        Fault::Slow(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
    }
}

fn conn_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _faults = shared.faults.clone().map(bsp_faults::install);
    let _ = stream.set_nodelay(true);
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let out = Arc::new(Mutex::new(stream));
    // Connection token: child of the server's stop token; cancelled when
    // the client goes away, which cancels every job spawned from here.
    let conn_token = shared.stop.child();
    // Stream sessions are connection-scoped and handled inline on this
    // reader thread: events of one session are naturally ordered, and a
    // vanished client takes its sessions with it.
    let mut sessions: HashMap<String, OnlineScheduler> = HashMap::new();

    loop {
        let line = match read_line_capped(&mut reader, shared.cfg.max_line) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof) | Err(_) => break,
            Ok(LineRead::Oversize) => {
                send(
                    &out,
                    &Frame::error(
                        None,
                        codes::OVERSIZE_LINE,
                        format!("line exceeds {} bytes; closing", shared.cfg.max_line),
                    ),
                );
                break;
            }
        };
        if let Some(plan) = bsp_faults::current() {
            match plan.fault_at(Site::Read) {
                Some(Fault::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                // Any other injected kind reads as the connection dying
                // mid-read; the client reconnects and retries.
                Some(_) => break,
                None => {}
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let req: Request = match parse_line(&line) {
            Ok(r) => r,
            Err(e) => {
                send(&out, &Frame::error(None, codes::BAD_JSON, e.to_string()));
                continue;
            }
        };
        let id = req.id;
        match req.method.as_str() {
            "ping" => send(
                &out,
                &Frame {
                    kind: "pong".to_string(),
                    id,
                    ..Frame::default()
                },
            ),
            "stats" => send(
                &out,
                &Frame {
                    kind: "stats".to_string(),
                    id,
                    stats: Some(shared.stats()),
                    metrics: Some(crate::protocol::metric_wires(&bsp_obs::global().snapshot())),
                    ..Frame::default()
                },
            ),
            "shutdown" => {
                send(
                    &out,
                    &Frame {
                        kind: "bye".to_string(),
                        id,
                        ..Frame::default()
                    },
                );
                shared.begin_shutdown();
            }
            "stream_open" | "stream_push" | "stream_close" => {
                // Stream handlers run inline on this reader thread, so
                // they get their own isolation boundary: a panicking
                // handler answers `internal_error` and — since the
                // session's scheduler may be half-mutated — closes that
                // session, while the connection keeps serving.
                let caught =
                    std::panic::catch_unwind(AssertUnwindSafe(|| match req.method.as_str() {
                        "stream_open" => handle_stream_open(&shared, &mut sessions, &req),
                        "stream_push" => handle_stream_push(&mut sessions, &req),
                        _ => handle_stream_close(&mut sessions, &req),
                    }));
                let frame = match caught {
                    Ok(frame) => frame,
                    Err(payload) => {
                        shared.metrics.jobs_failed.inc();
                        if let Some(session) = req.session.as_deref() {
                            sessions.remove(session);
                        }
                        Frame::error(
                            id,
                            codes::INTERNAL_ERROR,
                            format!("stream handler panicked: {}", panic_msg(&*payload)),
                        )
                    }
                };
                send(&out, &frame);
            }
            "solve" | "delta" => {
                if shared.stop.is_cancelled() {
                    send(
                        &out,
                        &Frame::error(id, codes::SHUTTING_DOWN, "server is draining"),
                    );
                    continue;
                }
                if req.deadline_ms == Some(0) {
                    shared.metrics.deadline_shed.inc();
                    send(
                        &out,
                        &Frame::error(id, codes::DEADLINE_SHED, "deadline expired at admission"),
                    );
                    continue;
                }
                let deadline = req
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                let rkey = req.rkey.clone();
                let job = Job {
                    req,
                    out: out.clone(),
                    cancel: conn_token.child(),
                    deadline,
                };
                // The in-flight map is held across admission so two
                // concurrent retries of one key cannot both enqueue.
                let mut inflight = lock(&shared.inflight_keys);
                if let Some(key) = &rkey {
                    if let Some(waiters) = inflight.get_mut(key) {
                        // Idempotent retry of a job still in flight:
                        // attach to it instead of solving twice.
                        waiters.push((out.clone(), id));
                        continue;
                    }
                }
                match shared.queue.try_push(job) {
                    Ok(()) => {
                        shared.metrics.queue_depth.inc();
                        if let Some(key) = rkey {
                            inflight.insert(key, Vec::new());
                        }
                    }
                    Err(PushError::Full) => {
                        let mut frame =
                            Frame::error(id, codes::QUEUE_FULL, "job queue at capacity; retry");
                        frame.retry_after_ms = Some(shared.retry_after_hint());
                        drop(inflight);
                        send(&out, &frame);
                    }
                    Err(PushError::Closed) => {
                        drop(inflight);
                        send(
                            &out,
                            &Frame::error(id, codes::SHUTTING_DOWN, "server is draining"),
                        );
                    }
                }
            }
            m => send(
                &out,
                &Frame::error(id, codes::UNKNOWN_METHOD, format!("unknown method {m:?}")),
            ),
        }
    }
    // Client gone: wind down anything still running for this connection.
    conn_token.cancel();
}

/// Opens a stream session: `instance` carries the *machine* spec
/// (`"bsp?p=4&g=1&l=5"`) — the DAG side arrives event by event —
/// and `budget_ms` is the per-arrival re-planning budget.
fn handle_stream_open(
    shared: &Shared,
    sessions: &mut HashMap<String, OnlineScheduler>,
    req: &Request,
) -> Frame {
    let id = req.id;
    let Some(session) = req.session.as_deref() else {
        return Frame::error(id, codes::MISSING_FIELD, "stream_open requires \"session\"");
    };
    let Some(machine_spec) = req.instance.as_deref() else {
        return Frame::error(
            id,
            codes::MISSING_FIELD,
            "stream_open requires \"instance\" (a machine spec like \"bsp?p=4\")",
        );
    };
    if sessions.contains_key(session) {
        return Frame::error(
            id,
            codes::BAD_SPEC,
            format!("session {session:?} is already open on this connection"),
        );
    }
    let machine = match MachineSpec::parse(machine_spec) {
        Ok(m) => m.build(),
        Err(e) => return Frame::error(id, codes::BAD_SPEC, e.to_string()),
    };
    let mut cfg = OnlineConfig::default();
    cfg.pipeline = shared.cfg.pipeline.clone();
    cfg.pipeline.enable_ilp = false;
    if let Some(ms) = req.budget_ms {
        cfg.budget_per_arrival = Duration::from_millis(ms);
    }
    let scheduler = match OnlineScheduler::new(&machine, cfg) {
        Ok(s) => s,
        Err(e) => return Frame::error(id, codes::BAD_SPEC, e.to_string()),
    };
    sessions.insert(session.to_string(), scheduler);
    Frame {
        kind: "stream".to_string(),
        id,
        session: Some(session.to_string()),
        frontier: Some(0),
        arrivals: Some(0),
        ..Frame::default()
    }
}

/// Feeds an event batch into a session and answers with the updated
/// tentative suffix. Any partial arrival batch is flushed, so the frame
/// always reflects every event of the request.
fn handle_stream_push(sessions: &mut HashMap<String, OnlineScheduler>, req: &Request) -> Frame {
    let start = Instant::now();
    let id = req.id;
    if let Some(frame) = inject_handler_fault(Site::Stream, id, "stream push") {
        return frame;
    }
    let Some(session) = req.session.as_deref() else {
        return Frame::error(id, codes::MISSING_FIELD, "stream_push requires \"session\"");
    };
    let events = match req.events.as_ref() {
        Some(e) if !e.is_empty() => e,
        _ => {
            return Frame::error(
                id,
                codes::MISSING_FIELD,
                "stream_push requires a non-empty \"events\" array",
            )
        }
    };
    let Some(sch) = sessions.get_mut(session) else {
        return Frame::error(
            id,
            codes::UNKNOWN_SESSION,
            format!("no open session {session:?} on this connection"),
        );
    };
    for ev in events {
        if let Err(e) = sch.push(ev) {
            return Frame::error(id, codes::BAD_EVENT, e.to_string());
        }
    }
    if let Err(e) = sch.flush() {
        return Frame::error(id, codes::BAD_EVENT, e.to_string());
    }
    let suffix = sch.suffix();
    let stats = sch.stats();
    let mut frame = Frame {
        kind: "stream".to_string(),
        id,
        session: Some(session.to_string()),
        frontier: Some(suffix.frontier as u64),
        arrivals: Some(stats.arrivals),
        supersteps: Some(sch.schedule().n_supersteps() as u64),
        suffix_nodes: Some(suffix.nodes),
        suffix_procs: Some(suffix.procs),
        suffix_steps: Some(suffix.steps),
        elapsed_us: Some(start.elapsed().as_micros().min(u64::MAX as u128) as u64),
        ..Frame::default()
    };
    frame.cost = match sch.outcome() {
        Some(outcome) => Some(outcome.cost),
        None => stats.batches.last().map(|b| b.cost),
    };
    frame
}

/// Finalizes a session (if the client did not already push `Finalize`)
/// and answers with the sealed result: total cost and the full final
/// assignment, in trace-level node ids.
fn handle_stream_close(sessions: &mut HashMap<String, OnlineScheduler>, req: &Request) -> Frame {
    let start = Instant::now();
    let id = req.id;
    let Some(session) = req.session.as_deref() else {
        return Frame::error(
            id,
            codes::MISSING_FIELD,
            "stream_close requires \"session\"",
        );
    };
    let Some(mut sch) = sessions.remove(session) else {
        return Frame::error(
            id,
            codes::UNKNOWN_SESSION,
            format!("no open session {session:?} on this connection"),
        );
    };
    if !sch.is_finalized() {
        if let Err(e) = sch.push(&bsp_instance::trace::ArrivalEvent::Finalize) {
            return Frame::error(id, codes::BAD_EVENT, e.to_string());
        }
    }
    let outcome = sch.outcome().expect("finalized stream has an outcome");
    let n = outcome.dag.n() as u32;
    Frame {
        kind: "result".to_string(),
        id,
        session: Some(session.to_string()),
        cost: Some(outcome.cost),
        supersteps: Some(outcome.sched.n_supersteps() as u64),
        frontier: Some(outcome.sched.n_supersteps() as u64),
        arrivals: Some(outcome.stats.arrivals),
        suffix_nodes: Some(outcome.ext_ids.clone()),
        suffix_procs: Some((0..n).map(|v| outcome.sched.proc(v)).collect()),
        suffix_steps: Some((0..n).map(|v| outcome.sched.step(v)).collect()),
        elapsed_us: Some(start.elapsed().as_micros().min(u64::MAX as u128) as u64),
        ..Frame::default()
    }
}

/// Answers the job's own connection plus every idempotent-retry waiter
/// attached to its `rkey` (each with its own correlation id), then
/// clears the in-flight registration.
fn answer_job(shared: &Shared, job: &Job, frame: &Frame) {
    send(&job.out, frame);
    if let Some(rkey) = &job.req.rkey {
        let waiters = lock(&shared.inflight_keys).remove(rkey);
        for (out, wid) in waiters.unwrap_or_default() {
            let mut echo = frame.clone();
            echo.id = wid;
            send(&out, &echo);
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let _faults = shared.faults.clone().map(bsp_faults::install);
    // Registries are static catalogues — one per worker avoids sharing.
    let registry = Registry::standard();
    let instances = InstanceRegistry::standard();
    while let Some(job) = shared.queue.pop() {
        let began = Instant::now();
        shared.metrics.queue_depth.dec();
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            // Deadline-aware admission at dequeue: the client stopped
            // caring, so don't burn a solve budget on the answer.
            shared.metrics.deadline_shed.inc();
            let frame = Frame::error(
                job.req.id,
                codes::DEADLINE_SHED,
                "deadline expired while the job was queued",
            );
            answer_job(&shared, &job, &frame);
            shared.jobs_done.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        shared.metrics.inflight.inc();
        // Isolation boundary: a panic inside a handler (organic or
        // injected) fails this job with a typed `internal_error` frame
        // while the worker and its siblings keep draining the queue.
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(frame) = inject_handler_fault(Site::Job, job.req.id, &job.req.method) {
                return frame;
            }
            match job.req.method.as_str() {
                "solve" => handle_solve(&shared, &registry, &instances, &job),
                "delta" => handle_delta(&shared, &registry, &job),
                // Unreachable: conn_loop only enqueues solve/delta.
                m => Frame::error(job.req.id, codes::UNKNOWN_METHOD, format!("{m:?}")),
            }
        }));
        let frame = match caught {
            Ok(frame) => frame,
            Err(payload) => {
                shared.metrics.jobs_failed.inc();
                Frame::error(
                    job.req.id,
                    codes::INTERNAL_ERROR,
                    format!("job panicked: {}", panic_msg(&*payload)),
                )
            }
        };
        answer_job(&shared, &job, &frame);
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
        shared.metrics.inflight.dec();
        let mm = shared.metrics.method(&job.req.method);
        mm.requests.inc();
        mm.latency.observe_duration(began.elapsed());
        let evictions = lock(&shared.store).stats().evictions;
        shared.metrics.sync_evictions(evictions);
    }
}

/// Canonicalizes a scheduler spec so differently-ordered parameters hit
/// the same cache entry. `race/` portfolios pass through verbatim.
fn canonical_sched(raw: &str) -> Result<String, String> {
    if raw.starts_with(RACE_PREFIX) {
        return Ok(raw.to_string());
    }
    SchedulerSpec::parse(raw)
        .map(|s| s.canonical())
        .map_err(|e| e.to_string())
}

fn supersteps_of(steps: &[u32]) -> u64 {
    steps.iter().max().map(|&m| m as u64 + 1).unwrap_or(0)
}

fn make_budget(shared: &Shared, job: &Job) -> Budget {
    let mut budget = Budget::default();
    budget.deadline = job
        .req
        .budget_ms
        .map(Duration::from_millis)
        .or_else(|| shared.cfg.default_budget_ms.map(Duration::from_millis));
    // A per-request deadline caps the solve budget at whatever is left of
    // it — an answer after the deadline is worthless to the client.
    if let Some(deadline) = job.deadline {
        let remaining = deadline.saturating_duration_since(Instant::now());
        budget.deadline = Some(budget.deadline.map_or(remaining, |b| b.min(remaining)));
    }
    budget.cancel = Some(job.cancel.clone());
    budget
}

/// Fetches `spec` from the instance cache or generates and caches it.
fn resolve_instance(
    shared: &Shared,
    instances: &InstanceRegistry,
    spec: &str,
    seed: Option<u64>,
) -> Result<Arc<Instance>, String> {
    if let Some(inst) = lock(&shared.icache).get(spec) {
        return Ok(inst);
    }
    let inst = instances
        .generate_one(spec, seed.unwrap_or(DEFAULT_SEED))
        .map_err(|e| e.to_string())?;
    let inst = Arc::new(inst);
    lock(&shared.icache).insert(inst.clone(), Some(spec));
    Ok(inst)
}

fn result_frame(id: Option<u64>, key: &ResultKey, start: Instant) -> Frame {
    Frame {
        kind: "result".to_string(),
        id,
        instance: Some(format!("{} @ {}", key.instance, key.machine)),
        sched: Some(key.sched.clone()),
        elapsed_us: Some(start.elapsed().as_micros().min(u64::MAX as u128) as u64),
        ..Frame::default()
    }
}

fn store_entry(key: &ResultKey, outcome: &SolveOutcome) -> CachedResult {
    CachedResult {
        instance: key.instance.clone(),
        machine: key.machine.clone(),
        sched: key.sched.clone(),
        cost: outcome.total(),
        procs: outcome.result.sched.procs().to_vec(),
        steps: outcome.result.sched.steps().to_vec(),
    }
}

fn handle_solve(
    shared: &Shared,
    registry: &Registry,
    instances: &InstanceRegistry,
    job: &Job,
) -> Frame {
    let start = Instant::now();
    let req = &job.req;
    let id = req.id;
    let Some(spec) = req.instance.as_deref() else {
        return Frame::error(id, codes::MISSING_FIELD, "solve requires \"instance\"");
    };
    let sched_raw = req.sched.as_deref().unwrap_or(&shared.cfg.default_sched);
    let sched_key = match canonical_sched(sched_raw) {
        Ok(k) => k,
        Err(e) => return Frame::error(id, codes::BAD_SPEC, e),
    };
    let inst = match resolve_instance(shared, instances, spec, req.seed) {
        Ok(i) => i,
        Err(e) => return Frame::error(id, codes::BAD_SPEC, e),
    };
    let Some(key) = ResultKey::from_name(&inst.name, &sched_key) else {
        return Frame::error(
            id,
            codes::BAD_SPEC,
            format!("instance name {:?} has no \" @ \" machine part", inst.name),
        );
    };

    if let Some(hit) = lock(&shared.store).get(&key) {
        shared.metrics.cache_hits.inc();
        let mut frame = result_frame(id, &key, start);
        frame.cost = Some(hit.cost);
        frame.supersteps = Some(supersteps_of(&hit.steps));
        frame.cache_hit = Some(true);
        return frame;
    }
    shared.metrics.cache_misses.inc();
    shared.metrics.cold_solves.inc();

    let scheduler = match registry.get_with(sched_raw, &shared.cfg.pipeline) {
        Ok(s) => s,
        Err(e) => return Frame::error(id, codes::BAD_SPEC, e.to_string()),
    };
    let budget = make_budget(shared, job);
    let stream = req.stream.unwrap_or(false);
    let out = job.out.clone();
    let observer = EventObserver::new(move |ev| send(&out, &Frame::event(id, ev)));
    let mut solve_req = SolveRequest::new(&inst.dag, &inst.machine).with_budget(budget);
    if stream {
        solve_req = solve_req.with_observer(&observer);
    }
    let outcome = scheduler.solve(&solve_req);

    lock(&shared.store).insert(store_entry(&key, &outcome));

    let mut frame = result_frame(id, &key, start);
    frame.cost = Some(outcome.total());
    frame.supersteps = Some(supersteps_of(outcome.result.sched.steps()));
    frame.cache_hit = Some(false);
    frame.budget_exhausted = Some(outcome.budget_exhausted);
    frame.stages = Some(outcome.stages.iter().map(StageReportWire::from).collect());
    frame
}

/// FNV-1a of the canonical JSON of the edit list — the suffix that names
/// an edited instance.
fn edits_fingerprint(edits: &[bsp_instance::DagEdit]) -> u64 {
    let text = serde::json::to_string(&edits.to_vec());
    crate::cache::fnv64(text.as_bytes())
}

fn handle_delta(shared: &Shared, registry: &Registry, job: &Job) -> Frame {
    let start = Instant::now();
    let req = &job.req;
    let id = req.id;
    let Some(base) = req.base.as_deref() else {
        return Frame::error(id, codes::MISSING_FIELD, "delta requires \"base\"");
    };
    let edits = match req.edits.as_ref() {
        Some(e) if !e.is_empty() => e,
        _ => {
            return Frame::error(
                id,
                codes::MISSING_FIELD,
                "delta requires a non-empty \"edits\" array",
            )
        }
    };
    let Some(base_inst) = lock(&shared.icache).get(base) else {
        return Frame::error(
            id,
            codes::UNKNOWN_BASE,
            format!("no cached instance {base:?}; solve it first"),
        );
    };
    let sched_raw = req.sched.as_deref().unwrap_or(&shared.cfg.default_sched);
    let sched_key = match canonical_sched(sched_raw) {
        Ok(k) => k,
        Err(e) => return Frame::error(id, codes::BAD_SPEC, e),
    };

    let edited = match apply_edits(&base_inst.dag, edits) {
        Ok(o) => o,
        Err(e) => return Frame::error(id, codes::BAD_EDIT, e.to_string()),
    };

    let Some((base_dag_spec, machine_spec)) = base_inst.name.split_once(" @ ") else {
        return Frame::error(
            id,
            codes::BAD_SPEC,
            format!("base name {:?} has no \" @ \" machine part", base_inst.name),
        );
    };
    let name = format!(
        "{base_dag_spec}+edit{:08x} @ {machine_spec}",
        edits_fingerprint(edits)
    );
    let inst = Arc::new(Instance {
        name,
        dag: edited.dag,
        machine: base_inst.machine.clone(),
    });
    let key = ResultKey::from_name(&inst.name, &sched_key).expect("derived name has machine part");

    // The same edit on the same base under the same scheduler is the same
    // problem — the derived key can itself hit the cache.
    if let Some(hit) = lock(&shared.store).get(&key) {
        shared.metrics.cache_hits.inc();
        lock(&shared.icache).insert(inst.clone(), req.label.as_deref());
        let mut frame = result_frame(id, &key, start);
        frame.cost = Some(hit.cost);
        frame.supersteps = Some(supersteps_of(&hit.steps));
        frame.cache_hit = Some(true);
        return frame;
    }
    shared.metrics.cache_misses.inc();

    // Warm start requires a cached schedule of the *base* under the same
    // scheduler (internal probe: no client-visible hit/miss counting).
    let base_sched = ResultKey::from_name(&base_inst.name, &sched_key).and_then(|k| {
        let store = lock(&shared.store);
        let cached = store.peek(&k)?;
        if cached.procs.len() == base_inst.dag.n() {
            Some(BspSchedule::from_parts(
                cached.procs.clone(),
                cached.steps.clone(),
            ))
        } else {
            None
        }
    });

    let budget = make_budget(shared, job);
    let stream = req.stream.unwrap_or(false);
    let out = job.out.clone();
    let observer = EventObserver::new(move |ev| send(&out, &Frame::event(id, ev)));

    let (outcome, warm, warm_init_cost) = match base_sched {
        Some(base_sched) => {
            shared.metrics.warm_solves.inc();
            let initial =
                warm_start_from_map(&inst.dag, &inst.machine, &base_sched, &edited.node_map);
            let mut solve_req = SolveRequest::new(&inst.dag, &inst.machine).with_budget(budget);
            if stream {
                solve_req = solve_req.with_observer(&observer);
            }
            let mut cx = SolveCx::new("warm", &solve_req);
            let r = solve_warm_pipeline(
                &inst.dag,
                &inst.machine,
                &initial,
                &shared.cfg.pipeline,
                &mut cx,
            );
            let init_cost = r.init_cost;
            let outcome = cx.finish(ScheduleResult::from_parts(
                &inst.dag,
                &inst.machine,
                r.sched,
                r.comm,
            ));
            (outcome, true, Some(init_cost))
        }
        None => {
            // No cached base schedule: fall back to a cold solve of the
            // edited instance.
            shared.metrics.cold_solves.inc();
            let scheduler = match registry.get_with(sched_raw, &shared.cfg.pipeline) {
                Ok(s) => s,
                Err(e) => return Frame::error(id, codes::BAD_SPEC, e.to_string()),
            };
            let mut solve_req = SolveRequest::new(&inst.dag, &inst.machine).with_budget(budget);
            if stream {
                solve_req = solve_req.with_observer(&observer);
            }
            (scheduler.solve(&solve_req), false, None)
        }
    };

    lock(&shared.store).insert(store_entry(&key, &outcome));
    lock(&shared.icache).insert(inst.clone(), req.label.as_deref());

    let mut frame = result_frame(id, &key, start);
    frame.cost = Some(outcome.total());
    frame.supersteps = Some(supersteps_of(outcome.result.sched.steps()));
    frame.cache_hit = Some(false);
    frame.warm = Some(warm);
    frame.warm_init_cost = warm_init_cost;
    frame.budget_exhausted = Some(outcome.budget_exhausted);
    frame.stages = Some(outcome.stages.iter().map(StageReportWire::from).collect());
    frame
}
