//! Scheduling as a service: a long-running daemon that solves BSP+NUMA
//! scheduling requests over a line-delimited JSON protocol, caches
//! results by canonical spec, and *warm-starts* re-solves of edited
//! instances from the cached schedule of their base.
//!
//! The service turns the workspace's spec-addressable registries into a
//! cache: an instance spec (`"spmv?n=500 @ bsp?p=4"`), its machine half
//! and a scheduler spec (`"pipeline/base?ilp=off"`) round-trip through
//! canonical forms, so the triple is a byte-stable key. A repeated
//! request is a hash lookup; an *edited* request (the delta API,
//! [`bsp_instance::DagEdit`]) transplants the cached schedule through the
//! edit's node map, repairs it, and hands the result to local search —
//! typically far cheaper than solving from scratch, and never worse than
//! its repaired starting point ([`bsp_core::solve_warm_pipeline`]).
//!
//! # Quick start
//!
//! ```
//! use bsp_serve::server::{start, ServeConfig};
//! use bsp_serve::client::{Client, SolveParams};
//!
//! let mut cfg = ServeConfig::default(); // binds 127.0.0.1:0
//! cfg.threads = 1;
//! let handle = start(cfg).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let mut params = SolveParams::default();
//! params.instance = "forkjoin?chains=2&depth=2&stages=2 @ bsp?p=2".to_string();
//! params.budget_ms = Some(200);
//! let first = client.solve(&params).unwrap();
//! assert_eq!(first.result.cache_hit, Some(false));
//! let again = client.solve(&params).unwrap();
//! assert_eq!(again.result.cache_hit, Some(true));
//! assert_eq!(again.result.cost, first.result.cost);
//!
//! client.shutdown().unwrap();
//! handle.wait();
//! ```
//!
//! # Protocol
//!
//! One JSON object per line in both directions; see [`protocol`] for the
//! message shapes, [`protocol::codes`] for the typed error codes, and the
//! README's "Service" section for the full grammar and wire examples.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub(crate) mod sidecar;

pub use cache::{CachedResult, InstanceCache, ResultKey, ResultStore, StoreStats};
pub use client::{Client, ClientError, DeltaParams, Response, SolveParams};
pub use protocol::{codes, metric_wires, Frame, MetricWire, Request, ServerStats, MAX_LINE};
pub use queue::{JobQueue, PushError};
pub use server::{shutdown_on_sigint, start, ServeConfig, ServerHandle};
