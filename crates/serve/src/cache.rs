//! The spec-keyed result store and the in-memory instance cache.
//!
//! A solve result is addressed by the canonical triple
//! `(instance_spec, machine_spec, sched_spec)` — exactly the strings the
//! registries round-trip through [`spec()`][bsp_schedule::SchedulerSpec],
//! so two requests naming the same problem in different parameter order
//! land on the same entry. The store persists as a line-oriented,
//! per-entry checksummed file ([`STORE_SCHEMA`], "store-v2") and
//! survives server restarts — including restarts after a crash mid-write:
//! every entry line carries its own byte length and FNV-1a 64 checksum,
//! so truncated or bit-flipped lines are quarantined to `<path>.corrupt`
//! (and counted in `bsp_store_corrupt_total`) while every intact entry
//! keeps being served. Legacy single-JSON-document v1 files are migrated
//! transparently on load and rewritten as v2 on the next save.
//!
//! The [`InstanceCache`] keeps generated (and delta-edited) instances in
//! memory so `delta` requests can reference them by name and chain:
//! an edited instance is cached under its derived name and can itself be
//! the base of the next edit.
//!
//! ```
//! use bsp_serve::cache::ResultKey;
//!
//! let key = ResultKey::from_name("spmv?n=500&q=0.25 @ bsp?p=4&g=2", "etf").unwrap();
//! assert_eq!(key.machine, "bsp?p=4&g=2");
//! assert_eq!(key.composite(), "spmv?n=500&q=0.25 @ bsp?p=4&g=2 :: etf");
//! ```

use bsp_instance::Instance;
use serde::{json, Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Schema tag of the persisted store file: the first line of a v2 file.
/// Every following line frames one entry as
/// `<json-byte-len> <fnv64-hex> <entry-json>`.
pub const STORE_SCHEMA: &str = "bsp-serve/store-v2";

/// Schema tag of the legacy single-JSON-document format, still accepted
/// (and migrated) on load.
pub const STORE_SCHEMA_V1: &str = "bsp-serve/store-v1";

/// FNV-1a 64-bit hash — the per-entry store checksum, also reused for
/// instance fingerprints elsewhere in the crate.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Process-global counter of quarantined store entries.
fn store_corrupt_metric() -> &'static bsp_obs::Counter {
    static METRIC: std::sync::OnceLock<bsp_obs::Counter> = std::sync::OnceLock::new();
    METRIC.get_or_init(|| bsp_obs::global().counter("bsp_store_corrupt_total", &[]))
}

/// Raises any injected fault for a store I/O site: `io_err`/`drop` become
/// an `Err` the caller surfaces, `panic`/`slow` act in place.
fn store_fault(site: bsp_faults::Site, what: &str) -> Result<(), String> {
    if let Some(plan) = bsp_faults::current() {
        match plan.fault_at(site) {
            Some(bsp_faults::Fault::IoErr) | Some(bsp_faults::Fault::Drop) => {
                return Err(format!("injected fault: io_err during {what}"));
            }
            Some(bsp_faults::Fault::Panic) => panic!("injected fault: panic during {what}"),
            Some(bsp_faults::Fault::Slow(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms))
            }
            None => {}
        }
    }
    Ok(())
}

/// The canonical address of one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// DAG half of the instance spec (`"spmv?n=500"`).
    pub instance: String,
    /// Machine half of the instance spec (`"bsp?p=4&g=2&l=5"`).
    pub machine: String,
    /// Canonical scheduler spec (`"pipeline/base?ilp=off"`).
    pub sched: String,
}

impl ResultKey {
    /// Builds a key from a full instance name (`"dag @ machine"`) and a
    /// canonical scheduler spec. Returns `None` if `name` has no
    /// `" @ "` separator.
    pub fn from_name(name: &str, sched: &str) -> Option<ResultKey> {
        let (dag, machine) = name.split_once(" @ ")?;
        Some(ResultKey {
            instance: dag.to_string(),
            machine: machine.to_string(),
            sched: sched.to_string(),
        })
    }

    /// The flat string form used as the persisted map key.
    pub fn composite(&self) -> String {
        format!("{} @ {} :: {}", self.instance, self.machine, self.sched)
    }
}

/// One cached schedule: the assignment vectors plus its cost, in a form
/// that serializes directly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedResult {
    /// DAG half of the instance spec.
    pub instance: String,
    /// Machine half of the instance spec.
    pub machine: String,
    /// Canonical scheduler spec.
    pub sched: String,
    /// Final schedule cost.
    pub cost: u64,
    /// Node → processor assignment.
    pub procs: Vec<u32>,
    /// Node → superstep assignment.
    pub steps: Vec<u32>,
}

impl CachedResult {
    /// The key this entry lives under.
    pub fn key(&self) -> ResultKey {
        ResultKey {
            instance: self.instance.clone(),
            machine: self.machine.clone(),
            sched: self.sched.clone(),
        }
    }
}

/// The persisted file shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreFile {
    schema: String,
    entries: Vec<CachedResult>,
}

/// Hit/miss counters of a [`ResultStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently stored.
    pub len: u64,
    /// Entries evicted by the LRU cap.
    pub evictions: u64,
    /// Corrupt/truncated entries quarantined at load time.
    pub corrupt: u64,
}

/// The spec-keyed result store. Not internally synchronized — the server
/// wraps it in a `Mutex`. An optional LRU entry cap (`--store-cap`)
/// bounds its size: recency is tracked per lookup/insert and the
/// least-recently-used entry is dropped when an insert overflows the cap.
#[derive(Debug, Default)]
pub struct ResultStore {
    map: HashMap<String, CachedResult>,
    /// Entry cap; `None` = unbounded (the default).
    cap: Option<usize>,
    /// Logical clock for LRU recency (ticks on get/insert).
    tick: u64,
    /// Key → last-used tick.
    recency: HashMap<String, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    corrupt: u64,
    dirty: bool,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        ResultStore::default()
    }

    /// Sets the LRU entry cap (`None` = unbounded), evicting down to it
    /// immediately if the store already overflows.
    pub fn set_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.enforce_cap();
    }

    /// The configured entry cap.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    fn touch(&mut self, key: &str) {
        self.tick += 1;
        self.recency.insert(key.to_string(), self.tick);
    }

    /// Evicts least-recently-used entries until the cap holds. Entries
    /// never looked up rank oldest (tick 0); composite-key order breaks
    /// ties for determinism.
    fn enforce_cap(&mut self) {
        let Some(cap) = self.cap else { return };
        while self.map.len() > cap {
            let victim = self
                .map
                .keys()
                .min_by_key(|k| (self.recency.get(*k).copied().unwrap_or(0), (*k).clone()))
                .cloned()
                .expect("len > cap ≥ 0 implies non-empty");
            self.map.remove(&victim);
            self.recency.remove(&victim);
            self.evictions += 1;
            self.dirty = true;
        }
    }

    /// Parses one v2 entry line (`<len> <fnv64-hex> <json>`), returning
    /// `None` for truncated, bit-flipped or otherwise malformed lines.
    fn parse_v2_line(line: &str) -> Option<CachedResult> {
        let (len_s, rest) = line.split_once(' ')?;
        let (sum_s, body) = rest.split_once(' ')?;
        let len: usize = len_s.parse().ok()?;
        let sum = u64::from_str_radix(sum_s, 16).ok()?;
        if body.len() != len || fnv64(body.as_bytes()) != sum {
            return None;
        }
        json::from_str::<CachedResult>(body).ok()
    }

    /// Loads a store from `path`. A missing file yields an empty store.
    /// Corrupt or truncated content never aborts startup: v2 entry lines
    /// that fail their length/checksum/JSON validation — and v1 documents
    /// that fail to parse — are appended verbatim to `<path>.corrupt`,
    /// counted in [`StoreStats::corrupt`] and `bsp_store_corrupt_total`,
    /// while every intact entry is served. Legacy v1 documents that *do*
    /// parse are migrated in memory (the store comes back dirty so the
    /// next save rewrites them as v2).
    pub fn load(path: &Path) -> Result<Self, String> {
        store_fault(bsp_faults::Site::StoreLoad, "store load")?;
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ResultStore::new()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        // Lossy decode: a bit-flip can make a line invalid UTF-8, and
        // that line must land in quarantine (the replacement characters
        // fail its checksum), not abort the whole load.
        let text = String::from_utf8_lossy(&bytes);
        let mut store = ResultStore::new();
        let mut quarantined: Vec<&str> = Vec::new();
        let mut lines = text.lines();
        match lines.next() {
            None => {}
            Some(header) if header == STORE_SCHEMA => {
                for line in lines {
                    if line.is_empty() {
                        continue;
                    }
                    match ResultStore::parse_v2_line(line) {
                        Some(entry) => {
                            store.map.insert(entry.key().composite(), entry);
                        }
                        None => quarantined.push(line),
                    }
                }
            }
            Some(header) if header.trim_start().starts_with('{') => {
                match json::from_str::<StoreFile>(&text) {
                    Ok(file) if file.schema == STORE_SCHEMA_V1 => {
                        for entry in file.entries {
                            store.map.insert(entry.key().composite(), entry);
                        }
                        store.dirty = true; // rewrite as v2 on the next save
                    }
                    _ => quarantined.push(text.trim_end()),
                }
            }
            Some(_) => quarantined.push(text.trim_end()),
        }
        if !quarantined.is_empty() {
            store.corrupt = quarantined.len() as u64;
            store_corrupt_metric().add(store.corrupt);
            let qpath = format!("{}.corrupt", path.display());
            let mut blob = quarantined.join("\n");
            blob.push('\n');
            use std::io::Write;
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&qpath)
            {
                Ok(mut f) => {
                    let _ = f.write_all(blob.as_bytes());
                }
                Err(e) => return Err(format!("{qpath}: {e}")),
            }
        }
        Ok(store)
    }

    /// Writes the store to `path` in v2 format — atomically (temp file +
    /// rename) and durably (fsync of the temp file before the rename, of
    /// the parent directory after) — then clears the dirty flag. Entries
    /// are sorted by key for byte-stable output.
    pub fn save(&mut self, path: &Path) -> Result<(), String> {
        store_fault(bsp_faults::Site::StoreSave, "store save")?;
        let mut entries: Vec<&CachedResult> = self.map.values().collect();
        entries.sort_by_key(|e| e.key().composite());
        let mut out = String::with_capacity(64 + entries.len() * 128);
        out.push_str(STORE_SCHEMA);
        out.push('\n');
        for entry in entries {
            let body = json::to_string(entry);
            out.push_str(&format!(
                "{} {:016x} {body}\n",
                body.len(),
                fnv64(body.as_bytes())
            ));
        }
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| format!("{}: {e}", tmp.display()))?;
            f.write_all(out.as_bytes())
                .map_err(|e| format!("{}: {e}", tmp.display()))?;
            f.sync_all()
                .map_err(|e| format!("{}: {e}", tmp.display()))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                // Make the rename itself durable; best-effort on platforms
                // where directories cannot be fsynced.
                if let Ok(dir) = std::fs::File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    /// Looks up `key`, counting the hit or miss and refreshing the
    /// entry's LRU recency.
    pub fn get(&mut self, key: &ResultKey) -> Option<CachedResult> {
        let composite = key.composite();
        match self.map.get(&composite) {
            Some(e) => {
                let e = e.clone();
                self.hits += 1;
                self.touch(&composite);
                Some(e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching the counters (internal warm-start
    /// probes are not client-visible cache traffic).
    pub fn peek(&self, key: &ResultKey) -> Option<&CachedResult> {
        self.map.get(&key.composite())
    }

    /// Inserts (or replaces) an entry, marks the store dirty and evicts
    /// the least-recently-used entry if the cap overflows.
    pub fn insert(&mut self, entry: CachedResult) {
        let composite = entry.key().composite();
        self.map.insert(composite.clone(), entry);
        self.touch(&composite);
        self.dirty = true;
        self.enforce_cap();
    }

    /// Whether there are unsaved changes.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len() as u64,
            evictions: self.evictions,
            corrupt: self.corrupt,
        }
    }
}

/// In-memory cache of generated and delta-edited instances, addressed by
/// name. Raw request specs are remembered as aliases of the canonical
/// name, so `"spmv?q=0.3&n=100 @ bsp?p=4"` and its canonical ordering
/// resolve to the same entry.
#[derive(Debug, Default)]
pub struct InstanceCache {
    map: HashMap<String, Arc<Instance>>,
    aliases: HashMap<String, String>,
}

impl InstanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        InstanceCache::default()
    }

    /// Resolves `name` through the alias table, then the cache.
    pub fn get(&self, name: &str) -> Option<Arc<Instance>> {
        let canonical = self.aliases.get(name).map(String::as_str).unwrap_or(name);
        self.map.get(canonical).cloned()
    }

    /// Caches `instance` under its own name; `alias` (the raw request
    /// spec, a delta label) additionally points at it.
    pub fn insert(&mut self, instance: Arc<Instance>, alias: Option<&str>) {
        if let Some(alias) = alias {
            if alias != instance.name {
                self.aliases
                    .insert(alias.to_string(), instance.name.clone());
            }
        }
        self.map.insert(instance.name.clone(), instance);
    }

    /// Number of distinct cached instances.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(instance: &str, sched: &str, cost: u64) -> CachedResult {
        CachedResult {
            instance: instance.to_string(),
            machine: "bsp?p=4".to_string(),
            sched: sched.to_string(),
            cost,
            procs: vec![0, 1, 2],
            steps: vec![0, 0, 1],
        }
    }

    #[test]
    fn store_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("bsp-serve-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let _ = std::fs::remove_file(&path);

        let mut store = ResultStore::new();
        store.insert(entry("spmv?n=100", "pipeline/base?ilp=off", 42));
        store.insert(entry("grid?side=8", "etf", 99));
        assert!(store.is_dirty());
        store.save(&path).unwrap();
        assert!(!store.is_dirty());

        let mut loaded = ResultStore::load(&path).unwrap();
        let key = ResultKey {
            instance: "spmv?n=100".to_string(),
            machine: "bsp?p=4".to_string(),
            sched: "pipeline/base?ilp=off".to_string(),
        };
        let got = loaded.get(&key).unwrap();
        assert_eq!(got.cost, 42);
        assert_eq!(loaded.stats().hits, 1);
        assert_eq!(loaded.stats().len, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_loads_empty_and_corrupt_content_is_quarantined() {
        let dir = std::env::temp_dir().join("bsp-serve-cache-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("absent.json");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(ResultStore::load(&missing).unwrap().stats().len, 0);

        // A malformed JSON-looking file no longer aborts startup: the
        // whole document is quarantined and the store comes back empty.
        let corrupt = dir.join("corrupt.json");
        let qpath = format!("{}.corrupt", corrupt.display());
        let _ = std::fs::remove_file(&qpath);
        std::fs::write(&corrupt, "{not json").unwrap();
        let store = ResultStore::load(&corrupt).unwrap();
        assert_eq!(store.stats().len, 0);
        assert_eq!(store.stats().corrupt, 1);
        assert!(std::fs::read_to_string(&qpath)
            .unwrap()
            .contains("{not json"));
        let _ = std::fs::remove_file(&corrupt);
        let _ = std::fs::remove_file(&qpath);
    }

    #[test]
    fn v2_bad_lines_are_quarantined_and_good_lines_served() {
        let dir = std::env::temp_dir().join("bsp-serve-cache-test-v2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let qpath = format!("{}.corrupt", path.display());
        let _ = std::fs::remove_file(&qpath);

        let mut store = ResultStore::new();
        store.insert(entry("good-a", "etf", 1));
        store.insert(entry("good-b", "etf", 2));
        store.save(&path).unwrap();

        // Corrupt the file: flip a byte in the first entry line and append
        // a truncated line.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        assert_eq!(lines.len(), 3, "header + 2 entries");
        let flipped = lines[1].replace("good-a", "gXod-a");
        assert_ne!(flipped, lines[1]);
        lines[1] = flipped;
        lines.push("999 0123456789abcdef {\"trunc".to_string());
        std::fs::write(&path, lines.join("\n")).unwrap();

        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.stats().len, 1, "intact entry survives");
        assert_eq!(loaded.stats().corrupt, 2, "flipped + truncated");
        assert!(loaded.peek(&entry("good-b", "etf", 2).key()).is_some());
        let q = std::fs::read_to_string(&qpath).unwrap();
        assert!(q.contains("gXod-a") && q.contains("trunc"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&qpath);
    }

    #[test]
    fn v1_document_migrates_to_v2_on_next_save() {
        let dir = std::env::temp_dir().join("bsp-serve-cache-test-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");

        let v1 = StoreFile {
            schema: STORE_SCHEMA_V1.to_string(),
            entries: vec![entry("legacy", "etf", 7)],
        };
        std::fs::write(&path, json::to_string(&v1)).unwrap();

        let mut loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.stats().len, 1);
        assert_eq!(loaded.stats().corrupt, 0);
        assert!(loaded.is_dirty(), "migration marks the store dirty");
        loaded.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(STORE_SCHEMA));
        assert_eq!(ResultStore::load(&path).unwrap().stats().len, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let mut store = ResultStore::new();
        store.set_cap(Some(2));
        store.insert(entry("a", "etf", 1));
        store.insert(entry("b", "etf", 2));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(store.get(&entry("a", "etf", 1).key()).is_some());
        store.insert(entry("c", "etf", 3));
        assert_eq!(store.stats().len, 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.peek(&entry("b", "etf", 2).key()).is_none());
        assert!(store.peek(&entry("a", "etf", 1).key()).is_some());
        assert!(store.peek(&entry("c", "etf", 3).key()).is_some());

        // Shrinking the cap evicts down immediately.
        store.set_cap(Some(1));
        assert_eq!(store.stats().len, 1);
        assert_eq!(store.stats().evictions, 2);
        // Unbounded again: inserts accumulate freely.
        store.set_cap(None);
        store.insert(entry("d", "etf", 4));
        store.insert(entry("e", "etf", 5));
        assert_eq!(store.stats().len, 3);
    }

    #[test]
    fn key_from_name_splits_at_separator() {
        let key = ResultKey::from_name("spmv?n=5 @ bsp?p=2&g=1", "etf").unwrap();
        assert_eq!(key.instance, "spmv?n=5");
        assert_eq!(key.machine, "bsp?p=2&g=1");
        assert!(ResultKey::from_name("no-separator", "etf").is_none());
    }

    #[test]
    fn instance_cache_resolves_aliases() {
        use bsp_dag::DagBuilder;
        use bsp_model::BspParams;
        let mut b = DagBuilder::new();
        b.add_node(1, 1);
        let inst = Arc::new(Instance {
            name: "canonical @ bsp?p=2".to_string(),
            dag: b.build().unwrap(),
            machine: BspParams::new(2, 1, 1),
        });
        let mut cache = InstanceCache::new();
        cache.insert(inst.clone(), Some("raw-alias"));
        assert!(cache.get("canonical @ bsp?p=2").is_some());
        assert!(cache.get("raw-alias").is_some());
        assert!(cache.get("unknown").is_none());
        assert_eq!(cache.len(), 1);
    }
}
