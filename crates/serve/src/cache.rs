//! The spec-keyed result store and the in-memory instance cache.
//!
//! A solve result is addressed by the canonical triple
//! `(instance_spec, machine_spec, sched_spec)` — exactly the strings the
//! registries round-trip through [`spec()`][bsp_schedule::SchedulerSpec],
//! so two requests naming the same problem in different parameter order
//! land on the same entry. The store persists as a single JSON document
//! ([`STORE_SCHEMA`]) and survives server restarts.
//!
//! The [`InstanceCache`] keeps generated (and delta-edited) instances in
//! memory so `delta` requests can reference them by name and chain:
//! an edited instance is cached under its derived name and can itself be
//! the base of the next edit.
//!
//! ```
//! use bsp_serve::cache::ResultKey;
//!
//! let key = ResultKey::from_name("spmv?n=500&q=0.25 @ bsp?p=4&g=2", "etf").unwrap();
//! assert_eq!(key.machine, "bsp?p=4&g=2");
//! assert_eq!(key.composite(), "spmv?n=500&q=0.25 @ bsp?p=4&g=2 :: etf");
//! ```

use bsp_instance::Instance;
use serde::{json, Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Schema tag of the persisted store file.
pub const STORE_SCHEMA: &str = "bsp-serve/store-v1";

/// The canonical address of one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// DAG half of the instance spec (`"spmv?n=500"`).
    pub instance: String,
    /// Machine half of the instance spec (`"bsp?p=4&g=2&l=5"`).
    pub machine: String,
    /// Canonical scheduler spec (`"pipeline/base?ilp=off"`).
    pub sched: String,
}

impl ResultKey {
    /// Builds a key from a full instance name (`"dag @ machine"`) and a
    /// canonical scheduler spec. Returns `None` if `name` has no
    /// `" @ "` separator.
    pub fn from_name(name: &str, sched: &str) -> Option<ResultKey> {
        let (dag, machine) = name.split_once(" @ ")?;
        Some(ResultKey {
            instance: dag.to_string(),
            machine: machine.to_string(),
            sched: sched.to_string(),
        })
    }

    /// The flat string form used as the persisted map key.
    pub fn composite(&self) -> String {
        format!("{} @ {} :: {}", self.instance, self.machine, self.sched)
    }
}

/// One cached schedule: the assignment vectors plus its cost, in a form
/// that serializes directly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedResult {
    /// DAG half of the instance spec.
    pub instance: String,
    /// Machine half of the instance spec.
    pub machine: String,
    /// Canonical scheduler spec.
    pub sched: String,
    /// Final schedule cost.
    pub cost: u64,
    /// Node → processor assignment.
    pub procs: Vec<u32>,
    /// Node → superstep assignment.
    pub steps: Vec<u32>,
}

impl CachedResult {
    /// The key this entry lives under.
    pub fn key(&self) -> ResultKey {
        ResultKey {
            instance: self.instance.clone(),
            machine: self.machine.clone(),
            sched: self.sched.clone(),
        }
    }
}

/// The persisted file shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreFile {
    schema: String,
    entries: Vec<CachedResult>,
}

/// Hit/miss counters of a [`ResultStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently stored.
    pub len: u64,
    /// Entries evicted by the LRU cap.
    pub evictions: u64,
}

/// The spec-keyed result store. Not internally synchronized — the server
/// wraps it in a `Mutex`. An optional LRU entry cap (`--store-cap`)
/// bounds its size: recency is tracked per lookup/insert and the
/// least-recently-used entry is dropped when an insert overflows the cap.
#[derive(Debug, Default)]
pub struct ResultStore {
    map: HashMap<String, CachedResult>,
    /// Entry cap; `None` = unbounded (the default).
    cap: Option<usize>,
    /// Logical clock for LRU recency (ticks on get/insert).
    tick: u64,
    /// Key → last-used tick.
    recency: HashMap<String, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    dirty: bool,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        ResultStore::default()
    }

    /// Sets the LRU entry cap (`None` = unbounded), evicting down to it
    /// immediately if the store already overflows.
    pub fn set_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.enforce_cap();
    }

    /// The configured entry cap.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    fn touch(&mut self, key: &str) {
        self.tick += 1;
        self.recency.insert(key.to_string(), self.tick);
    }

    /// Evicts least-recently-used entries until the cap holds. Entries
    /// never looked up rank oldest (tick 0); composite-key order breaks
    /// ties for determinism.
    fn enforce_cap(&mut self) {
        let Some(cap) = self.cap else { return };
        while self.map.len() > cap {
            let victim = self
                .map
                .keys()
                .min_by_key(|k| (self.recency.get(*k).copied().unwrap_or(0), (*k).clone()))
                .cloned()
                .expect("len > cap ≥ 0 implies non-empty");
            self.map.remove(&victim);
            self.recency.remove(&victim);
            self.evictions += 1;
            self.dirty = true;
        }
    }

    /// Loads a store from `path`. A missing file yields an empty store;
    /// a present-but-malformed file is an error (the server refuses to
    /// silently discard a corrupt cache).
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ResultStore::new()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let file: StoreFile =
            json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if file.schema != STORE_SCHEMA {
            return Err(format!(
                "{}: schema {:?}, expected {STORE_SCHEMA:?}",
                path.display(),
                file.schema
            ));
        }
        let mut store = ResultStore::new();
        for entry in file.entries {
            store.map.insert(entry.key().composite(), entry);
        }
        Ok(store)
    }

    /// Writes the store to `path` (atomically: temp file + rename) and
    /// clears the dirty flag. Entries are sorted by key for byte-stable
    /// output.
    pub fn save(&mut self, path: &Path) -> Result<(), String> {
        let mut entries: Vec<&CachedResult> = self.map.values().collect();
        entries.sort_by_key(|e| e.key().composite());
        let file = StoreFile {
            schema: STORE_SCHEMA.to_string(),
            entries: entries.into_iter().cloned().collect(),
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json::to_string(&file))
            .map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
        self.dirty = false;
        Ok(())
    }

    /// Looks up `key`, counting the hit or miss and refreshing the
    /// entry's LRU recency.
    pub fn get(&mut self, key: &ResultKey) -> Option<CachedResult> {
        let composite = key.composite();
        match self.map.get(&composite) {
            Some(e) => {
                let e = e.clone();
                self.hits += 1;
                self.touch(&composite);
                Some(e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching the counters (internal warm-start
    /// probes are not client-visible cache traffic).
    pub fn peek(&self, key: &ResultKey) -> Option<&CachedResult> {
        self.map.get(&key.composite())
    }

    /// Inserts (or replaces) an entry, marks the store dirty and evicts
    /// the least-recently-used entry if the cap overflows.
    pub fn insert(&mut self, entry: CachedResult) {
        let composite = entry.key().composite();
        self.map.insert(composite.clone(), entry);
        self.touch(&composite);
        self.dirty = true;
        self.enforce_cap();
    }

    /// Whether there are unsaved changes.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len() as u64,
            evictions: self.evictions,
        }
    }
}

/// In-memory cache of generated and delta-edited instances, addressed by
/// name. Raw request specs are remembered as aliases of the canonical
/// name, so `"spmv?q=0.3&n=100 @ bsp?p=4"` and its canonical ordering
/// resolve to the same entry.
#[derive(Debug, Default)]
pub struct InstanceCache {
    map: HashMap<String, Arc<Instance>>,
    aliases: HashMap<String, String>,
}

impl InstanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        InstanceCache::default()
    }

    /// Resolves `name` through the alias table, then the cache.
    pub fn get(&self, name: &str) -> Option<Arc<Instance>> {
        let canonical = self.aliases.get(name).map(String::as_str).unwrap_or(name);
        self.map.get(canonical).cloned()
    }

    /// Caches `instance` under its own name; `alias` (the raw request
    /// spec, a delta label) additionally points at it.
    pub fn insert(&mut self, instance: Arc<Instance>, alias: Option<&str>) {
        if let Some(alias) = alias {
            if alias != instance.name {
                self.aliases
                    .insert(alias.to_string(), instance.name.clone());
            }
        }
        self.map.insert(instance.name.clone(), instance);
    }

    /// Number of distinct cached instances.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(instance: &str, sched: &str, cost: u64) -> CachedResult {
        CachedResult {
            instance: instance.to_string(),
            machine: "bsp?p=4".to_string(),
            sched: sched.to_string(),
            cost,
            procs: vec![0, 1, 2],
            steps: vec![0, 0, 1],
        }
    }

    #[test]
    fn store_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("bsp-serve-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let _ = std::fs::remove_file(&path);

        let mut store = ResultStore::new();
        store.insert(entry("spmv?n=100", "pipeline/base?ilp=off", 42));
        store.insert(entry("grid?side=8", "etf", 99));
        assert!(store.is_dirty());
        store.save(&path).unwrap();
        assert!(!store.is_dirty());

        let mut loaded = ResultStore::load(&path).unwrap();
        let key = ResultKey {
            instance: "spmv?n=100".to_string(),
            machine: "bsp?p=4".to_string(),
            sched: "pipeline/base?ilp=off".to_string(),
        };
        let got = loaded.get(&key).unwrap();
        assert_eq!(got.cost, 42);
        assert_eq!(loaded.stats().hits, 1);
        assert_eq!(loaded.stats().len, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_loads_empty_but_corrupt_file_errors() {
        let dir = std::env::temp_dir().join("bsp-serve-cache-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("absent.json");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(ResultStore::load(&missing).unwrap().stats().len, 0);

        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{not json").unwrap();
        assert!(ResultStore::load(&corrupt).is_err());
        let _ = std::fs::remove_file(&corrupt);
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let mut store = ResultStore::new();
        store.set_cap(Some(2));
        store.insert(entry("a", "etf", 1));
        store.insert(entry("b", "etf", 2));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(store.get(&entry("a", "etf", 1).key()).is_some());
        store.insert(entry("c", "etf", 3));
        assert_eq!(store.stats().len, 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.peek(&entry("b", "etf", 2).key()).is_none());
        assert!(store.peek(&entry("a", "etf", 1).key()).is_some());
        assert!(store.peek(&entry("c", "etf", 3).key()).is_some());

        // Shrinking the cap evicts down immediately.
        store.set_cap(Some(1));
        assert_eq!(store.stats().len, 1);
        assert_eq!(store.stats().evictions, 2);
        // Unbounded again: inserts accumulate freely.
        store.set_cap(None);
        store.insert(entry("d", "etf", 4));
        store.insert(entry("e", "etf", 5));
        assert_eq!(store.stats().len, 3);
    }

    #[test]
    fn key_from_name_splits_at_separator() {
        let key = ResultKey::from_name("spmv?n=5 @ bsp?p=2&g=1", "etf").unwrap();
        assert_eq!(key.instance, "spmv?n=5");
        assert_eq!(key.machine, "bsp?p=2&g=1");
        assert!(ResultKey::from_name("no-separator", "etf").is_none());
    }

    #[test]
    fn instance_cache_resolves_aliases() {
        use bsp_dag::DagBuilder;
        use bsp_model::BspParams;
        let mut b = DagBuilder::new();
        b.add_node(1, 1);
        let inst = Arc::new(Instance {
            name: "canonical @ bsp?p=2".to_string(),
            dag: b.build().unwrap(),
            machine: BspParams::new(2, 1, 1),
        });
        let mut cache = InstanceCache::new();
        cache.insert(inst.clone(), Some("raw-alias"));
        assert!(cache.get("canonical @ bsp?p=2").is_some());
        assert!(cache.get("raw-alias").is_some());
        assert!(cache.get("unknown").is_none());
        assert_eq!(cache.len(), 1);
    }
}
