//! A small blocking client for the JSONL protocol — used by the test
//! suite, the CI smoke job and the `loadgen` benchmark driver.

use crate::protocol::{parse_line, to_line, Frame, MetricWire, Request, ServerStats, MAX_LINE};
use crate::protocol::{read_line_capped, LineRead};
use bsp_instance::trace::ArrivalEvent;
use bsp_instance::DagEdit;
use bsp_schedule::events::SolveEvent;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-response).
    Io(String),
    /// The server sent something the client cannot parse.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// One of [`codes`](crate::protocol::codes).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
        }
    }
}

/// A solve result plus the progress events streamed before it.
#[derive(Debug)]
pub struct Response {
    /// The final `kind: "result"` frame.
    pub result: Frame,
    /// Progress events, in arrival order (empty unless streaming).
    pub events: Vec<SolveEvent>,
}

/// Parameters of a `solve` call.
#[derive(Debug, Clone, Default)]
pub struct SolveParams {
    /// Full instance spec (`"spmv?n=500 @ bsp?p=4"`). Required.
    pub instance: String,
    /// Scheduler spec; `None` = server default.
    pub sched: Option<String>,
    /// Wall-clock budget in ms; `None` = server default.
    pub budget_ms: Option<u64>,
    /// Instance-generation seed; `None` = registry default.
    pub seed: Option<u64>,
    /// Ask for streamed progress events.
    pub stream: bool,
}

/// Parameters of a `delta` call.
#[derive(Debug, Clone, Default)]
pub struct DeltaParams {
    /// Name of the cached base instance. Required.
    pub base: String,
    /// The edits to apply. Required, non-empty.
    pub edits: Vec<DagEdit>,
    /// Scheduler spec; `None` = server default.
    pub sched: Option<String>,
    /// Wall-clock budget in ms; `None` = server default.
    pub budget_ms: Option<u64>,
    /// Optional alias for the edited instance.
    pub label: Option<String>,
    /// Ask for streamed progress events.
    pub stream: bool,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?,
        );
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// Sets (or clears) the socket read timeout — useful in tests that
    /// must not hang on a wedged server.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Sends `req` (with a fresh correlation id) and collects frames
    /// until the matching terminal frame arrives. Event frames for the id
    /// are accumulated; frames for *other* ids are dropped (this blocking
    /// client never has two requests in flight).
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        req.id = Some(id);
        let line = to_line(&req);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;

        let mut events = Vec::new();
        loop {
            let line = match read_line_capped(&mut self.reader, MAX_LINE)
                .map_err(|e| ClientError::Io(e.to_string()))?
            {
                LineRead::Line(l) => l,
                LineRead::Eof => {
                    return Err(ClientError::Io("connection closed mid-response".into()))
                }
                LineRead::Oversize => {
                    return Err(ClientError::Protocol("oversize response line".into()))
                }
            };
            let frame: Frame =
                parse_line(&line).map_err(|e| ClientError::Protocol(e.to_string()))?;
            // Typed errors without an id (bad_json, oversize_line) also
            // terminate this request: nothing else is coming for it.
            if frame.id != Some(id) && frame.id.is_some() {
                continue;
            }
            match frame.kind.as_str() {
                "event" => {
                    if let Some(ev) = frame.event {
                        events.push(ev);
                    }
                }
                "error" => {
                    return Err(ClientError::Server {
                        code: frame.error.unwrap_or_else(|| "unknown".to_string()),
                        message: frame.message.unwrap_or_default(),
                    })
                }
                _ => {
                    return Ok(Response {
                        result: frame,
                        events,
                    })
                }
            }
        }
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let resp = self.request(Request::new("ping"))?;
        if resp.result.kind == "pong" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected pong, got {:?}",
                resp.result.kind
            )))
        }
    }

    /// Fetches server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let resp = self.request(Request::new("stats"))?;
        resp.result
            .stats
            .ok_or_else(|| ClientError::Protocol("stats frame without stats".into()))
    }

    /// Requests server statistics together with the flat metrics
    /// snapshot (process-wide counters and gauges) the stats frame
    /// carries — programmatic access to the same numbers the sidecar's
    /// `/metrics` endpoint exposes.
    pub fn stats_with_metrics(&mut self) -> Result<(ServerStats, Vec<MetricWire>), ClientError> {
        let resp = self.request(Request::new("stats"))?;
        let stats = resp
            .result
            .stats
            .ok_or_else(|| ClientError::Protocol("stats frame without stats".into()))?;
        Ok((stats, resp.result.metrics.unwrap_or_default()))
    }

    /// Requests a graceful server shutdown.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let resp = self.request(Request::new("shutdown"))?;
        if resp.result.kind == "bye" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected bye, got {:?}",
                resp.result.kind
            )))
        }
    }

    /// Solves an instance spec (possibly served from the cache).
    pub fn solve(&mut self, params: &SolveParams) -> Result<Response, ClientError> {
        let mut req = Request::new("solve");
        req.instance = Some(params.instance.clone());
        req.sched = params.sched.clone();
        req.budget_ms = params.budget_ms;
        req.seed = params.seed;
        req.stream = if params.stream { Some(true) } else { None };
        self.request(req)
    }

    /// Re-solves an edited instance, warm-starting when the server has
    /// the base schedule cached.
    pub fn delta(&mut self, params: &DeltaParams) -> Result<Response, ClientError> {
        let mut req = Request::new("delta");
        req.base = Some(params.base.clone());
        req.edits = Some(params.edits.clone());
        req.sched = params.sched.clone();
        req.budget_ms = params.budget_ms;
        req.label = params.label.clone();
        req.stream = if params.stream { Some(true) } else { None };
        self.request(req)
    }

    /// Opens a stream session: `machine_spec` names the target machine
    /// (`"bsp?p=4&g=1&l=5"`), `budget_ms` the per-arrival re-planning
    /// budget (`None` = server default).
    pub fn stream_open(
        &mut self,
        session: &str,
        machine_spec: &str,
        budget_ms: Option<u64>,
    ) -> Result<Frame, ClientError> {
        let mut req = Request::new("stream_open");
        req.session = Some(session.to_string());
        req.instance = Some(machine_spec.to_string());
        req.budget_ms = budget_ms;
        Ok(self.request(req)?.result)
    }

    /// Pushes an arrival-event batch into an open session; the returned
    /// frame carries the updated tentative suffix.
    pub fn stream_push(
        &mut self,
        session: &str,
        events: &[ArrivalEvent],
    ) -> Result<Frame, ClientError> {
        let mut req = Request::new("stream_push");
        req.session = Some(session.to_string());
        req.events = Some(events.to_vec());
        Ok(self.request(req)?.result)
    }

    /// Finalizes and closes a session; the returned `result` frame
    /// carries the total cost and the full final assignment.
    pub fn stream_close(&mut self, session: &str) -> Result<Frame, ClientError> {
        let mut req = Request::new("stream_close");
        req.session = Some(session.to_string());
        Ok(self.request(req)?.result)
    }

    /// Sends a raw line (not necessarily valid JSON) and reads one frame
    /// back — the test hook for protocol-error paths.
    pub fn raw_roundtrip(&mut self, line: &str) -> Result<Frame, ClientError> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        match read_line_capped(&mut self.reader, MAX_LINE)
            .map_err(|e| ClientError::Io(e.to_string()))?
        {
            LineRead::Line(l) => parse_line(&l).map_err(|e| ClientError::Protocol(e.to_string())),
            LineRead::Eof => Err(ClientError::Io("connection closed".into())),
            LineRead::Oversize => Err(ClientError::Protocol("oversize response".into())),
        }
    }
}

/// Convenience for error-path assertions in tests.
impl ClientError {
    /// The typed server error code, if this is a server error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Whether this is the given typed server error.
    pub fn is_code(&self, code: &str) -> bool {
        self.code() == Some(code)
    }
}
