//! A small blocking client for the JSONL protocol — used by the test
//! suite, the CI smoke job and the `loadgen` benchmark driver.

use crate::protocol::{
    codes, parse_line, to_line, Frame, MetricWire, Request, ServerStats, MAX_LINE,
};
use crate::protocol::{read_line_capped, LineRead};
use bsp_instance::trace::ArrivalEvent;
use bsp_instance::DagEdit;
use bsp_schedule::events::SolveEvent;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default per-operation timeout of a fresh [`Client`]: generous next to
/// the server's default 2s solve budget, but no call can hang forever.
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-response).
    Io(String),
    /// The server sent something the client cannot parse.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// One of [`codes`](crate::protocol::codes).
        code: String,
        /// Human-readable detail.
        message: String,
        /// Server backoff hint (`queue_full` frames).
        retry_after_ms: Option<u64>,
    },
}

/// Capped exponential backoff with deterministic jitter, used by the
/// `*_with_retry` client calls. Attempt `n` waits roughly
/// `base_ms · 2ⁿ` (capped at `cap_ms`), jittered into the upper half of
/// that window by a pure function of `(seed, n)` — two clients with
/// different seeds de-synchronize, the same seed replays identically. A
/// server `retry_after_ms` hint overrides the computed delay.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = no retries).
    pub max_retries: u32,
    /// Backoff of the first retry, milliseconds.
    pub base_ms: u64,
    /// Ceiling on any single backoff, milliseconds.
    pub cap_ms: u64,
    /// Jitter seed; vary it per client, pin it for reproducible runs.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_ms: 25,
            cap_ms: 2_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based). `server_hint_ms`
    /// (from a `queue_full` frame) takes precedence, capped at `cap_ms`.
    pub fn delay(&self, attempt: u32, server_hint_ms: Option<u64>) -> Duration {
        if let Some(ms) = server_hint_ms {
            return Duration::from_millis(ms.min(self.cap_ms));
        }
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms.max(1));
        // splitmix64 finalizer: deterministic jitter into [exp/2, exp].
        let mut z = self
            .seed
            .wrapping_add(attempt as u64)
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let half = exp / 2;
        Duration::from_millis(half + z % (exp - half + 1))
    }
}

/// Process-global count of client-side retries (all causes).
fn retries_metric() -> &'static bsp_obs::Counter {
    static METRIC: std::sync::OnceLock<bsp_obs::Counter> = std::sync::OnceLock::new();
    METRIC.get_or_init(|| bsp_obs::global().counter("bsp_retries_total", &[]))
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

/// A solve result plus the progress events streamed before it.
#[derive(Debug)]
pub struct Response {
    /// The final `kind: "result"` frame.
    pub result: Frame,
    /// Progress events, in arrival order (empty unless streaming).
    pub events: Vec<SolveEvent>,
}

/// Parameters of a `solve` call.
#[derive(Debug, Clone, Default)]
pub struct SolveParams {
    /// Full instance spec (`"spmv?n=500 @ bsp?p=4"`). Required.
    pub instance: String,
    /// Scheduler spec; `None` = server default.
    pub sched: Option<String>,
    /// Wall-clock budget in ms; `None` = server default.
    pub budget_ms: Option<u64>,
    /// Instance-generation seed; `None` = registry default.
    pub seed: Option<u64>,
    /// Ask for streamed progress events.
    pub stream: bool,
}

/// Parameters of a `delta` call.
#[derive(Debug, Clone, Default)]
pub struct DeltaParams {
    /// Name of the cached base instance. Required.
    pub base: String,
    /// The edits to apply. Required, non-empty.
    pub edits: Vec<DagEdit>,
    /// Scheduler spec; `None` = server default.
    pub sched: Option<String>,
    /// Wall-clock budget in ms; `None` = server default.
    pub budget_ms: Option<u64>,
    /// Optional alias for the edited instance.
    pub label: Option<String>,
    /// Ask for streamed progress events.
    pub stream: bool,
}

/// A blocking protocol client over one TCP connection, with a default
/// per-operation timeout ([`DEFAULT_OP_TIMEOUT`]) so no call can hang on
/// a wedged server, and `*_with_retry` variants that survive
/// `queue_full`, dropped connections and read timeouts.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// The peer we connected to — reconnect target for the retry paths.
    peer: Option<SocketAddr>,
    op_timeout: Option<Duration>,
}

impl Client {
    fn open_stream(addr: &SocketAddr, timeout: Option<Duration>) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(stream)
    }

    /// Connects to a running server with the default operation timeout.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(DEFAULT_OP_TIMEOUT))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let peer = stream.peer_addr().ok();
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?,
        );
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
            peer,
            op_timeout: Some(DEFAULT_OP_TIMEOUT),
        })
    }

    /// Sets (or clears, with `None`) the per-operation timeout, replacing
    /// the [`DEFAULT_OP_TIMEOUT`] every fresh client starts with.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.op_timeout = timeout;
        self.writer
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Sets (or clears) the socket read timeout for the *current*
    /// connection only (a reconnect re-applies the operation timeout set
    /// via [`Client::set_op_timeout`]).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Drops the wedged connection and dials the original peer again.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let peer = self
            .peer
            .ok_or_else(|| ClientError::Io("no peer address to reconnect to".into()))?;
        let stream = Client::open_stream(&peer, self.op_timeout)?;
        self.reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?,
        );
        self.writer = stream;
        Ok(())
    }

    /// Whether an error is worth retrying: socket-level failures (the
    /// connection is re-dialed first) and `queue_full` backpressure.
    fn retriable(err: &ClientError) -> bool {
        match err {
            ClientError::Io(_) => true,
            ClientError::Server { code, .. } => code == codes::QUEUE_FULL,
            ClientError::Protocol(_) => false,
        }
    }

    /// Sends `req` with retries under `policy`: capped exponential
    /// backoff with deterministic jitter, honoring the server's
    /// `retry_after_ms` hint on `queue_full`, re-dialing the peer after
    /// socket errors. The request is stamped with an idempotent `rkey`
    /// (unless the caller set one), so a retry racing its not-actually-
    /// dead predecessor attaches to the in-flight job server-side
    /// instead of solving twice. Every retry counts `bsp_retries_total`.
    pub fn request_with_retry(
        &mut self,
        mut req: Request,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        if req.rkey.is_none() {
            req.rkey = Some(format!(
                "rk-{:016x}-{}",
                policy.seed ^ crate::cache::fnv64(to_line(&req).as_bytes()),
                self.next_id
            ));
        }
        let mut attempt = 0u32;
        loop {
            match self.request(req.clone()) {
                Ok(resp) => return Ok(resp),
                Err(err) => {
                    if attempt >= policy.max_retries || !Client::retriable(&err) {
                        return Err(err);
                    }
                    retries_metric().inc();
                    let hint = match &err {
                        ClientError::Server { retry_after_ms, .. } => *retry_after_ms,
                        _ => None,
                    };
                    std::thread::sleep(policy.delay(attempt, hint));
                    if matches!(err, ClientError::Io(_)) {
                        // Reconnect failures burn attempts too: keep
                        // backing off until the server is reachable or
                        // the budget runs out.
                        while self.reconnect().is_err() {
                            attempt += 1;
                            if attempt > policy.max_retries {
                                return Err(ClientError::Io(format!(
                                    "reconnect to {:?} kept failing",
                                    self.peer
                                )));
                            }
                            retries_metric().inc();
                            std::thread::sleep(policy.delay(attempt, None));
                        }
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// [`Client::solve`] with retries under `policy`.
    pub fn solve_with_retry(
        &mut self,
        params: &SolveParams,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        self.request_with_retry(solve_request(params), policy)
    }

    /// [`Client::delta`] with retries under `policy`.
    pub fn delta_with_retry(
        &mut self,
        params: &DeltaParams,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        self.request_with_retry(delta_request(params), policy)
    }

    /// Sends `req` (with a fresh correlation id) and collects frames
    /// until the matching terminal frame arrives. Event frames for the id
    /// are accumulated; frames for *other* ids are dropped (this blocking
    /// client never has two requests in flight).
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        req.id = Some(id);
        let line = to_line(&req);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;

        let mut events = Vec::new();
        loop {
            let line = match read_line_capped(&mut self.reader, MAX_LINE)
                .map_err(|e| ClientError::Io(e.to_string()))?
            {
                LineRead::Line(l) => l,
                LineRead::Eof => {
                    return Err(ClientError::Io("connection closed mid-response".into()))
                }
                LineRead::Oversize => {
                    return Err(ClientError::Protocol("oversize response line".into()))
                }
            };
            let frame: Frame =
                parse_line(&line).map_err(|e| ClientError::Protocol(e.to_string()))?;
            // Typed errors without an id (bad_json, oversize_line) also
            // terminate this request: nothing else is coming for it.
            if frame.id != Some(id) && frame.id.is_some() {
                continue;
            }
            match frame.kind.as_str() {
                "event" => {
                    if let Some(ev) = frame.event {
                        events.push(ev);
                    }
                }
                "error" => {
                    return Err(ClientError::Server {
                        code: frame.error.unwrap_or_else(|| "unknown".to_string()),
                        message: frame.message.unwrap_or_default(),
                        retry_after_ms: frame.retry_after_ms,
                    })
                }
                _ => {
                    return Ok(Response {
                        result: frame,
                        events,
                    })
                }
            }
        }
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let resp = self.request(Request::new("ping"))?;
        if resp.result.kind == "pong" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected pong, got {:?}",
                resp.result.kind
            )))
        }
    }

    /// Fetches server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let resp = self.request(Request::new("stats"))?;
        resp.result
            .stats
            .ok_or_else(|| ClientError::Protocol("stats frame without stats".into()))
    }

    /// Requests server statistics together with the flat metrics
    /// snapshot (process-wide counters and gauges) the stats frame
    /// carries — programmatic access to the same numbers the sidecar's
    /// `/metrics` endpoint exposes.
    pub fn stats_with_metrics(&mut self) -> Result<(ServerStats, Vec<MetricWire>), ClientError> {
        let resp = self.request(Request::new("stats"))?;
        let stats = resp
            .result
            .stats
            .ok_or_else(|| ClientError::Protocol("stats frame without stats".into()))?;
        Ok((stats, resp.result.metrics.unwrap_or_default()))
    }

    /// Requests a graceful server shutdown.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let resp = self.request(Request::new("shutdown"))?;
        if resp.result.kind == "bye" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected bye, got {:?}",
                resp.result.kind
            )))
        }
    }

    /// Solves an instance spec (possibly served from the cache).
    pub fn solve(&mut self, params: &SolveParams) -> Result<Response, ClientError> {
        self.request(solve_request(params))
    }

    /// Re-solves an edited instance, warm-starting when the server has
    /// the base schedule cached.
    pub fn delta(&mut self, params: &DeltaParams) -> Result<Response, ClientError> {
        self.request(delta_request(params))
    }

    /// Opens a stream session: `machine_spec` names the target machine
    /// (`"bsp?p=4&g=1&l=5"`), `budget_ms` the per-arrival re-planning
    /// budget (`None` = server default).
    pub fn stream_open(
        &mut self,
        session: &str,
        machine_spec: &str,
        budget_ms: Option<u64>,
    ) -> Result<Frame, ClientError> {
        let mut req = Request::new("stream_open");
        req.session = Some(session.to_string());
        req.instance = Some(machine_spec.to_string());
        req.budget_ms = budget_ms;
        Ok(self.request(req)?.result)
    }

    /// Pushes an arrival-event batch into an open session; the returned
    /// frame carries the updated tentative suffix.
    pub fn stream_push(
        &mut self,
        session: &str,
        events: &[ArrivalEvent],
    ) -> Result<Frame, ClientError> {
        let mut req = Request::new("stream_push");
        req.session = Some(session.to_string());
        req.events = Some(events.to_vec());
        Ok(self.request(req)?.result)
    }

    /// Finalizes and closes a session; the returned `result` frame
    /// carries the total cost and the full final assignment.
    pub fn stream_close(&mut self, session: &str) -> Result<Frame, ClientError> {
        let mut req = Request::new("stream_close");
        req.session = Some(session.to_string());
        Ok(self.request(req)?.result)
    }

    /// Sends a raw line (not necessarily valid JSON) and reads one frame
    /// back — the test hook for protocol-error paths.
    pub fn raw_roundtrip(&mut self, line: &str) -> Result<Frame, ClientError> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        match read_line_capped(&mut self.reader, MAX_LINE)
            .map_err(|e| ClientError::Io(e.to_string()))?
        {
            LineRead::Line(l) => parse_line(&l).map_err(|e| ClientError::Protocol(e.to_string())),
            LineRead::Eof => Err(ClientError::Io("connection closed".into())),
            LineRead::Oversize => Err(ClientError::Protocol("oversize response".into())),
        }
    }
}

/// Builds the wire request of a `solve` call.
fn solve_request(params: &SolveParams) -> Request {
    let mut req = Request::new("solve");
    req.instance = Some(params.instance.clone());
    req.sched = params.sched.clone();
    req.budget_ms = params.budget_ms;
    req.seed = params.seed;
    req.stream = if params.stream { Some(true) } else { None };
    req
}

/// Builds the wire request of a `delta` call.
fn delta_request(params: &DeltaParams) -> Request {
    let mut req = Request::new("delta");
    req.base = Some(params.base.clone());
    req.edits = Some(params.edits.clone());
    req.sched = params.sched.clone();
    req.budget_ms = params.budget_ms;
    req.label = params.label.clone();
    req.stream = if params.stream { Some(true) } else { None };
    req
}

/// Convenience for error-path assertions in tests.
impl ClientError {
    /// The typed server error code, if this is a server error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Whether this is the given typed server error.
    pub fn is_code(&self, code: &str) -> bool {
        self.code() == Some(code)
    }
}
