//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one `\n`-terminated line. Clients
//! send [`Request`]s; the server answers with [`Frame`]s. Responses carry
//! the request's `id`, so clients may pipeline: several requests can be in
//! flight on one connection and the frames are matched back by `id`.
//! Progress events (`kind: "event"`) for a streamed solve are interleaved
//! before the final `kind: "result"` frame of the same `id`.
//!
//! Malformed input never kills the connection silently — the server
//! answers with a typed `kind: "error"` frame whose `error` field is one
//! of the [`codes`]. The only fatal frame is [`codes::OVERSIZE_LINE`]
//! (the connection closes after it, because the line tail cannot be
//! resynchronized safely).
//!
//! Both [`Request`] and [`Frame`] serialize *sparsely*: `None` fields are
//! omitted, and absent keys deserialize as `None` (the derive of the
//! vendored serde would instead demand every key, which is wrong for a
//! wire format that must accept hand-written requests).

use bsp_instance::trace::ArrivalEvent;
use bsp_instance::DagEdit;
use bsp_schedule::events::{SolveEvent, StageReportWire};
use serde::{json, Deserialize, Error as SerdeError, Serialize, Value};

/// Hard cap on one protocol line, in bytes (1 MiB). Lines longer than
/// this are answered with [`codes::OVERSIZE_LINE`] and the connection is
/// closed.
pub const MAX_LINE: usize = 1 << 20;

/// Typed error codes carried in the `error` field of error frames.
pub mod codes {
    /// `method` is not one of the served methods.
    pub const UNKNOWN_METHOD: &str = "unknown_method";
    /// The line was not a JSON object (syntax error or wrong shape).
    pub const BAD_JSON: &str = "bad_json";
    /// A required field is missing for the requested method.
    pub const MISSING_FIELD: &str = "missing_field";
    /// An instance or scheduler spec did not resolve.
    pub const BAD_SPEC: &str = "bad_spec";
    /// A DAG edit failed to apply (unknown node, cycle, …).
    pub const BAD_EDIT: &str = "bad_edit";
    /// A delta request referenced a base instance the server has not seen.
    pub const UNKNOWN_BASE: &str = "unknown_base";
    /// The protocol line exceeded [`super::MAX_LINE`] bytes (fatal).
    pub const OVERSIZE_LINE: &str = "oversize_line";
    /// The job queue is full; retry later.
    pub const QUEUE_FULL: &str = "queue_full";
    /// The server is draining and accepts no new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// A stream request referenced a session this connection never opened
    /// (or already closed).
    pub const UNKNOWN_SESSION: &str = "unknown_session";
    /// An arrival event was rejected by the online scheduler (duplicate
    /// node, unknown dependency, commit conflict, event after finalize).
    pub const BAD_EVENT: &str = "bad_event";
    /// The handler for this request panicked (or an injected fault fired).
    /// The job is failed, the worker pool and the connection survive.
    pub const INTERNAL_ERROR: &str = "internal_error";
    /// The request's deadline expired before a worker could start it, so
    /// it was shed instead of solved (deadline-aware queue admission).
    pub const DEADLINE_SHED: &str = "deadline_shed";
}

/// One client request. `method` selects the operation; the remaining
/// fields are method-specific and optional on the wire:
///
/// | method         | uses                                                |
/// |----------------|-----------------------------------------------------|
/// | `solve`        | `instance` (required), `sched`, `budget_ms`, `seed`, `stream` |
/// | `delta`        | `base` (required), `edits` (required), `label`, `sched`, `budget_ms`, `seed`, `stream` |
/// | `stream_open`  | `session` (required), `instance` = machine spec (required), `budget_ms` = per-arrival |
/// | `stream_push`  | `session` (required), `events` (required)           |
/// | `stream_close` | `session` (required)                                |
/// | `stats`        | —                                                   |
/// | `ping`         | —                                                   |
/// | `shutdown`     | —                                                   |
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Request {
    /// `"solve"`, `"delta"`, `"stream_open"`, `"stream_push"`,
    /// `"stream_close"`, `"stats"`, `"ping"` or `"shutdown"`.
    pub method: String,
    /// Client-chosen correlation id, echoed on every response frame.
    pub id: Option<u64>,
    /// Full instance spec, e.g. `"spmv?n=500 @ bsp?p=4"` (`solve`).
    pub instance: Option<String>,
    /// Scheduler spec (defaults to the server's default scheduler).
    pub sched: Option<String>,
    /// Wall-clock budget in milliseconds (defaults to the server's).
    pub budget_ms: Option<u64>,
    /// Instance-generation seed (defaults to the registry default).
    pub seed: Option<u64>,
    /// Stream `kind: "event"` progress frames before the result.
    pub stream: Option<bool>,
    /// Name of the cached base instance a `delta` edits.
    pub base: Option<String>,
    /// The DAG edits a `delta` applies, in order.
    pub edits: Option<Vec<DagEdit>>,
    /// Optional alias under which the edited instance is re-cached.
    pub label: Option<String>,
    /// Connection-scoped stream session name (`stream_*` methods).
    pub session: Option<String>,
    /// Arrival events a `stream_push` feeds, in order.
    pub events: Option<Vec<ArrivalEvent>>,
    /// Idempotent request key (`solve`/`delta`): a retry carrying the same
    /// key while the original job is still in flight attaches to that job
    /// instead of enqueuing a duplicate solve.
    pub rkey: Option<String>,
    /// Per-request deadline in milliseconds from admission. A job whose
    /// deadline expires before a worker picks it up is shed with a typed
    /// `deadline_shed` error; the solve budget is clamped to the
    /// remaining deadline otherwise.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A bare request for `method`.
    pub fn new(method: &str) -> Self {
        Request {
            method: method.to_string(),
            ..Request::default()
        }
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("method".to_string(), Value::Str(self.method.clone()))];
        push_opt(&mut fields, "id", &self.id);
        push_opt(&mut fields, "instance", &self.instance);
        push_opt(&mut fields, "sched", &self.sched);
        push_opt(&mut fields, "budget_ms", &self.budget_ms);
        push_opt(&mut fields, "seed", &self.seed);
        push_opt(&mut fields, "stream", &self.stream);
        push_opt(&mut fields, "base", &self.base);
        push_opt(&mut fields, "edits", &self.edits);
        push_opt(&mut fields, "label", &self.label);
        push_opt(&mut fields, "session", &self.session);
        push_opt(&mut fields, "events", &self.events);
        push_opt(&mut fields, "rkey", &self.rkey);
        push_opt(&mut fields, "deadline_ms", &self.deadline_ms);
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for Request {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if !matches!(value, Value::Object(_)) {
            return Err(SerdeError::new("request: expected a JSON object"));
        }
        Ok(Request {
            method: req_field(value, "method")?,
            id: opt_field(value, "id")?,
            instance: opt_field(value, "instance")?,
            sched: opt_field(value, "sched")?,
            budget_ms: opt_field(value, "budget_ms")?,
            seed: opt_field(value, "seed")?,
            stream: opt_field(value, "stream")?,
            base: opt_field(value, "base")?,
            edits: opt_field(value, "edits")?,
            label: opt_field(value, "label")?,
            session: opt_field(value, "session")?,
            events: opt_field(value, "events")?,
            rkey: opt_field(value, "rkey")?,
            deadline_ms: opt_field(value, "deadline_ms")?,
        })
    }
}

/// One server response frame. `kind` is `"result"`, `"error"`, `"event"`,
/// `"stream"`, `"stats"`, `"pong"` or `"bye"`; the remaining fields are
/// kind-specific and omitted when `None`. A `"stream"` frame carries the
/// updated tentative suffix after a `stream_open`/`stream_push`: the
/// commit `frontier` plus the parallel `suffix_nodes`/`suffix_procs`/
/// `suffix_steps` arrays (trace-level node ids). The `"result"` frame of
/// a `stream_close` reuses the same three arrays for the *full* final
/// assignment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame {
    /// Frame kind (see type docs).
    pub kind: String,
    /// Correlation id of the request this frame answers.
    pub id: Option<u64>,
    /// Canonical instance name the result is for (`"dag @ machine"`).
    pub instance: Option<String>,
    /// Canonical scheduler spec the result was produced by.
    pub sched: Option<String>,
    /// Final schedule cost.
    pub cost: Option<u64>,
    /// Number of supersteps in the final schedule.
    pub supersteps: Option<u64>,
    /// Whether the result came straight from the cache.
    pub cache_hit: Option<bool>,
    /// Whether a delta re-solve warm-started from a cached schedule.
    pub warm: Option<bool>,
    /// Cost of the repaired warm-start the solve began from (delta only).
    pub warm_init_cost: Option<u64>,
    /// Server-side wall-clock of the request, microseconds.
    pub elapsed_us: Option<u64>,
    /// Whether the budget expired before all stages completed.
    pub budget_exhausted: Option<bool>,
    /// Per-stage reports of the solve (absent on cache hits).
    pub stages: Option<Vec<StageReportWire>>,
    /// Typed error code (error frames; one of [`codes`]).
    pub error: Option<String>,
    /// Human-readable error detail.
    pub message: Option<String>,
    /// Backoff hint on `queue_full` errors, derived from the current
    /// queue depth; a well-behaved client waits this long before
    /// retrying.
    pub retry_after_ms: Option<u64>,
    /// One progress event (event frames).
    pub event: Option<SolveEvent>,
    /// Server statistics (stats frames).
    pub stats: Option<ServerStats>,
    /// Flat metrics snapshot (stats frames): process-wide counters and
    /// gauges, so clients get programmatic metrics without the sidecar.
    pub metrics: Option<Vec<MetricWire>>,
    /// Stream session the frame belongs to (stream frames).
    pub session: Option<String>,
    /// Commit frontier after the push (stream frames).
    pub frontier: Option<u64>,
    /// Total arrivals integrated so far (stream frames).
    pub arrivals: Option<u64>,
    /// Trace-level ids of the tentative nodes (stream frames) or of all
    /// nodes (stream_close result).
    pub suffix_nodes: Option<Vec<u32>>,
    /// Processor assignment parallel to `suffix_nodes`.
    pub suffix_procs: Option<Vec<u32>>,
    /// Superstep assignment parallel to `suffix_nodes`.
    pub suffix_steps: Option<Vec<u32>>,
}

impl Frame {
    /// An error frame with a typed `code` from [`codes`].
    pub fn error(id: Option<u64>, code: &str, message: impl Into<String>) -> Self {
        Frame {
            kind: "error".to_string(),
            id,
            error: Some(code.to_string()),
            message: Some(message.into()),
            ..Frame::default()
        }
    }

    /// An event frame wrapping one progress event.
    pub fn event(id: Option<u64>, event: SolveEvent) -> Self {
        Frame {
            kind: "event".to_string(),
            id,
            event: Some(event),
            ..Frame::default()
        }
    }
}

impl Serialize for Frame {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("kind".to_string(), Value::Str(self.kind.clone()))];
        push_opt(&mut fields, "id", &self.id);
        push_opt(&mut fields, "instance", &self.instance);
        push_opt(&mut fields, "sched", &self.sched);
        push_opt(&mut fields, "cost", &self.cost);
        push_opt(&mut fields, "supersteps", &self.supersteps);
        push_opt(&mut fields, "cache_hit", &self.cache_hit);
        push_opt(&mut fields, "warm", &self.warm);
        push_opt(&mut fields, "warm_init_cost", &self.warm_init_cost);
        push_opt(&mut fields, "elapsed_us", &self.elapsed_us);
        push_opt(&mut fields, "budget_exhausted", &self.budget_exhausted);
        push_opt(&mut fields, "stages", &self.stages);
        push_opt(&mut fields, "error", &self.error);
        push_opt(&mut fields, "message", &self.message);
        push_opt(&mut fields, "retry_after_ms", &self.retry_after_ms);
        push_opt(&mut fields, "event", &self.event);
        push_opt(&mut fields, "stats", &self.stats);
        push_opt(&mut fields, "metrics", &self.metrics);
        push_opt(&mut fields, "session", &self.session);
        push_opt(&mut fields, "frontier", &self.frontier);
        push_opt(&mut fields, "arrivals", &self.arrivals);
        push_opt(&mut fields, "suffix_nodes", &self.suffix_nodes);
        push_opt(&mut fields, "suffix_procs", &self.suffix_procs);
        push_opt(&mut fields, "suffix_steps", &self.suffix_steps);
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for Frame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if !matches!(value, Value::Object(_)) {
            return Err(SerdeError::new("frame: expected a JSON object"));
        }
        Ok(Frame {
            kind: req_field(value, "kind")?,
            id: opt_field(value, "id")?,
            instance: opt_field(value, "instance")?,
            sched: opt_field(value, "sched")?,
            cost: opt_field(value, "cost")?,
            supersteps: opt_field(value, "supersteps")?,
            cache_hit: opt_field(value, "cache_hit")?,
            warm: opt_field(value, "warm")?,
            warm_init_cost: opt_field(value, "warm_init_cost")?,
            elapsed_us: opt_field(value, "elapsed_us")?,
            budget_exhausted: opt_field(value, "budget_exhausted")?,
            stages: opt_field(value, "stages")?,
            error: opt_field(value, "error")?,
            message: opt_field(value, "message")?,
            retry_after_ms: opt_field(value, "retry_after_ms")?,
            event: opt_field(value, "event")?,
            stats: opt_field(value, "stats")?,
            metrics: opt_field(value, "metrics")?,
            session: opt_field(value, "session")?,
            frontier: opt_field(value, "frontier")?,
            arrivals: opt_field(value, "arrivals")?,
            suffix_nodes: opt_field(value, "suffix_nodes")?,
            suffix_procs: opt_field(value, "suffix_procs")?,
            suffix_steps: opt_field(value, "suffix_steps")?,
        })
    }
}

/// A snapshot of server counters, served by the `stats` method.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Results currently in the store.
    pub cached_results: u64,
    /// Result-store lookups that hit.
    pub hits: u64,
    /// Result-store lookups that missed.
    pub misses: u64,
    /// Result-store entries evicted by the LRU cap (`--store-cap`).
    pub evictions: u64,
    /// Corrupt/truncated store entries quarantined at startup.
    pub corrupt: u64,
    /// Instances currently in the in-memory instance cache.
    pub cached_instances: u64,
    /// Jobs fully processed since startup.
    pub jobs_done: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Worker threads draining the queue.
    pub workers: u64,
}

/// One scalar metric on the wire (`stats` frames): the flattened
/// `name{labels}` key, the metric kind (`"counter"` or `"gauge"`;
/// histograms are summarized by the sidecar, not the wire snapshot) and
/// the current value.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricWire {
    /// Flattened metric key, e.g. `bsp_serve_requests_total{method="solve"}`.
    pub name: String,
    /// `"counter"` or `"gauge"`.
    pub kind: String,
    /// Current value (counters clamp to `i64::MAX`).
    pub value: i64,
}

/// Flattens a registry snapshot into wire metrics: counters and gauges
/// only, in the snapshot's deterministic (name, labels) order.
pub fn metric_wires(samples: &[bsp_obs::MetricSample]) -> Vec<MetricWire> {
    samples
        .iter()
        .filter_map(|s| {
            Some(MetricWire {
                name: s.full_name(),
                kind: s.kind().to_string(),
                value: s.scalar()?,
            })
        })
        .collect()
}

/// Parses one protocol line into `T`, tagging errors with the line's
/// syntactic problem.
pub fn parse_line<'de, T: Deserialize<'de>>(line: &str) -> Result<T, SerdeError> {
    json::from_str(line.trim())
}

/// Serializes `msg` as one protocol line (no trailing newline).
pub fn to_line<T: Serialize>(msg: &T) -> String {
    json::to_string(msg)
}

/// Outcome of reading one protocol line.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the `\n`).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the cap; the tail was not consumed.
    Oversize,
}

/// Reads one `\n`-terminated line from `r`, enforcing a byte cap. Returns
/// [`LineRead::Oversize`] as soon as the cap is crossed (the remainder of
/// the line stays in the stream — callers should close the connection).
pub fn read_line_capped<R: std::io::BufRead>(r: &mut R, cap: usize) -> std::io::Result<LineRead> {
    use std::io::{BufRead, Read};
    let mut buf: Vec<u8> = Vec::new();
    let mut take = r.take((cap + 1) as u64);
    let n = take.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if buf.len() > cap {
        return Ok(LineRead::Oversize);
    }
    // A final unterminated line (EOF without '\n') within the cap is
    // accepted — it lets `printf '...' | nc` style clients work.
    Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()))
}

fn push_opt<T: Serialize>(fields: &mut Vec<(String, Value)>, key: &str, v: &Option<T>) {
    if let Some(v) = v {
        fields.push((key.to_string(), v.to_value()));
    }
}

fn req_field<'de, T: Deserialize<'de>>(value: &Value, key: &str) -> Result<T, SerdeError> {
    match value.get(key) {
        Some(v) => T::from_value(v).map_err(|e| SerdeError::new(format!("field {key:?}: {e}"))),
        None => Err(SerdeError::new(format!("missing field {key:?}"))),
    }
}

fn opt_field<'de, T: Deserialize<'de>>(value: &Value, key: &str) -> Result<Option<T>, SerdeError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => {
            Option::<T>::from_value(v).map_err(|e| SerdeError::new(format!("field {key:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips_sparsely() {
        let mut req = Request::new("solve");
        req.id = Some(7);
        req.instance = Some("spmv?n=100 @ bsp?p=4".to_string());
        let line = to_line(&req);
        // None fields are omitted from the wire form entirely.
        assert!(!line.contains("edits"));
        assert!(!line.contains("label"));
        let back: Request = parse_line(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn absent_keys_read_as_none() {
        let req: Request = parse_line("{\"method\":\"ping\"}").unwrap();
        assert_eq!(req.method, "ping");
        assert_eq!(req.id, None);
        assert_eq!(req.edits, None);
        assert!(parse_line::<Request>("{\"id\":3}").is_err());
        assert!(parse_line::<Request>("[1,2]").is_err());
    }

    #[test]
    fn frame_round_trips() {
        let mut f = Frame::error(Some(9), codes::BAD_SPEC, "no such instance");
        f.elapsed_us = Some(12);
        let back: Frame = parse_line(&to_line(&f)).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.error.as_deref(), Some(codes::BAD_SPEC));
    }

    #[test]
    fn capped_reader_flags_oversize_lines() {
        let data = b"short\n0123456789abcdef\n";
        let mut r = BufReader::new(&data[..]);
        match read_line_capped(&mut r, 8).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "short"),
            other => panic!("expected line, got {other:?}"),
        }
        assert!(matches!(
            read_line_capped(&mut r, 8).unwrap(),
            LineRead::Oversize
        ));
        let data = b"no-newline-at-eof";
        let mut r = BufReader::new(&data[..]);
        match read_line_capped(&mut r, 64).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "no-newline-at-eof"),
            other => panic!("expected line, got {other:?}"),
        }
        assert!(matches!(
            read_line_capped(&mut r, 64).unwrap(),
            LineRead::Eof
        ));
    }
}
