//! A bounded, closeable MPMC job queue (`Mutex` + `Condvar`).
//!
//! Producers (connection reader threads) never block: [`JobQueue::try_push`]
//! fails fast with [`PushError::Full`] so the server can answer
//! `queue_full` instead of stalling the socket. Consumers (the worker
//! pool) block in [`JobQueue::pop`] until a job arrives or the queue is
//! closed; after [`JobQueue::close`], remaining jobs are still drained —
//! `pop` returns `None` only once the queue is *closed and empty*, which
//! is exactly the graceful-shutdown contract.
//!
//! ```
//! use bsp_serve::queue::{JobQueue, PushError};
//!
//! let q = JobQueue::new(1);
//! q.try_push(1).unwrap();
//! assert_eq!(q.try_push(2), Err(PushError::Full));
//! q.close(); // shutdown: drain what's queued, then report empty
//! assert_eq!(q.pop(), Some(1));
//! assert_eq!(q.pop(), None);
//! assert_eq!(q.try_push(3), Err(PushError::Closed));
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed; the server is shutting down.
    Closed,
}

struct Inner<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// The bounded job queue. Shared by `Arc`.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `cap` jobs (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `job` without blocking.
    pub fn try_push(&self, job: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.q.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.q.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue is closed *and*
    /// drained; `None` means "no more work, ever".
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.q.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pushes fail from now on, poppers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().q.len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_respects_capacity() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(8);
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(77).unwrap();
        assert_eq!(h.join().unwrap(), Some(77));
    }
}
