//! The observability sidecar: a second, read-only TCP listener serving
//! plain HTTP/1.1 with two endpoints:
//!
//! * `GET /metrics` — the process-wide [`bsp_obs`] registry in Prometheus
//!   text exposition format (`text/plain; version=0.0.4`);
//! * `GET /trace`  — the process-wide trace ring as Chrome trace-event
//!   JSON, loadable in `chrome://tracing` or Perfetto.
//!
//! The sidecar shares nothing with the protocol port except the server's
//! stop token: it polls it every 10ms (the same idiom as the main accept
//! loop) and winds down with the rest of the daemon. Responses are
//! one-shot (`Connection: close`) — scrapers reconnect per scrape, which
//! keeps the handler stateless and immune to slow clients holding
//! threads: a configurable read timeout
//! ([`ServeConfig::sidecar_read_timeout`][crate::ServeConfig], 2s by
//! default) bounds every connection.

use bsp_par::CancelToken;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// Binds `addr` and spawns the sidecar accept loop. Returns the resolved
/// address (port `0` picks a free port) and the loop's join handle.
pub(crate) fn start(
    addr: &str,
    stop: CancelToken,
    read_timeout: Duration,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("bsp-serve-sidecar".to_string())
        .spawn(move || accept_loop(listener, stop, read_timeout))
        .expect("spawn sidecar accept loop");
    Ok((addr, handle))
}

fn accept_loop(listener: TcpListener, stop: CancelToken, read_timeout: Duration) {
    while !stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = std::thread::Builder::new()
                    .name("bsp-serve-sidecar-conn".to_string())
                    .spawn(move || handle_conn(stream, read_timeout));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_conn(stream: TcpStream, read_timeout: Duration) {
    // Zero would mean "no timeout at all" to the socket API; clamp it to
    // something that still bounds the connection.
    let timeout = if read_timeout.is_zero() {
        Duration::from_millis(1)
    } else {
        read_timeout
    };
    let _ = stream.set_read_timeout(Some(timeout));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers until the blank line; their content is irrelevant.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
        }
    }
    let (status, content_type, body) = route(&request_line);
    respond(stream, status, content_type, &body);
}

/// Maps an HTTP request line to `(status line, content type, body)`.
fn route(request_line: &str) -> (&'static str, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Strip a query string: `/metrics?foo=1` still means `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n".to_string(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            bsp_obs::global().render_prometheus(),
        ),
        "/trace" => (
            "200 OK",
            "application/json",
            bsp_obs::trace::global().export_chrome(),
        ),
        _ => (
            "404 Not Found",
            "text/plain",
            "endpoints: /metrics (Prometheus), /trace (Chrome trace JSON)\n".to_string(),
        ),
    }
}

fn respond(mut stream: TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_trace_and_404() {
        // Touch the global registry so /metrics has at least one family.
        bsp_obs::global()
            .counter("bsp_sidecar_test_total", &[])
            .inc();
        bsp_obs::trace::global()
            .span("sidecar-test", "test")
            .finish();

        let stop = CancelToken::new();
        let (addr, handle) = start("127.0.0.1:0", stop.clone(), Duration::from_secs(2)).unwrap();

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("bsp_sidecar_test_total 1"));

        let trace = http_get(addr, "/trace");
        assert!(trace.starts_with("HTTP/1.1 200 OK"));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("sidecar-test"));

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        stop.cancel();
        handle.join().unwrap();
    }
}
