//! Delta-API properties, exercised directly on the warm-start pipeline:
//!
//! * random edit sequences on random layered DAGs, warm-started from a
//!   cold base schedule, always yield a *valid* schedule whose cost is
//!   ≤ the repaired warm start (the monotone guarantee), and
//! * a pinned end-to-end check that a small edit on a cached instance is
//!   strictly cheaper in wall-clock than the cold solve that filled the
//!   cache, at equal-or-better cost than its repaired start.

use bsp_core::pipeline::PipelineConfig;
use bsp_core::{solve_warm_pipeline, warm_start_from_map};
use bsp_dag::random::{random_layered_dag, LayeredConfig};
use bsp_dag::{Dag, NodeId};
use bsp_instance::{apply_edits, DagEdit};
use bsp_model::BspParams;
use bsp_schedule::cost::{lazy_cost, total_cost};
use bsp_schedule::solve::{SolveCx, SolveRequest};
use bsp_schedule::validity::validate;
use proptest::prelude::*;

fn fast_cfg() -> PipelineConfig {
    PipelineConfig {
        enable_ilp: false,
        ..Default::default()
    }
}

/// Decodes one candidate edit from three random integers. May propose an
/// edit that cannot apply (duplicate edge, cycle) — callers filter.
fn decode_edit(dag: &Dag, kind: usize, a: u32, b: u32) -> DagEdit {
    let n = dag.n() as u32;
    match kind % 5 {
        0 => DagEdit::AddNode {
            work: (a % 20 + 1) as u64,
            comm: (b % 10 + 1) as u64,
            preds: vec![a % n],
            succs: vec![],
        },
        1 => DagEdit::RemoveNode { node: a % n },
        2 => DagEdit::AddEdge {
            from: a % n,
            to: b % n,
        },
        3 => {
            // Remove an existing edge, if any; else re-weight (always valid).
            let edges: Vec<(NodeId, NodeId)> = dag
                .nodes()
                .flat_map(|u| dag.successors(u).iter().map(move |&v| (u, v)))
                .collect();
            if edges.is_empty() {
                DagEdit::SetWeights {
                    node: a % n,
                    work: Some((b % 30 + 1) as u64),
                    comm: None,
                }
            } else {
                let (from, to) = edges[a as usize % edges.len()];
                DagEdit::RemoveEdge { from, to }
            }
        }
        _ => DagEdit::SetWeights {
            node: a % n,
            work: Some((a % 30 + 1) as u64),
            comm: Some((b % 15 + 1) as u64),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_edits_warm_start_valid_and_monotone(
        dag_seed in 0u64..400,
        k1 in 0usize..5, a1 in 0u32..10_000, b1 in 0u32..10_000,
        k2 in 0usize..5, a2 in 0u32..10_000, b2 in 0u32..10_000,
        p in 2usize..6,
    ) {
        let dag = random_layered_dag(
            dag_seed,
            LayeredConfig { layers: 4, width: 5, edge_prob: 0.35, ..Default::default() },
        );
        let machine = BspParams::new(p, 2, 4);
        let base = bsp_core::pipeline::schedule_dag(&dag, &machine, &fast_cfg());

        // Assemble an applicable edit list: try both edits, then each
        // alone, then a guaranteed-applicable re-weight.
        let e1 = decode_edit(&dag, k1, a1, b1);
        let e2 = decode_edit(&dag, k2, a2, b2);
        let fallback = vec![DagEdit::SetWeights { node: 0, work: Some(9), comm: None }];
        let edits = [vec![e1.clone(), e2.clone()], vec![e1], vec![e2], fallback]
            .into_iter()
            .find(|es| apply_edits(&dag, es).is_ok())
            .unwrap();
        let edited = apply_edits(&dag, &edits).unwrap();

        // Transplant + repair, then re-optimize under the warm pipeline.
        let initial =
            warm_start_from_map(&edited.dag, &machine, &base.sched, &edited.node_map);
        let start_cost = lazy_cost(&edited.dag, &machine, &initial);
        let req = SolveRequest::new(&edited.dag, &machine);
        let mut cx = SolveCx::new("warm", &req);
        let r = solve_warm_pipeline(&edited.dag, &machine, &initial, &fast_cfg(), &mut cx);

        prop_assert!(
            validate(&edited.dag, machine.p(), &r.sched, &r.comm).is_ok(),
            "warm result invalid after edits {edits:?}"
        );
        prop_assert!(
            r.cost <= start_cost,
            "monotone guarantee violated: {} > repaired start {}", r.cost, start_cost
        );
        prop_assert_eq!(
            r.cost,
            total_cost(&edited.dag, &machine, &r.sched, &r.comm),
            "reported cost must re-evaluate exactly"
        );
    }
}

/// Pinned wall-clock comparison through the real server: after a cold
/// solve fills the cache, a one-node delta must answer strictly faster
/// than the cold solve did, at a cost no worse than its repaired start.
#[test]
fn warm_delta_is_faster_than_cold_solve() {
    use bsp_serve::client::{Client, DeltaParams, SolveParams};
    use bsp_serve::server::{start, ServeConfig};

    let mut cfg = ServeConfig::default();
    cfg.threads = 1;
    cfg.default_budget_ms = Some(30_000);
    let handle = start(cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Big enough that the cold pipeline does real work (~300 nodes).
    let mut params = SolveParams::default();
    params.instance = "layered?layers=12&width=25&q=0.25&seed=11 @ bsp?p=4&g=2&l=5".to_string();
    let cold = client.solve(&params).unwrap();
    assert_eq!(cold.result.cache_hit, Some(false));
    let cold_us = cold.result.elapsed_us.unwrap();

    let mut delta = DeltaParams::default();
    delta.base = cold.result.instance.clone().unwrap();
    delta.edits = vec![DagEdit::AddNode {
        work: 6,
        comm: 3,
        preds: vec![0, 1],
        succs: vec![],
    }];
    let warm = client.delta(&delta).unwrap();
    assert_eq!(warm.result.warm, Some(true));
    let warm_us = warm.result.elapsed_us.unwrap();
    assert!(
        warm.result.cost.unwrap() <= warm.result.warm_init_cost.unwrap(),
        "warm result worse than its repaired start"
    );
    assert!(
        warm_us < cold_us,
        "warm delta ({warm_us} µs) not faster than cold solve ({cold_us} µs)"
    );
    handle.shutdown();
}
