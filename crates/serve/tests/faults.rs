//! Fault-injection end-to-end tests: real servers on loopback with a
//! `ServeConfig::faults` plan installed, driven by the blocking client.
//! Covers the acceptance scenario of the robustness work — a panic
//! injected into a solve stage answers `internal_error` and the *same
//! connection* keeps working — plus queue_full backoff with the server's
//! `retry_after_ms` hint, zero-deadline shedding, and server-side
//! `rkey` deduplication of racing retries.

use bsp_serve::client::{Client, RetryPolicy, SolveParams};
use bsp_serve::protocol::{codes, parse_line, read_line_capped, to_line, Frame, LineRead, Request};
use bsp_serve::server::{start, ServeConfig};
use std::io::Write;
use std::time::Duration;

const INSTANCE: &str = "layered?layers=4&width=6&q=0.3&seed=7 @ bsp?p=4&g=2&l=5";

fn faulty_server(threads: usize, queue_cap: usize, faults: &str) -> bsp_serve::ServerHandle {
    let mut cfg = ServeConfig::default();
    cfg.threads = threads;
    cfg.queue_cap = queue_cap;
    cfg.default_budget_ms = Some(1000);
    cfg.faults = Some(faults.to_string());
    start(cfg).expect("server binds a loopback port")
}

fn solve_params(instance: &str) -> SolveParams {
    let mut p = SolveParams::default();
    p.instance = instance.to_string();
    p.budget_ms = Some(500);
    p
}

/// The acceptance scenario: with `panic=1.0` scoped to exactly one job
/// execution, the worker pool catches the unwind, answers a typed
/// `internal_error`, and the next request on the very same connection is
/// served normally.
#[test]
fn injected_job_panic_answers_internal_error_and_connection_survives() {
    let handle = faulty_server(2, 64, "faults?seed=11&panic=1.0&only=job&max=1");
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client
        .solve(&solve_params(INSTANCE))
        .expect_err("the poisoned solve must fail");
    assert!(
        err.is_code(codes::INTERNAL_ERROR),
        "expected internal_error, got {err}"
    );

    // Same connection, same request: the fault budget is spent, the
    // worker that panicked was isolated, and the solve goes through.
    let ok = client.solve(&solve_params(INSTANCE)).unwrap();
    assert_eq!(ok.result.kind, "result");
    assert!(ok.result.cost.unwrap() > 0);

    // The failure was counted where operators look for it.
    let (_, metrics) = client.stats_with_metrics().unwrap();
    let failed = metrics
        .iter()
        .find(|m| m.name == "bsp_jobs_failed_total")
        .map_or(0, |m| m.value);
    assert!(failed >= 1, "bsp_jobs_failed_total missing or zero");
    handle.shutdown();
}

/// An injected I/O error in the job body is not a panic — it still
/// surfaces as a typed `internal_error` naming the injection.
#[test]
fn injected_job_io_error_is_a_typed_frame() {
    let handle = faulty_server(1, 64, "faults?seed=5&io_err=1.0&only=job&max=1");
    let mut client = Client::connect(handle.addr()).unwrap();
    let err = client.solve(&solve_params(INSTANCE)).expect_err("injected");
    assert!(err.is_code(codes::INTERNAL_ERROR), "got {err}");
    assert!(client.solve(&solve_params(INSTANCE)).is_ok());
    handle.shutdown();
}

/// Backpressure: with one worker wedged on an injected-slow job and a
/// one-slot queue, a third request answers `queue_full` carrying a
/// `retry_after_ms` hint, and the retrying client eventually lands it.
#[test]
fn queue_full_carries_retry_after_hint_and_retry_succeeds() {
    // The first two jobs sleep 400 ms each; later jobs run clean.
    let handle = faulty_server(1, 1, "faults?seed=2&slow=1.0&slow_ms=400&only=job&max=2");
    let addr = handle.addr();

    // Fill the worker and the queue from background connections. The
    // fillers are staggered: the first job must already be *popped* (and
    // wedged in its injected sleep) before the second is pushed, or the
    // second would transiently occupy the queue's only slot and drain.
    let mut fillers = Vec::new();
    for stagger_ms in [0u64, 150] {
        std::thread::sleep(Duration::from_millis(stagger_ms));
        fillers.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.solve(&solve_params(INSTANCE)).unwrap();
        }));
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(addr).unwrap();
    let mut p = solve_params(INSTANCE);
    p.seed = Some(999);
    let err = client.solve(&p).expect_err("queue must be full");
    assert!(err.is_code(codes::QUEUE_FULL), "got {err}");
    let hint = match &err {
        bsp_serve::ClientError::Server { retry_after_ms, .. } => *retry_after_ms,
        _ => None,
    };
    let hint = hint.expect("queue_full frame carries retry_after_ms");
    assert!((10..=5000).contains(&hint), "hint {hint} out of range");

    // The retry path honors the hint and keeps backing off until the
    // wedged jobs drain.
    let policy = RetryPolicy {
        max_retries: 12,
        base_ms: 50,
        cap_ms: 500,
        seed: 42,
    };
    let ok = client.solve_with_retry(&p, &policy).unwrap();
    assert!(ok.result.cost.unwrap() > 0);
    for f in fillers {
        f.join().unwrap();
    }
    handle.shutdown();
}

/// Deadline admission: a request whose deadline budget is already zero is
/// shed with the typed `deadline_shed` code instead of wasting a worker.
#[test]
fn zero_deadline_is_shed_at_admission() {
    let handle = faulty_server(1, 64, "faults?seed=1"); // no-op plan
    let mut client = Client::connect(handle.addr()).unwrap();

    let mut req = Request::new("solve");
    req.instance = Some(INSTANCE.to_string());
    req.deadline_ms = Some(0);
    let err = client.request(req).expect_err("must be shed");
    assert!(err.is_code(codes::DEADLINE_SHED), "got {err}");

    // A generous deadline sails through.
    let mut req = Request::new("solve");
    req.instance = Some(INSTANCE.to_string());
    req.budget_ms = Some(500);
    req.deadline_ms = Some(60_000);
    assert!(client.request(req).unwrap().result.cost.unwrap() > 0);
    handle.shutdown();
}

/// Idempotent retries: two pipelined requests with the same `rkey` — the
/// second arriving while the first is still in flight — are answered
/// from ONE job execution, each under its own correlation id.
#[test]
fn duplicate_rkey_attaches_to_the_inflight_job() {
    // Slow the (single) solve down so the duplicate reliably arrives
    // while it is in flight.
    let handle = faulty_server(1, 64, "faults?seed=3&slow=1.0&slow_ms=300&only=job&max=1");

    // Hand-rolled pipelining: the blocking client cannot keep two
    // requests in flight, so write both lines before reading any frame.
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);

    let mut req = Request::new("solve");
    req.instance = Some(INSTANCE.to_string());
    req.budget_ms = Some(500);
    req.rkey = Some("rk-dup-test".to_string());
    let mut lines = String::new();
    for id in 1..=2u64 {
        req.id = Some(id);
        lines.push_str(&to_line(&req));
        lines.push('\n');
    }
    writer.write_all(lines.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut read_frame = || -> Frame {
        match read_line_capped(&mut reader, 1 << 20).unwrap() {
            LineRead::Line(l) => parse_line(&l).unwrap(),
            other => panic!("expected a frame line, got {other:?}"),
        }
    };
    let a = read_frame();
    let b = read_frame();
    assert_eq!(a.kind, "result");
    assert_eq!(b.kind, "result");
    let mut ids = [a.id.unwrap(), b.id.unwrap()];
    ids.sort_unstable();
    assert_eq!(ids, [1, 2], "each duplicate is answered under its own id");
    assert_eq!(a.cost, b.cost, "one execution, one cost");

    // Exactly one job ran: the duplicate attached instead of re-solving.
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_done, 1, "rkey dedupe must not double-execute");
    handle.shutdown();
}
