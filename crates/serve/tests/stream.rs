//! End-to-end tests of the `stream_open`/`stream_push`/`stream_close`
//! protocol: a client pushes arrival-event frames and the server streams
//! back updated suffix schedules with a monotone commit frontier; the
//! committed prefix is never reassigned between frames; the final result
//! is a valid schedule of the full DAG. Also covers the `--store-cap`
//! LRU behaviour through the `stats` method.

use bsp_instance::trace::{arrival_trace, ArrivalEvent, ArrivalOrder, TraceConfig};
use bsp_instance::InstanceRegistry;
use bsp_schedule::validity::validate_lazy;
use bsp_schedule::BspSchedule;
use bsp_serve::client::{Client, SolveParams};
use bsp_serve::protocol::codes;
use bsp_serve::server::{start, ServeConfig};
use std::collections::HashMap;

const MACHINE: &str = "bsp?p=4&g=2&l=5";

fn test_server() -> bsp_serve::ServerHandle {
    let mut cfg = ServeConfig::default();
    cfg.threads = 2;
    cfg.default_budget_ms = Some(1000);
    start(cfg).expect("server binds a loopback port")
}

#[test]
fn stream_session_commits_monotonically_and_ends_valid() {
    let inst = InstanceRegistry::standard()
        .generate_one(
            &format!("layered?layers=5&width=5&q=0.3&seed=3 @ {MACHINE}"),
            3,
        )
        .unwrap();
    let tcfg = TraceConfig {
        order: ArrivalOrder::ShuffledReady,
        reveal_frac: 0.25,
        reveal_delay: 4,
        seed: 11,
    };
    let trace = arrival_trace(&inst.dag, "stream-test", &tcfg);

    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let opened = client.stream_open("s1", MACHINE, Some(50)).unwrap();
    assert_eq!(opened.kind, "stream");
    assert_eq!(opened.frontier, Some(0));

    // Push everything but the trailing Finalize, in small frames, and
    // track what each frame claims about the committed prefix.
    let body = &trace.events[..trace.events.len() - 1];
    let mut frontier = 0u64;
    let mut committed: HashMap<u32, (u32, u32)> = HashMap::new();
    for chunk in body.chunks(7) {
        let frame = client.stream_push("s1", chunk).unwrap();
        assert_eq!(frame.kind, "stream");
        let f = frame.frontier.unwrap();
        assert!(f >= frontier, "frontier retreated: {f} < {frontier}");
        frontier = f;
        let nodes = frame.suffix_nodes.unwrap();
        let procs = frame.suffix_procs.unwrap();
        let steps = frame.suffix_steps.unwrap();
        assert_eq!(nodes.len(), procs.len());
        assert_eq!(nodes.len(), steps.len());
        for i in 0..nodes.len() {
            // Everything in a suffix frame is tentative…
            assert!(steps[i] as u64 >= f, "suffix node below the frontier");
            // …and must not have been committed by an earlier frame.
            assert!(!committed.contains_key(&nodes[i]));
        }
        // Nodes that vanished from the suffix are now committed: remember
        // their final assignment (no later frame may contradict it — they
        // simply never reappear, checked above).
        let in_suffix: HashMap<u32, (u32, u32)> = nodes
            .iter()
            .zip(procs.iter().zip(steps.iter()))
            .map(|(&n, (&p, &s))| (n, (p, s)))
            .collect();
        committed.retain(|n, _| !in_suffix.contains_key(n));
        for (n, a) in in_suffix {
            if (a.1 as u64) < f {
                committed.insert(n, a);
            }
        }
    }

    let done = client.stream_close("s1").unwrap();
    assert_eq!(done.kind, "result");
    assert_eq!(done.arrivals, Some(inst.dag.n() as u64));
    let cost = done.cost.expect("final cost");
    assert!(cost > 0);

    // Rebuild the full assignment (trace-level = source-DAG ids) and
    // check it is a valid schedule of the original instance.
    let nodes = done.suffix_nodes.unwrap();
    let procs = done.suffix_procs.unwrap();
    let steps = done.suffix_steps.unwrap();
    assert_eq!(nodes.len(), inst.dag.n());
    let mut sched = BspSchedule::zeroed(inst.dag.n());
    for i in 0..nodes.len() {
        sched.set(nodes[i], procs[i], steps[i]);
    }
    assert!(validate_lazy(&inst.dag, 4, &sched).is_ok());

    // The session is gone after close.
    let err = client.stream_push(
        "s1",
        &[ArrivalEvent::Arrive {
            node: 0,
            work: 1,
            comm: 1,
            deps: vec![],
        }],
    );
    assert!(err.unwrap_err().is_code(codes::UNKNOWN_SESSION));
    handle.shutdown();
}

#[test]
fn stream_protocol_error_paths_are_typed() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown session, missing fields, bad machine spec.
    assert!(client
        .stream_push("ghost", &[ArrivalEvent::Finalize])
        .unwrap_err()
        .is_code(codes::UNKNOWN_SESSION));
    assert!(client
        .stream_close("ghost")
        .unwrap_err()
        .is_code(codes::UNKNOWN_SESSION));
    assert!(client
        .stream_open("s", "bsp?p=not-a-number", None)
        .unwrap_err()
        .is_code(codes::BAD_SPEC));
    // Memory-bounded machines are rejected at open.
    assert!(client
        .stream_open("s", "bsp?p=2&mem=64", None)
        .unwrap_err()
        .is_code(codes::BAD_SPEC));

    client.stream_open("s", "bsp?p=2", None).unwrap();
    // Re-opening the same session is an error.
    assert!(client
        .stream_open("s", "bsp?p=2", None)
        .unwrap_err()
        .is_code(codes::BAD_SPEC));
    // A bad event (unknown dependency) is typed, not fatal to the socket.
    assert!(client
        .stream_push(
            "s",
            &[ArrivalEvent::Arrive {
                node: 1,
                work: 1,
                comm: 1,
                deps: vec![99],
            }]
        )
        .unwrap_err()
        .is_code(codes::BAD_EVENT));
    handle.shutdown();
}

#[test]
fn store_cap_evicts_and_reports_through_stats() {
    let mut cfg = ServeConfig::default();
    cfg.threads = 1;
    cfg.default_budget_ms = Some(500);
    cfg.store_cap = Some(2);
    let handle = start(cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    for seed in [1u64, 2, 3] {
        let mut p = SolveParams::default();
        p.instance = format!("layered?layers=3&width=3&q=0.3&seed={seed} @ {MACHINE}");
        p.budget_ms = Some(200);
        let r = client.solve(&p).unwrap();
        assert_eq!(r.result.cache_hit, Some(false));
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.cached_results, 2, "cap bounds the store");
    assert_eq!(stats.evictions, 1, "one entry was evicted");
    handle.shutdown();
}
