//! Chaos replay: the whole point of *deterministic* fault injection is
//! that a chaos run is a pure function of its seed. This test runs the
//! same single-threaded request sequence against two fresh servers
//! configured with the identical fault plan and asserts the surviving
//! results are bit-identical — same costs, in the same order — even
//! though panics, injected I/O errors and slowdowns fired along the way.

use bsp_serve::client::{Client, ClientError, SolveParams};
use bsp_serve::protocol::codes;
use bsp_serve::server::{start, ServeConfig};
use std::time::Duration;

/// Every fault kind, scoped to the deterministic single-worker sites
/// (job bodies and the in-solve `par`/store hooks). The connection
/// sites (`read`/`write`) are exercised by the CI chaos-smoke run
/// instead: their draw streams are deterministic too, but client-side
/// timeout recovery makes wall-clock assertions flaky in a unit test.
const PLAN: &str =
    "faults?seed=23&io_err=0.15&panic=0.1&slow=0.2&slow_ms=2&only=job,par,store.load,store.save";

/// Requests per run: enough draws that every kind fires at seed 23.
const REQUESTS: u64 = 12;

fn chaos_server() -> bsp_serve::ServerHandle {
    let mut cfg = ServeConfig::default();
    cfg.threads = 1; // one worker: a totally ordered job stream
    cfg.default_budget_ms = Some(1000);
    cfg.faults = Some(PLAN.to_string());
    start(cfg).expect("server binds a loopback port")
}

/// Drives one full run: a fixed rotation of solve requests, each retried
/// past injected `internal_error` answers until it succeeds. Returns the
/// final cost of every request, in order.
fn run_once() -> Vec<u64> {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_op_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let mut costs = Vec::new();
    for i in 0..REQUESTS {
        let mut p = SolveParams::default();
        p.instance = format!(
            "layered?layers=3&width=4&q=0.3&seed={} @ bsp?p=4&g=2&l=5",
            i % 4
        );
        p.budget_ms = Some(500);
        let mut attempts = 0;
        let cost = loop {
            attempts += 1;
            assert!(attempts <= 50, "request {i} never succeeded under {PLAN}");
            match client.solve(&p) {
                Ok(resp) => break resp.result.cost.expect("result carries a cost"),
                Err(e) if e.is_code(codes::INTERNAL_ERROR) => continue,
                Err(ClientError::Io(_)) => {
                    client = Client::connect(handle.addr()).unwrap();
                }
                Err(e) => panic!("unexpected error under chaos: {e}"),
            }
        };
        costs.push(cost);
    }
    handle.shutdown();
    costs
}

#[test]
fn same_seed_same_results_across_two_chaos_runs() {
    let first = run_once();
    let second = run_once();
    assert_eq!(
        first, second,
        "chaos runs at the same fault seed must be bit-identical"
    );
    assert_eq!(first.len() as u64, REQUESTS);
    assert!(first.iter().all(|&c| c > 0));
}
