//! Graceful-shutdown tests: a shutdown request drains the queue through
//! the shared cancel token (queued jobs still answer with *valid*
//! best-so-far schedules), the result store is flushed to disk, and a
//! restarted server serves the persisted results as cache hits.

use bsp_serve::cache::ResultStore;
use bsp_serve::client::{Client, SolveParams};
use bsp_serve::protocol::{parse_line, Frame};
use bsp_serve::server::{start, ServeConfig};
use std::io::Write;

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bsp-serve-shutdown-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.json"));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn shutdown_drains_queue_and_flushes_store() {
    let store_path = temp_store("drain");
    let mut cfg = ServeConfig::default();
    cfg.threads = 1;
    cfg.store_path = Some(store_path.clone());
    let handle = start(cfg).unwrap();

    // Burst three solves followed by a shutdown on the raw socket: the
    // reader enqueues all three, then begins the shutdown — so the jobs
    // drain under an already-cancelled budget and must still answer with
    // valid (best-so-far) schedules.
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let specs = [
        (
            "layered?layers=4&width=6&seed=1 @ bsp?p=4",
            "pipeline/base?ilp=off",
        ),
        ("layered?layers=4&width=6&seed=2 @ bsp?p=4", "etf"),
        ("forkjoin?chains=3&depth=2&stages=2 @ bsp?p=2", "init/bspg"),
    ];
    let mut lines = String::new();
    for (i, (inst, sched)) in specs.iter().enumerate() {
        lines.push_str(&format!(
            "{{\"method\":\"solve\",\"id\":{},\"instance\":\"{inst}\",\"sched\":\"{sched}\",\"budget_ms\":60000}}\n",
            i + 1
        ));
    }
    lines.push_str("{\"method\":\"shutdown\",\"id\":99}\n");
    writer.write_all(lines.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut results = 0;
    let mut saw_bye = false;
    for _ in 0..4 {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        let frame: Frame = parse_line(&line).unwrap();
        match frame.kind.as_str() {
            "bye" => saw_bye = true,
            "result" => {
                assert!(frame.cost.unwrap() > 0, "drained job returned no schedule");
                results += 1;
            }
            other => panic!("unexpected frame kind {other:?}: {line}"),
        }
    }
    assert!(saw_bye);
    assert_eq!(results, 3, "all queued jobs must drain to valid results");

    let stats = handle.wait();
    assert_eq!(stats.jobs_done, 3);

    // The store was flushed to disk with all three results.
    let store = ResultStore::load(&store_path).unwrap();
    assert_eq!(store.stats().len, 3);
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn persisted_store_survives_restart_as_cache_hits() {
    let store_path = temp_store("restart");
    let spec = "layered?layers=3&width=4&seed=5 @ bsp?p=2";

    let mut cfg = ServeConfig::default();
    cfg.threads = 1;
    cfg.store_path = Some(store_path.clone());
    let handle = start(cfg.clone()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut params = SolveParams::default();
    params.instance = spec.to_string();
    params.budget_ms = Some(500);
    let cold = client.solve(&params).unwrap();
    assert_eq!(cold.result.cache_hit, Some(false));
    client.shutdown().unwrap();
    handle.wait();

    // Same store, fresh server: the very first request is a cache hit.
    let handle = start(cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let hit = client.solve(&params).unwrap();
    assert_eq!(hit.result.cache_hit, Some(true));
    assert_eq!(hit.result.cost, cold.result.cost);
    handle.shutdown();
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn begin_shutdown_rejects_new_work_with_typed_error() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    handle.begin_shutdown();
    assert!(handle.is_shutting_down());
    let mut params = SolveParams::default();
    params.instance = "forkjoin @ bsp?p=2".to_string();
    let err = client.solve(&params).unwrap_err();
    assert!(
        err.is_code(bsp_serve::codes::SHUTTING_DOWN),
        "expected shutting_down, got {err}"
    );
    handle.wait();
}
