//! Crash-safety properties of the v2 result store: whatever a crash or a
//! bad disk does to the file — truncation at an arbitrary byte, a
//! flipped byte anywhere — loading never aborts, every entry that *is*
//! served is bit-identical to an entry that was saved, and anything the
//! checksums reject lands in the `.corrupt` quarantine file.

use bsp_serve::cache::{CachedResult, ResultStore};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

/// A small store of `n` distinct entries with value-bearing payloads.
fn build_store(n: usize, salt: u64) -> (ResultStore, HashMap<String, CachedResult>) {
    let mut store = ResultStore::new();
    let mut originals = HashMap::new();
    for i in 0..n {
        let entry = CachedResult {
            instance: format!("spmv?n={}&seed={salt}", 100 + i),
            machine: "bsp?p=4&g=2".to_string(),
            sched: "pipeline/base?ilp=off".to_string(),
            cost: salt.wrapping_mul(31).wrapping_add(i as u64) % 10_000 + 1,
            procs: (0..4).map(|p| ((p + i) % 4) as u32).collect(),
            steps: (0..4).map(|s| (s % 3) as u32).collect(),
        };
        originals.insert(entry.key().composite(), entry.clone());
        store.insert(entry);
    }
    (store, originals)
}

/// A unique scratch path per proptest case so parallel test binaries and
/// shrinking iterations never collide.
fn scratch(tag: &str, a: u64, b: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("bsp-serve-store-v2-prop");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}-{}-{a}-{b}.store", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(format!("{}.corrupt", path.display()));
}

/// Served entries must be bit-identical to saved ones: corruption may
/// *lose* data (into quarantine), never *alter* what comes back.
fn assert_served_subset(loaded: &ResultStore, originals: &HashMap<String, CachedResult>) {
    for (key, original) in originals {
        if let Some(served) = loaded.peek(&original.key()) {
            assert_eq!(served, original, "entry {key} came back altered");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at ANY byte offset — mid-header, mid-entry, mid-checksum
    /// — loads without error; complete surviving lines are served intact
    /// and the torn tail (if any) is quarantined.
    #[test]
    fn truncation_never_aborts_and_intact_entries_survive(
        n in 1usize..6,
        salt in 0u64..1000,
        cut_frac in 0.0f64..1.0,
    ) {
        let path = scratch("trunc", salt, (cut_frac * 1e6) as u64);
        cleanup(&path);
        let (mut store, originals) = build_store(n, salt);
        store.save(&path).expect("save a clean store");

        let bytes = std::fs::read(&path).expect("read saved store");
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let loaded = ResultStore::load(&path).expect("truncated load must not abort");
        let stats = loaded.stats();
        prop_assert!(stats.len as usize <= n);
        assert_served_subset(&loaded, &originals);
        // A torn (non-empty, partial) tail is accounted for: either every
        // entry survived, or something was counted corrupt, or the cut
        // fell exactly on a line boundary and whole lines vanished.
        if stats.corrupt > 0 {
            let q = std::fs::read_to_string(format!("{}.corrupt", path.display()))
                .expect("quarantine file exists when corrupt > 0");
            prop_assert!(!q.trim().is_empty());
        }
        cleanup(&path);
    }

    /// A single flipped byte anywhere in the file loads without error;
    /// the checksum rejects the damaged line (or the damaged header
    /// quarantines the document) and every untouched entry is served.
    #[test]
    fn bit_flip_is_quarantined_and_the_rest_served(
        n in 1usize..6,
        salt in 0u64..1000,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..255,
    ) {
        let path = scratch("flip", salt, (pos_frac * 1e6) as u64 + flip as u64);
        cleanup(&path);
        let (mut store, originals) = build_store(n, salt);
        store.save(&path).expect("save a clean store");

        let mut bytes = std::fs::read(&path).expect("read saved store");
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip; // flip != 0: the byte really changes
        std::fs::write(&path, &bytes).expect("write corrupted store");

        let loaded = ResultStore::load(&path).expect("bit-flipped load must not abort");
        let stats = loaded.stats();
        assert_served_subset(&loaded, &originals);
        // One flipped byte damages at most two lines (flipping a
        // newline merges neighbours); everything else must survive —
        // unless the header itself was hit, which quarantines the
        // whole document.
        let header_hit = stats.len == 0 && stats.corrupt == 1;
        prop_assert!(
            header_hit || stats.len as usize >= n.saturating_sub(2),
            "lost too much to one byte: len={} corrupt={} n={n}",
            stats.len,
            stats.corrupt,
        );
        prop_assert!(
            stats.corrupt >= 1,
            "a changed byte must be detected somewhere (len={} n={n})",
            stats.len,
        );
        cleanup(&path);
    }

    /// Reload after re-saving a corrupted store round-trips exactly: the
    /// survivors are a valid v2 store in their own right.
    #[test]
    fn resave_after_corruption_round_trips(
        n in 1usize..6,
        salt in 0u64..1000,
        cut_frac in 0.3f64..1.0,
    ) {
        let path = scratch("resave", salt, (cut_frac * 1e6) as u64);
        cleanup(&path);
        let (mut store, originals) = build_store(n, salt);
        store.save(&path).expect("save a clean store");

        let bytes = std::fs::read(&path).expect("read saved store");
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let mut survivor = ResultStore::load(&path).expect("load survivors");
        let survivors = survivor.stats().len;
        survivor.save(&path).expect("re-save survivors");
        let reloaded = ResultStore::load(&path).expect("reload the re-save");
        prop_assert_eq!(reloaded.stats().len, survivors);
        prop_assert_eq!(reloaded.stats().corrupt, 0, "re-saved store is clean");
        assert_served_subset(&reloaded, &originals);
        cleanup(&path);
    }
}
