//! End-to-end smoke tests: one real server on loopback per test, driven
//! by the blocking client. Covers the cold → cached → delta lifecycle,
//! streamed progress events and every typed protocol-error path.

use bsp_instance::DagEdit;
use bsp_serve::client::{Client, DeltaParams, SolveParams};
use bsp_serve::protocol::codes;
use bsp_serve::server::{start, ServeConfig};

const INSTANCE: &str = "layered?layers=4&width=6&q=0.3&seed=7 @ bsp?p=4&g=2&l=5";

fn test_server() -> bsp_serve::ServerHandle {
    let mut cfg = ServeConfig::default();
    cfg.threads = 2;
    cfg.default_budget_ms = Some(1000);
    start(cfg).expect("server binds a loopback port")
}

fn solve_params(budget_ms: u64) -> SolveParams {
    let mut p = SolveParams::default();
    p.instance = INSTANCE.to_string();
    p.budget_ms = Some(budget_ms);
    p
}

#[test]
fn cold_solve_then_cache_hit() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    let cold = client.solve(&solve_params(500)).unwrap();
    assert_eq!(cold.result.kind, "result");
    assert_eq!(cold.result.cache_hit, Some(false));
    let cost = cold.result.cost.expect("cold solve reports a cost");
    assert!(cost > 0);
    assert!(cold.result.stages.as_ref().is_some_and(|s| !s.is_empty()));

    // The same request again — now a pure lookup, same cost, no stages.
    let hit = client.solve(&solve_params(500)).unwrap();
    assert_eq!(hit.result.cache_hit, Some(true));
    assert_eq!(hit.result.cost, Some(cost));
    assert!(hit.result.stages.is_none());

    // Parameter order must not matter: same canonical key.
    let mut reordered = solve_params(500);
    reordered.instance = "layered?width=6&layers=4&seed=7&q=0.3 @ bsp?g=2&l=5&p=4".to_string();
    let hit2 = client.solve(&reordered).unwrap();
    assert_eq!(hit2.result.cache_hit, Some(true));
    assert_eq!(hit2.result.cost, Some(cost));

    let stats = client.stats().unwrap();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.cached_results, 1);
    handle.shutdown();
}

#[test]
fn stats_carries_metrics_and_sidecar_serves_them() {
    use std::io::{Read, Write};

    let mut cfg = ServeConfig::default();
    cfg.threads = 2;
    cfg.default_budget_ms = Some(1000);
    cfg.metrics_addr = Some("127.0.0.1:0".to_string());
    let handle = start(cfg).unwrap();
    let sidecar = handle.metrics_addr().expect("sidecar was configured");
    let mut client = Client::connect(handle.addr()).unwrap();

    // Cold solve then a guaranteed hit, so the counters have signal.
    let mut p = solve_params(300);
    p.instance = "forkjoin?chains=2&depth=2&stages=2 @ bsp?p=2".to_string();
    assert_eq!(client.solve(&p).unwrap().result.cache_hit, Some(false));
    assert_eq!(client.solve(&p).unwrap().result.cache_hit, Some(true));

    // The stats frame carries a flat metrics snapshot. Metrics are
    // process-wide (shared by every server in this test binary), so
    // assert lower bounds, not exact counts.
    let (_, metrics) = client.stats_with_metrics().unwrap();
    let value = |name: &str| {
        metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing from {metrics:?}"))
            .value
    };
    assert!(value("bsp_serve_cache_hits_total") >= 1);
    assert!(value("bsp_serve_cache_misses_total") >= 1);
    assert!(value("bsp_serve_cold_solves_total") >= 1);
    assert!(value("bsp_serve_requests_total{method=\"solve\"}") >= 2);
    assert!(value("bsp_serve_queue_depth") >= 0);

    // The sidecar serves the same registry as Prometheus text.
    let mut s = std::net::TcpStream::connect(sidecar).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"));
    assert!(body.contains("# TYPE bsp_serve_cache_hits_total counter"));
    assert!(body.contains("# TYPE bsp_serve_request_duration_us histogram"));
    assert!(body.contains("bsp_serve_request_duration_us_bucket"));

    // And the trace endpoint is Chrome trace-event JSON with the
    // pipeline spans the cold solve just recorded.
    let mut s = std::net::TcpStream::connect(sidecar).unwrap();
    s.write_all(b"GET /trace HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut trace = String::new();
    s.read_to_string(&mut trace).unwrap();
    assert!(trace.starts_with("HTTP/1.1 200 OK"));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("pipeline/base"));

    handle.shutdown();
}

#[test]
fn delta_resolve_warm_starts_from_cached_base() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    let cold = client.solve(&solve_params(1000)).unwrap();
    let canonical = cold.result.instance.clone().unwrap();

    let mut delta = DeltaParams::default();
    delta.base = canonical.clone();
    delta.budget_ms = Some(1000);
    delta.edits = vec![DagEdit::AddNode {
        work: 5,
        comm: 2,
        preds: vec![0],
        succs: vec![],
    }];
    let warm = client.delta(&delta).unwrap();
    assert_eq!(warm.result.kind, "result");
    assert_eq!(warm.result.warm, Some(true), "base schedule was cached");
    assert_eq!(warm.result.cache_hit, Some(false));
    let warm_cost = warm.result.cost.unwrap();
    let warm_init = warm.result.warm_init_cost.unwrap();
    assert!(
        warm_cost <= warm_init,
        "monotone guarantee: {warm_cost} > repaired start {warm_init}"
    );

    // The edited instance is cached under its derived name and can chain.
    let derived = warm.result.instance.clone().unwrap();
    assert_ne!(derived, canonical);
    let mut chained = DeltaParams::default();
    chained.base = derived.clone();
    chained.budget_ms = Some(1000);
    chained.edits = vec![DagEdit::SetWeights {
        node: 0,
        work: Some(50),
        comm: None,
    }];
    let second = client.delta(&chained).unwrap();
    assert_eq!(second.result.warm, Some(true));

    // Re-sending the identical delta is itself a cache hit.
    let replay = client.delta(&delta).unwrap();
    assert_eq!(replay.result.cache_hit, Some(true));
    assert_eq!(replay.result.cost, Some(warm_cost));
    handle.shutdown();
}

#[test]
fn delta_without_cached_base_schedule_falls_back_cold() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Solve under scheduler A; delta under scheduler B has no cached
    // base schedule for B → valid result, warm = false.
    let mut p = solve_params(500);
    p.sched = Some("init/bspg".to_string());
    let cold = client.solve(&p).unwrap();
    let canonical = cold.result.instance.clone().unwrap();

    let mut delta = DeltaParams::default();
    delta.base = canonical;
    delta.budget_ms = Some(500);
    delta.sched = Some("etf".to_string());
    delta.edits = vec![DagEdit::RemoveNode { node: 0 }];
    let resp = client.delta(&delta).unwrap();
    assert_eq!(resp.result.warm, Some(false));
    assert!(resp.result.cost.unwrap() > 0);
    handle.shutdown();
}

#[test]
fn streamed_events_arrive_before_result() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    let mut p = solve_params(1000);
    p.stream = true;
    let resp = client.solve(&p).unwrap();
    assert_eq!(resp.result.cache_hit, Some(false));
    assert!(
        !resp.events.is_empty(),
        "streaming solve produced no events"
    );
    assert!(resp.events.iter().any(|e| e.kind == "stage_start"));
    assert!(resp.events.iter().any(|e| e.kind == "stage_end"));
    handle.shutdown();
}

#[test]
fn typed_protocol_errors() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown method.
    let err = client
        .request(bsp_serve::Request::new("frobnicate"))
        .unwrap_err();
    assert!(err.is_code(codes::UNKNOWN_METHOD), "{err}");

    // Bad JSON gets a typed error, and the connection survives it.
    let frame = client.raw_roundtrip("{not json at all").unwrap();
    assert_eq!(frame.error.as_deref(), Some(codes::BAD_JSON));
    client
        .ping()
        .expect("connection still usable after bad_json");

    // Bad instance spec.
    let mut p = SolveParams::default();
    p.instance = "no-such-family?x=1 @ bsp?p=2".to_string();
    let err = client.solve(&p).unwrap_err();
    assert!(err.is_code(codes::BAD_SPEC), "{err}");

    // Bad scheduler spec.
    let mut p = solve_params(200);
    p.sched = Some("no-such-scheduler".to_string());
    let err = client.solve(&p).unwrap_err();
    assert!(err.is_code(codes::BAD_SPEC), "{err}");

    // Missing required field.
    let err = client
        .request(bsp_serve::Request::new("solve"))
        .unwrap_err();
    assert!(err.is_code(codes::MISSING_FIELD), "{err}");

    // Delta against a base the server has never seen.
    let mut d = DeltaParams::default();
    d.base = "never-solved?n=1 @ bsp?p=2".to_string();
    d.edits = vec![DagEdit::RemoveNode { node: 0 }];
    let err = client.delta(&d).unwrap_err();
    assert!(err.is_code(codes::UNKNOWN_BASE), "{err}");

    // Delta with an empty edit list.
    let mut req = bsp_serve::Request::new("delta");
    req.base = Some("x @ y".to_string());
    req.edits = Some(vec![]);
    let err = client.request(req).unwrap_err();
    assert!(err.is_code(codes::MISSING_FIELD), "{err}");

    // An edit that cannot apply (cycle) after solving a real base.
    client.solve(&solve_params(300)).unwrap();
    let mut d = DeltaParams::default();
    d.base = INSTANCE.to_string();
    d.edits = vec![DagEdit::AddEdge { from: 0, to: 0 }];
    let err = client.delta(&d).unwrap_err();
    assert!(err.is_code(codes::BAD_EDIT), "{err}");

    handle.shutdown();
}

#[test]
fn oversize_line_is_rejected_with_typed_error() {
    let mut cfg = ServeConfig::default();
    cfg.threads = 1;
    cfg.max_line = 256;
    let handle = start(cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let huge = format!("{{\"method\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(512));
    let frame = client.raw_roundtrip(&huge).unwrap();
    assert_eq!(frame.error.as_deref(), Some(codes::OVERSIZE_LINE));
    handle.shutdown();
}

#[test]
fn queue_full_is_reported_not_dropped() {
    let mut cfg = ServeConfig::default();
    cfg.threads = 1;
    cfg.queue_cap = 1;
    let handle = start(cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Saturate the single worker with a slow solve, then fill the
    // one-slot queue, then overflow it. Raw writes: the blocking client
    // API would wait for responses.
    let slow =
        format!("{{\"method\":\"solve\",\"id\":1,\"instance\":\"{INSTANCE}\",\"budget_ms\":600}}");
    let queued = format!(
        "{{\"method\":\"solve\",\"id\":2,\"instance\":\"{INSTANCE}\",\"budget_ms\":600,\"sched\":\"etf\"}}"
    );
    let overflow = format!(
        "{{\"method\":\"solve\",\"id\":3,\"instance\":\"{INSTANCE}\",\"budget_ms\":600,\"sched\":\"init/bspg\"}}"
    );
    // Burst all three lines; at least the last must be rejected as
    // queue_full (worker may or may not have grabbed the first yet).
    let burst = format!("{slow}\n{queued}\n{overflow}");
    let frame = client.raw_roundtrip(&burst).unwrap();
    let mut saw_queue_full = frame.error.as_deref() == Some(codes::QUEUE_FULL);
    // Drain remaining frames until every request is answered.
    for _ in 0..2 {
        if let Ok(f) = client.raw_roundtrip("") {
            saw_queue_full |= f.error.as_deref() == Some(codes::QUEUE_FULL);
        }
    }
    assert!(saw_queue_full, "no queue_full frame for the overflow burst");
    handle.shutdown();
}
