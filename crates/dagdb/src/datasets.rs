//! Dataset assembly (Appendix B.3).
//!
//! The paper builds size-stratified test sets:
//!
//! | set      | node range        | fine-grained content                          |
//! |----------|-------------------|-----------------------------------------------|
//! | training | 15 … 1950         | 10 assorted instances                         |
//! | tiny     | [40, 80]          | 3 positions × 4 generators                    |
//! | small    | [250, 500]        | 3 positions × (spmv + deep/wide × 3 others)   |
//! | medium   | [1000, 2000]      | as small                                      |
//! | large    | [5000, 10000]     | as small                                      |
//! | huge     | [50000, 100000]   | 1 spmv + 2 each of exp/cg/knn                 |
//!
//! plus every coarse-grained trace whose size falls into the interval.
//! A `scale` factor shrinks the intervals proportionally so the full
//! experiment pipeline stays laptop-sized; `scale = 1.0` reproduces the
//! paper's sizes.

use crate::coarse::algorithms::{
    bicgstab, cg as coarse_cg, k_hop, label_propagation, link_matrix, pagerank, spd_matrix,
    Iterations,
};
use crate::coarse::Ctx;
use crate::fine::{cg_dag, exp_dag, knn_dag, spmv_dag};
use crate::matrix::SparsePattern;
use bsp_dag::Dag;

/// A named benchmark instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Human-readable name, e.g. `fine/cg/deep/mid`.
    pub name: String,
    /// The computational DAG.
    pub dag: Dag,
}

/// The five evaluation datasets plus the training set size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// `n ∈ [40, 80]` (× scale).
    Tiny,
    /// `n ∈ [250, 500]`.
    Small,
    /// `n ∈ [1000, 2000]`.
    Medium,
    /// `n ∈ [5000, 10000]`.
    Large,
    /// `n ∈ [50000, 100000]`.
    Huge,
}

impl DatasetKind {
    /// Paper node-count interval for this dataset.
    pub fn interval(self) -> (usize, usize) {
        match self {
            DatasetKind::Tiny => (40, 80),
            DatasetKind::Small => (250, 500),
            DatasetKind::Medium => (1000, 2000),
            DatasetKind::Large => (5000, 10000),
            DatasetKind::Huge => (50000, 100000),
        }
    }

    /// All kinds in ascending size order.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::Tiny,
            DatasetKind::Small,
            DatasetKind::Medium,
            DatasetKind::Large,
            DatasetKind::Huge,
        ]
    }

    /// Display name (lowercase, as in the paper).
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Tiny => "tiny",
            DatasetKind::Small => "small",
            DatasetKind::Medium => "medium",
            DatasetKind::Large => "large",
            DatasetKind::Huge => "huge",
        }
    }
}

/// Grows a generator parameter until the produced DAG lands in
/// `[lo, hi]`; the generator must be monotone in its parameter. Returns
/// `None` if the interval cannot be hit (degenerate at tiny scales).
fn fit<F: Fn(usize) -> Dag>(lo: usize, hi: usize, start: usize, make: F) -> Option<Dag> {
    let mut param = start.max(2);
    let mut best: Option<Dag> = None;
    for _ in 0..40 {
        let d = make(param);
        if d.n() >= lo && d.n() <= hi {
            return Some(d);
        }
        if d.n() > hi {
            break;
        }
        best = Some(d);
        param = (param as f64 * 1.3).ceil() as usize + 1;
    }
    // Fine-tune downward from the overshoot by binary search.
    let mut lo_p = start.max(2);
    let mut hi_p = param;
    for _ in 0..30 {
        if hi_p <= lo_p + 1 {
            break;
        }
        let mid = (lo_p + hi_p) / 2;
        let d = make(mid);
        if d.n() < lo {
            lo_p = mid;
        } else if d.n() > hi {
            hi_p = mid;
        } else {
            return Some(d);
        }
    }
    best.filter(|d| d.n() >= lo && d.n() <= hi)
}

/// Target positions within an interval: beginning, middle, end.
fn positions(lo: usize, hi: usize) -> [(usize, usize, &'static str); 3] {
    let third = (hi - lo) / 3;
    [
        (lo, lo + third, "begin"),
        (lo + third, hi - third, "mid"),
        (hi - third, hi, "end"),
    ]
}

/// The 10-instance fine-grained training set (n ranging ≈15…1950 at
/// `scale = 1`).
pub fn training_set(scale: f64) -> Vec<Instance> {
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(4);
    let mut out = Vec::new();
    let specs: [(&str, Box<dyn Fn() -> Dag>); 10] = [
        (
            "train/spmv/0",
            Box::new(move || spmv_dag(&SparsePattern::random(s(6), 0.35, 100))),
        ),
        (
            "train/spmv/1",
            Box::new(move || spmv_dag(&SparsePattern::random(s(16), 0.25, 101))),
        ),
        (
            "train/spmv/2",
            Box::new(move || spmv_dag(&SparsePattern::random(s(40), 0.15, 102))),
        ),
        (
            "train/exp/0",
            Box::new(move || exp_dag(&SparsePattern::random(s(8), 0.3, 103), 3)),
        ),
        (
            "train/exp/1",
            Box::new(move || exp_dag(&SparsePattern::random(s(20), 0.2, 104), 5)),
        ),
        (
            "train/cg/0",
            Box::new(move || cg_dag(&SparsePattern::random_with_diagonal(s(8), 0.3, 105), 2)),
        ),
        (
            "train/cg/1",
            Box::new(move || cg_dag(&SparsePattern::random_with_diagonal(s(20), 0.2, 106), 4)),
        ),
        (
            "train/knn/0",
            Box::new(move || knn_dag(&SparsePattern::random_with_diagonal(s(12), 0.3, 107), 0, 3)),
        ),
        (
            "train/knn/1",
            Box::new(move || knn_dag(&SparsePattern::random_with_diagonal(s(30), 0.15, 108), 0, 5)),
        ),
        (
            "train/exp/2",
            Box::new(move || exp_dag(&SparsePattern::random(s(32), 0.12, 109), 8)),
        ),
    ];
    for (name, make) in specs {
        out.push(Instance {
            name: name.to_string(),
            dag: make(),
        });
    }
    out
}

/// Builds a dataset at the given scale (`1.0` = paper sizes). Fully
/// deterministic for a fixed `(kind, scale)`.
pub fn dataset(kind: DatasetKind, scale: f64) -> Vec<Instance> {
    let (lo_raw, hi_raw) = kind.interval();
    let lo = ((lo_raw as f64 * scale).round() as usize).max(8);
    let hi = ((hi_raw as f64 * scale).round() as usize).max(lo + 8);
    let mut out = Vec::new();

    if kind == DatasetKind::Huge {
        // 1 spmv + 2 each of exp/cg/knn + coarse traces in range.
        let mid = (lo + hi) / 2;
        // Densities are clamped like in the sized sets below: `fit` probes
        // small n first, where `c / n` exceeds 1 at aggressive scales.
        push_fit(&mut out, "fine/spmv/huge", lo, hi, mid / 40, |n| {
            spmv_dag(&SparsePattern::random(n, (18.0 / n as f64).min(0.5), 900))
        });
        for (i, k) in [4usize, 10].iter().enumerate() {
            let k = *k;
            push_fit(
                &mut out,
                &format!("fine/exp/huge{i}"),
                lo,
                hi,
                mid / (30 * k),
                move |n| {
                    exp_dag(
                        &SparsePattern::random(n, (12.0 / n as f64).min(0.5), 901 + i as u64),
                        k,
                    )
                },
            );
            push_fit(
                &mut out,
                &format!("fine/cg/huge{i}"),
                lo,
                hi,
                mid / (80 * k),
                move |n| {
                    cg_dag(
                        &SparsePattern::random_with_diagonal(
                            n,
                            (8.0 / n as f64).min(0.5),
                            903 + i as u64,
                        ),
                        k,
                    )
                },
            );
            push_fit(
                &mut out,
                &format!("fine/knn/huge{i}"),
                lo,
                hi,
                mid / (20 * k),
                move |n| {
                    knn_dag(
                        &SparsePattern::random_with_diagonal(
                            n,
                            (14.0 / n as f64).min(0.6),
                            905 + i as u64,
                        ),
                        0,
                        k,
                    )
                },
            );
        }
        out.extend(coarse_in_range(lo, hi, scale));
        return out;
    }

    for (plo, phi, pos) in positions(lo, hi) {
        // spmv: one instance per position.
        push_fit(
            &mut out,
            &format!("fine/spmv/{pos}"),
            plo,
            phi,
            plo / 30 + 2,
            move |n| spmv_dag(&SparsePattern::random(n, (10.0 / n as f64).min(0.5), 200)),
        );
        // exp/cg/knn: deep and wide variants (tiny: only wide, matching the
        // paper's 12-instance tiny set).
        let variants: &[(&str, usize)] = if kind == DatasetKind::Tiny {
            &[("wide", 2)]
        } else {
            &[("wide", 2), ("deep", 6)]
        };
        for &(variant, k) in variants {
            push_fit(
                &mut out,
                &format!("fine/exp/{variant}/{pos}"),
                plo,
                phi,
                3,
                move |n| exp_dag(&SparsePattern::random(n, (6.0 / n as f64).min(0.5), 300), k),
            );
            push_fit(
                &mut out,
                &format!("fine/cg/{variant}/{pos}"),
                plo,
                phi,
                3,
                move |n| {
                    cg_dag(
                        &SparsePattern::random_with_diagonal(n, (4.0 / n as f64).min(0.5), 400),
                        k,
                    )
                },
            );
            push_fit(
                &mut out,
                &format!("fine/knn/{variant}/{pos}"),
                plo,
                phi,
                3,
                move |n| {
                    knn_dag(
                        &SparsePattern::random_with_diagonal(n, (8.0 / n as f64).min(0.6), 500),
                        0,
                        k + 1,
                    )
                },
            );
        }
    }
    out.extend(coarse_in_range(lo, hi, scale));
    out
}

fn push_fit<F: Fn(usize) -> Dag>(
    out: &mut Vec<Instance>,
    name: &str,
    lo: usize,
    hi: usize,
    start: usize,
    make: F,
) {
    if let Some(dag) = fit(lo, hi, start, make) {
        out.push(Instance {
            name: name.to_string(),
            dag,
        });
    }
}

/// All coarse-grained traces whose extracted DAG size lies in `[lo, hi]`.
fn coarse_in_range(lo: usize, hi: usize, scale: f64) -> Vec<Instance> {
    let mut out = Vec::new();
    for (name, dag) in coarse_catalog(scale) {
        if dag.n() >= lo && dag.n() <= hi {
            out.push(Instance { name, dag });
        }
    }
    out
}

/// The catalogue of coarse-grained traces, generated at several problem
/// sizes (mirroring the paper's GraphBLAS extraction over many inputs).
fn coarse_catalog(scale: f64) -> Vec<(String, Dag)> {
    let mut out = Vec::new();
    let sizes = [8usize, 16, 32, 64, 128];
    for (si, &base) in sizes.iter().enumerate() {
        let n = ((base as f64 * scale.max(0.05).sqrt()) as usize).max(4);
        let seed = 700 + si as u64;
        // CG: fixed 3 iterations and until convergence.
        for (label, iters) in [
            ("it3", Iterations::Fixed(3)),
            ("conv", Iterations::Converge(1e-8, 25)),
        ] {
            let ctx = Ctx::new();
            let a = spd_matrix(&ctx, n, 0.2, seed);
            let b = ctx.vector(vec![1.0; n]);
            coarse_cg(&ctx, &a, &b, iters);
            out.push((format!("coarse/cg/{label}/{n}"), ctx.extract_dag()));

            let ctx = Ctx::new();
            let a = spd_matrix(&ctx, n, 0.2, seed + 40);
            let b = ctx.vector(vec![1.0; n]);
            bicgstab(&ctx, &a, &b, iters);
            out.push((format!("coarse/bicgstab/{label}/{n}"), ctx.extract_dag()));

            let ctx = Ctx::new();
            let m = link_matrix(&ctx, n, 0.2, seed + 80);
            pagerank(&ctx, &m, iters);
            out.push((format!("coarse/pagerank/{label}/{n}"), ctx.extract_dag()));

            let ctx = Ctx::new();
            let m = link_matrix(&ctx, n, 0.2, seed + 120);
            label_propagation(&ctx, &m, iters);
            out.push((format!("coarse/labelprop/{label}/{n}"), ctx.extract_dag()));
        }
        let ctx = Ctx::new();
        let m = link_matrix(&ctx, n, 0.15, seed + 160);
        k_hop(&ctx, &m, 3);
        out.push((format!("coarse/khop/3/{n}"), ctx.extract_dag()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_set_has_ten_instances() {
        let t = training_set(0.5);
        assert_eq!(t.len(), 10);
        for i in &t {
            assert!(i.dag.n() >= 4, "{} too small", i.name);
        }
    }

    #[test]
    fn tiny_dataset_sizes_in_interval() {
        let d = dataset(DatasetKind::Tiny, 1.0);
        assert!(
            d.len() >= 10,
            "tiny should have ~12 fine + coarse, got {}",
            d.len()
        );
        for i in &d {
            assert!(
                i.dag.n() >= 40 && i.dag.n() <= 80,
                "{}: n = {} outside [40, 80]",
                i.name,
                i.dag.n()
            );
        }
    }

    #[test]
    fn small_dataset_has_deep_and_wide_variants() {
        let d = dataset(DatasetKind::Small, 0.3);
        let names: Vec<&str> = d.iter().map(|i| i.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("deep")));
        assert!(names.iter().any(|n| n.contains("wide")));
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = dataset(DatasetKind::Tiny, 0.5);
        let b = dataset(DatasetKind::Tiny, 0.5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.dag, y.dag);
        }
    }

    #[test]
    fn scaling_shrinks_instances() {
        let full = dataset(DatasetKind::Small, 0.4);
        let half = dataset(DatasetKind::Small, 0.2);
        let avg = |v: &[Instance]| v.iter().map(|i| i.dag.n()).sum::<usize>() / v.len().max(1);
        assert!(avg(&half) < avg(&full));
    }
}
