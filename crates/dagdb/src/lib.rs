//! Computational DAG database (paper §5, Appendix B).
//!
//! Two families of instances are provided:
//!
//! * **Fine-grained** DAGs ([`fine`]): synthetically generated from a sparse
//!   matrix nonzero pattern for four algebraic kernels — `spmv`, `exp`
//!   (iterated spmv), `cg` (conjugate gradient) and `knn` (k-hop
//!   reachability as iterated pattern spmv). One node per scalar operation,
//!   exactly as in the paper's Figure 2.
//! * **Coarse-grained** DAGs ([`coarse`]): extracted by *running* real
//!   algebraic algorithms (CG, BiCGStab, PageRank, label propagation, k-hop
//!   reachability) on a miniature GraphBLAS-like algebra whose recording
//!   backend traces every container-producing primitive into a DAG node —
//!   the same extraction mechanism as the paper's hyperDAG backend.
//!
//! Node weights follow Appendix B: `w(v) = indeg(v) − 1` (sources get 1)
//! and `c(v) = 1`.
//!
//! [`datasets`] reassembles the paper's `training`, `tiny`, `small`,
//! `medium`, `large` and `huge` test sets from seeded generators, with a
//! global scale factor for laptop-sized runs.

//! Real-world nonzero patterns can be loaded through the MatrixMarket
//! reader in [`mmio`] (the "load input matrices from a file" option of
//! Appendix B.2) and fed to any fine-grained generator.

//! [`structured`] supplies classic structured families (SpTRSV, FFT
//! butterfly, stencils, broadcast/reduction trees) under the same weight
//! rule, for workloads beyond the algebraic generators.

pub mod coarse;
pub mod datasets;
pub mod fine;
pub mod matrix;
pub mod mmio;
pub mod structured;
pub mod weights;

pub use datasets::{dataset, training_set, DatasetKind, Instance};
pub use matrix::SparsePattern;
pub use mmio::{pattern_from_matrix_market, pattern_to_matrix_market, MmError};
