//! MatrixMarket coordinate-format I/O for [`SparsePattern`].
//!
//! Appendix B.2 notes that the fine-grained generator "also has the option
//! to load input matrices (i.e. nonzero patterns) from a file"; this module
//! provides that option. The supported subset is the ubiquitous
//! `%%MatrixMarket matrix coordinate <field> <symmetry>` header with fields
//! `pattern`, `real` or `integer` (values are ignored — only the nonzero
//! *pattern* matters for DAG generation) and symmetries `general` or
//! `symmetric` (symmetric entries are mirrored).
//!
//! Only square matrices are accepted, since every generator in
//! [`crate::fine`] operates on `N × N` systems.

use crate::matrix::SparsePattern;
use std::fmt::Write as _;

/// Errors produced while parsing a MatrixMarket stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmError {
    /// The `%%MatrixMarket` banner is missing or malformed.
    BadHeader(String),
    /// Unsupported format/field/symmetry combination.
    Unsupported(String),
    /// The size line (rows cols nnz) is missing or malformed.
    BadSizeLine(String),
    /// The matrix is not square.
    NotSquare {
        /// Parsed row count.
        rows: usize,
        /// Parsed column count.
        cols: usize,
    },
    /// A data line could not be parsed or is out of range.
    BadEntry {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Fewer data lines than the declared nnz.
    TruncatedData {
        /// Declared number of entries.
        expected: usize,
        /// Entries actually present.
        got: usize,
    },
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::BadHeader(h) => write!(f, "bad MatrixMarket header: {h}"),
            MmError::Unsupported(w) => write!(f, "unsupported MatrixMarket variant: {w}"),
            MmError::BadSizeLine(l) => write!(f, "bad size line: {l}"),
            MmError::NotSquare { rows, cols } => {
                write!(
                    f,
                    "matrix is {rows}x{cols}, but generators need a square matrix"
                )
            }
            MmError::BadEntry { line, msg } => write!(f, "bad entry on line {line}: {msg}"),
            MmError::TruncatedData { expected, got } => {
                write!(f, "expected {expected} entries, found {got}")
            }
        }
    }
}

impl std::error::Error for MmError {}

/// Parses a MatrixMarket *coordinate* stream into a nonzero pattern.
/// Values of `real`/`integer` matrices are ignored; `symmetric` inputs are
/// expanded by mirroring every off-diagonal entry.
pub fn pattern_from_matrix_market(text: &str) -> Result<SparsePattern, MmError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| MmError::BadHeader("empty input".into()))?;
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() != 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MmError::BadHeader(header.into()));
    }
    if tokens[2] != "coordinate" {
        return Err(MmError::Unsupported(format!("format '{}'", tokens[2])));
    }
    let field = tokens[3].as_str();
    if !matches!(field, "pattern" | "real" | "integer") {
        return Err(MmError::Unsupported(format!("field '{field}'")));
    }
    let symmetric = match tokens[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(MmError::Unsupported(format!("symmetry '{other}'"))),
    };
    let has_value = field != "pattern";

    // Skip comments/blank lines up to the size line.
    let size_line = loop {
        match lines.next() {
            Some((_, l)) if l.trim_start().starts_with('%') || l.trim().is_empty() => continue,
            Some((_, l)) => break l,
            None => return Err(MmError::BadSizeLine("missing".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| MmError::BadSizeLine(size_line.into()))
        })
        .collect::<Result<_, _>>()?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(MmError::BadSizeLine(size_line.into()));
    };
    if rows != cols {
        return Err(MmError::NotSquare { rows, cols });
    }

    let mut out: Vec<Vec<u32>> = vec![Vec::new(); rows];
    let mut seen = 0usize;
    for (idx, l) in lines {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (Some(i), Some(j)) = (it.next(), it.next()) else {
            return Err(MmError::BadEntry {
                line: idx + 1,
                msg: "missing indices".into(),
            });
        };
        if has_value && it.next().is_none() {
            return Err(MmError::BadEntry {
                line: idx + 1,
                msg: "missing value".into(),
            });
        }
        let parse = |s: &str, what: &str| -> Result<usize, MmError> {
            s.parse::<usize>().map_err(|_| MmError::BadEntry {
                line: idx + 1,
                msg: format!("bad {what} '{s}'"),
            })
        };
        let (i, j) = (parse(i, "row")?, parse(j, "column")?);
        if i == 0 || j == 0 || i > rows || j > cols {
            return Err(MmError::BadEntry {
                line: idx + 1,
                msg: format!("index ({i}, {j}) out of 1..={rows}"),
            });
        }
        out[i - 1].push((j - 1) as u32);
        if symmetric && i != j {
            out[j - 1].push((i - 1) as u32);
        }
        seen += 1;
    }
    if seen < nnz {
        return Err(MmError::TruncatedData {
            expected: nnz,
            got: seen,
        });
    }
    Ok(SparsePattern::from_rows(rows, out))
}

/// Serializes a pattern as `%%MatrixMarket matrix coordinate pattern
/// general` with 1-based indices, suitable for [`pattern_from_matrix_market`].
pub fn pattern_to_matrix_market(p: &SparsePattern) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "%%MatrixMarket matrix coordinate pattern general");
    let _ = writeln!(s, "% written by bsp-dagdb");
    let _ = writeln!(s, "{} {} {}", p.n(), p.n(), p.nnz());
    for i in 0..p.n() {
        for &j in p.row(i) {
            let _ = writeln!(s, "{} {}", i + 1, j + 1);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_general() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1\n\
                    2 3\n\
                    3 1\n\
                    3 3\n";
        let p = pattern_from_matrix_market(text).unwrap();
        assert_eq!(p.n(), 3);
        assert_eq!(p.row(0), &[0]);
        assert_eq!(p.row(1), &[2]);
        assert_eq!(p.row(2), &[0, 2]);
    }

    #[test]
    fn parses_real_values_ignoring_them() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 2\n\
                    1 2 3.5e-2\n\
                    2 1 -7.0\n";
        let p = pattern_from_matrix_market(text).unwrap();
        assert_eq!(p.row(0), &[1]);
        assert_eq!(p.row(1), &[0]);
    }

    #[test]
    fn symmetric_entries_are_mirrored() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 3\n\
                    2 1\n\
                    3 2\n\
                    3 3\n";
        let p = pattern_from_matrix_market(text).unwrap();
        assert_eq!(p.row(0), &[1]); // mirror of (2,1)
        assert_eq!(p.row(1), &[0, 2]);
        assert_eq!(p.row(2), &[1, 2]); // diagonal not duplicated
        assert_eq!(p.nnz(), 5);
    }

    #[test]
    fn round_trip_preserves_pattern() {
        let p = SparsePattern::random(25, 0.15, 42);
        let text = pattern_to_matrix_market(&p);
        let back = pattern_from_matrix_market(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            pattern_from_matrix_market("%%NotMatrixMarket x y z w\n1 1 0\n"),
            Err(MmError::BadHeader(_))
        ));
        assert!(matches!(
            pattern_from_matrix_market(""),
            Err(MmError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_unsupported_variants() {
        let arr = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        assert!(matches!(
            pattern_from_matrix_market(arr),
            Err(MmError::Unsupported(_))
        ));
        let cpx = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        assert!(matches!(
            pattern_from_matrix_market(cpx),
            Err(MmError::Unsupported(_))
        ));
        let skew = "%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 1\n2 1\n";
        assert!(matches!(
            pattern_from_matrix_market(skew),
            Err(MmError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n";
        assert_eq!(
            pattern_from_matrix_market(text),
            Err(MmError::NotSquare { rows: 2, cols: 3 })
        );
    }

    #[test]
    fn rejects_out_of_range_and_zero_indices() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(matches!(
            pattern_from_matrix_market(text),
            Err(MmError::BadEntry { .. })
        ));
        let text2 = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(matches!(
            pattern_from_matrix_market(text2),
            Err(MmError::BadEntry { .. })
        ));
    }

    #[test]
    fn rejects_truncated_data() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n";
        assert_eq!(
            pattern_from_matrix_market(text),
            Err(MmError::TruncatedData {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn loaded_pattern_feeds_the_generators() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    4 4 7\n\
                    1 1\n1 2\n2 2\n3 1\n3 3\n4 3\n4 4\n";
        let p = pattern_from_matrix_market(text).unwrap();
        let dag = crate::fine::spmv_dag(&p);
        // spmv: one node per input vector entry used, per nonzero product,
        // and per row sum — at minimum nnz product nodes exist.
        assert!(dag.n() >= p.nnz());
    }
}
