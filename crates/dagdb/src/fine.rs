//! Fine-grained computational DAG generators (Appendix B.2).
//!
//! Each generator mirrors the paper's tool: given a sparse pattern `A`,
//! it emits the scalar-operation DAG of the kernel, with one node per
//! nonzero input element and one node per produced scalar (multiply-and-
//! accumulate fused per output, as in Figure 2).

use crate::matrix::SparsePattern;
use crate::weights::build_with_db_weights;
use bsp_dag::{Dag, NodeId};

/// `spmv`: one multiplication of the sparse matrix with a dense vector.
/// Nodes: every nonzero `A[i,j]`, every `u[j]`, and one output node per
/// non-empty row combining `{A[i,j], u[j]}`.
pub fn spmv_dag(a: &SparsePattern) -> Dag {
    let n = a.n();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next = 0 as NodeId;
    // u[j] nodes.
    let u: Vec<NodeId> = (0..n).map(|_| post_inc(&mut next)).collect();
    // A[i,j] nodes.
    let mut a_nodes = Vec::with_capacity(a.nnz());
    for i in 0..n {
        for &j in a.row(i) {
            a_nodes.push((i, j, post_inc(&mut next)));
        }
    }
    // Output nodes per non-empty row.
    let mut row_out = vec![None; n];
    for i in 0..n {
        if !a.row(i).is_empty() {
            row_out[i] = Some(post_inc(&mut next));
        }
    }
    for &(i, j, an) in &a_nodes {
        let out = row_out[i].unwrap();
        edges.push((an, out));
        edges.push((u[j as usize], out));
    }
    build_with_db_weights(next as usize, &edges)
}

/// `exp`: the iterated product `A^k · u` computed as `k` consecutive spmv
/// operations; the `A[i,j]` nodes feed every iteration.
pub fn exp_dag(a: &SparsePattern, k: usize) -> Dag {
    let n = a.n();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next = 0 as NodeId;
    let mut u: Vec<NodeId> = (0..n).map(|_| post_inc(&mut next)).collect();
    let mut a_node = std::collections::HashMap::new();
    for i in 0..n {
        for &j in a.row(i) {
            a_node.insert((i as u32, j), post_inc(&mut next));
        }
    }
    for _ in 0..k {
        let mut newu = Vec::with_capacity(n);
        for i in 0..n {
            if a.row(i).is_empty() {
                // Zero output: a fresh source standing for the zero value.
                newu.push(post_inc(&mut next));
                continue;
            }
            let out = post_inc(&mut next);
            for &j in a.row(i) {
                edges.push((a_node[&(i as u32, j)], out));
                edges.push((u[j as usize], out));
            }
            newu.push(out);
        }
        u = newu;
    }
    build_with_db_weights(next as usize, &edges)
}

/// `knn`: `k`-hop pattern propagation from `start` — the iterated product
/// of `A` with a vector holding a single nonzero, tracking only nonzero
/// entries (Appendix B.2's GraphBLAS-style k-NN).
pub fn knn_dag(a: &SparsePattern, start: usize, k: usize) -> Dag {
    let n = a.n();
    assert!(start < n);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next = 0 as NodeId;
    let mut a_node = std::collections::HashMap::new();
    // Lazily created A nodes: only the entries actually touched appear.
    let mut frontier: Vec<Option<NodeId>> = vec![None; n];
    frontier[start] = Some(post_inc(&mut next));
    for _ in 0..k {
        let mut nextv: Vec<Option<NodeId>> = vec![None; n];
        for i in 0..n {
            let touched: Vec<u32> = a
                .row(i)
                .iter()
                .copied()
                .filter(|&j| frontier[j as usize].is_some())
                .collect();
            if touched.is_empty() {
                continue;
            }
            let out = post_inc(&mut next);
            for j in touched {
                let an = *a_node
                    .entry((i as u32, j))
                    .or_insert_with(|| post_inc(&mut next));
                edges.push((an, out));
                edges.push((frontier[j as usize].unwrap(), out));
            }
            nextv[i] = Some(out);
        }
        frontier = nextv;
    }
    build_with_db_weights(next as usize, &edges)
}

/// `cg`: `k` iterations of the conjugate gradient method on `A` (pattern
/// only; the DAG structure does not depend on the numeric values).
/// Per iteration: `q = A·p`, two dot products, the step size `α`, the
/// element-wise updates of `x`, `r`, the ratio `β`, and the new direction
/// `p` — exactly the data flow of the textbook algorithm.
pub fn cg_dag(a: &SparsePattern, k: usize) -> Dag {
    let n = a.n();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next = 0 as NodeId;
    let mut a_node = std::collections::HashMap::new();
    for i in 0..n {
        for &j in a.row(i) {
            a_node.insert((i as u32, j), post_inc(&mut next));
        }
    }
    let mut x: Vec<NodeId> = (0..n).map(|_| post_inc(&mut next)).collect();
    let mut r: Vec<NodeId> = (0..n).map(|_| post_inc(&mut next)).collect();
    let mut p: Vec<NodeId> = (0..n).map(|_| post_inc(&mut next)).collect();
    // rr = r·r carried across iterations.
    let mut rr = {
        let d = post_inc(&mut next);
        for &ri in &r {
            edges.push((ri, d));
        }
        d
    };
    for _ in 0..k {
        // q = A p
        let mut q = Vec::with_capacity(n);
        for i in 0..n {
            if a.row(i).is_empty() {
                q.push(post_inc(&mut next));
                continue;
            }
            let out = post_inc(&mut next);
            for &j in a.row(i) {
                edges.push((a_node[&(i as u32, j)], out));
                edges.push((p[j as usize], out));
            }
            q.push(out);
        }
        // pq = p · q
        let pq = post_inc(&mut next);
        for i in 0..n {
            edges.push((p[i], pq));
            edges.push((q[i], pq));
        }
        // alpha = rr / pq
        let alpha = post_inc(&mut next);
        edges.push((rr, alpha));
        edges.push((pq, alpha));
        // x' = x + alpha p ; r' = r - alpha q
        let mut x2 = Vec::with_capacity(n);
        let mut r2 = Vec::with_capacity(n);
        for i in 0..n {
            let xi = post_inc(&mut next);
            edges.push((x[i], xi));
            edges.push((alpha, xi));
            edges.push((p[i], xi));
            x2.push(xi);
            let ri = post_inc(&mut next);
            edges.push((r[i], ri));
            edges.push((alpha, ri));
            edges.push((q[i], ri));
            r2.push(ri);
        }
        // rr' = r'·r' ; beta = rr'/rr ; p' = r' + beta p
        let rr2 = post_inc(&mut next);
        for &ri in &r2 {
            edges.push((ri, rr2));
        }
        let beta = post_inc(&mut next);
        edges.push((rr2, beta));
        edges.push((rr, beta));
        let mut p2 = Vec::with_capacity(n);
        for i in 0..n {
            let pi = post_inc(&mut next);
            edges.push((r2[i], pi));
            edges.push((beta, pi));
            edges.push((p[i], pi));
            p2.push(pi);
        }
        x = x2;
        r = r2;
        p = p2;
        rr = rr2;
    }
    let _ = x;
    build_with_db_weights(next as usize, &edges)
}

fn post_inc(next: &mut NodeId) -> NodeId {
    let v = *next;
    *next += 1;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::analysis::DagStats;
    use bsp_dag::TopoInfo;

    fn pattern() -> SparsePattern {
        SparsePattern::random_with_diagonal(12, 0.2, 7)
    }

    #[test]
    fn spmv_structure() {
        // 2x2 example of Figure 2: A = [[a11, 0], [a21, a22]].
        let a = SparsePattern::from_rows(2, vec![vec![0], vec![0, 1]]);
        let d = spmv_dag(&a);
        // nodes: u[0], u[1], A11, A21, A22, out0, out1 = 7.
        assert_eq!(d.n(), 7);
        // out0 has indeg 2 (A11, u0); out1 indeg 4.
        let stats = DagStats::compute(&d);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.sinks, 2);
        // spmv DAGs are shallow: longest path is 2 nodes.
    }

    #[test]
    fn exp_depth_grows_with_iterations() {
        let a = pattern();
        let d1 = exp_dag(&a, 1);
        let d3 = exp_dag(&a, 3);
        let s1 = DagStats::compute(&d1);
        let s3 = DagStats::compute(&d3);
        assert!(s3.depth > s1.depth);
        assert!(s3.n > s1.n);
        // All acyclic by construction.
        let t = TopoInfo::new(&d3);
        assert!(bsp_dag::topo::is_topological_order(&d3, &t.order));
    }

    #[test]
    fn knn_reaches_out_gradually() {
        // A path graph: 1-hop reachability from node 0 touches 1 element.
        let mut rows = vec![Vec::new(); 6];
        for i in 1..6 {
            rows[i] = vec![i as u32 - 1];
        }
        let a = SparsePattern::from_rows(6, rows);
        let d1 = knn_dag(&a, 0, 1);
        let d4 = knn_dag(&a, 0, 4);
        assert!(d4.n() > d1.n());
        // Start + (A entry + output) per hop.
        assert_eq!(d1.n(), 3);
    }

    #[test]
    fn knn_empty_frontier_stops() {
        // No outgoing structure: after one hop nothing is reachable.
        let a = SparsePattern::from_rows(3, vec![vec![], vec![], vec![]]);
        let d = knn_dag(&a, 0, 5);
        assert_eq!(d.n(), 1); // only the start node
    }

    #[test]
    fn cg_has_iteration_structure() {
        let a = pattern();
        let d2 = cg_dag(&a, 2);
        let d4 = cg_dag(&a, 4);
        assert!(d4.n() > d2.n());
        assert!(DagStats::compute(&d4).depth > DagStats::compute(&d2).depth);
        // Dot-product nodes make CG much deeper than exp for the same k.
        let e4 = exp_dag(&a, 4);
        assert!(DagStats::compute(&d4).depth > DagStats::compute(&e4).depth);
    }

    #[test]
    fn db_weights_respected() {
        let d = cg_dag(&pattern(), 2);
        for v in d.nodes() {
            if d.in_degree(v) == 0 {
                assert_eq!(d.work(v), 1);
            } else {
                assert_eq!(d.work(v), d.in_degree(v) as u64 - 1);
            }
            assert_eq!(d.comm(v), 1);
        }
    }
}
