//! Sparse nonzero patterns for the fine-grained generators (Appendix B.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An `n × n` sparse nonzero pattern stored as row lists of column indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePattern {
    n: usize,
    rows: Vec<Vec<u32>>,
}

impl SparsePattern {
    /// Random pattern: every entry is nonzero independently with
    /// probability `q` (paper's generator). Deterministic per `seed`.
    pub fn random(n: usize, q: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..n)
            .map(|_| (0..n as u32).filter(|_| rng.gen_bool(q)).collect())
            .collect();
        SparsePattern { n, rows }
    }

    /// Like [`SparsePattern::random`] but with a guaranteed nonzero
    /// diagonal — used where a non-singular system matters (CG) and to make
    /// k-hop patterns cumulative.
    pub fn random_with_diagonal(n: usize, q: f64, seed: u64) -> Self {
        let mut m = Self::random(n, q, seed);
        for (i, row) in m.rows.iter_mut().enumerate() {
            if !row.contains(&(i as u32)) {
                row.push(i as u32);
                row.sort_unstable();
            }
        }
        m
    }

    /// Builds from explicit row lists (for loading real matrices).
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn from_rows(n: usize, rows: Vec<Vec<u32>>) -> Self {
        assert_eq!(rows.len(), n);
        for r in &rows {
            assert!(r.iter().all(|&c| (c as usize) < n));
        }
        let rows = rows
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        SparsePattern { n, rows }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Column indices of the nonzeros in row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.rows[i]
    }

    /// Total number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_density_plausible() {
        let a = SparsePattern::random(50, 0.2, 9);
        let b = SparsePattern::random(50, 0.2, 9);
        assert_eq!(a, b);
        let density = a.nnz() as f64 / (50.0 * 50.0);
        assert!((0.1..0.3).contains(&density), "density {density}");
    }

    #[test]
    fn diagonal_guaranteed() {
        let a = SparsePattern::random_with_diagonal(30, 0.05, 3);
        for i in 0..30 {
            assert!(a.row(i).contains(&(i as u32)));
        }
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let m = SparsePattern::from_rows(3, vec![vec![2, 0, 2], vec![], vec![1]]);
        assert_eq!(m.row(0), &[0, 2]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        SparsePattern::from_rows(2, vec![vec![5], vec![]]);
    }
}
