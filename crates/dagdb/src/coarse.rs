//! Coarse-grained DAG extraction via a recording GraphBLAS-like algebra
//! (paper §5, Appendix B.1).
//!
//! [`Ctx`] owns a trace; every container ([`Matrix`], [`Vector`],
//! [`Scalar`]) remembers the trace node that produced it, and every
//! primitive operation appends one node with edges from its operands —
//! while also *actually computing* the result, so iterative algorithms run
//! their real control flow (including convergence tests). This is the same
//! extraction mechanism as the paper's hyperDAG GraphBLAS backend, at
//! miniature scale.
//!
//! [`algorithms`] provides the paper's algorithm families: conjugate
//! gradient, BiCGStab, PageRank, label propagation, and k-hop reachability,
//! each runnable for a fixed iteration count or until convergence.

use crate::weights::build_with_db_weights;
use bsp_dag::traversal::largest_component;
use bsp_dag::{Dag, NodeId};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct Trace {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

/// Recording context. Containers created from the same context share one
/// trace.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    trace: Rc<RefCell<Trace>>,
}

impl Ctx {
    /// Fresh context with an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, inputs: &[NodeId]) -> NodeId {
        let mut t = self.trace.borrow_mut();
        let id = t.n as NodeId;
        t.n += 1;
        // Dedupe: an op may read the same container twice (e.g. r·r), but
        // the DAG carries a single precedence edge per (producer, consumer).
        let mut seen: Vec<NodeId> = Vec::with_capacity(inputs.len());
        for &i in inputs {
            if !seen.contains(&i) {
                seen.push(i);
                t.edges.push((i, id));
            }
        }
        id
    }

    /// Number of trace nodes recorded so far.
    pub fn len(&self) -> usize {
        self.trace.borrow().n
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates a sparse matrix container (one source node).
    pub fn matrix(&self, n: usize, rows: Vec<Vec<(u32, f64)>>) -> Matrix {
        assert_eq!(rows.len(), n);
        Matrix {
            ctx: self.clone(),
            id: self.record(&[]),
            n,
            rows,
        }
    }

    /// Creates a dense vector container (one source node).
    pub fn vector(&self, data: Vec<f64>) -> Vector {
        Vector {
            ctx: self.clone(),
            id: self.record(&[]),
            data,
        }
    }

    /// Creates a scalar container (one source node).
    pub fn scalar(&self, value: f64) -> Scalar {
        Scalar {
            ctx: self.clone(),
            id: self.record(&[]),
            value,
        }
    }

    /// Extracts the coarse-grained DAG recorded so far: database weights
    /// applied, restricted to the largest weakly connected component
    /// (Appendix B.1's cleanup of incompletely tracked traces).
    pub fn extract_dag(&self) -> Dag {
        let t = self.trace.borrow();
        let full = build_with_db_weights(t.n, &t.edges);
        largest_component(&full).0
    }
}

/// Sparse matrix container (value-carrying, trace-recorded).
#[derive(Debug, Clone)]
pub struct Matrix {
    ctx: Ctx,
    id: NodeId,
    n: usize,
    rows: Vec<Vec<(u32, f64)>>,
}

/// Dense vector container.
#[derive(Debug, Clone)]
pub struct Vector {
    ctx: Ctx,
    id: NodeId,
    data: Vec<f64>,
}

/// Scalar container.
#[derive(Debug, Clone)]
pub struct Scalar {
    ctx: Ctx,
    id: NodeId,
    value: f64,
}

impl Matrix {
    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Plus-times sparse matrix × dense vector.
    pub fn mxv(&self, v: &Vector) -> Vector {
        assert_eq!(self.n, v.data.len());
        let data = self
            .rows
            .iter()
            .map(|r| r.iter().map(|&(j, a)| a * v.data[j as usize]).sum())
            .collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, v.id]),
            data,
        }
    }

    /// Max-times semiring product — the propagation step of label
    /// propagation / k-hop reachability.
    pub fn mxv_max(&self, v: &Vector) -> Vector {
        let data = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|&(j, a)| a * v.data[j as usize])
                    .fold(0.0f64, f64::max)
            })
            .collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, v.id]),
            data,
        }
    }
}

impl Vector {
    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current values (for assertions; reading does not record).
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Dot product.
    pub fn dot(&self, other: &Vector) -> Scalar {
        let value = self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum();
        Scalar {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, other.id]),
            value,
        }
    }

    /// `self + alpha · other`.
    pub fn plus_scaled(&self, alpha: &Scalar, other: &Vector) -> Vector {
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + alpha.value * b)
            .collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, alpha.id, other.id]),
            data,
        }
    }

    /// Element-wise maximum with `other`.
    pub fn ewise_max(&self, other: &Vector) -> Vector {
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.max(*b))
            .collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, other.id]),
            data,
        }
    }

    /// `diff = Σ |self - other|` as a recorded scalar (convergence checks).
    pub fn abs_diff(&self, other: &Vector) -> Scalar {
        let value = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        Scalar {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, other.id]),
            value,
        }
    }

    /// Element-wise rectified linear unit `max(x, 0)` — the activation of
    /// sparse neural network inference (Appendix B.1).
    pub fn relu(&self) -> Vector {
        let data = self.data.iter().map(|&a| a.max(0.0)).collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id]),
            data,
        }
    }

    /// Element-wise sum with `other`.
    pub fn plus(&self, other: &Vector) -> Vector {
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, other.id]),
            data,
        }
    }

    /// Per-element index of the nearest value in `centroids` — the
    /// assignment step of (1-dimensional) k-means.
    pub fn nearest_centroid(&self, centroids: &Vector) -> Vector {
        let data = self
            .data
            .iter()
            .map(|&x| {
                centroids
                    .data
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| (x - **a).abs().partial_cmp(&(x - **b).abs()).unwrap())
                    .map(|(i, _)| i as f64)
                    .unwrap_or(0.0)
            })
            .collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, centroids.id]),
            data,
        }
    }

    /// Mean of the members assigned to each of the `k` centroids — the
    /// update step of k-means. Empty clusters keep the previous centroid.
    pub fn centroid_means(&self, assign: &Vector, previous: &Vector) -> Vector {
        let k = previous.data.len();
        let mut sum = vec![0.0f64; k];
        let mut count = vec![0usize; k];
        for (x, c) in self.data.iter().zip(&assign.data) {
            let c = *c as usize;
            sum[c] += x;
            count[c] += 1;
        }
        let data = (0..k)
            .map(|c| {
                if count[c] > 0 {
                    sum[c] / count[c] as f64
                } else {
                    previous.data[c]
                }
            })
            .collect();
        Vector {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, assign.id, previous.id]),
            data,
        }
    }
}

impl Scalar {
    /// Current value (reading does not record).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Ratio `self / other`.
    pub fn div(&self, other: &Scalar) -> Scalar {
        Scalar {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id, other.id]),
            value: self.value / other.value,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Scalar {
        Scalar {
            ctx: self.ctx.clone(),
            id: self.ctx.record(&[self.id]),
            value: -self.value,
        }
    }
}

/// The paper's coarse-grained algorithm families, run on the recording
/// algebra.
pub mod algorithms {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// How long to iterate: a fixed count (the paper extracts 3-iteration
    /// variants) or until the algorithm's own convergence test passes.
    #[derive(Debug, Clone, Copy)]
    pub enum Iterations {
        /// Exactly this many iterations.
        Fixed(usize),
        /// Until convergence with the given tolerance, capped by the count.
        Converge(f64, usize),
    }

    /// Symmetric positive-definite matrix with random sparsity `q`
    /// (diagonally dominant), for CG.
    pub fn spd_matrix(ctx: &Ctx, n: usize, q: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(q) {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    rows[i].push((j as u32, v));
                    rows[j].push((i as u32, v));
                }
            }
        }
        for (i, row) in rows.iter_mut().enumerate() {
            let dom: f64 = row.iter().map(|&(_, v)| v.abs()).sum::<f64>() + 1.0;
            row.push((i as u32, dom));
            row.sort_by_key(|&(j, _)| j);
        }
        ctx.matrix(n, rows)
    }

    /// Column-stochastic link matrix for PageRank / label propagation:
    /// entry `A[i][j] = 1/outdeg(j)` for each link `j -> i` (the classic
    /// PageRank transition matrix — note a *row*-stochastic matrix would
    /// make the uniform vector an instant fixed point).
    pub fn link_matrix(ctx: &Ctx, n: usize, q: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out_links: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (j, links) in out_links.iter_mut().enumerate() {
            for i in 0..n {
                if i != j && rng.gen_bool(q) {
                    links.push(i as u32);
                }
            }
            if links.is_empty() {
                links.push(((j + 1) % n) as u32);
            }
        }
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (j, links) in out_links.iter().enumerate() {
            let w = 1.0 / links.len() as f64;
            for &i in links {
                rows[i as usize].push((j as u32, w));
            }
        }
        for r in &mut rows {
            r.sort_by_key(|&(j, _)| j);
        }
        ctx.matrix(n, rows)
    }

    /// Conjugate gradient for `A x = b`.
    pub fn cg(ctx: &Ctx, a: &Matrix, b: &Vector, iters: Iterations) -> Vector {
        let n = a.n();
        let mut x = ctx.vector(vec![0.0; n]);
        let mut r = b.clone();
        let mut p = r.clone();
        let mut rr = r.dot(&r);
        let (max, tol) = budget(iters);
        for _ in 0..max {
            if rr.value() <= tol {
                break;
            }
            let q = a.mxv(&p);
            let pq = p.dot(&q);
            let alpha = rr.div(&pq);
            x = x.plus_scaled(&alpha, &p);
            let neg_alpha = alpha.neg();
            r = r.plus_scaled(&neg_alpha, &q);
            let rr2 = r.dot(&r);
            let beta = rr2.div(&rr);
            p = r.plus_scaled(&beta, &p);
            rr = rr2;
        }
        x
    }

    /// BiCGStab for general square systems.
    pub fn bicgstab(ctx: &Ctx, a: &Matrix, b: &Vector, iters: Iterations) -> Vector {
        let n = a.n();
        let mut x = ctx.vector(vec![0.0; n]);
        let r0 = b.clone();
        let mut r = b.clone();
        let mut p = r.clone();
        let (max, tol) = budget(iters);
        for _ in 0..max {
            let rnorm = r.dot(&r);
            if rnorm.value() <= tol {
                break;
            }
            let ap = a.mxv(&p);
            let r0r = r0.dot(&r);
            let r0ap = r0.dot(&ap);
            let alpha = r0r.div(&r0ap);
            let neg_alpha = alpha.neg();
            let s = r.plus_scaled(&neg_alpha, &ap);
            let as_ = a.mxv(&s);
            let ass = as_.dot(&s);
            let asas = as_.dot(&as_);
            let omega = ass.div(&asas);
            x = x.plus_scaled(&alpha, &p).plus_scaled(&omega, &s);
            let neg_omega = omega.neg();
            r = s.plus_scaled(&neg_omega, &as_);
            let r0r_new = r0.dot(&r);
            let frac = r0r_new.div(&r0r);
            let beta = frac.div(&omega); // (r0·r')/(r0·r) · α/ω folded
            let pw = p.plus_scaled(&neg_omega, &ap);
            p = r.plus_scaled(&beta, &pw);
        }
        x
    }

    /// PageRank power iteration with damping 0.85.
    pub fn pagerank(ctx: &Ctx, links: &Matrix, iters: Iterations) -> Vector {
        let n = links.n();
        let mut rank = ctx.vector(vec![1.0 / n as f64; n]);
        let teleport = ctx.vector(vec![0.15 / n as f64; n]);
        let damping = ctx.scalar(0.85);
        let (max, tol) = budget(iters);
        for _ in 0..max {
            let spread = links.mxv(&rank);
            let next = teleport.plus_scaled(&damping, &spread);
            let diff = next.abs_diff(&rank);
            rank = next;
            if diff.value() <= tol {
                break;
            }
        }
        rank
    }

    /// Label propagation over the max-times semiring.
    pub fn label_propagation(ctx: &Ctx, links: &Matrix, iters: Iterations) -> Vector {
        let n = links.n();
        let init: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let mut labels = ctx.vector(init);
        let (max, tol) = budget(iters);
        for _ in 0..max {
            let spread = links.mxv_max(&labels);
            let next = labels.ewise_max(&spread);
            let diff = next.abs_diff(&labels);
            labels = next;
            if diff.value() <= tol {
                break;
            }
        }
        labels
    }

    /// k-hop reachability from node 0 (boolean pattern as 0/1 values).
    pub fn k_hop(ctx: &Ctx, links: &Matrix, k: usize) -> Vector {
        let n = links.n();
        let mut ind = vec![0.0; n];
        ind[0] = 1.0;
        let mut reach = ctx.vector(ind);
        for _ in 0..k {
            let next = links.mxv_max(&reach);
            reach = reach.ewise_max(&next);
        }
        reach
    }

    /// Random sparse weight layer for [`spnn_inference`]: density `q`,
    /// weights in `[-1, 1)`.
    pub fn layer_matrix(ctx: &Ctx, n: usize, q: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::new();
            for j in 0..n as u32 {
                if rng.gen_bool(q) {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
            rows.push(row);
        }
        ctx.matrix(n, rows)
    }

    /// Sparse neural network inference (Appendix B.1): per layer,
    /// `x ← relu(W_l · x + b·1)` with a shared scalar bias.
    pub fn spnn_inference(ctx: &Ctx, layers: &[Matrix], input: &Vector, bias: f64) -> Vector {
        let n = input.len();
        let b = ctx.scalar(bias);
        let ones = ctx.vector(vec![1.0; n]);
        let mut x = input.clone();
        for w in layers {
            let wx = w.mxv(&x);
            let biased = wx.plus_scaled(&b, &ones);
            x = biased.relu();
        }
        x
    }

    /// 1-dimensional k-means (Appendix B.1's "classical methods from
    /// machine learning"): alternates nearest-centroid assignment and
    /// centroid-mean update, with the usual convergence test on centroid
    /// movement. Returns the final centroids.
    pub fn kmeans(ctx: &Ctx, points: &Vector, k: usize, iters: Iterations) -> Vector {
        assert!(k >= 1);
        let init: Vec<f64> = (0..k)
            .map(|c| {
                // Spread initial centroids over the point range.
                let lo = points
                    .values()
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                let hi = points
                    .values()
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                lo + (hi - lo) * (c as f64 + 0.5) / k as f64
            })
            .collect();
        let mut centroids = ctx.vector(init);
        let (max, tol) = budget(iters);
        for _ in 0..max {
            let assign = points.nearest_centroid(&centroids);
            let next = points.centroid_means(&assign, &centroids);
            let moved = next.abs_diff(&centroids);
            centroids = next;
            if moved.value() <= tol {
                break;
            }
        }
        centroids
    }

    fn budget(iters: Iterations) -> (usize, f64) {
        match iters {
            Iterations::Fixed(k) => (k, -1.0),
            Iterations::Converge(tol, cap) => (cap, tol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::algorithms::*;
    use super::*;

    #[test]
    fn recording_tracks_every_op() {
        let ctx = Ctx::new();
        let a = ctx.matrix(2, vec![vec![(0, 2.0)], vec![(1, 3.0)]]);
        let v = ctx.vector(vec![1.0, 1.0]);
        let w = a.mxv(&v);
        assert_eq!(w.values(), &[2.0, 3.0]);
        assert_eq!(ctx.len(), 3);
        let d = ctx.extract_dag();
        assert_eq!(d.n(), 3);
        assert_eq!(d.m(), 2);
    }

    #[test]
    fn cg_converges_and_records_iteration_structure() {
        let ctx = Ctx::new();
        let a = spd_matrix(&ctx, 8, 0.3, 1);
        let b = ctx.vector(vec![1.0; 8]);
        let x = cg(&ctx, &a, &b, Iterations::Converge(1e-10, 100));
        // Verify the numeric solve: A x ≈ b.
        let ax = a.mxv(&x);
        for (got, want) in ax.values().iter().zip([1.0f64; 8]) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
        let d = ctx.extract_dag();
        assert!(d.n() > 20, "CG trace too small: {}", d.n());
    }

    #[test]
    fn fixed_vs_convergence_trace_sizes() {
        let ctx3 = Ctx::new();
        let a3 = spd_matrix(&ctx3, 10, 0.3, 2);
        let b3 = ctx3.vector(vec![1.0; 10]);
        cg(&ctx3, &a3, &b3, Iterations::Fixed(3));
        let d3 = ctx3.extract_dag();

        let ctxc = Ctx::new();
        let ac = spd_matrix(&ctxc, 10, 0.3, 2);
        let bc = ctxc.vector(vec![1.0; 10]);
        cg(&ctxc, &ac, &bc, Iterations::Converge(1e-12, 50));
        let dc = ctxc.extract_dag();
        assert!(dc.n() >= d3.n());
    }

    #[test]
    fn pagerank_ranks_sum_to_one() {
        let ctx = Ctx::new();
        let m = link_matrix(&ctx, 12, 0.25, 5);
        // Column-stochasticity is not enforced by this toy matrix, so just
        // check the trace and rough magnitude.
        let r = pagerank(&ctx, &m, Iterations::Fixed(3));
        assert_eq!(r.len(), 12);
        assert!(ctx.len() > 10);
    }

    #[test]
    fn label_propagation_reaches_fixpoint() {
        let ctx = Ctx::new();
        let m = link_matrix(&ctx, 10, 0.3, 7);
        let labels = label_propagation(&ctx, &m, Iterations::Converge(0.0, 50));
        // At the fixpoint another round changes nothing.
        let spread = m.mxv_max(&labels);
        let next = labels.ewise_max(&spread);
        assert_eq!(labels.values(), next.values());
    }

    #[test]
    fn k_hop_monotone() {
        let ctx = Ctx::new();
        let m = link_matrix(&ctx, 10, 0.2, 9);
        let r1 = k_hop(&ctx, &m, 1);
        let r3 = k_hop(&ctx, &m, 3);
        let c1 = r1.values().iter().filter(|&&x| x > 0.0).count();
        let c3 = r3.values().iter().filter(|&&x| x > 0.0).count();
        assert!(c3 >= c1);
    }

    #[test]
    fn bicgstab_runs_and_records() {
        let ctx = Ctx::new();
        let a = spd_matrix(&ctx, 8, 0.3, 11);
        let b = ctx.vector(vec![1.0; 8]);
        let _x = bicgstab(&ctx, &a, &b, Iterations::Fixed(3));
        let d = ctx.extract_dag();
        assert!(d.n() > 20);
    }

    #[test]
    fn relu_and_plus_record_and_compute() {
        let ctx = Ctx::new();
        let v = ctx.vector(vec![-2.0, 3.0, 0.0]);
        let r = v.relu();
        assert_eq!(r.values(), &[0.0, 3.0, 0.0]);
        let s = r.plus(&v);
        assert_eq!(s.values(), &[-2.0, 6.0, 0.0]);
        assert_eq!(ctx.len(), 3);
    }

    #[test]
    fn spnn_trace_grows_linearly_with_layers() {
        let sizes: Vec<usize> = [2usize, 4]
            .iter()
            .map(|&depth| {
                let ctx = Ctx::new();
                let layers: Vec<Matrix> = (0..depth)
                    .map(|l| layer_matrix(&ctx, 8, 0.3, l as u64))
                    .collect();
                let input = ctx.vector(vec![1.0; 8]);
                let out = spnn_inference(&ctx, &layers, &input, 0.1);
                assert_eq!(out.len(), 8);
                assert!(
                    out.values().iter().all(|&x| x >= 0.0),
                    "ReLU output negative"
                );
                ctx.len()
            })
            .collect();
        // 3 ops + 1 weight source per layer, constant overhead otherwise.
        assert_eq!(sizes[1] - sizes[0], 2 * 4);
    }

    #[test]
    fn kmeans_separated_clusters_converge() {
        let ctx = Ctx::new();
        let pts = ctx.vector(vec![0.0, 0.2, 0.1, 10.0, 10.1, 9.9]);
        let centroids = kmeans(&ctx, &pts, 2, Iterations::Converge(1e-9, 50));
        let mut c = centroids.values().to_vec();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] - 0.1).abs() < 1e-6, "{c:?}");
        assert!((c[1] - 10.0).abs() < 1e-6, "{c:?}");
        // The trace feeds the database pipeline.
        let d = ctx.extract_dag();
        assert!(d.n() >= 5);
    }

    #[test]
    fn kmeans_empty_cluster_keeps_previous_centroid() {
        let ctx = Ctx::new();
        // All points near 0; second centroid starts far away and never
        // receives members — it must not become NaN.
        let pts = ctx.vector(vec![0.0, 0.1, 0.2]);
        let centroids = kmeans(&ctx, &pts, 3, Iterations::Fixed(4));
        assert!(centroids.values().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn extracted_dags_use_db_weights() {
        let ctx = Ctx::new();
        let a = spd_matrix(&ctx, 6, 0.4, 13);
        let b = ctx.vector(vec![1.0; 6]);
        cg(&ctx, &a, &b, Iterations::Fixed(2));
        let d = ctx.extract_dag();
        for v in d.nodes() {
            if d.in_degree(v) == 0 {
                assert_eq!(d.work(v), 1);
            } else {
                assert_eq!(d.work(v), d.in_degree(v) as u64 - 1);
            }
        }
    }
}
