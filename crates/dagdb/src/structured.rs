//! Structured computational DAG families beyond the four algebraic
//! generators of Appendix B.2.
//!
//! These complement the database with classic parallel-computing shapes:
//!
//! * [`sptrsv_dag`] — fine-grained sparse triangular solve, the native
//!   workload of the HDagg baseline \[46\]: solving `L·x = b` row by row,
//!   one node per scalar product and per solved unknown;
//! * [`butterfly_dag`] — the FFT butterfly of `2^k` points (`k` stages of
//!   pairwise exchanges), the canonical BSP benchmark circuit;
//! * [`stencil1d_dag`] — `steps` iterations of a 3-point stencil over a
//!   line of `width` cells (wavefront-parallel, locality-sensitive);
//! * [`out_tree_dag`] / [`in_tree_dag`] — complete `arity`-ary
//!   broadcast/reduction trees;
//! * [`fork_join_dag`] — `stages` fork-join sections of `chains` parallel
//!   chains, the canonical task-parallel (Cilk-style) program shape.
//!
//! All families carry the database weight rule of Appendix B
//! (`w(v) = indeg − 1`, sources 1, `c(v) = 1`), so they drop into the same
//! pipelines and experiments as the Appendix B generators.

use crate::matrix::SparsePattern;
use crate::weights::build_with_db_weights;
use bsp_dag::{Dag, NodeId};

/// Fine-grained DAG of a sparse lower-triangular solve `L·x = b`.
///
/// Only the strictly-lower-triangular nonzeros of `pattern` are used (the
/// diagonal is implicit — the division by `L_ii` is folded into the node of
/// `x_i`). Per row `i`: a source for `b_i`, a source per strictly-lower
/// nonzero `L_ij`, a product node `L_ij · x_j` for each such nonzero, and
/// the unknown `x_i` combining `b_i` with all products of its row.
pub fn sptrsv_dag(pattern: &SparsePattern) -> Dag {
    let n = pattern.n();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next: NodeId = 0;
    let mut alloc = || {
        let v = next;
        next += 1;
        v
    };
    // Allocate x_i and b_i up front so products can reference x_j (j < i).
    let xs: Vec<NodeId> = (0..n).map(|_| alloc()).collect();
    let bs: Vec<NodeId> = (0..n).map(|_| alloc()).collect();
    for i in 0..n {
        edges.push((bs[i], xs[i]));
        for &j in pattern.row(i) {
            let j = j as usize;
            if j >= i {
                continue; // strictly lower triangle only
            }
            let lij = alloc();
            let prod = alloc();
            edges.push((lij, prod));
            edges.push((xs[j], prod));
            edges.push((prod, xs[i]));
        }
    }
    build_with_db_weights(next as usize, &edges)
}

/// The `2^k`-point FFT butterfly: `k` stages; the node for value `i` at
/// stage `s` combines the stage-`s−1` values of `i` and `i XOR 2^{s−1}`.
///
/// # Panics
/// Panics if `k = 0` or the graph would exceed `u32` node ids.
pub fn butterfly_dag(k: u32) -> Dag {
    assert!(k >= 1, "butterfly needs at least one stage");
    let width = 1usize << k;
    let total = width * (k as usize + 1);
    assert!(total <= u32::MAX as usize);
    let id = |stage: usize, i: usize| (stage * width + i) as NodeId;
    let mut edges = Vec::with_capacity(2 * width * k as usize);
    for stage in 1..=k as usize {
        let flip = 1usize << (stage - 1);
        for i in 0..width {
            edges.push((id(stage - 1, i), id(stage, i)));
            edges.push((id(stage - 1, i ^ flip), id(stage, i)));
        }
    }
    build_with_db_weights(total, &edges)
}

/// `steps` time steps of a 3-point stencil over `width` cells; cell `(t, i)`
/// depends on `(t−1, i−1)`, `(t−1, i)`, `(t−1, i+1)` (clamped at the ends).
///
/// # Panics
/// Panics if `width` is 0.
pub fn stencil1d_dag(width: usize, steps: usize) -> Dag {
    assert!(width > 0, "stencil needs at least one cell");
    let id = |t: usize, i: usize| (t * width + i) as NodeId;
    let mut edges = Vec::new();
    for t in 1..=steps {
        for i in 0..width {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(width - 1);
            for j in lo..=hi {
                edges.push((id(t - 1, j), id(t, i)));
            }
        }
    }
    build_with_db_weights(width * (steps + 1), &edges)
}

/// Complete `arity`-ary out-tree (broadcast) of the given `depth`:
/// `depth = 0` is a single node.
///
/// # Panics
/// Panics if `arity = 0`.
pub fn out_tree_dag(depth: u32, arity: u32) -> Dag {
    assert!(arity >= 1);
    let mut edges = Vec::new();
    let mut level: Vec<NodeId> = vec![0];
    let mut next: NodeId = 1;
    for _ in 0..depth {
        let mut below = Vec::with_capacity(level.len() * arity as usize);
        for &u in &level {
            for _ in 0..arity {
                edges.push((u, next));
                below.push(next);
                next += 1;
            }
        }
        level = below;
    }
    build_with_db_weights(next as usize, &edges)
}

/// Complete `arity`-ary in-tree (reduction): the edge-reversed
/// [`out_tree_dag`] with the sink carrying the last reduction.
pub fn in_tree_dag(depth: u32, arity: u32) -> Dag {
    let out = out_tree_dag(depth, arity);
    let n = out.n();
    let edges: Vec<(NodeId, NodeId)> = out
        .edges()
        .map(|(u, v)| (n as NodeId - 1 - v, n as NodeId - 1 - u))
        .collect();
    build_with_db_weights(n, &edges)
}

/// Fork-join program of `stages` consecutive parallel sections: each
/// section forks one coordinator node into `chains` independent chains of
/// `depth` nodes, then joins them into the next coordinator — the textbook
/// task-parallel shape (and the structure Cilk-style schedulers are built
/// for).
///
/// Nodes per stage: `chains · depth + 1` (the join doubles as the next
/// fork), plus the initial fork — `stages · (chains·depth + 1) + 1` total.
///
/// # Panics
/// Panics if `chains`, `depth` or `stages` is 0.
pub fn fork_join_dag(chains: usize, depth: usize, stages: usize) -> Dag {
    assert!(
        chains >= 1 && depth >= 1 && stages >= 1,
        "fork-join needs chains, depth, stages >= 1"
    );
    let mut edges = Vec::with_capacity(stages * chains * (depth + 1));
    let mut next: NodeId = 0;
    let mut alloc = || {
        let v = next;
        next += 1;
        v
    };
    let mut fork = alloc();
    for _ in 0..stages {
        let join = alloc();
        for _ in 0..chains {
            let mut prev = fork;
            for _ in 0..depth {
                let v = alloc();
                edges.push((prev, v));
                prev = v;
            }
            edges.push((prev, join));
        }
        fork = join;
    }
    build_with_db_weights(next as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::topo::is_topological_order;
    use bsp_dag::TopoInfo;

    fn check_weights(dag: &Dag) {
        for v in dag.nodes() {
            if dag.in_degree(v) == 0 {
                assert_eq!(dag.work(v), 1);
            } else {
                assert_eq!(dag.work(v), dag.in_degree(v) as u64 - 1);
            }
            assert_eq!(dag.comm(v), 1);
        }
        let topo = TopoInfo::new(dag);
        assert!(is_topological_order(dag, &topo.order));
    }

    #[test]
    fn sptrsv_dense_lower_triangle() {
        // Fully dense 4×4: row i has i strictly-lower nonzeros.
        let rows = (0..4).map(|i| (0..=i as u32).collect()).collect();
        let p = SparsePattern::from_rows(4, rows);
        let dag = sptrsv_dag(&p);
        check_weights(&dag);
        // Nodes: 4 x, 4 b, and (L, product) per strictly-lower nonzero (6).
        assert_eq!(dag.n(), 4 + 4 + 2 * 6);
        // x_3 depends (transitively) on x_0: the solve is sequential along
        // the dense chain.
        let topo = TopoInfo::new(&dag);
        assert!(topo.depth() >= 4, "depth {}", topo.depth());
    }

    #[test]
    fn sptrsv_diagonal_matrix_is_fully_parallel() {
        let rows = (0..5).map(|i| vec![i as u32]).collect();
        let p = SparsePattern::from_rows(5, rows);
        let dag = sptrsv_dag(&p);
        // No strictly-lower nonzeros: only b_i → x_i pairs.
        assert_eq!(dag.n(), 10);
        assert_eq!(dag.m(), 5);
        let topo = TopoInfo::new(&dag);
        assert_eq!(topo.depth(), 2);
    }

    #[test]
    fn sptrsv_ignores_upper_triangle() {
        let p = SparsePattern::from_rows(3, vec![vec![0, 2], vec![1], vec![2]]);
        let dag = sptrsv_dag(&p);
        // The (0,2) entry is upper-triangular: no products at all.
        assert_eq!(dag.n(), 6);
        assert_eq!(dag.m(), 3);
    }

    #[test]
    fn butterfly_structure() {
        let k = 3;
        let dag = butterfly_dag(k);
        check_weights(&dag);
        let width = 1 << k;
        assert_eq!(dag.n(), width * (k as usize + 1));
        assert_eq!(dag.m(), 2 * width * k as usize);
        // Every non-source has exactly two predecessors.
        for v in dag.nodes() {
            let d = dag.in_degree(v);
            assert!(d == 0 || d == 2);
        }
        // Depth = k + 1 levels; every sink depends on every source.
        let topo = TopoInfo::new(&dag);
        assert_eq!(topo.depth(), k as usize + 1);
    }

    #[test]
    fn stencil_interior_has_three_preds() {
        let dag = stencil1d_dag(6, 3);
        check_weights(&dag);
        assert_eq!(dag.n(), 6 * 4);
        // Interior node of layer 1 (cell 2): preds 1, 2, 3 of layer 0.
        assert_eq!(dag.in_degree(6 + 2), 3);
        // Boundary cells have two.
        assert_eq!(dag.in_degree(6), 2);
        assert_eq!(dag.in_degree(6 + 5), 2);
        let topo = TopoInfo::new(&dag);
        assert_eq!(topo.depth(), 4);
    }

    #[test]
    fn trees_mirror_each_other() {
        let out = out_tree_dag(3, 2);
        let inn = in_tree_dag(3, 2);
        check_weights(&out);
        check_weights(&inn);
        assert_eq!(out.n(), 15);
        assert_eq!(inn.n(), 15);
        assert_eq!(out.sources().len(), 1);
        assert_eq!(out.sinks().len(), 8);
        assert_eq!(inn.sources().len(), 8);
        assert_eq!(inn.sinks().len(), 1);
        let topo = TopoInfo::new(&inn);
        assert_eq!(topo.depth(), 4);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(out_tree_dag(0, 3).n(), 1);
        assert_eq!(stencil1d_dag(1, 0).n(), 1);
        let b = butterfly_dag(1);
        assert_eq!(b.n(), 4);
    }

    #[test]
    fn fork_join_structure() {
        let dag = fork_join_dag(3, 2, 2);
        check_weights(&dag);
        assert_eq!(dag.n(), 2 * (3 * 2 + 1) + 1);
        assert_eq!(dag.sources().len(), 1);
        assert_eq!(dag.sinks().len(), 1);
        // The fork has `chains` successors; the join has `chains` preds.
        let fork = dag.sources()[0];
        assert_eq!(dag.out_degree(fork), 3);
        let sink = dag.sinks()[0];
        assert_eq!(dag.in_degree(sink), 3);
        // Depth: per stage, `depth` chain nodes + the join.
        let topo = TopoInfo::new(&dag);
        assert_eq!(topo.depth(), 1 + 2 * 3);
        // Single chain, single stage degenerates to a path.
        let path = fork_join_dag(1, 4, 1);
        assert_eq!(path.n(), 6);
        assert_eq!(path.m(), 5);
    }

    #[test]
    fn structured_families_are_level_schedulable() {
        // Levels form a valid wavefront decomposition: every edge crosses
        // to a strictly higher level (the property HDagg and the Source
        // heuristic rely on).
        for dag in [
            sptrsv_dag(&SparsePattern::random_with_diagonal(8, 0.4, 7)),
            butterfly_dag(3),
            stencil1d_dag(8, 4),
            in_tree_dag(3, 2),
        ] {
            let topo = TopoInfo::new(&dag);
            for (u, v) in dag.edges() {
                assert!(topo.level[u as usize] < topo.level[v as usize]);
            }
        }
    }
}
