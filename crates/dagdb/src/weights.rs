//! The database weight rule (Appendix B): `w(v) = indeg(v) − 1` with
//! sources getting `w = 1` (inputs still cost something to load), and
//! `c(v) = 1` for every node.

use bsp_dag::{Dag, DagBuilder, NodeId};

/// Builds a [`Dag`] from an edge list over `n` nodes, assigning the
/// database weights. Panics on cyclic input (the generators only produce
/// acyclic edge sets).
pub fn build_with_db_weights(n: usize, edges: &[(NodeId, NodeId)]) -> Dag {
    let mut indeg = vec![0u64; n];
    for &(_, v) in edges {
        indeg[v as usize] += 1;
    }
    let mut b = DagBuilder::with_capacity(n, edges.len());
    for &d in indeg.iter() {
        let w = if d == 0 { 1 } else { d.saturating_sub(1) };
        b.add_node(w, 1);
    }
    for &(u, v) in edges {
        b.add_edge(u, v).unwrap();
    }
    b.build().expect("generator edge sets are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_rule_applied() {
        // 0, 1 -> 2 ; 2 -> 3.
        let d = build_with_db_weights(4, &[(0, 2), (1, 2), (2, 3)]);
        assert_eq!(d.work(0), 1); // source
        assert_eq!(d.work(1), 1); // source
        assert_eq!(d.work(2), 1); // indeg 2 - 1
        assert_eq!(d.work(3), 0); // indeg 1 - 1
        assert!(d.comm_weights().iter().all(|&c| c == 1));
    }
}
