//! Property tests for the DAG database generators.

use bsp_dag::topo::is_topological_order;
use bsp_dag::TopoInfo;
use bsp_dagdb::coarse::algorithms::{cg, link_matrix, pagerank, spd_matrix, Iterations};
use bsp_dagdb::coarse::Ctx;
use bsp_dagdb::fine::{cg_dag, exp_dag, knn_dag, spmv_dag};
use bsp_dagdb::SparsePattern;
use proptest::prelude::*;

fn check_db_invariants(dag: &bsp_dag::Dag) {
    let topo = TopoInfo::new(dag);
    assert!(is_topological_order(dag, &topo.order));
    for v in dag.nodes() {
        if dag.in_degree(v) == 0 {
            assert_eq!(dag.work(v), 1, "source weight");
        } else {
            assert_eq!(dag.work(v), dag.in_degree(v) as u64 - 1, "indeg-1 rule");
        }
        assert_eq!(dag.comm(v), 1);
    }
}

proptest! {
    #[test]
    fn spmv_invariants(n in 2usize..25, q in 0.05f64..0.6, seed in 0u64..500) {
        let a = SparsePattern::random(n, q, seed);
        let d = spmv_dag(&a);
        check_db_invariants(&d);
        // spmv is shallow: depth at most 2 node-levels.
        prop_assert!(TopoInfo::new(&d).depth() <= 2);
    }

    #[test]
    fn exp_invariants(n in 2usize..15, q in 0.1f64..0.5, k in 1usize..6, seed in 0u64..500) {
        let a = SparsePattern::random(n, q, seed);
        let d = exp_dag(&a, k);
        check_db_invariants(&d);
        // Depth grows with k but is bounded by 1 + k levels of outputs.
        prop_assert!(TopoInfo::new(&d).depth() <= k + 1);
    }

    #[test]
    fn knn_invariants(n in 2usize..15, q in 0.1f64..0.5, k in 1usize..6, seed in 0u64..500) {
        let a = SparsePattern::random_with_diagonal(n, q, seed);
        let d = knn_dag(&a, 0, k);
        check_db_invariants(&d);
    }

    #[test]
    fn cg_invariants(n in 2usize..10, q in 0.1f64..0.5, k in 1usize..4, seed in 0u64..500) {
        let a = SparsePattern::random_with_diagonal(n, q, seed);
        let d = cg_dag(&a, k);
        check_db_invariants(&d);
        // CG contains global dot products: at least one node of in-degree n.
        prop_assert!(d.nodes().any(|v| d.in_degree(v) >= n));
    }

    /// The recording algebra's traces are always DAGs with DB weights.
    #[test]
    fn coarse_traces_valid(n in 3usize..14, q in 0.1f64..0.4, seed in 0u64..300) {
        let ctx = Ctx::new();
        let a = spd_matrix(&ctx, n, q, seed);
        let b = ctx.vector(vec![1.0; n]);
        cg(&ctx, &a, &b, Iterations::Fixed(2));
        let d = ctx.extract_dag();
        check_db_invariants(&d);

        let ctx2 = Ctx::new();
        let m = link_matrix(&ctx2, n, q, seed);
        pagerank(&ctx2, &m, Iterations::Fixed(2));
        check_db_invariants(&ctx2.extract_dag());
    }

    /// MatrixMarket writer/reader: a lossless round trip for any pattern.
    #[test]
    fn matrix_market_round_trip(n in 1usize..30, q in 0.0f64..0.6, seed in 0u64..500) {
        use bsp_dagdb::{pattern_from_matrix_market, pattern_to_matrix_market};
        let p = SparsePattern::random(n, q, seed);
        let text = pattern_to_matrix_market(&p);
        let back = pattern_from_matrix_market(&text).unwrap();
        prop_assert_eq!(p, back);
    }

    /// A pattern loaded from MatrixMarket drives every generator to the
    /// same DAG as the in-memory pattern.
    #[test]
    fn loaded_pattern_generates_identical_dags(n in 2usize..12, q in 0.1f64..0.5, seed in 0u64..200) {
        use bsp_dagdb::{pattern_from_matrix_market, pattern_to_matrix_market};
        let p = SparsePattern::random_with_diagonal(n, q, seed);
        let loaded = pattern_from_matrix_market(&pattern_to_matrix_market(&p)).unwrap();
        prop_assert_eq!(spmv_dag(&p), spmv_dag(&loaded));
        prop_assert_eq!(cg_dag(&p, 2), cg_dag(&loaded, 2));
    }
}
