//! Property tests for schedules: lazy Γ validity, compaction invariance,
//! classical conversion validity.

use bsp_dag::random::{random_layered_dag, LayeredConfig};
use bsp_dag::{Dag, TopoInfo};
use bsp_model::{BspParams, NumaTopology};
use bsp_schedule::comm::required_transfers;
use bsp_schedule::compact::compact;
use bsp_schedule::cost::total_cost;
use bsp_schedule::validity::{validate, validate_lazy};
use bsp_schedule::{BspSchedule, ClassicalSchedule, CommSchedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_dag() -> impl Strategy<Value = Dag> {
    (0u64..500, 1usize..6, 1usize..6, 0.1f64..0.8).prop_map(|(seed, layers, width, p)| {
        random_layered_dag(
            seed,
            LayeredConfig {
                layers,
                width,
                edge_prob: p,
                max_work: 9,
                max_comm: 5,
            },
        )
    })
}

/// A random assignment that respects the lazy precedence conditions: place
/// nodes in topological order; each node's superstep exceeds all its
/// cross-processor predecessors' and is ≥ same-processor predecessors'.
fn random_valid_assignment(dag: &Dag, p: u32, seed: u64) -> BspSchedule {
    let topo = TopoInfo::new(dag);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sched = BspSchedule::zeroed(dag.n());
    for &v in &topo.order {
        let proc = rng.gen_range(0..p);
        let mut min_step = 0u32;
        for &u in dag.predecessors(v) {
            let req = if sched.proc(u) == proc {
                sched.step(u)
            } else {
                sched.step(u) + 1
            };
            min_step = min_step.max(req);
        }
        let step = min_step + rng.gen_range(0..2);
        sched.set(v, proc, step);
    }
    sched
}

fn machine_for(seed: u64, p: usize) -> BspParams {
    let g = 1 + (seed % 5);
    let l = seed % 8;
    let m = BspParams::new(p, g, l);
    if p.is_power_of_two() && p >= 2 && seed.is_multiple_of(2) {
        m.with_numa(NumaTopology::binary_tree(p, 2 + seed % 3))
    } else {
        m
    }
}

proptest! {
    #[test]
    fn lazy_comm_is_always_valid(dag in arb_dag(), p in 1u32..6, seed in 0u64..1000) {
        let sched = random_valid_assignment(&dag, p, seed);
        prop_assert!(validate_lazy(&dag, p as usize, &sched).is_ok());
    }

    #[test]
    fn compaction_preserves_validity_and_cost(dag in arb_dag(), p in 1u32..6, seed in 0u64..1000) {
        let sched = random_valid_assignment(&dag, p, seed);
        let comm = CommSchedule::lazy(&dag, &sched);
        let machine = machine_for(seed, p as usize);
        let before = total_cost(&dag, &machine, &sched, &comm);
        let (cs, cc) = compact(&dag, &sched, &comm);
        prop_assert!(validate(&dag, p as usize, &cs, &cc).is_ok());
        prop_assert_eq!(before, total_cost(&dag, &machine, &cs, &cc));
        // Compacted schedules have no empty supersteps: every latency charge present.
        let breakdown = bsp_schedule::schedule_cost(&dag, &machine, &cs, &cc);
        for sc in &breakdown.per_step {
            prop_assert_eq!(sc.latency, machine.l());
        }
    }

    #[test]
    fn transfers_within_window_stay_valid(dag in arb_dag(), p in 2u32..6, seed in 0u64..1000) {
        let sched = random_valid_assignment(&dag, p, seed);
        let transfers = required_transfers(&dag, &sched);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        // Place each transfer at a random step in its window: must validate.
        let entries: Vec<_> = transfers
            .iter()
            .map(|t| bsp_schedule::CommStep {
                node: t.node,
                from: t.from,
                to: t.to,
                step: rng.gen_range(t.earliest..=t.latest),
            })
            .collect();
        let comm = CommSchedule::from_entries(entries);
        prop_assert!(validate(&dag, p as usize, &sched, &comm).is_ok());
    }

    #[test]
    fn classical_list_schedule_converts_validly(dag in arb_dag(), p in 1u32..5, seed in 0u64..1000) {
        // Build a simple valid classical schedule: greedy EST on random procs.
        let topo = TopoInfo::new(&dag);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proc_free = vec![0u64; p as usize];
        let mut proc = vec![0u32; dag.n()];
        let mut start = vec![0u64; dag.n()];
        for &v in &topo.order {
            let q = rng.gen_range(0..p);
            let ready = dag
                .predecessors(v)
                .iter()
                .map(|&u| start[u as usize] + dag.work(u))
                .max()
                .unwrap_or(0);
            let t = ready.max(proc_free[q as usize]);
            proc[v as usize] = q;
            start[v as usize] = t;
            proc_free[q as usize] = t + dag.work(v);
        }
        let classical = ClassicalSchedule { proc, start };
        prop_assert!(classical.is_valid(&dag));
        let bsp = classical.to_bsp(&dag);
        prop_assert!(validate_lazy(&dag, p as usize, &bsp).is_ok());
    }

    /// DOT export: structurally complete for any DAG and schedule — every
    /// node appears once per renderer, every edge once, and the dashed
    /// count equals the number of cross-processor edges.
    #[test]
    fn dot_exports_structurally_complete(dag in arb_dag(), seed in 0u64..500) {
        use bsp_schedule::export::{dag_to_dot, schedule_to_dot};
        let p = 4u32;
        let sched = random_valid_assignment(&dag, p, seed);
        let plain = dag_to_dot(&dag);
        let scheduled = schedule_to_dot(&dag, &sched);
        for v in dag.nodes() {
            let label = format!("n{v} [label=");
            prop_assert_eq!(plain.matches(&label).count(), 1);
            prop_assert_eq!(scheduled.matches(&label).count(), 1);
        }
        prop_assert_eq!(plain.matches("->").count(), dag.m());
        prop_assert_eq!(scheduled.matches("->").count(), dag.m());
        let cross = dag.edges().filter(|&(u, v)| sched.proc(u) != sched.proc(v)).count();
        prop_assert_eq!(scheduled.matches("[style=dashed]").count(), cross);
    }

    /// Text export: reports exactly the lazy cost (or the explicit-Γ cost)
    /// and one line per superstep.
    #[test]
    fn text_export_reports_exact_cost(dag in arb_dag(), seed in 0u64..500) {
        use bsp_schedule::cost::lazy_cost;
        use bsp_schedule::export::schedule_to_text;
        let machine = machine_for(seed, 4);
        let sched = random_valid_assignment(&dag, 4, seed);
        let txt = schedule_to_text(&dag, &machine, &sched, None);
        let needle = format!("total cost = {}", lazy_cost(&dag, &machine, &sched));
        prop_assert!(txt.contains(&needle));
        prop_assert_eq!(txt.matches("  superstep ").count(), sched.n_supersteps() as usize);

        let comm = CommSchedule::lazy(&dag, &sched);
        let txt2 = schedule_to_text(&dag, &machine, &sched, Some(&comm));
        let needle2 = format!("total cost = {}", total_cost(&dag, &machine, &sched, &comm));
        prop_assert!(txt2.contains(&needle2));
    }
}
