//! The trivial single-processor schedule (paper §7.3).
//!
//! Assigning every node to processor 0 in superstep 0 is always valid and
//! costs `Σ w(v) + ℓ`. In communication-dominated settings this is a serious
//! baseline: the paper reports that without the multilevel algorithm, found
//! schedules were sometimes *worse* than this trivial one.

use crate::comm::CommSchedule;
use crate::cost::total_cost;
use crate::schedule::BspSchedule;
use bsp_dag::Dag;
use bsp_model::BspParams;

/// The all-on-processor-0, single-superstep schedule.
pub fn trivial_schedule(dag: &Dag) -> BspSchedule {
    BspSchedule::zeroed(dag.n())
}

/// Cost of the trivial schedule: total work plus one latency charge
/// (zero for the empty DAG).
pub fn trivial_cost(dag: &Dag, machine: &BspParams) -> u64 {
    total_cost(dag, machine, &trivial_schedule(dag), &CommSchedule::empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::validate;
    use bsp_dag::DagBuilder;

    #[test]
    fn trivial_is_valid_and_costs_work_plus_latency() {
        let mut b = DagBuilder::new();
        let x = b.add_node(4, 9);
        let y = b.add_node(6, 9);
        b.add_edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let machine = BspParams::new(8, 5, 3);
        let s = trivial_schedule(&dag);
        assert!(validate(&dag, 8, &s, &CommSchedule::empty()).is_ok());
        assert_eq!(trivial_cost(&dag, &machine), 10 + 3);
    }

    #[test]
    fn empty_dag_trivial_cost_zero() {
        let dag = DagBuilder::new().build().unwrap();
        let machine = BspParams::new(2, 1, 5);
        assert_eq!(trivial_cost(&dag, &machine), 0);
    }
}
