//! Superstep compaction: removing empty supersteps.
//!
//! Local search can empty a superstep without renumbering the rest; before
//! reporting (or feeding a schedule to the ILP stages, which index supersteps
//! densely) the empty steps are squeezed out.

use crate::comm::{CommSchedule, CommStep};
use crate::schedule::BspSchedule;
use bsp_dag::Dag;

/// Renumbers supersteps so that only non-empty ones remain, preserving
/// relative order. A superstep is non-empty if it computes a node or carries
/// a communication entry. Returns the compacted pair.
pub fn compact(dag: &Dag, sched: &BspSchedule, comm: &CommSchedule) -> (BspSchedule, CommSchedule) {
    let comp_steps = sched.n_supersteps();
    let comm_steps = comm.max_step().map_or(0, |s| s + 1);
    let n_steps = comp_steps.max(comm_steps) as usize;
    let mut used = vec![false; n_steps];
    for v in dag.nodes() {
        used[sched.step(v) as usize] = true;
    }
    for e in comm.entries() {
        used[e.step as usize] = true;
    }
    let mut remap = vec![0u32; n_steps];
    let mut next = 0u32;
    for (s, &u) in used.iter().enumerate() {
        remap[s] = next;
        if u {
            next += 1;
        }
    }
    let new_sched = BspSchedule::from_parts(
        sched.procs().to_vec(),
        sched.steps().iter().map(|&s| remap[s as usize]).collect(),
    );
    let new_comm = CommSchedule::from_entries(
        comm.entries()
            .iter()
            .map(|e| CommStep {
                step: remap[e.step as usize],
                ..*e
            })
            .collect(),
    );
    (new_sched, new_comm)
}

/// Compacts an assignment under the lazy communication model, returning the
/// compacted assignment only (the lazy Γ can be re-derived).
pub fn compact_lazy(dag: &Dag, sched: &BspSchedule) -> BspSchedule {
    let comm = CommSchedule::lazy(dag, sched);
    compact(dag, sched, &comm).0
}

/// [`compact_lazy`] restricted to the tentative suffix: supersteps below
/// `frontier` are *committed* (already dispatched by an online runtime) and
/// keep their index even when empty; only empty supersteps at
/// `frontier` and above are squeezed out. `frontier == 0` is exactly
/// [`compact_lazy`].
pub fn compact_lazy_from(dag: &Dag, sched: &BspSchedule, frontier: u32) -> BspSchedule {
    let comm = CommSchedule::lazy(dag, sched);
    let comp_steps = sched.n_supersteps();
    let comm_steps = comm.max_step().map_or(0, |s| s + 1);
    let n_steps = (comp_steps.max(comm_steps).max(frontier)) as usize;
    let mut used = vec![false; n_steps];
    for v in dag.nodes() {
        used[sched.step(v) as usize] = true;
    }
    for e in comm.entries() {
        used[e.step as usize] = true;
    }
    let mut remap = vec![0u32; n_steps];
    let mut next = frontier;
    for (s, &u) in used.iter().enumerate() {
        if (s as u32) < frontier {
            remap[s] = s as u32;
            continue;
        }
        remap[s] = next;
        if u {
            next += 1;
        }
    }
    BspSchedule::from_parts(
        sched.procs().to_vec(),
        sched.steps().iter().map(|&s| remap[s as usize]).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::total_cost;
    use crate::validity::validate;
    use bsp_dag::DagBuilder;
    use bsp_model::BspParams;

    #[test]
    fn compaction_removes_gaps_and_preserves_cost() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 1);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 5);
        let sched = BspSchedule::from_parts(vec![0, 1], vec![2, 7]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let before = total_cost(&dag, &machine, &sched, &comm);
        let (cs, cc) = compact(&dag, &sched, &comm);
        assert!(validate(&dag, 2, &cs, &cc).is_ok());
        let after = total_cost(&dag, &machine, &cs, &cc);
        assert_eq!(before, after);
        // steps used: 2 (compute u), 6 (comm), 7 (compute v) -> 0, 1, 2.
        assert_eq!(cs.step(0), 0);
        assert_eq!(cs.step(1), 2);
        assert_eq!(cc.entries()[0].step, 1);
        assert_eq!(cs.n_supersteps(), 3);
    }

    #[test]
    fn already_compact_is_identity() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 1);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let sched = BspSchedule::from_parts(vec![0, 0], vec![0, 1]);
        let comm = CommSchedule::empty();
        let (cs, cc) = compact(&dag, &sched, &comm);
        assert_eq!(cs, sched);
        assert_eq!(cc, comm);
    }

    #[test]
    fn compact_lazy_from_keeps_committed_gaps() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 1);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        // u committed in step 1 (step 0 dispatched empty), v tentative in 9.
        let sched = BspSchedule::from_parts(vec![0, 0], vec![1, 9]);
        let c = compact_lazy_from(&dag, &sched, 2);
        // Committed steps 0 and 1 survive untouched; 9 pulls down to the
        // frontier.
        assert_eq!(c.steps(), &[1, 2]);
        // frontier 0 degenerates to plain compact_lazy.
        assert_eq!(
            compact_lazy_from(&dag, &sched, 0),
            compact_lazy(&dag, &sched)
        );
    }

    #[test]
    fn compact_lazy_shrinks_step_count() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 1);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let sched = BspSchedule::from_parts(vec![0, 0], vec![3, 9]);
        let c = compact_lazy(&dag, &sched);
        assert_eq!(c.steps(), &[0, 1]);
    }
}
