//! Superstep-granular fast-memory residency simulation for
//! memory-bounded machines.
//!
//! When a machine carries a [`MemorySpec`](bsp_memory::MemorySpec)
//! (`BspParams::with_memory`),
//! every processor keeps at most `M` units of value footprint resident,
//! where node `v`'s output occupies its communication weight `c(v)`.
//! This module replays a `(π, τ, Γ)` schedule superstep by superstep and
//! answers two questions:
//!
//! * **Is it feasible?** The *working set* of a compute phase — the cell's
//!   distinct input values plus its own outputs — must fit in `M`
//!   simultaneously. A cell that cannot fit is a
//!   [`MemoryViolation`] (surfaced through validity as
//!   [`InvalidSchedule::MemoryExceeded`](crate::validity::InvalidSchedule::MemoryExceeded));
//!   the repair pass in `bsp-core` removes such cells by splitting
//!   supersteps.
//! * **What does it cost?** Feasible schedules may still thrash: a value
//!   evicted between its uses must be *re-fetched* from its producer
//!   (whose slow memory always backs the values it computed), and that
//!   transfer re-enters the h-relation. [`memory_cost`] folds the
//!   simulator's re-fetch traffic into the
//!   [`SuperstepCost::refetch`](crate::cost::SuperstepCost) component, so
//!   `total = Cwork + g·(Ccomm + refetch) + ℓ` per superstep.
//!
//! Model conventions, chosen so the unbounded case degenerates exactly to
//! the paper's BSP+NUMA cost model:
//!
//! * Re-fetch traffic for the compute phase of superstep `s` is charged to
//!   superstep `s`'s h-relation, weighted `c(u)·λ(π(u), q)` like any other
//!   transfer. A reload on the producer's own processor (`π(u) = q`) is a
//!   local slow-memory access and free (λ diagonal is 0).
//! * Residency changes deterministically: compute phases touch their
//!   working set (pinned against eviction while the phase runs), then the
//!   communication phase lands received values; eviction follows the
//!   spec's [`EvictionPolicy`] with id-order tie-breaks.
//! * On a machine without a memory bound the simulation is skipped
//!   entirely: [`memory_cost`] returns [`schedule_cost`] bit-identically.

use crate::comm::CommSchedule;
use crate::cost::{breakdown_from_tallies, schedule_cost, step_tallies, CostBreakdown};
use crate::schedule::BspSchedule;
use bsp_dag::{Dag, NodeId};
use bsp_memory::{EvictionPolicy, Residency};
use bsp_model::BspParams;
use std::collections::{HashMap, HashSet};

/// One re-fetch the simulator had to schedule: the value of `node`,
/// evicted on `to` before its use in superstep `step`, is shipped again
/// from its producer's processor `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefetchEvent {
    /// The value re-fetched.
    pub node: NodeId,
    /// The producer's processor (slow-memory backing copy).
    pub from: u32,
    /// The processor that needs the value back.
    pub to: u32,
    /// The consuming superstep the traffic is charged to.
    pub step: u32,
}

/// A point where a schedule demands more simultaneous fast memory than the
/// machine has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryViolation {
    /// Offending processor.
    pub proc: u32,
    /// Offending superstep.
    pub step: u32,
    /// Footprint that would have to be resident simultaneously.
    pub need: u64,
    /// The machine's capacity `M`.
    pub capacity: u64,
}

/// Everything one replay of a schedule on a memory-bounded machine
/// observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Re-fetches, in simulation order (step, then processor, then node).
    pub refetches: Vec<RefetchEvent>,
    /// Working sets that cannot fit (empty ⇔ the schedule is
    /// memory-feasible).
    pub violations: Vec<MemoryViolation>,
    /// Extra λ-weighted units sent per `[step][proc]` (row-major,
    /// `step * P + proc`).
    pub extra_send: Vec<u64>,
    /// Extra λ-weighted units received per `[step][proc]`.
    pub extra_recv: Vec<u64>,
}

impl MemoryReport {
    /// Whether every working set fits — the condition
    /// [`validate_memory`](crate::validity::validate_memory) enforces.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total λ-weighted re-fetch units received (the volume the memory
    /// bound added to the communication phases).
    pub fn refetch_units(&self) -> u64 {
        self.extra_recv.iter().sum()
    }
}

/// The distinct-value working sets of every `(processor, superstep)` cell:
/// outputs computed there plus inputs read from elsewhere. Returns, per
/// cell in `(step, proc)` order, the cell key, its member values
/// (ascending node id, inputs and outputs merged) and its total footprint.
fn working_sets(dag: &Dag, sched: &BspSchedule) -> Vec<((u32, u32), Vec<NodeId>, u64)> {
    let mut members: HashMap<(u32, u32), Vec<NodeId>> = HashMap::new();
    for v in dag.nodes() {
        let cell = (sched.step(v), sched.proc(v));
        members.entry(cell).or_default().push(v);
        for &u in dag.predecessors(v) {
            members.entry(cell).or_default().push(u);
        }
    }
    let mut cells: Vec<((u32, u32), Vec<NodeId>, u64)> = members
        .into_iter()
        .map(|((s, q), mut vs)| {
            vs.sort_unstable();
            vs.dedup();
            let need = vs.iter().map(|&u| dag.comm(u)).sum();
            ((s, q), vs, need)
        })
        .collect();
    cells.sort_unstable_by_key(|&(cell, ..)| cell);
    cells
}

/// One node's own working set: its output plus all its distinct input
/// values — the footprint that must be simultaneously resident to compute
/// `v` no matter how the schedule is arranged.
pub fn node_working_set(dag: &Dag, v: NodeId) -> u64 {
    dag.comm(v)
        + dag
            .predecessors(v)
            .iter()
            .map(|&u| dag.comm(u))
            .sum::<u64>()
}

/// The largest [`node_working_set`] of the DAG: the smallest capacity `M`
/// at which superstep splitting (`bsp-core`'s repair pass) can always
/// reach feasibility, because every node fits on its own. The natural
/// lower anchor for capacity sweeps.
pub fn min_repairable_capacity(dag: &Dag) -> u64 {
    dag.nodes()
        .map(|v| node_working_set(dag, v))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Lists every working set exceeding the machine's capacity, in
/// `(step, proc)` order. Empty for machines without a memory bound.
pub fn memory_violations(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
) -> Vec<MemoryViolation> {
    let Some(spec) = machine.memory() else {
        return Vec::new();
    };
    working_sets(dag, sched)
        .into_iter()
        .filter(|&(_, _, need)| !spec.fits(need))
        .map(|((step, proc), _, need)| MemoryViolation {
            proc,
            step,
            need,
            capacity: spec.capacity,
        })
        .collect()
}

/// Replays `(π, τ, Γ)` against the machine's fast-memory bound. For
/// machines without one the report is empty (no re-fetches, no
/// violations).
pub fn simulate_memory(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    comm: &CommSchedule,
) -> MemoryReport {
    let Some(spec) = machine.memory() else {
        return MemoryReport::default();
    };
    let p = machine.p();
    let comp_steps = sched.n_supersteps();
    let n_steps = comp_steps.max(comm.max_step().map_or(0, |s| s + 1)) as usize;
    let mut report = MemoryReport {
        extra_send: vec![0; n_steps * p],
        extra_recv: vec![0; n_steps * p],
        ..MemoryReport::default()
    };

    // Belady oracle: input-use times of each value per processor, encoded
    // as 2·step (compute phases) so they interleave with communication
    // phases at 2·step + 1.
    let mut uses: HashMap<(NodeId, u32), Vec<u64>> = HashMap::new();
    if spec.evict == EvictionPolicy::Belady {
        for v in dag.nodes() {
            for &u in dag.predecessors(v) {
                uses.entry((u, sched.proc(v)))
                    .or_default()
                    .push(2 * sched.step(v) as u64);
            }
        }
        for times in uses.values_mut() {
            times.sort_unstable();
            times.dedup();
        }
    }
    let next_use_after = |u: NodeId, q: u32, now: u64| -> u64 {
        uses.get(&(u, q)).map_or(u64::MAX, |times| {
            let i = times.partition_point(|&t| t <= now);
            times.get(i).copied().unwrap_or(u64::MAX)
        })
    };

    let mut resident: Vec<Residency> = (0..p).map(|_| Residency::new(*spec)).collect();
    let cells = working_sets(dag, sched);
    let mut next_cell = 0usize;
    let mut comm_at: Vec<Vec<&crate::comm::CommStep>> = vec![Vec::new(); n_steps];
    for e in comm.entries() {
        comm_at[e.step as usize].push(e);
    }

    for s in 0..n_steps as u32 {
        // Compute phase: every cell of this superstep, processors in
        // ascending order (cells are sorted by (step, proc)).
        while next_cell < cells.len() && cells[next_cell].0 .0 == s {
            let ((_, q), ref set, need) = cells[next_cell];
            next_cell += 1;
            if !spec.fits(need) {
                report.violations.push(MemoryViolation {
                    proc: q,
                    step: s,
                    need,
                    capacity: spec.capacity,
                });
            }
            let pinned: HashSet<NodeId> = set.iter().copied().collect();
            let now = 2 * s as u64;
            for &u in set {
                // Inputs produced elsewhere that were evicted (or never
                // arrived, for a best-effort infeasible schedule) must be
                // re-fetched from their producer before the phase runs.
                let is_input = sched.proc(u) != q || sched.step(u) != s;
                if is_input && !resident[q as usize].contains(u) && dag.comm(u) > 0 {
                    let from = sched.proc(u);
                    report.refetches.push(RefetchEvent {
                        node: u,
                        from,
                        to: q,
                        step: s,
                    });
                    let weighted = dag.comm(u) * machine.lambda(from as usize, q as usize);
                    report.extra_send[s as usize * p + from as usize] += weighted;
                    report.extra_recv[s as usize * p + q as usize] += weighted;
                }
                resident[q as usize].insert(
                    u,
                    dag.comm(u),
                    now,
                    |id| pinned.contains(&id),
                    |id| next_use_after(id, q, now),
                );
            }
        }
        // Communication phase: received values land in the target's fast
        // memory (senders stream from their backing copy). Entries iterate
        // in the schedule's sorted order — deterministic.
        let now = 2 * s as u64 + 1;
        for e in &comm_at[s as usize] {
            let out = resident[e.to as usize].insert(
                e.node,
                dag.comm(e.node),
                now,
                |_| false,
                |id| next_use_after(id, e.to, now),
            );
            if out.overflow {
                report.violations.push(MemoryViolation {
                    proc: e.to,
                    step: s,
                    need: resident[e.to as usize].used(),
                    capacity: spec.capacity,
                });
            }
        }
    }
    report
}

/// [`schedule_cost`] under the machine's memory bound: the residency
/// simulator's re-fetch traffic is folded into each superstep's h-relation
/// ([`SuperstepCost::refetch`](crate::cost::SuperstepCost)). On machines
/// without a bound this *is* `schedule_cost`, bit for bit.
pub fn memory_cost(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    comm: &CommSchedule,
) -> CostBreakdown {
    if !machine.is_memory_bounded() {
        return schedule_cost(dag, machine, sched, comm);
    }
    let report = simulate_memory(dag, machine, sched, comm);
    let tallies = step_tallies(dag, machine, sched, comm);
    breakdown_from_tallies(
        machine,
        &tallies,
        Some((&report.extra_send, &report.extra_recv)),
    )
}

/// [`memory_cost`] under the lazy communication schedule.
pub fn memory_lazy_cost(dag: &Dag, machine: &BspParams, sched: &BspSchedule) -> u64 {
    memory_cost(dag, machine, sched, &CommSchedule::lazy(dag, sched)).total
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;
    use bsp_memory::MemorySpec;

    /// The worked example from the PR description: a chain `a → x → y` on
    /// two processors plus a late second use of `a`, with `M` forcing `a`
    /// out of processor 1's memory in between.
    ///
    /// DAG (work, comm): a(1,2) on p0; x(1,2), y(1,2), z(1,0) on p1 with
    /// edges a→x, x→y, a→z, y→z. Machine P=2, g=1, ℓ=0, M=4, LRU.
    ///
    /// * step 0: p0 computes a (working set 2); lazy Γ ships a→p1 (h = 2).
    /// * step 1: p1 computes x, set {a, x} = 4 — fits exactly.
    /// * step 2: p1 computes y, set {x, y} = 4 — `a` must be evicted.
    /// * step 3: p1 computes z, set {a, y, z} = 4 — `a` is gone and is
    ///   re-fetched from p0: traffic c(a)·λ = 2 charged to step 3.
    ///
    /// Costs: steps (1+2) + 1 + 1 + (1+2) = 8; without the memory bound
    /// the same schedule costs 6, so refetch adds exactly c(a)·g = 2.
    fn worked_example() -> (Dag, BspSchedule) {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(1, 2);
        let y = b.add_node(1, 2);
        let z = b.add_node(1, 0);
        b.add_edge(a, x).unwrap();
        b.add_edge(x, y).unwrap();
        b.add_edge(a, z).unwrap();
        b.add_edge(y, z).unwrap();
        let dag = b.build().unwrap();
        let sched = BspSchedule::from_parts(vec![0, 1, 1, 1], vec![0, 1, 2, 3]);
        (dag, sched)
    }

    #[test]
    fn worked_example_charges_exactly_one_refetch() {
        let (dag, sched) = worked_example();
        let machine = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(4));
        let comm = CommSchedule::lazy(&dag, &sched);
        let report = simulate_memory(&dag, &machine, &sched, &comm);
        assert!(report.is_feasible(), "{:?}", report.violations);
        assert_eq!(
            report.refetches,
            vec![RefetchEvent {
                node: 0,
                from: 0,
                to: 1,
                step: 3
            }]
        );
        assert_eq!(report.refetch_units(), 2);

        let bounded = memory_cost(&dag, &machine, &sched, &comm);
        let unbounded = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(unbounded.total, 6);
        assert_eq!(bounded.total, 8);
        assert_eq!(bounded.refetch_total, 2);
        assert_eq!(bounded.per_step[3].refetch, 2);
        assert_eq!(bounded.per_step[3].comm, 0);
    }

    #[test]
    fn ample_memory_reproduces_the_unbounded_cost() {
        let (dag, sched) = worked_example();
        let comm = CommSchedule::lazy(&dag, &sched);
        let plain = BspParams::new(2, 1, 0);
        let roomy = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(1_000));
        assert_eq!(
            memory_cost(&dag, &roomy, &sched, &comm),
            schedule_cost(&dag, &plain, &sched, &comm)
        );
        assert!(simulate_memory(&dag, &roomy, &sched, &comm)
            .refetches
            .is_empty());
        // And without a bound the simulator does not even run.
        assert_eq!(
            simulate_memory(&dag, &plain, &sched, &comm),
            MemoryReport::default()
        );
    }

    #[test]
    fn oversized_working_set_is_a_violation() {
        let (dag, sched) = worked_example();
        let machine = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(3));
        let violations = memory_violations(&dag, &machine, &sched);
        // Steps 1 ({a,x}=4), 2 ({x,y}=4) and 3 ({a,y,z}=4) all exceed 3.
        assert_eq!(violations.len(), 3);
        assert_eq!(
            violations[0],
            MemoryViolation {
                proc: 1,
                step: 1,
                need: 4,
                capacity: 3
            }
        );
        let comm = CommSchedule::lazy(&dag, &sched);
        let report = simulate_memory(&dag, &machine, &sched, &comm);
        assert!(!report.is_feasible());
    }

    #[test]
    fn belady_oracle_beats_lru_when_recency_misleads() {
        // p1's input-use pattern is a, b, a — and b is never used again
        // while a is. When c arrives (for the final step) the memory is
        // full: LRU evicts a (touched longest ago) and pays a re-fetch;
        // the Belady oracle evicts the dead value b and pays nothing.
        let mut builder = DagBuilder::new();
        let a = builder.add_node(1, 2); // 0: p0, step 0
        let b = builder.add_node(1, 2); // 1: p0, step 1
        let c = builder.add_node(1, 2); // 2: p0, step 2
        let x1 = builder.add_node(1, 0); // 3: p1, step 2, reads a
        let x2 = builder.add_node(1, 0); // 4: p1, step 3, reads b
        let x3 = builder.add_node(1, 0); // 5: p1, step 4, reads a and c
        builder.add_edge(a, x1).unwrap();
        builder.add_edge(b, x2).unwrap();
        builder.add_edge(a, x3).unwrap();
        builder.add_edge(c, x3).unwrap();
        let dag = builder.build().unwrap();
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 1, 1, 1], vec![0, 1, 2, 2, 3, 4]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let lru = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(4));
        let oracle = BspParams::new(2, 1, 0)
            .with_memory(MemorySpec::new(4).with_policy(EvictionPolicy::Belady));
        let lru_report = simulate_memory(&dag, &lru, &sched, &comm);
        let oracle_report = simulate_memory(&dag, &oracle, &sched, &comm);
        assert_eq!(lru_report.refetch_units(), 2, "{lru_report:?}");
        assert_eq!(oracle_report.refetch_units(), 0, "{oracle_report:?}");
        assert!(
            memory_cost(&dag, &oracle, &sched, &comm).total
                < memory_cost(&dag, &lru, &sched, &comm).total
        );
    }

    #[test]
    fn local_reload_is_free() {
        // One processor, M forces eviction between the two uses of a: the
        // reload comes from p0's own backing store, so no traffic.
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(1, 2);
        let y = b.add_node(1, 2);
        let z = b.add_node(1, 0);
        b.add_edge(a, x).unwrap();
        b.add_edge(x, y).unwrap();
        b.add_edge(a, z).unwrap();
        b.add_edge(y, z).unwrap();
        let dag = b.build().unwrap();
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 0], vec![0, 1, 2, 3]);
        let machine = BspParams::new(1, 3, 0).with_memory(MemorySpec::new(4));
        let comm = CommSchedule::empty();
        let report = simulate_memory(&dag, &machine, &sched, &comm);
        assert!(report.is_feasible());
        assert_eq!(report.refetches.len(), 1, "{:?}", report.refetches);
        assert_eq!(report.refetch_units(), 0);
        assert_eq!(
            memory_cost(&dag, &machine, &sched, &comm).total,
            schedule_cost(&dag, &machine, &sched, &comm).total
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let (dag, sched) = worked_example();
        let machine = BspParams::new(2, 1, 0).with_memory(MemorySpec::new(4));
        let comm = CommSchedule::lazy(&dag, &sched);
        let a = simulate_memory(&dag, &machine, &sched, &comm);
        let b = simulate_memory(&dag, &machine, &sched, &comm);
        assert_eq!(a, b);
    }
}
