//! Spec strings: the one shared grammar for addressing and tuning
//! schedulers by name.
//!
//! A spec is `name` or `name?key=value&key=value`, e.g. `"etf?numa=on"` or
//! `"pipeline/base?ilp=off&hc_iters=200"`. Names may contain letters,
//! digits, `/`, `-`, `_` and `.`; keys are identifiers; values are any
//! `&`-free text. The experiments CLI, the criterion benches and the
//! examples all select schedulers through this grammar (via
//! `bsp_sched::Registry`), so one parser — this module — defines it.
//!
//! ```
//! use bsp_schedule::spec::SchedulerSpec;
//!
//! let spec = SchedulerSpec::parse("pipeline/base?ilp=off&hc_iters=200").unwrap();
//! assert_eq!(spec.name(), "pipeline/base");
//! assert_eq!(spec.get("ilp"), Some("off"));
//! assert_eq!(spec.bool_param("ilp").unwrap(), Some(false));
//! assert_eq!(spec.usize_param("hc_iters").unwrap(), Some(200));
//! assert_eq!(spec.canonical(), "pipeline/base?hc_iters=200&ilp=off");
//! ```

use crate::scheduler::SchedulerKind;
use std::fmt;

/// A parse or lookup failure for a spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec was empty or had an empty name.
    EmptyName,
    /// The name contains a character outside `[A-Za-z0-9/_.-]`.
    BadName(String),
    /// A `key=value` pair was malformed.
    BadPair(String),
    /// The same key appeared twice.
    DuplicateKey(String),
    /// A value failed to parse as its expected type.
    BadValue {
        /// The offending key.
        key: String,
        /// The value as written.
        value: String,
        /// What the key expects (`"on|off"`, `"integer"`, …).
        expected: &'static str,
    },
    /// The scheduler accepts no parameter of this name.
    UnknownParam {
        /// Scheduler the spec addressed.
        scheduler: String,
        /// The unrecognized key.
        key: String,
        /// Keys the scheduler does accept.
        allowed: Vec<String>,
    },
    /// No registry entry has this name.
    UnknownScheduler {
        /// The name as written.
        name: String,
        /// All registered names.
        known: Vec<String>,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyName => write!(f, "empty scheduler name"),
            SpecError::BadName(n) => write!(
                f,
                "invalid scheduler name {n:?} (allowed: letters, digits, '/', '-', '_', '.')"
            ),
            SpecError::BadPair(p) => write!(f, "malformed parameter {p:?} (expected key=value)"),
            SpecError::DuplicateKey(k) => write!(f, "parameter {k:?} given twice"),
            SpecError::BadValue {
                key,
                value,
                expected,
            } => write!(f, "parameter {key}={value:?}: expected {expected}"),
            SpecError::UnknownParam {
                scheduler,
                key,
                allowed,
            } => {
                if allowed.is_empty() {
                    write!(f, "{scheduler} takes no parameters, got {key:?}")
                } else {
                    write!(
                        f,
                        "{scheduler} has no parameter {key:?} (available: {})",
                        allowed.join(", ")
                    )
                }
            }
            SpecError::UnknownScheduler { name, known } => write!(
                f,
                "no scheduler named {name:?} (available: {})",
                known.join(", ")
            ),
        }
    }
}

impl std::error::Error for SpecError {}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | '-' | '_' | '.'))
}

/// A parsed spec string: a scheduler name plus `key=value` parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSpec {
    name: String,
    params: Vec<(String, String)>,
}

impl SchedulerSpec {
    /// Parses `name` or `name?key=value&…`.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let (name, query) = match s.split_once('?') {
            Some((n, q)) => (n, Some(q)),
            None => (s, None),
        };
        if name.is_empty() {
            return Err(SpecError::EmptyName);
        }
        if !valid_name(name) {
            return Err(SpecError::BadName(name.to_string()));
        }
        let mut params: Vec<(String, String)> = Vec::new();
        if let Some(query) = query {
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(SpecError::BadPair(pair.to_string()));
                };
                if k.is_empty() || !valid_name(k) {
                    return Err(SpecError::BadPair(pair.to_string()));
                }
                if params.iter().any(|(pk, _)| pk == k) {
                    return Err(SpecError::DuplicateKey(k.to_string()));
                }
                params.push((k.to_string(), v.to_string()));
            }
        }
        Ok(SchedulerSpec {
            name: name.to_string(),
            params,
        })
    }

    /// A bare spec with no parameters.
    pub fn bare(name: &str) -> Self {
        SchedulerSpec {
            name: name.to_string(),
            params: Vec::new(),
        }
    }

    /// The scheduler name the spec addresses.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameters, in the order written.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// The raw value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses `key` as a switch: `on`/`true`/`1` or `off`/`false`/`0`.
    pub fn bool_param(&self, key: &str) -> Result<Option<bool>, SpecError> {
        self.typed(key, "on|off", |v| match v {
            "on" | "true" | "1" => Some(true),
            "off" | "false" | "0" => Some(false),
            _ => None,
        })
    }

    /// Parses `key` as a non-negative integer.
    pub fn usize_param(&self, key: &str) -> Result<Option<usize>, SpecError> {
        self.typed(key, "non-negative integer", |v| v.parse().ok())
    }

    /// Parses `key` as an unsigned 64-bit integer.
    pub fn u64_param(&self, key: &str) -> Result<Option<u64>, SpecError> {
        self.typed(key, "non-negative integer", |v| v.parse().ok())
    }

    /// Parses `key` as a finite float.
    pub fn f64_param(&self, key: &str) -> Result<Option<f64>, SpecError> {
        self.typed(key, "number", |v| {
            v.parse::<f64>().ok().filter(|x| x.is_finite())
        })
    }

    fn typed<T>(
        &self,
        key: &str,
        expected: &'static str,
        parse: impl Fn(&str) -> Option<T>,
    ) -> Result<Option<T>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => parse(v).map(Some).ok_or_else(|| SpecError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// Fails if any parameter key is outside `allowed` — registry factories
    /// call this so typos surface as errors instead of silent defaults.
    pub fn deny_unknown(&self, scheduler: &str, allowed: &[&str]) -> Result<(), SpecError> {
        for (k, _) in &self.params {
            if !allowed.contains(&k.as_str()) {
                return Err(SpecError::UnknownParam {
                    scheduler: scheduler.to_string(),
                    key: k.clone(),
                    allowed: allowed.iter().map(|s| s.to_string()).collect(),
                });
            }
        }
        Ok(())
    }

    /// The canonical rendering: name, then parameters sorted by key.
    /// `parse(spec.canonical())` round-trips to an equal spec (up to
    /// parameter order).
    pub fn canonical(&self) -> String {
        if self.params.is_empty() {
            return self.name.clone();
        }
        let mut params = self.params.clone();
        params.sort();
        let query: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}?{}", self.name, query.join("&"))
    }
}

/// Static metadata a registry entry carries about its scheduler: enough for
/// harnesses to select comparable subsets and for the CLI to print a
/// catalogue without constructing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerDescriptor {
    /// Stable name, also the spec-string address (`"etf"`,
    /// `"pipeline/base"`, …).
    pub name: &'static str,
    /// Algorithm family.
    pub kind: SchedulerKind,
    /// Whether the algorithm exploits per-pair NUMA coefficients (λ) beyond
    /// just being *costed* under them — at the entry's **default**
    /// configuration (spec parameters like `numa=on` can reconfigure an
    /// entry past what its descriptor advertises).
    pub numa_aware: bool,
    /// Whether repeated solves of the same request are bit-identical.
    /// Wall-clock-budgeted stages (the pipelines) are not.
    pub deterministic: bool,
    /// Whether the scheduler reacts to [`Budget`](crate::solve::Budget)
    /// deadlines between stages (single-stage schedulers run to completion
    /// regardless).
    pub supports_budget: bool,
    /// Spec parameters the factory accepts.
    pub params: &'static [&'static str],
    /// One-line description for catalogues.
    pub summary: &'static str,
}

impl SchedulerDescriptor {
    /// The canonical default spec string for this entry: its name. Feeding
    /// it back through `Registry::get` rebuilds the default-configured
    /// scheduler.
    pub fn spec(&self) -> String {
        self.name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_and_parameterized() {
        let s = SchedulerSpec::parse("etf").unwrap();
        assert_eq!(s.name(), "etf");
        assert!(s.params().is_empty());
        assert_eq!(s.canonical(), "etf");

        let s = SchedulerSpec::parse("pipeline/base?ilp=off&hc_iters=200").unwrap();
        assert_eq!(s.name(), "pipeline/base");
        assert_eq!(s.bool_param("ilp").unwrap(), Some(false));
        assert_eq!(s.usize_param("hc_iters").unwrap(), Some(200));
        assert_eq!(s.get("nope"), None);
        assert_eq!(s.bool_param("nope").unwrap(), None);
    }

    #[test]
    fn canonical_sorts_params_and_reparses() {
        let s = SchedulerSpec::parse("auto?ccr_hi=9&ccr_lo=3.5").unwrap();
        assert_eq!(s.canonical(), "auto?ccr_hi=9&ccr_lo=3.5");
        let s2 = SchedulerSpec::parse("auto?ccr_lo=3.5&ccr_hi=9").unwrap();
        assert_eq!(s.canonical(), s2.canonical());
        assert_eq!(s2.f64_param("ccr_lo").unwrap(), Some(3.5));
        let re = SchedulerSpec::parse(&s.canonical()).unwrap();
        assert_eq!(re.canonical(), s.canonical());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert_eq!(SchedulerSpec::parse(""), Err(SpecError::EmptyName));
        assert_eq!(SchedulerSpec::parse("?a=1"), Err(SpecError::EmptyName));
        assert!(matches!(
            SchedulerSpec::parse("et f"),
            Err(SpecError::BadName(_))
        ));
        assert!(matches!(
            SchedulerSpec::parse("etf?numa"),
            Err(SpecError::BadPair(_))
        ));
        assert!(matches!(
            SchedulerSpec::parse("etf?=on"),
            Err(SpecError::BadPair(_))
        ));
        assert_eq!(
            SchedulerSpec::parse("etf?numa=on&numa=off"),
            Err(SpecError::DuplicateKey("numa".into()))
        );
        let s = SchedulerSpec::parse("etf?numa=maybe").unwrap();
        assert!(matches!(
            s.bool_param("numa"),
            Err(SpecError::BadValue { .. })
        ));
    }

    #[test]
    fn deny_unknown_names_the_alternatives() {
        let s = SchedulerSpec::parse("pipeline/base?hc_itres=5").unwrap();
        let err = s
            .deny_unknown("pipeline/base", &["ilp", "hc_iters"])
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("hc_itres"), "{msg}");
        assert!(msg.contains("hc_iters"), "{msg}");
        assert!(s.deny_unknown("pipeline/base", &["hc_itres"]).is_ok());
    }

    #[test]
    fn descriptor_spec_is_its_name() {
        let d = SchedulerDescriptor {
            name: "etf",
            kind: SchedulerKind::Baseline,
            numa_aware: false,
            deterministic: true,
            supports_budget: false,
            params: &["numa"],
            summary: "ETF list scheduling",
        };
        assert_eq!(d.spec(), "etf");
        assert_eq!(SchedulerSpec::parse(&d.spec()).unwrap().name(), d.name);
    }
}
