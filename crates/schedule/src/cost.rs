//! BSP cost evaluation with NUMA effects (paper §3.3–§3.4).
//!
//! The cost of superstep `s` is `Cwork(s) + g·Ccomm(s) + ℓ` with
//!
//! * `Cwork(s)  = max_p Σ_{π(v)=p, τ(v)=s} w(v)` and
//! * `Ccomm(s)  = max_p max(Csend(p,s), Crecv(p,s))` where the send/receive
//!   costs sum `c(v)·λ[p1][p2]` over the Γ entries of the phase (h-relation).
//!
//! The latency `ℓ` is charged for every *non-empty* superstep (one that
//! computes at least one node or carries at least one transfer). After
//! [`crate::compact`]ion this equals the paper's per-superstep charge, and it
//! lets local search claim the ℓ saving the moment it empties a superstep.

use crate::comm::CommSchedule;
use crate::schedule::BspSchedule;
use bsp_dag::Dag;
use bsp_model::BspParams;

/// Per-superstep cost components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperstepCost {
    /// `Cwork(s)`: maximum work on any processor.
    pub work: u64,
    /// `Ccomm(s)`: maximum λ-weighted h-relation entry (before multiplying
    /// by `g`).
    pub comm: u64,
    /// Latency charged (`ℓ` if non-empty, else 0).
    pub latency: u64,
}

impl SuperstepCost {
    /// `Cwork + g·Ccomm + latency` for the machine's `g`.
    pub fn total(&self, g: u64) -> u64 {
        self.work + g * self.comm + self.latency
    }
}

/// Full cost breakdown of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Total cost of the schedule.
    pub total: u64,
    /// Per-superstep components, indexed by superstep.
    pub per_step: Vec<SuperstepCost>,
    /// Σ Cwork over supersteps.
    pub work_total: u64,
    /// Σ g·Ccomm over supersteps.
    pub comm_total: u64,
    /// Σ latency over supersteps.
    pub latency_total: u64,
}

/// Evaluates the cost of `(π, τ, Γ)` on `machine`. Does not check validity;
/// see [`crate::validate`].
pub fn schedule_cost(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    comm: &CommSchedule,
) -> CostBreakdown {
    let p = machine.p();
    let comp_steps = sched.n_supersteps();
    let comm_steps = comm.max_step().map_or(0, |s| s + 1);
    let n_steps = comp_steps.max(comm_steps) as usize;

    let mut work = vec![0u64; n_steps * p];
    let mut nodes_in_step = vec![0u32; n_steps];
    for v in dag.nodes() {
        work[sched.step(v) as usize * p + sched.proc(v) as usize] += dag.work(v);
        nodes_in_step[sched.step(v) as usize] += 1;
    }
    let mut send = vec![0u64; n_steps * p];
    let mut recv = vec![0u64; n_steps * p];
    let mut comms_in_step = vec![0u32; n_steps];
    for e in comm.entries() {
        let weighted = dag.comm(e.node) * machine.lambda(e.from as usize, e.to as usize);
        send[e.step as usize * p + e.from as usize] += weighted;
        recv[e.step as usize * p + e.to as usize] += weighted;
        comms_in_step[e.step as usize] += 1;
    }

    let mut per_step = Vec::with_capacity(n_steps);
    let (mut total, mut work_total, mut comm_total, mut latency_total) = (0, 0, 0, 0);
    for s in 0..n_steps {
        let row = s * p;
        let w = work[row..row + p].iter().copied().max().unwrap_or(0);
        let c = (0..p)
            .map(|q| send[row + q].max(recv[row + q]))
            .max()
            .unwrap_or(0);
        let nonempty = nodes_in_step[s] > 0 || comms_in_step[s] > 0;
        let latency = if nonempty { machine.l() } else { 0 };
        let sc = SuperstepCost {
            work: w,
            comm: c,
            latency,
        };
        total += sc.total(machine.g());
        work_total += w;
        comm_total += machine.g() * c;
        latency_total += latency;
        per_step.push(sc);
    }
    CostBreakdown {
        total,
        per_step,
        work_total,
        comm_total,
        latency_total,
    }
}

/// Total cost only (convenience wrapper around [`schedule_cost`]).
pub fn total_cost(dag: &Dag, machine: &BspParams, sched: &BspSchedule, comm: &CommSchedule) -> u64 {
    schedule_cost(dag, machine, sched, comm).total
}

/// Cost of an assignment under its lazy communication schedule.
pub fn lazy_cost(dag: &Dag, machine: &BspParams, sched: &BspSchedule) -> u64 {
    total_cost(dag, machine, sched, &CommSchedule::lazy(dag, sched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;
    use bsp_model::NumaTopology;

    fn pair() -> Dag {
        let mut b = DagBuilder::new();
        let u = b.add_node(2, 3);
        let v = b.add_node(5, 1);
        b.add_edge(u, v).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1_style_cost() {
        // u on p0 step 0, v on p1 step 1: work phases 2 then 5, one transfer
        // of c(u)=3 units, g=2, l=4.
        let dag = pair();
        let machine = BspParams::new(2, 2, 4);
        let sched = BspSchedule::from_parts(vec![0, 1], vec![0, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step.len(), 2);
        assert_eq!(
            c.per_step[0],
            SuperstepCost {
                work: 2,
                comm: 3,
                latency: 4
            }
        );
        assert_eq!(
            c.per_step[1],
            SuperstepCost {
                work: 5,
                comm: 0,
                latency: 4
            }
        );
        assert_eq!(c.total, (2 + 6 + 4) + (5 + 4));
        assert_eq!(c.work_total, 7);
        assert_eq!(c.comm_total, 6);
        assert_eq!(c.latency_total, 8);
    }

    #[test]
    fn h_relation_takes_max_of_send_and_recv() {
        // Three nodes on p0 all feeding one node on p1: p0 sends 3 values in
        // one phase, p1 receives 3; Ccomm = sum on the bottleneck processor.
        let mut b = DagBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_node(1, 2)).collect();
        let t = b.add_node(1, 1);
        for &x in &s {
            b.add_edge(x, t).unwrap();
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 0);
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 1], vec![0, 0, 0, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step[0].comm, 6); // 3 transfers * c=2
    }

    #[test]
    fn numa_lambda_scales_both_sides() {
        let dag = pair();
        let machine = BspParams::new(4, 1, 0).with_numa(NumaTopology::binary_tree(4, 3));
        // u on p0, v on p3 => lambda = 3 (level 2 of a 4-leaf tree).
        let sched = BspSchedule::from_parts(vec![0, 3], vec![0, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step[0].comm, 3 * 3); // c(u)=3 times lambda 3
    }

    #[test]
    fn empty_supersteps_carry_no_latency() {
        let dag = pair();
        let machine = BspParams::new(2, 1, 10);
        // Nodes in supersteps 0 and 5; 1..4 are empty except the lazy comm at 4.
        let sched = BspSchedule::from_parts(vec![0, 1], vec![0, 5]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step.len(), 6);
        // steps 0, 4 (comm), 5 are non-empty -> 3 latency charges.
        assert_eq!(c.latency_total, 30);
    }

    #[test]
    fn trivial_schedule_cost_is_work_plus_latency() {
        let dag = pair();
        let machine = BspParams::new(4, 3, 7);
        let sched = BspSchedule::zeroed(dag.n());
        assert_eq!(lazy_cost(&dag, &machine, &sched), dag.total_work() + 7);
    }
}
