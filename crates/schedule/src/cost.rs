//! BSP cost evaluation with NUMA effects (paper §3.3–§3.4).
//!
//! The cost of superstep `s` is `Cwork(s) + g·Ccomm(s) + ℓ` with
//!
//! * `Cwork(s)  = max_p Σ_{π(v)=p, τ(v)=s} w(v)` and
//! * `Ccomm(s)  = max_p max(Csend(p,s), Crecv(p,s))` where the send/receive
//!   costs sum `c(v)·λ[p1][p2]` over the Γ entries of the phase (h-relation).
//!
//! The latency `ℓ` is charged for every *non-empty* superstep (one that
//! computes at least one node or carries at least one transfer). After
//! [`crate::compact`]ion this equals the paper's per-superstep charge, and it
//! lets local search claim the ℓ saving the moment it empties a superstep.
//!
//! The functions here re-evaluate a whole schedule from scratch in
//! `O(n + m + S·P)`; they are the ground truth the incremental machinery is
//! tested against. Local search never calls them per candidate move: the
//! `bsp-core` crate's `ScheduleState` maintains this exact cost
//! incrementally and exposes an allocation-free, read-only
//! `probe_move(v, q, s)` that returns the delta of a single-node move in
//! `O(degree)` — bit-for-bit equal to applying the move and subtracting.

use crate::comm::CommSchedule;
use crate::schedule::BspSchedule;
use bsp_dag::Dag;
use bsp_model::BspParams;

/// Per-superstep cost components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperstepCost {
    /// `Cwork(s)`: maximum work on any processor.
    pub work: u64,
    /// `Ccomm(s)`: maximum λ-weighted h-relation entry (before multiplying
    /// by `g`).
    pub comm: u64,
    /// Extra λ-weighted h-relation units caused by fast-memory re-fetches
    /// on memory-bounded machines — the growth of `max_p max(send, recv)`
    /// once eviction/re-fetch traffic is folded in. Always 0 from
    /// [`schedule_cost`]; filled by
    /// [`memory_cost`](crate::memory::memory_cost). Folded into `Ccomm`:
    /// the superstep total charges `g · (comm + refetch)`.
    pub refetch: u64,
    /// Latency charged (`ℓ` if non-empty, else 0).
    pub latency: u64,
}

impl SuperstepCost {
    /// `Cwork + g·(Ccomm + refetch) + latency` for the machine's `g`.
    pub fn total(&self, g: u64) -> u64 {
        self.work + g * (self.comm + self.refetch) + self.latency
    }
}

/// Full cost breakdown of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Total cost of the schedule.
    pub total: u64,
    /// Per-superstep components, indexed by superstep.
    pub per_step: Vec<SuperstepCost>,
    /// Σ Cwork over supersteps.
    pub work_total: u64,
    /// Σ g·Ccomm over supersteps.
    pub comm_total: u64,
    /// Σ g·refetch over supersteps (0 unless evaluated under a
    /// memory-bounded machine by [`memory_cost`](crate::memory::memory_cost)).
    pub refetch_total: u64,
    /// Σ latency over supersteps.
    pub latency_total: u64,
}

/// Per-(superstep, processor) tallies of a schedule — the intermediate
/// representation [`schedule_cost`] folds into a [`CostBreakdown`], shared
/// with the memory-bounded evaluation in [`crate::memory`] (which adds
/// re-fetch traffic on top before taking the h-relation maxima).
pub(crate) struct StepTallies {
    pub n_steps: usize,
    /// `work[s*P + q]`: work of processor `q` in superstep `s`.
    pub work: Vec<u64>,
    /// λ-weighted units sent per `[step][proc]`.
    pub send: Vec<u64>,
    /// λ-weighted units received per `[step][proc]`.
    pub recv: Vec<u64>,
    pub nodes_in_step: Vec<u32>,
    pub comms_in_step: Vec<u32>,
}

pub(crate) fn step_tallies(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    comm: &CommSchedule,
) -> StepTallies {
    let p = machine.p();
    let comp_steps = sched.n_supersteps();
    let comm_steps = comm.max_step().map_or(0, |s| s + 1);
    let n_steps = comp_steps.max(comm_steps) as usize;

    let mut work = vec![0u64; n_steps * p];
    let mut nodes_in_step = vec![0u32; n_steps];
    for v in dag.nodes() {
        work[sched.step(v) as usize * p + sched.proc(v) as usize] += dag.work(v);
        nodes_in_step[sched.step(v) as usize] += 1;
    }
    let mut send = vec![0u64; n_steps * p];
    let mut recv = vec![0u64; n_steps * p];
    let mut comms_in_step = vec![0u32; n_steps];
    for e in comm.entries() {
        let weighted = dag.comm(e.node) * machine.lambda(e.from as usize, e.to as usize);
        send[e.step as usize * p + e.from as usize] += weighted;
        recv[e.step as usize * p + e.to as usize] += weighted;
        comms_in_step[e.step as usize] += 1;
    }
    StepTallies {
        n_steps,
        work,
        send,
        recv,
        nodes_in_step,
        comms_in_step,
    }
}

/// Folds tallies into the final breakdown. `extra_send`/`extra_recv`, when
/// present, carry per-`[step][proc]` re-fetch traffic: the increase of the
/// h-relation maximum becomes each step's `refetch` component.
pub(crate) fn breakdown_from_tallies(
    machine: &BspParams,
    t: &StepTallies,
    extra: Option<(&[u64], &[u64])>,
) -> CostBreakdown {
    let p = machine.p();
    let mut per_step = Vec::with_capacity(t.n_steps);
    let (mut total, mut work_total, mut comm_total, mut refetch_total, mut latency_total) =
        (0, 0, 0, 0, 0);
    for s in 0..t.n_steps {
        let row = s * p;
        let w = t.work[row..row + p].iter().copied().max().unwrap_or(0);
        let c = (0..p)
            .map(|q| t.send[row + q].max(t.recv[row + q]))
            .max()
            .unwrap_or(0);
        let (refetch, has_refetch) = match extra {
            None => (0, false),
            Some((es, er)) => {
                let with = (0..p)
                    .map(|q| (t.send[row + q] + es[row + q]).max(t.recv[row + q] + er[row + q]))
                    .max()
                    .unwrap_or(0);
                (with - c, (0..p).any(|q| es[row + q] > 0 || er[row + q] > 0))
            }
        };
        let nonempty = t.nodes_in_step[s] > 0 || t.comms_in_step[s] > 0 || has_refetch;
        let latency = if nonempty { machine.l() } else { 0 };
        let sc = SuperstepCost {
            work: w,
            comm: c,
            refetch,
            latency,
        };
        total += sc.total(machine.g());
        work_total += w;
        comm_total += machine.g() * c;
        refetch_total += machine.g() * refetch;
        latency_total += latency;
        per_step.push(sc);
    }
    CostBreakdown {
        total,
        per_step,
        work_total,
        comm_total,
        refetch_total,
        latency_total,
    }
}

/// Evaluates the cost of `(π, τ, Γ)` on `machine` under the *unbounded*
/// memory model (every `refetch` component is 0); for memory-bounded
/// machines, [`crate::memory::memory_cost`] adds the re-fetch traffic the
/// residency simulator observes. Does not check validity; see
/// [`crate::validate`].
pub fn schedule_cost(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    comm: &CommSchedule,
) -> CostBreakdown {
    breakdown_from_tallies(machine, &step_tallies(dag, machine, sched, comm), None)
}

/// Total cost only (convenience wrapper around [`schedule_cost`]).
pub fn total_cost(dag: &Dag, machine: &BspParams, sched: &BspSchedule, comm: &CommSchedule) -> u64 {
    schedule_cost(dag, machine, sched, comm).total
}

/// Cost of an assignment under its lazy communication schedule.
pub fn lazy_cost(dag: &Dag, machine: &BspParams, sched: &BspSchedule) -> u64 {
    total_cost(dag, machine, sched, &CommSchedule::lazy(dag, sched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;
    use bsp_model::NumaTopology;

    fn pair() -> Dag {
        let mut b = DagBuilder::new();
        let u = b.add_node(2, 3);
        let v = b.add_node(5, 1);
        b.add_edge(u, v).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1_style_cost() {
        // u on p0 step 0, v on p1 step 1: work phases 2 then 5, one transfer
        // of c(u)=3 units, g=2, l=4.
        let dag = pair();
        let machine = BspParams::new(2, 2, 4);
        let sched = BspSchedule::from_parts(vec![0, 1], vec![0, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step.len(), 2);
        assert_eq!(
            c.per_step[0],
            SuperstepCost {
                work: 2,
                comm: 3,
                refetch: 0,
                latency: 4
            }
        );
        assert_eq!(
            c.per_step[1],
            SuperstepCost {
                work: 5,
                comm: 0,
                refetch: 0,
                latency: 4
            }
        );
        assert_eq!(c.total, (2 + 6 + 4) + (5 + 4));
        assert_eq!(c.work_total, 7);
        assert_eq!(c.comm_total, 6);
        assert_eq!(c.latency_total, 8);
    }

    #[test]
    fn h_relation_takes_max_of_send_and_recv() {
        // Three nodes on p0 all feeding one node on p1: p0 sends 3 values in
        // one phase, p1 receives 3; Ccomm = sum on the bottleneck processor.
        let mut b = DagBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_node(1, 2)).collect();
        let t = b.add_node(1, 1);
        for &x in &s {
            b.add_edge(x, t).unwrap();
        }
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 0);
        let sched = BspSchedule::from_parts(vec![0, 0, 0, 1], vec![0, 0, 0, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step[0].comm, 6); // 3 transfers * c=2
    }

    #[test]
    fn numa_lambda_scales_both_sides() {
        let dag = pair();
        let machine = BspParams::new(4, 1, 0).with_numa(NumaTopology::binary_tree(4, 3));
        // u on p0, v on p3 => lambda = 3 (level 2 of a 4-leaf tree).
        let sched = BspSchedule::from_parts(vec![0, 3], vec![0, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step[0].comm, 3 * 3); // c(u)=3 times lambda 3
    }

    #[test]
    fn empty_supersteps_carry_no_latency() {
        let dag = pair();
        let machine = BspParams::new(2, 1, 10);
        // Nodes in supersteps 0 and 5; 1..4 are empty except the lazy comm at 4.
        let sched = BspSchedule::from_parts(vec![0, 1], vec![0, 5]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let c = schedule_cost(&dag, &machine, &sched, &comm);
        assert_eq!(c.per_step.len(), 6);
        // steps 0, 4 (comm), 5 are non-empty -> 3 latency charges.
        assert_eq!(c.latency_total, 30);
    }

    #[test]
    fn trivial_schedule_cost_is_work_plus_latency() {
        let dag = pair();
        let machine = BspParams::new(4, 3, 7);
        let sched = BspSchedule::zeroed(dag.n());
        assert_eq!(lazy_cost(&dag, &machine, &sched), dag.total_work() + 7);
    }
}
