//! The polymorphic [`Scheduler`] interface.
//!
//! Every scheduling algorithm in the workspace — the four comparison
//! baselines, DSC clustering, the paper's initialization heuristics, the
//! Figure-3 and Figure-4 pipelines, and the CCR-driven auto-selector —
//! implements this one trait, so harnesses (the experiment runner, the
//! criterion benches, the examples, and future evaluation services) iterate
//! a single registry instead of hand-wiring each algorithm. The registry
//! itself — `Registry`, with spec-string lookup — lives in the `bsp-sched`
//! façade crate, the only crate that can see every implementation.
//!
//! A [`Scheduler`] consumes a [`SolveRequest`] — DAG, machine,
//! [`Budget`](crate::solve::Budget), seed, observer — and produces a
//! [`SolveOutcome`]: a complete, costed result (the assignment `(π, τ)`, a
//! communication schedule `Γ`, and the full [`CostBreakdown`] under the
//! paper's BSP+NUMA cost model) plus per-stage reports. Algorithms that
//! only produce an assignment (the baselines and initializers) are costed
//! under the lazy `Γ` — exactly how the paper evaluates them — via
//! [`ScheduleResult::from_lazy`], and report a single `"run"` stage.

use crate::comm::CommSchedule;
use crate::cost::{schedule_cost, CostBreakdown};
use crate::schedule::BspSchedule;
use crate::solve::{SolveOutcome, SolveRequest};
use bsp_dag::Dag;
use bsp_model::BspParams;

/// Which family a scheduler belongs to; lets harnesses select comparable
/// subsets (e.g. "all baselines" for a table's comparison columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Prior-work comparison schedulers (Cilk, BL-EST, ETF, HDagg, DSC).
    Baseline,
    /// The paper's initialization heuristics, run stand-alone.
    Initializer,
    /// Full pipelines (Figure 3, Figure 4, and the auto-selector).
    Pipeline,
}

/// A complete, costed scheduling outcome.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The node → (processor, superstep) assignment.
    pub sched: BspSchedule,
    /// The communication schedule the cost was evaluated under.
    pub comm: CommSchedule,
    /// Full cost breakdown of `(sched, comm)` on the machine.
    pub cost: CostBreakdown,
}

impl ScheduleResult {
    /// Costs an assignment under its lazy communication schedule (values
    /// sent in the superstep their producer computes in).
    pub fn from_lazy(dag: &Dag, machine: &BspParams, sched: BspSchedule) -> Self {
        let comm = CommSchedule::lazy(dag, &sched);
        let cost = schedule_cost(dag, machine, &sched, &comm);
        ScheduleResult { sched, comm, cost }
    }

    /// Costs an assignment under an explicitly optimized `Γ`.
    pub fn from_parts(
        dag: &Dag,
        machine: &BspParams,
        sched: BspSchedule,
        comm: CommSchedule,
    ) -> Self {
        let cost = schedule_cost(dag, machine, &sched, &comm);
        ScheduleResult { sched, comm, cost }
    }

    /// Total schedule cost (shorthand for `self.cost.total`).
    pub fn total(&self) -> u64 {
        self.cost.total
    }
}

/// A named scheduling algorithm: request in, costed outcome out.
///
/// Implementations are configuration-carrying structs (seed, NUMA-awareness,
/// pipeline budgets, …), so a registry entry is a ready-to-run instance and
/// two entries of the same algorithm with different tuning can coexist. The
/// request's [`Budget`](crate::solve::Budget) caps the scheduler's own
/// configuration; anytime schedulers (the pipelines) check the deadline
/// between stages and return their best-so-far schedule when it expires.
pub trait Scheduler {
    /// Stable identifier used in tables, bench ids and spec-string lookups
    /// (e.g. `"etf"`, `"pipeline/base"`).
    fn name(&self) -> &str;

    /// The family this scheduler belongs to.
    fn kind(&self) -> SchedulerKind;

    /// Solves the request, returning a valid, costed schedule with stage
    /// reports. Must return a valid schedule for *every* budget, including
    /// an already-expired deadline.
    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome;
}

/// A boxed scheduler shareable across harness worker threads.
pub type SharedScheduler = Box<dyn Scheduler + Send + Sync>;

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn kind(&self) -> SchedulerKind {
        (**self).kind()
    }
    fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
        (**self).solve(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    struct RoundRobin;

    impl Scheduler for RoundRobin {
        fn name(&self) -> &str {
            "round-robin"
        }
        fn kind(&self) -> SchedulerKind {
            SchedulerKind::Baseline
        }
        fn solve(&self, req: &SolveRequest<'_>) -> SolveOutcome {
            // One superstep per node, processors round-robin: always valid.
            crate::solve::solve_single_stage(self.name(), req, || {
                let p = req.machine.p() as u32;
                let n = req.dag.n() as u32;
                let sched =
                    BspSchedule::from_parts((0..n).map(|v| v % p).collect(), (0..n).collect());
                ScheduleResult::from_lazy(req.dag, req.machine, sched)
            })
        }
    }

    #[test]
    fn trait_object_round_trips_through_box() {
        let mut b = DagBuilder::new();
        let u = b.add_node(2, 1);
        let v = b.add_node(3, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 1, 1);

        let boxed: Box<dyn Scheduler> = Box::new(RoundRobin);
        assert_eq!(boxed.name(), "round-robin");
        assert_eq!(boxed.kind(), SchedulerKind::Baseline);
        let out = boxed.solve(&SolveRequest::new(&dag, &machine));
        let r = &out.result;
        assert!(crate::validity::validate(&dag, 2, &r.sched, &r.comm).is_ok());
        assert_eq!(out.total(), r.cost.total);
        assert!(out.total() > 0);
        assert_eq!(out.stages.len(), 1);
        assert_eq!(out.stages[0].cost_after, out.total());
    }

    #[test]
    fn lazy_and_parts_agree_on_lazy_comm() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 2);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let machine = BspParams::new(2, 2, 3);
        let sched = BspSchedule::from_parts(vec![0, 1], vec![0, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let a = ScheduleResult::from_lazy(&dag, &machine, sched.clone());
        let b2 = ScheduleResult::from_parts(&dag, &machine, sched, comm);
        assert_eq!(a.cost, b2.cost);
    }
}
