//! Human-inspectable exports of DAGs and schedules.
//!
//! Two renderers are provided:
//!
//! * [`dag_to_dot`] / [`schedule_to_dot`] — Graphviz DOT output. The
//!   schedule variant groups nodes into one cluster per superstep
//!   (mirroring the paper's Figure 1 layout) and colors nodes by processor,
//!   with cross-processor edges drawn dashed.
//! * [`schedule_to_text`] — a compact per-superstep text table (processor
//!   loads and transfer counts) for terminal output, used by the examples.

use crate::comm::{required_transfers, CommSchedule};
use crate::cost::{lazy_cost, total_cost};
use crate::BspSchedule;
use bsp_dag::Dag;
use bsp_model::BspParams;
use std::fmt::Write as _;

/// Fill colors assigned to processors, cycled when `P` exceeds the palette.
const PALETTE: [&str; 8] = [
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
];

/// Renders the bare DAG as a Graphviz digraph; node labels show
/// `id (w=…, c=…)`.
pub fn dag_to_dot(dag: &Dag) -> String {
    let mut s = String::from("digraph dag {\n  rankdir=TB;\n  node [shape=circle];\n");
    for v in dag.nodes() {
        let _ = writeln!(
            s,
            "  n{v} [label=\"{v}\\nw={} c={}\"];",
            dag.work(v),
            dag.comm(v)
        );
    }
    for (u, v) in dag.edges() {
        let _ = writeln!(s, "  n{u} -> n{v};");
    }
    s.push_str("}\n");
    s
}

/// Renders a scheduled DAG as DOT: one subgraph cluster per superstep,
/// processor shown by fill color, cross-processor edges dashed.
pub fn schedule_to_dot(dag: &Dag, sched: &BspSchedule) -> String {
    assert_eq!(sched.n(), dag.n());
    let mut s =
        String::from("digraph schedule {\n  rankdir=TB;\n  node [shape=box, style=filled];\n");
    let n_steps = sched.n_supersteps();
    for step in 0..n_steps {
        let nodes = sched.nodes_in_step(step);
        if nodes.is_empty() {
            continue;
        }
        let _ = writeln!(s, "  subgraph cluster_s{step} {{");
        let _ = writeln!(s, "    label=\"superstep {step}\";");
        for v in nodes {
            let p = sched.proc(v) as usize;
            let _ = writeln!(
                s,
                "    n{v} [label=\"{v}\\np{p}\", fillcolor=\"{}\"];",
                PALETTE[p % PALETTE.len()]
            );
        }
        s.push_str("  }\n");
    }
    for (u, v) in dag.edges() {
        if sched.proc(u) == sched.proc(v) {
            let _ = writeln!(s, "  n{u} -> n{v};");
        } else {
            let _ = writeln!(s, "  n{u} -> n{v} [style=dashed];");
        }
    }
    s.push_str("}\n");
    s
}

/// Renders a per-superstep summary table: node count, per-processor work,
/// transfers leaving in each communication phase, and the total cost line.
/// Uses the explicit `comm` if given, otherwise the lazy Γ.
pub fn schedule_to_text(
    dag: &Dag,
    machine: &BspParams,
    sched: &BspSchedule,
    comm: Option<&CommSchedule>,
) -> String {
    assert_eq!(sched.n(), dag.n());
    let p = machine.p();
    let n_steps = sched.n_supersteps();
    let mut out = String::new();
    let transfers: Vec<(u32, u32, u32)> = match comm {
        Some(c) => c.entries().iter().map(|e| (e.step, e.from, e.to)).collect(),
        None => {
            let lazy = CommSchedule::lazy(dag, sched);
            lazy.entries()
                .iter()
                .map(|e| (e.step, e.from, e.to))
                .collect()
        }
    };
    let _ = writeln!(
        out,
        "schedule: {} nodes, {} supersteps, {} processors",
        dag.n(),
        n_steps,
        p
    );
    for s in 0..n_steps {
        let loads: Vec<u64> = (0..p as u32).map(|q| sched.work_of(dag, q, s)).collect();
        let sent = transfers.iter().filter(|&&(st, ..)| st == s).count();
        let _ = writeln!(
            out,
            "  superstep {s:>3}: nodes={:<4} work/proc={loads:?} transfers={sent}",
            sched.nodes_in_step(s).len()
        );
    }
    let cost = match comm {
        Some(c) => total_cost(dag, machine, sched, c),
        None => lazy_cost(dag, machine, sched),
    };
    let _ = writeln!(
        out,
        "  total cost = {cost} (g={}, l={})",
        machine.g(),
        machine.l()
    );
    out
}

/// Convenience: number of cross-processor transfers demanded by the lazy
/// model (used in examples to report "communication avoided").
pub fn lazy_transfer_count(dag: &Dag, sched: &BspSchedule) -> usize {
    required_transfers(dag, sched).len()
}

/// ASCII Gantt chart of a classical (time-indexed) schedule: one row per
/// processor, one column per time unit (compressed to at most `max_width`
/// columns), node ids shown at their start positions where space allows.
pub fn classical_to_gantt(dag: &Dag, sched: &crate::ClassicalSchedule, max_width: usize) -> String {
    let p = sched
        .proc
        .iter()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    let makespan = sched.makespan(dag).max(1);
    let width = max_width.clamp(10, 400).min(makespan as usize);
    let scale = makespan as f64 / width as f64;
    let col = |t: u64| (((t as f64) / scale) as usize).min(width - 1);

    let mut rows = vec![vec![b'.'; width]; p];
    for v in dag.nodes() {
        let q = sched.proc[v as usize] as usize;
        let (from, to) = (
            sched.start[v as usize],
            sched.start[v as usize] + dag.work(v),
        );
        for cell in rows[q]
            .iter_mut()
            .take(col(to.max(from + 1)) + 1)
            .skip(col(from))
        {
            if *cell == b'.' {
                *cell = b'#';
            }
        }
        // Label the start cell with the node id where it fits.
        let label = v.to_string();
        let at = col(from);
        if at + label.len() <= width {
            for (i, ch) in label.bytes().enumerate() {
                rows[q][at + i] = ch;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gantt: makespan {makespan}, 1 column ≈ {scale:.1} time units"
    );
    for (q, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "  p{q:<2} |{}|", String::from_utf8_lossy(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(1, 2);
        let x = b.add_node(2, 3);
        let y = b.add_node(3, 1);
        let d = b.add_node(1, 1);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, d).unwrap();
        b.add_edge(y, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dag_dot_lists_all_nodes_and_edges() {
        let dag = diamond();
        let dot = dag_to_dot(&dag);
        assert!(dot.starts_with("digraph dag {"));
        assert!(dot.trim_end().ends_with('}'));
        for v in 0..4 {
            assert!(dot.contains(&format!("n{v} [label=")), "missing node {v}");
        }
        assert_eq!(dot.matches("->").count(), 4);
        assert!(dot.contains("w=1 c=2"));
    }

    #[test]
    fn schedule_dot_clusters_by_superstep_and_dashes_cross_edges() {
        let dag = diamond();
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 0], vec![0, 1, 1, 2]);
        let dot = schedule_to_dot(&dag, &sched);
        assert!(dot.contains("cluster_s0"));
        assert!(dot.contains("cluster_s1"));
        assert!(dot.contains("cluster_s2"));
        // a→y and y→d cross processors; a→x and x→d stay local.
        assert_eq!(dot.matches("[style=dashed]").count(), 2);
    }

    #[test]
    fn text_summary_has_one_line_per_superstep_and_cost() {
        let dag = diamond();
        let machine = BspParams::new(2, 3, 5);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 0], vec![0, 1, 1, 2]);
        let txt = schedule_to_text(&dag, &machine, &sched, None);
        assert_eq!(txt.matches("  superstep ").count(), 3);
        let expected = lazy_cost(&dag, &machine, &sched);
        assert!(txt.contains(&format!("total cost = {expected}")));
    }

    #[test]
    fn text_summary_with_explicit_comm_uses_total_cost() {
        let dag = diamond();
        let machine = BspParams::new(2, 3, 5);
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 0], vec![0, 1, 1, 2]);
        let comm = CommSchedule::lazy(&dag, &sched);
        let txt = schedule_to_text(&dag, &machine, &sched, Some(&comm));
        let expected = total_cost(&dag, &machine, &sched, &comm);
        assert!(txt.contains(&format!("total cost = {expected}")));
    }

    #[test]
    fn transfer_count_matches_required_transfers() {
        let dag = diamond();
        let sched = BspSchedule::from_parts(vec![0, 0, 1, 0], vec![0, 1, 1, 2]);
        assert_eq!(lazy_transfer_count(&dag, &sched), 2);
        let local = BspSchedule::from_parts(vec![0; 4], vec![0, 1, 1, 2]);
        assert_eq!(lazy_transfer_count(&dag, &local), 0);
    }

    #[test]
    fn gantt_rows_and_busy_cells() {
        use crate::ClassicalSchedule;
        let dag = diamond();
        // p0: a at 0 (w1), x at 1 (w2); p1: y at 1 (w3); p0: d at 4 (w1).
        let sched = ClassicalSchedule {
            proc: vec![0, 0, 1, 0],
            start: vec![0, 1, 1, 4],
        };
        let g = classical_to_gantt(&dag, &sched, 40);
        assert!(g.contains("makespan 5"));
        assert_eq!(g.matches('|').count(), 4); // two rows, two bars each
        let rows: Vec<&str> = g.lines().skip(1).collect();
        assert!(rows[0].starts_with("  p0"));
        assert!(rows[1].starts_with("  p1"));
        // p1 is idle at time 0: its first cell is still '.'.
        let p1 = rows[1].split('|').nth(1).unwrap();
        assert!(p1.starts_with('.'));
    }

    #[test]
    fn gantt_compresses_long_schedules() {
        use crate::ClassicalSchedule;
        let mut b = DagBuilder::new();
        let u = b.add_node(1000, 1);
        let v = b.add_node(1000, 1);
        let dag = {
            b.add_edge(u, v).unwrap();
            b.build().unwrap()
        };
        let sched = ClassicalSchedule {
            proc: vec![0, 0],
            start: vec![0, 1000],
        };
        let g = classical_to_gantt(&dag, &sched, 50);
        let row = g.lines().nth(1).unwrap();
        let bar = row.split('|').nth(1).unwrap();
        assert!(bar.len() <= 50);
        assert!(
            !bar.contains('.'),
            "fully busy processor shows no idle cells"
        );
    }

    #[test]
    fn empty_dag_exports() {
        let dag = DagBuilder::new().build().unwrap();
        let machine = BspParams::new(2, 1, 1);
        let sched = BspSchedule::zeroed(0);
        assert!(dag_to_dot(&dag).contains("digraph"));
        assert!(schedule_to_dot(&dag, &sched).contains("digraph"));
        let txt = schedule_to_text(&dag, &machine, &sched, None);
        assert!(txt.contains("0 nodes"));
    }
}
