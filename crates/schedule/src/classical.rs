//! Classical (time-indexed) schedules and their conversion to BSP.
//!
//! The Cilk, BL-EST and ETF baselines assign nodes to concrete points in
//! time on a processor. Appendix A.1 describes how such a schedule is
//! organized into supersteps: scanning forward in time, the current
//! computation phase must close right before the earliest node `v` that
//! (i) is not yet assigned to a superstep, (ii) has a direct predecessor
//! `v0` also not yet assigned, and (iii) has `π(v) ≠ π(v0)` — because `v`
//! needs data that can only arrive through a communication phase.

use crate::schedule::BspSchedule;
use bsp_dag::{Dag, NodeId};

/// A schedule in the classical model: each node has a processor and a start
/// time; it executes for `w(v)` time units without preemption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalSchedule {
    /// Processor of each node.
    pub proc: Vec<u32>,
    /// Start time of each node.
    pub start: Vec<u64>,
}

impl ClassicalSchedule {
    /// Finish time of `v` (`start + w(v)`).
    pub fn finish(&self, dag: &Dag, v: NodeId) -> u64 {
        self.start[v as usize] + dag.work(v)
    }

    /// Makespan (latest finish time; 0 when empty).
    pub fn makespan(&self, dag: &Dag) -> u64 {
        dag.nodes().map(|v| self.finish(dag, v)).max().unwrap_or(0)
    }

    /// Checks the classical validity conditions: nodes on one processor do
    /// not overlap in time, and every node starts no earlier than each
    /// predecessor's finish (communication delays are *not* modelled here —
    /// they appear once converted to BSP).
    pub fn is_valid(&self, dag: &Dag) -> bool {
        // Precedence.
        if !dag
            .edges()
            .all(|(u, v)| self.finish(dag, u) <= self.start[v as usize])
        {
            return false;
        }
        // No overlap per processor.
        let mut by_proc: Vec<Vec<NodeId>> = Vec::new();
        for v in dag.nodes() {
            let p = self.proc[v as usize] as usize;
            if by_proc.len() <= p {
                by_proc.resize(p + 1, Vec::new());
            }
            by_proc[p].push(v);
        }
        for nodes in &mut by_proc {
            nodes.sort_by_key(|&v| self.start[v as usize]);
            for w in nodes.windows(2) {
                if self.finish(dag, w[0]) > self.start[w[1] as usize] {
                    return false;
                }
            }
        }
        true
    }

    /// Converts to a BSP assignment by the superstep-slicing rule of
    /// Appendix A.1: scanning forward in time, the computation phase
    /// closes right before the earliest node needing data from another
    /// processor that no earlier communication phase could have carried.
    /// The resulting assignment keeps `π` and satisfies
    /// [`BspSchedule::respects_precedence_lazy`].
    pub fn to_bsp(&self, dag: &Dag) -> BspSchedule {
        let n = dag.n();
        // Order by start time with *topological* tie-breaks: zero-duration
        // nodes (the database weight rule gives `w = indeg − 1 = 0` to
        // every chain node) let a predecessor share its successor's start
        // time, and id-order ties would then stall the scan below.
        let topo = bsp_dag::TopoInfo::new(dag);
        let mut pos = vec![0u32; n];
        for (idx, &v) in topo.order.iter().enumerate() {
            pos[v as usize] = idx as u32;
        }
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| (self.start[v as usize], pos[v as usize]));

        const UNASSIGNED: u32 = u32::MAX;
        let mut step = vec![UNASSIGNED; n];
        let mut superstep = 0u32;
        let mut i = 0usize;
        while i < n {
            // Assign nodes in order until one needs a value that could not
            // have been communicated yet: a cross-processor predecessor
            // assigned to the *current* superstep (or, impossibly given
            // the order, not assigned at all).
            let mut j = i;
            while j < n {
                let v = order[j];
                let needs_comm = dag.predecessors(v).iter().any(|&u| {
                    self.proc[u as usize] != self.proc[v as usize] && step[u as usize] >= superstep
                });
                if needs_comm {
                    break;
                }
                step[v as usize] = superstep;
                j += 1;
            }
            if j < n {
                // Every predecessor of order[j] sorts strictly earlier, so
                // at least order[i] itself was assigned above.
                debug_assert!(j > i, "conversion must make progress");
                superstep += 1;
                // Defensive: never loop forever even if the order were
                // inconsistent with precedence.
                if j == i {
                    step[order[j] as usize] = superstep;
                    j += 1;
                }
            }
            i = j;
        }
        BspSchedule::from_parts(self.proc.clone(), step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    /// Figure-1-like example: two processors, cross dependencies.
    fn cross() -> Dag {
        // p0: a(0..2), b(2..4); p1: c(0..3); edges a->c? no -- build:
        // a -> b (same proc), a -> d (cross), c -> b (cross), c -> d (same).
        let mut bld = DagBuilder::new();
        let a = bld.add_node(2, 1);
        let b = bld.add_node(2, 1);
        let c = bld.add_node(3, 1);
        let d = bld.add_node(1, 1);
        bld.add_edge(a, b).unwrap();
        bld.add_edge(a, d).unwrap();
        bld.add_edge(c, b).unwrap();
        bld.add_edge(c, d).unwrap();
        bld.build().unwrap()
    }

    #[test]
    fn classical_validity() {
        let dag = cross();
        // a,b on p0; c,d on p1.
        let s = ClassicalSchedule {
            proc: vec![0, 0, 1, 1],
            start: vec![0, 3, 0, 3],
        };
        assert!(s.is_valid(&dag));
        assert_eq!(s.makespan(&dag), 5);
        // Overlap on p0.
        let bad = ClassicalSchedule {
            proc: vec![0, 0, 1, 1],
            start: vec![0, 1, 0, 3],
        };
        assert!(!bad.is_valid(&dag));
        // Precedence violation: b before a finishes.
        let bad2 = ClassicalSchedule {
            proc: vec![0, 1, 1, 1],
            start: vec![0, 0, 0, 3],
        };
        assert!(!bad2.is_valid(&dag));
    }

    #[test]
    fn conversion_splits_at_cross_dependencies() {
        let dag = cross();
        let s = ClassicalSchedule {
            proc: vec![0, 0, 1, 1],
            start: vec![0, 3, 0, 3],
        };
        let bsp = s.to_bsp(&dag);
        // b (on p0) needs c (p1): barrier before start of b and d.
        assert_eq!(bsp.step(0), 0);
        assert_eq!(bsp.step(2), 0);
        assert_eq!(bsp.step(1), 1);
        assert_eq!(bsp.step(3), 1);
        assert!(bsp.respects_precedence_lazy(&dag));
    }

    #[test]
    fn conversion_keeps_single_superstep_when_local() {
        let mut b = DagBuilder::new();
        let x = b.add_node(1, 1);
        let y = b.add_node(1, 1);
        b.add_edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let s = ClassicalSchedule {
            proc: vec![0, 0],
            start: vec![0, 1],
        };
        let bsp = s.to_bsp(&dag);
        assert_eq!(bsp.n_supersteps(), 1);
    }

    #[test]
    fn conversion_handles_zero_work_ties() {
        // Database-weighted DAGs give chain nodes w = indeg − 1 = 0, so a
        // cross-processor predecessor can share its successor's start
        // time. The scan must still cut a superstep between them (and must
        // not loop forever — this stalled before the topological
        // tie-break).
        let mut b = DagBuilder::new();
        let a = b.add_node(0, 1); // zero work
        let c = b.add_node(0, 1); // zero work, same start as its pred
        let d = b.add_node(2, 1);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        let dag = b.build().unwrap();
        let s = ClassicalSchedule {
            proc: vec![1, 0, 0],
            start: vec![0, 0, 0],
        };
        assert!(s.is_valid(&dag));
        let bsp = s.to_bsp(&dag);
        assert!(bsp.respects_precedence_lazy(&dag));
        // a (p1) feeds c (p0) at the same instant: a barrier must separate
        // them.
        assert!(bsp.step(0) < bsp.step(1));
        assert_eq!(bsp.step(1), bsp.step(2));
    }

    #[test]
    fn conversion_of_long_alternating_chain() {
        // Chain alternating processors: every edge forces a new superstep.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_node(1, 1)).collect();
        for i in 0..5 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        let dag = b.build().unwrap();
        let s = ClassicalSchedule {
            proc: vec![0, 1, 0, 1, 0, 1],
            start: vec![0, 1, 2, 3, 4, 5],
        };
        let bsp = s.to_bsp(&dag);
        assert_eq!(bsp.n_supersteps(), 6);
        assert!(bsp.respects_precedence_lazy(&dag));
    }
}
