//! Classical (time-indexed) schedules and their conversion to BSP.
//!
//! The Cilk, BL-EST and ETF baselines assign nodes to concrete points in
//! time on a processor. Appendix A.1 describes how such a schedule is
//! organized into supersteps: scanning forward in time, the current
//! computation phase must close right before the earliest node `v` that
//! (i) is not yet assigned to a superstep, (ii) has a direct predecessor
//! `v0` also not yet assigned, and (iii) has `π(v) ≠ π(v0)` — because `v`
//! needs data that can only arrive through a communication phase.

use crate::schedule::BspSchedule;
use bsp_dag::{Dag, NodeId};

/// A schedule in the classical model: each node has a processor and a start
/// time; it executes for `w(v)` time units without preemption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalSchedule {
    /// Processor of each node.
    pub proc: Vec<u32>,
    /// Start time of each node.
    pub start: Vec<u64>,
}

impl ClassicalSchedule {
    /// Finish time of `v` (`start + w(v)`).
    pub fn finish(&self, dag: &Dag, v: NodeId) -> u64 {
        self.start[v as usize] + dag.work(v)
    }

    /// Makespan (latest finish time; 0 when empty).
    pub fn makespan(&self, dag: &Dag) -> u64 {
        dag.nodes().map(|v| self.finish(dag, v)).max().unwrap_or(0)
    }

    /// Checks the classical validity conditions: nodes on one processor do
    /// not overlap in time, and every node starts no earlier than each
    /// predecessor's finish (communication delays are *not* modelled here —
    /// they appear once converted to BSP).
    pub fn is_valid(&self, dag: &Dag) -> bool {
        // Precedence.
        if !dag
            .edges()
            .all(|(u, v)| self.finish(dag, u) <= self.start[v as usize])
        {
            return false;
        }
        // No overlap per processor.
        let mut by_proc: Vec<Vec<NodeId>> = Vec::new();
        for v in dag.nodes() {
            let p = self.proc[v as usize] as usize;
            if by_proc.len() <= p {
                by_proc.resize(p + 1, Vec::new());
            }
            by_proc[p].push(v);
        }
        for nodes in &mut by_proc {
            nodes.sort_by_key(|&v| self.start[v as usize]);
            for w in nodes.windows(2) {
                if self.finish(dag, w[0]) > self.start[w[1] as usize] {
                    return false;
                }
            }
        }
        true
    }

    /// Converts to a BSP assignment by the superstep-slicing rule of
    /// Appendix A.1. The resulting assignment keeps `π` and satisfies
    /// [`BspSchedule::respects_precedence_lazy`].
    pub fn to_bsp(&self, dag: &Dag) -> BspSchedule {
        let n = dag.n();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| (self.start[v as usize], v));

        let mut step = vec![0u32; n];
        let mut assigned = vec![false; n];
        let mut superstep = 0u32;
        let mut i = 0usize;
        while i < n {
            // Find the earliest unassigned node with an unassigned
            // cross-processor predecessor: the barrier time.
            let mut barrier: Option<u64> = None;
            for &v in &order[i..] {
                let needs_comm = dag.predecessors(v).iter().any(|&u| {
                    !assigned[u as usize] && self.proc[u as usize] != self.proc[v as usize]
                });
                if needs_comm {
                    barrier = Some(self.start[v as usize]);
                    break;
                }
            }
            match barrier {
                None => {
                    for &v in &order[i..] {
                        step[v as usize] = superstep;
                        assigned[v as usize] = true;
                    }
                    i = n;
                }
                Some(t) => {
                    let mut j = i;
                    while j < n && self.start[order[j] as usize] < t {
                        let v = order[j];
                        step[v as usize] = superstep;
                        assigned[v as usize] = true;
                        j += 1;
                    }
                    debug_assert!(j > i, "conversion must make progress");
                    i = j;
                    superstep += 1;
                }
            }
        }
        BspSchedule::from_parts(self.proc.clone(), step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    /// Figure-1-like example: two processors, cross dependencies.
    fn cross() -> Dag {
        // p0: a(0..2), b(2..4); p1: c(0..3); edges a->c? no -- build:
        // a -> b (same proc), a -> d (cross), c -> b (cross), c -> d (same).
        let mut bld = DagBuilder::new();
        let a = bld.add_node(2, 1);
        let b = bld.add_node(2, 1);
        let c = bld.add_node(3, 1);
        let d = bld.add_node(1, 1);
        bld.add_edge(a, b).unwrap();
        bld.add_edge(a, d).unwrap();
        bld.add_edge(c, b).unwrap();
        bld.add_edge(c, d).unwrap();
        bld.build().unwrap()
    }

    #[test]
    fn classical_validity() {
        let dag = cross();
        // a,b on p0; c,d on p1.
        let s = ClassicalSchedule {
            proc: vec![0, 0, 1, 1],
            start: vec![0, 3, 0, 3],
        };
        assert!(s.is_valid(&dag));
        assert_eq!(s.makespan(&dag), 5);
        // Overlap on p0.
        let bad = ClassicalSchedule {
            proc: vec![0, 0, 1, 1],
            start: vec![0, 1, 0, 3],
        };
        assert!(!bad.is_valid(&dag));
        // Precedence violation: b before a finishes.
        let bad2 = ClassicalSchedule {
            proc: vec![0, 1, 1, 1],
            start: vec![0, 0, 0, 3],
        };
        assert!(!bad2.is_valid(&dag));
    }

    #[test]
    fn conversion_splits_at_cross_dependencies() {
        let dag = cross();
        let s = ClassicalSchedule {
            proc: vec![0, 0, 1, 1],
            start: vec![0, 3, 0, 3],
        };
        let bsp = s.to_bsp(&dag);
        // b (on p0) needs c (p1): barrier before start of b and d.
        assert_eq!(bsp.step(0), 0);
        assert_eq!(bsp.step(2), 0);
        assert_eq!(bsp.step(1), 1);
        assert_eq!(bsp.step(3), 1);
        assert!(bsp.respects_precedence_lazy(&dag));
    }

    #[test]
    fn conversion_keeps_single_superstep_when_local() {
        let mut b = DagBuilder::new();
        let x = b.add_node(1, 1);
        let y = b.add_node(1, 1);
        b.add_edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let s = ClassicalSchedule {
            proc: vec![0, 0],
            start: vec![0, 1],
        };
        let bsp = s.to_bsp(&dag);
        assert_eq!(bsp.n_supersteps(), 1);
    }

    #[test]
    fn conversion_of_long_alternating_chain() {
        // Chain alternating processors: every edge forces a new superstep.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_node(1, 1)).collect();
        for i in 0..5 {
            b.add_edge(v[i], v[i + 1]).unwrap();
        }
        let dag = b.build().unwrap();
        let s = ClassicalSchedule {
            proc: vec![0, 1, 0, 1, 0, 1],
            start: vec![0, 1, 2, 3, 4, 5],
        };
        let bsp = s.to_bsp(&dag);
        assert_eq!(bsp.n_supersteps(), 6);
        assert!(bsp.respects_precedence_lazy(&dag));
    }
}
