//! Full validity checking of BSP schedules (paper §3.2).
//!
//! A schedule `(π, τ, Γ)` is valid iff
//!
//! 1. for each edge `(u, v)`: if `π(u) = π(v)` then `τ(u) ≤ τ(v)`; otherwise
//!    `Γ` contains an entry `(u, p1, π(v), s)` with `s < τ(v)` whose own
//!    availability chain is satisfied;
//! 2. for each `(v, p1, p2, s) ∈ Γ`: either `π(v) = p1` and `τ(v) ≤ s`, or
//!    some earlier entry `(v, p', p1, s')` with `s' < s` delivered the value
//!    to `p1` first (relaying is permitted).

use crate::comm::CommSchedule;
use crate::schedule::BspSchedule;
use bsp_dag::{Dag, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Reasons a schedule can be invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidSchedule {
    /// The assignment covers a different number of nodes than the DAG.
    SizeMismatch {
        /// Node count of the DAG.
        expected: usize,
        /// Node count covered by the schedule.
        got: usize,
    },
    /// A node is mapped to a processor outside `0..P`.
    ProcOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Its out-of-range processor.
        proc: u32,
    },
    /// A `Γ` entry sends from a processor that does not hold the value yet.
    CommTooEarly {
        /// Node whose value is sent.
        node: NodeId,
        /// Sending processor.
        from: u32,
        /// Superstep of the premature transfer.
        step: u32,
    },
    /// A `Γ` entry has `from == to`.
    CommSelfSend {
        /// Node whose value is sent.
        node: NodeId,
        /// The processor sending to itself.
        proc: u32,
    },
    /// An edge's data dependency is not satisfied at computation time.
    MissingData {
        /// The violated edge `(producer, consumer)`.
        edge: (NodeId, NodeId),
        /// Processor computing the consumer.
        needed_on: u32,
        /// Superstep of the consumer.
        at_step: u32,
    },
    /// A compute phase's working set (its distinct input values plus its
    /// own outputs) exceeds the machine's per-processor fast-memory
    /// capacity `M` — no eviction order can make the superstep runnable.
    /// Only raised for memory-bounded machines (see [`validate_memory`]).
    MemoryExceeded {
        /// Offending processor.
        proc: u32,
        /// Offending superstep.
        step: u32,
        /// Footprint that must be simultaneously resident.
        need: u64,
        /// The machine's fast-memory capacity.
        capacity: u64,
    },
}

impl fmt::Display for InvalidSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidSchedule::SizeMismatch { expected, got } => {
                write!(f, "schedule covers {got} nodes, DAG has {expected}")
            }
            InvalidSchedule::ProcOutOfRange { node, proc } => {
                write!(f, "node {node} assigned to out-of-range processor {proc}")
            }
            InvalidSchedule::CommTooEarly { node, from, step } => {
                write!(f, "value of node {node} sent from processor {from} in superstep {step} before it is present there")
            }
            InvalidSchedule::CommSelfSend { node, proc } => {
                write!(
                    f,
                    "value of node {node} 'sent' from processor {proc} to itself"
                )
            }
            InvalidSchedule::MissingData {
                edge: (u, v),
                needed_on,
                at_step,
            } => {
                write!(f, "edge ({u},{v}): value of {u} not present on processor {needed_on} when {v} is computed in superstep {at_step}")
            }
            InvalidSchedule::MemoryExceeded {
                proc,
                step,
                need,
                capacity,
            } => {
                write!(f, "superstep {step} on processor {proc} needs {need} units of fast memory simultaneously, machine has {capacity}")
            }
        }
    }
}

impl std::error::Error for InvalidSchedule {}

/// Validates `(π, τ, Γ)` against `dag` on a machine with `p` processors.
///
/// Runs in `O((n + |Γ|) log |Γ| + Σ deg)`.
pub fn validate(
    dag: &Dag,
    p: usize,
    sched: &BspSchedule,
    comm: &CommSchedule,
) -> Result<(), InvalidSchedule> {
    if sched.n() != dag.n() {
        return Err(InvalidSchedule::SizeMismatch {
            expected: dag.n(),
            got: sched.n(),
        });
    }
    for v in dag.nodes() {
        if sched.proc(v) as usize >= p {
            return Err(InvalidSchedule::ProcOutOfRange {
                node: v,
                proc: sched.proc(v),
            });
        }
    }

    // present_from[(v, q)] = earliest superstep index from which v's value is
    // usable on q (computable in that superstep, sendable in its comm phase).
    let mut present_from: HashMap<(NodeId, u32), u32> =
        HashMap::with_capacity(dag.n() + comm.len());
    for v in dag.nodes() {
        present_from.insert((v, sched.proc(v)), sched.step(v));
    }

    // Process Γ in ascending step order (entries() is sorted by (node, from,
    // to, step); re-sort by step).
    let mut by_step: Vec<_> = comm.entries().to_vec();
    by_step.sort_unstable_by_key(|e| e.step);
    for e in &by_step {
        if e.from == e.to {
            return Err(InvalidSchedule::CommSelfSend {
                node: e.node,
                proc: e.from,
            });
        }
        match present_from.get(&(e.node, e.from)) {
            Some(&avail) if avail <= e.step => {}
            _ => {
                return Err(InvalidSchedule::CommTooEarly {
                    node: e.node,
                    from: e.from,
                    step: e.step,
                })
            }
        }
        let slot = present_from.entry((e.node, e.to)).or_insert(u32::MAX);
        *slot = (*slot).min(e.step + 1);
    }

    for (u, v) in dag.edges() {
        let q = sched.proc(v);
        match present_from.get(&(u, q)) {
            Some(&avail) if avail <= sched.step(v) => {}
            _ => {
                return Err(InvalidSchedule::MissingData {
                    edge: (u, v),
                    needed_on: q,
                    at_step: sched.step(v),
                })
            }
        }
    }
    Ok(())
}

/// Checks the memory half of validity on a memory-bounded machine: every
/// compute phase's working set must fit in the per-processor capacity `M`
/// (cross-superstep pressure is legal — it costs re-fetch traffic, see
/// [`crate::memory`] — but a single superstep's simultaneous demand is
/// not). Trivially `Ok` for machines without a bound.
pub fn validate_memory(
    dag: &Dag,
    machine: &bsp_model::BspParams,
    sched: &BspSchedule,
) -> Result<(), InvalidSchedule> {
    match crate::memory::memory_violations(dag, machine, sched).first() {
        None => Ok(()),
        Some(v) => Err(InvalidSchedule::MemoryExceeded {
            proc: v.proc,
            step: v.step,
            need: v.need,
            capacity: v.capacity,
        }),
    }
}

/// Full validity on a possibly memory-bounded machine: the structural
/// `(π, τ, Γ)` conditions of [`validate`] plus the working-set condition
/// of [`validate_memory`].
pub fn validate_with_memory(
    dag: &Dag,
    machine: &bsp_model::BspParams,
    sched: &BspSchedule,
    comm: &CommSchedule,
) -> Result<(), InvalidSchedule> {
    validate(dag, machine.p(), sched, comm)?;
    validate_memory(dag, machine, sched)
}

/// Convenience: validate an assignment under its lazy communication
/// schedule.
pub fn validate_lazy(dag: &Dag, p: usize, sched: &BspSchedule) -> Result<(), InvalidSchedule> {
    if sched.n() != dag.n() {
        return Err(InvalidSchedule::SizeMismatch {
            expected: dag.n(),
            got: sched.n(),
        });
    }
    if !sched.respects_precedence_lazy(dag) {
        // Identify a witness edge for the error payload.
        for (u, v) in dag.edges() {
            let ok = if sched.proc(u) == sched.proc(v) {
                sched.step(u) <= sched.step(v)
            } else {
                sched.step(u) < sched.step(v)
            };
            if !ok {
                return Err(InvalidSchedule::MissingData {
                    edge: (u, v),
                    needed_on: sched.proc(v),
                    at_step: sched.step(v),
                });
            }
        }
        unreachable!("precedence check failed but no witness edge found");
    }
    let comm = CommSchedule::lazy(dag, sched);
    validate(dag, p, sched, &comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommStep;
    use bsp_dag::DagBuilder;

    fn chain() -> Dag {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_node(1, 1)).collect();
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_local_schedule() {
        let dag = chain();
        let s = BspSchedule::from_parts(vec![0, 0, 0], vec![0, 0, 0]);
        assert!(validate(&dag, 1, &s, &CommSchedule::empty()).is_ok());
    }

    #[test]
    fn cross_processor_needs_comm_entry() {
        let dag = chain();
        let s = BspSchedule::from_parts(vec![0, 1, 1], vec![0, 1, 1]);
        // Missing Γ: invalid.
        assert!(matches!(
            validate(&dag, 2, &s, &CommSchedule::empty()),
            Err(InvalidSchedule::MissingData { edge: (0, 1), .. })
        ));
        // With the right entry: valid.
        let comm = CommSchedule::from_entries(vec![CommStep {
            node: 0,
            from: 0,
            to: 1,
            step: 0,
        }]);
        assert!(validate(&dag, 2, &s, &comm).is_ok());
        // Entry too late (same superstep as consumer): invalid.
        let late = CommSchedule::from_entries(vec![CommStep {
            node: 0,
            from: 0,
            to: 1,
            step: 1,
        }]);
        assert!(validate(&dag, 2, &s, &late).is_err());
    }

    #[test]
    fn sending_before_computation_rejected() {
        let dag = chain();
        let s = BspSchedule::from_parts(vec![0, 1, 1], vec![1, 2, 2]);
        // Node 0 computed in superstep 1 but "sent" in phase 0.
        let comm = CommSchedule::from_entries(vec![CommStep {
            node: 0,
            from: 0,
            to: 1,
            step: 0,
        }]);
        assert!(matches!(
            validate(&dag, 2, &s, &comm),
            Err(InvalidSchedule::CommTooEarly { node: 0, .. })
        ));
    }

    #[test]
    fn relayed_communication_is_accepted() {
        // 0 computed on p0, relayed p0 -> p1 (step 0), p1 -> p2 (step 1),
        // consumer on p2 at superstep 2.
        let mut b = DagBuilder::new();
        let u = b.add_node(1, 1);
        let v = b.add_node(1, 1);
        b.add_edge(u, v).unwrap();
        let dag = b.build().unwrap();
        let s = BspSchedule::from_parts(vec![0, 2], vec![0, 2]);
        let comm = CommSchedule::from_entries(vec![
            CommStep {
                node: 0,
                from: 0,
                to: 1,
                step: 0,
            },
            CommStep {
                node: 0,
                from: 1,
                to: 2,
                step: 1,
            },
        ]);
        assert!(validate(&dag, 3, &s, &comm).is_ok());
        // Relay in the same phase as arrival is too early.
        let bad = CommSchedule::from_entries(vec![
            CommStep {
                node: 0,
                from: 0,
                to: 1,
                step: 0,
            },
            CommStep {
                node: 0,
                from: 1,
                to: 2,
                step: 0,
            },
        ]);
        assert!(validate(&dag, 3, &s, &bad).is_err());
    }

    #[test]
    fn self_send_rejected() {
        let dag = chain();
        let s = BspSchedule::from_parts(vec![0, 0, 0], vec![0, 0, 0]);
        let comm = CommSchedule::from_entries(vec![CommStep {
            node: 0,
            from: 0,
            to: 0,
            step: 0,
        }]);
        assert!(matches!(
            validate(&dag, 1, &s, &comm),
            Err(InvalidSchedule::CommSelfSend { .. })
        ));
    }

    #[test]
    fn out_of_range_proc_rejected() {
        let dag = chain();
        let s = BspSchedule::from_parts(vec![0, 5, 0], vec![0, 1, 2]);
        assert!(matches!(
            validate(&dag, 2, &s, &CommSchedule::empty()),
            Err(InvalidSchedule::ProcOutOfRange { node: 1, proc: 5 })
        ));
    }

    #[test]
    fn validate_lazy_agrees_with_explicit() {
        let dag = chain();
        let good = BspSchedule::from_parts(vec![0, 1, 0], vec![0, 1, 2]);
        assert!(validate_lazy(&dag, 2, &good).is_ok());
        let bad = BspSchedule::from_parts(vec![0, 1, 0], vec![0, 0, 1]);
        assert!(validate_lazy(&dag, 2, &bad).is_err());
    }

    #[test]
    fn memory_validity_checks_working_sets() {
        use bsp_model::{BspParams, MemorySpec};
        // Three nodes of footprint 2 computed together on one processor:
        // the working set is 6.
        let mut b = DagBuilder::new();
        for _ in 0..3 {
            b.add_node(1, 2);
        }
        let dag = b.build().unwrap();
        let s = BspSchedule::zeroed(3);
        let comm = CommSchedule::empty();
        let roomy = BspParams::new(1, 1, 0).with_memory(MemorySpec::new(6));
        assert!(validate_with_memory(&dag, &roomy, &s, &comm).is_ok());
        let tight = BspParams::new(1, 1, 0).with_memory(MemorySpec::new(5));
        assert!(matches!(
            validate_with_memory(&dag, &tight, &s, &comm),
            Err(InvalidSchedule::MemoryExceeded {
                proc: 0,
                step: 0,
                need: 6,
                capacity: 5
            })
        ));
        // Splitting the cell across supersteps fits: each set is 2.
        let split = BspSchedule::from_parts(vec![0, 0, 0], vec![0, 1, 2]);
        assert!(validate_memory(&dag, &tight, &split).is_ok());
        // Unbounded machines never raise MemoryExceeded.
        assert!(validate_with_memory(&dag, &BspParams::new(1, 1, 0), &s, &comm).is_ok());
        let err = validate_memory(&dag, &tight, &s).unwrap_err();
        assert!(err.to_string().contains("fast memory"), "{err}");
    }

    #[test]
    fn size_mismatch_detected() {
        let dag = chain();
        let s = BspSchedule::zeroed(2);
        assert!(matches!(
            validate(&dag, 1, &s, &CommSchedule::empty()),
            Err(InvalidSchedule::SizeMismatch { .. })
        ));
    }
}
