//! The communication schedule `Γ` and its lazy derivation.

use crate::schedule::BspSchedule;
use bsp_dag::{Dag, NodeId};
use serde::{Deserialize, Serialize};

/// One entry `(v, p1, p2, s)` of `Γ`: the output of node `v` is sent from
/// processor `from` to processor `to` in the communication phase of
/// superstep `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CommStep {
    /// The node whose output value is transferred.
    pub node: NodeId,
    /// Sending processor `p1`.
    pub from: u32,
    /// Receiving processor `p2`.
    pub to: u32,
    /// Superstep whose communication phase carries the transfer.
    pub step: u32,
}

/// A full communication schedule: a set of [`CommStep`] entries kept sorted
/// for deterministic iteration and O(log) membership tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommSchedule {
    entries: Vec<CommStep>,
}

impl CommSchedule {
    /// Empty schedule (valid when every edge stays processor-local).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from arbitrary entries; sorts and deduplicates.
    pub fn from_entries(mut entries: Vec<CommStep>) -> Self {
        entries.sort_unstable();
        entries.dedup();
        CommSchedule { entries }
    }

    /// The *lazy* communication schedule defined by an assignment
    /// (Appendix A): whenever node `u` has a successor on a different
    /// processor `q`, its value is sent directly from `π(u)` to `q` in the
    /// last possible communication phase, i.e. superstep
    /// `min{τ(w) : w ∈ succ(u), π(w) = q} − 1`.
    ///
    /// Requires [`BspSchedule::respects_precedence_lazy`]; entries for
    /// which the sender would not yet have computed the value cannot occur
    /// then.
    pub fn lazy(dag: &Dag, sched: &BspSchedule) -> Self {
        let mut entries = Vec::new();
        // first_need[(q)] per node handled with a small map keyed by target proc.
        let mut first_need: Vec<(u32, u32)> = Vec::new(); // (proc, min step) scratch
        for u in dag.nodes() {
            first_need.clear();
            let pu = sched.proc(u);
            for &w in dag.successors(u) {
                let q = sched.proc(w);
                if q == pu {
                    continue;
                }
                match first_need.iter_mut().find(|e| e.0 == q) {
                    Some(e) => e.1 = e.1.min(sched.step(w)),
                    None => first_need.push((q, sched.step(w))),
                }
            }
            for &(q, s) in &first_need {
                debug_assert!(
                    s > 0,
                    "lazy schedule needs strict step increase across processors"
                );
                entries.push(CommStep {
                    node: u,
                    from: pu,
                    to: q,
                    step: s - 1,
                });
            }
        }
        Self::from_entries(entries)
    }

    /// All entries, sorted.
    #[inline]
    pub fn entries(&self) -> &[CommStep] {
        &self.entries
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no transfer is scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Latest communication-phase index used, if any.
    pub fn max_step(&self) -> Option<u32> {
        self.entries.iter().map(|e| e.step).max()
    }

    /// Replaces the superstep of one entry, keeping the schedule sorted.
    /// Returns false if `old` was not present.
    pub fn reschedule(&mut self, old: CommStep, new_step: u32) -> bool {
        match self.entries.binary_search(&old) {
            Ok(i) => {
                self.entries.remove(i);
                let updated = CommStep {
                    step: new_step,
                    ..old
                };
                let pos = self.entries.binary_search(&updated).unwrap_or_else(|e| e);
                self.entries.insert(pos, updated);
                true
            }
            Err(_) => false,
        }
    }
}

/// A *required transfer* under the direct-from-source model used by HCcs and
/// ILPcs (Appendix A.3–A.4): node `node` must move from `from = π(node)` to
/// `to` in some communication phase `s ∈ [earliest, latest]`, where
/// `earliest = τ(node)` and `latest = s0 − 1` for the first superstep `s0`
/// that computes a successor of `node` on `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The node whose value must be transferred.
    pub node: NodeId,
    /// Sending processor (always `π(node)` in the direct model).
    pub from: u32,
    /// Receiving processor.
    pub to: u32,
    /// Earliest feasible communication phase (`τ(node)`).
    pub earliest: u32,
    /// Latest feasible communication phase (first need minus one).
    pub latest: u32,
}

/// Enumerates the required transfers of an assignment (direct-from-source
/// model). Sorted by `(node, to)`.
pub fn required_transfers(dag: &Dag, sched: &BspSchedule) -> Vec<Transfer> {
    let mut out = Vec::new();
    let mut first_need: Vec<(u32, u32)> = Vec::new();
    for u in dag.nodes() {
        first_need.clear();
        let pu = sched.proc(u);
        for &w in dag.successors(u) {
            let q = sched.proc(w);
            if q == pu {
                continue;
            }
            match first_need.iter_mut().find(|e| e.0 == q) {
                Some(e) => e.1 = e.1.min(sched.step(w)),
                None => first_need.push((q, sched.step(w))),
            }
        }
        first_need.sort_unstable();
        for &(q, s0) in &first_need {
            debug_assert!(s0 > sched.step(u));
            out.push(Transfer {
                node: u,
                from: pu,
                to: q,
                earliest: sched.step(u),
                latest: s0 - 1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    fn fan() -> Dag {
        // 0 -> 1, 0 -> 2, 0 -> 3
        let mut b = DagBuilder::new();
        let s = b.add_node(1, 7);
        for _ in 0..3 {
            let t = b.add_node(1, 1);
            b.add_edge(s, t).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn lazy_sends_once_per_target_processor() {
        let dag = fan();
        // successors on procs 1, 1, 2 at steps 2, 3, 1.
        let sched = BspSchedule::from_parts(vec![0, 1, 1, 2], vec![0, 2, 3, 1]);
        let comm = CommSchedule::lazy(&dag, &sched);
        assert_eq!(
            comm.entries(),
            &[
                CommStep {
                    node: 0,
                    from: 0,
                    to: 1,
                    step: 1
                }, // min(2,3) - 1
                CommStep {
                    node: 0,
                    from: 0,
                    to: 2,
                    step: 0
                }, // 1 - 1
            ]
        );
    }

    #[test]
    fn lazy_empty_when_local() {
        let dag = fan();
        let sched = BspSchedule::from_parts(vec![0; 4], vec![0; 4]);
        assert!(CommSchedule::lazy(&dag, &sched).is_empty());
    }

    #[test]
    fn required_transfers_windows() {
        let dag = fan();
        let sched = BspSchedule::from_parts(vec![0, 1, 1, 2], vec![1, 3, 4, 2]);
        let t = required_transfers(&dag, &sched);
        assert_eq!(
            t,
            vec![
                Transfer {
                    node: 0,
                    from: 0,
                    to: 1,
                    earliest: 1,
                    latest: 2
                },
                Transfer {
                    node: 0,
                    from: 0,
                    to: 2,
                    earliest: 1,
                    latest: 1
                },
            ]
        );
    }

    #[test]
    fn reschedule_moves_entry() {
        let e = CommStep {
            node: 0,
            from: 0,
            to: 1,
            step: 3,
        };
        let mut c = CommSchedule::from_entries(vec![e]);
        assert!(c.reschedule(e, 1));
        assert_eq!(c.entries()[0].step, 1);
        assert!(!c.reschedule(e, 2)); // old entry gone
    }

    #[test]
    fn from_entries_sorts_and_dedups() {
        let a = CommStep {
            node: 1,
            from: 0,
            to: 1,
            step: 0,
        };
        let b = CommStep {
            node: 0,
            from: 0,
            to: 1,
            step: 0,
        };
        let c = CommSchedule::from_entries(vec![a, b, a]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.entries()[0], b);
    }
}
