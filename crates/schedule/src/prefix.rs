//! Committed-prefix semantics for online scheduling.
//!
//! An online scheduler dispatches supersteps as real time passes: once the
//! machine has *executed* superstep `s`, the assignment of every node in
//! supersteps `0..s` is frozen. This module gives that boundary a name —
//! the **commit frontier** `F` — and the split it induces:
//!
//! * the **committed prefix**: nodes with `τ(v) < F`, immutable;
//! * the **tentative suffix**: nodes with `τ(v) ≥ F`, free to be
//!   rewritten by later re-planning.
//!
//! [`validate_prefix`] checks the invariant the `bsp-online` runtime
//! maintains at every arrival event: the committed prefix is a valid
//! (lazy-Γ) schedule of the revealed subgraph. Concretely, every edge into
//! a committed consumer must (a) come from a committed producer — the
//! machine cannot execute a superstep whose input has not even been
//! scheduled — and (b) satisfy the lazy precedence rule (same processor:
//! `τ(u) ≤ τ(v)`; cross-processor: `τ(u) < τ(v)`).
//!
//! With `frontier ≥ n_supersteps` every node is committed and the check
//! degenerates to full lazy validation; with `frontier == 0` it is
//! trivially satisfied.
//!
//! ```
//! use bsp_dag::DagBuilder;
//! use bsp_schedule::prefix::{split_at, validate_prefix};
//! use bsp_schedule::BspSchedule;
//!
//! let mut b = DagBuilder::new();
//! let u = b.add_node(1, 1);
//! let v = b.add_node(1, 1);
//! b.add_edge(u, v).unwrap();
//! let dag = b.build().unwrap();
//!
//! // u committed in superstep 0, v tentative in superstep 1.
//! let sched = BspSchedule::from_parts(vec![0, 1], vec![0, 1]);
//! assert!(validate_prefix(&dag, 2, &sched, 1).is_ok());
//! let (committed, tentative) = split_at(&sched, 1);
//! assert_eq!(committed, vec![0]);
//! assert_eq!(tentative, vec![1]);
//! ```

use crate::schedule::BspSchedule;
use bsp_dag::{Dag, NodeId};
use std::fmt;

/// Why a committed prefix is not a valid schedule of the revealed
/// subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixViolation {
    /// A committed node is assigned to a processor outside `0..p`.
    ProcOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Its processor assignment.
        proc: u32,
    },
    /// An edge into a committed consumer comes from a tentative (or
    /// later-revealed) producer: the dispatched superstep would read data
    /// that is not scheduled before the frontier.
    ProducerTentative {
        /// Producer endpoint (tentative).
        from: NodeId,
        /// Consumer endpoint (committed).
        to: NodeId,
    },
    /// An edge between two committed nodes breaks the lazy precedence
    /// rule (same processor: `τ(u) ≤ τ(v)`; cross-processor:
    /// `τ(u) < τ(v)`).
    EdgeViolation {
        /// Producer endpoint.
        from: NodeId,
        /// Consumer endpoint.
        to: NodeId,
        /// Producer superstep.
        from_step: u32,
        /// Consumer superstep.
        to_step: u32,
    },
}

impl fmt::Display for PrefixViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixViolation::ProcOutOfRange { node, proc } => {
                write!(f, "committed node {node} on out-of-range processor {proc}")
            }
            PrefixViolation::ProducerTentative { from, to } => {
                write!(
                    f,
                    "committed node {to} reads tentative producer {from} \
                     (edge crosses the commit frontier backwards)"
                )
            }
            PrefixViolation::EdgeViolation {
                from,
                to,
                from_step,
                to_step,
            } => {
                write!(
                    f,
                    "committed edge ({from},{to}) breaks precedence: \
                     producer in superstep {from_step}, consumer in {to_step}"
                )
            }
        }
    }
}

impl std::error::Error for PrefixViolation {}

/// Checks that the committed prefix of `sched` (nodes with
/// `τ(v) < frontier`) is a valid lazy-Γ schedule of the revealed subgraph
/// `dag`. See the module docs for the exact conditions.
pub fn validate_prefix(
    dag: &Dag,
    p: usize,
    sched: &BspSchedule,
    frontier: u32,
) -> Result<(), PrefixViolation> {
    debug_assert_eq!(sched.n(), dag.n(), "schedule must cover the revealed DAG");
    for v in dag.nodes() {
        if sched.step(v) >= frontier {
            continue;
        }
        if sched.proc(v) as usize >= p {
            return Err(PrefixViolation::ProcOutOfRange {
                node: v,
                proc: sched.proc(v),
            });
        }
        for &u in dag.predecessors(v) {
            if sched.step(u) >= frontier {
                return Err(PrefixViolation::ProducerTentative { from: u, to: v });
            }
            let ok = if sched.proc(u) == sched.proc(v) {
                sched.step(u) <= sched.step(v)
            } else {
                sched.step(u) < sched.step(v)
            };
            if !ok {
                return Err(PrefixViolation::EdgeViolation {
                    from: u,
                    to: v,
                    from_step: sched.step(u),
                    to_step: sched.step(v),
                });
            }
        }
    }
    Ok(())
}

/// Splits the nodes of `sched` at the commit frontier: `(committed,
/// tentative)`, each in ascending node id. Committed nodes are those with
/// `τ(v) < frontier`.
pub fn split_at(sched: &BspSchedule, frontier: u32) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut committed = Vec::new();
    let mut tentative = Vec::new();
    for v in 0..sched.n() as NodeId {
        if sched.step(v) < frontier {
            committed.push(v);
        } else {
            tentative.push(v);
        }
    }
    (committed, tentative)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::validate_lazy;
    use bsp_dag::DagBuilder;

    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_node(1, 1)).collect();
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn frontier_zero_is_trivially_valid() {
        let dag = chain3();
        // Even a wildly invalid schedule has a valid (empty) prefix.
        let broken = BspSchedule::from_parts(vec![0, 1, 0], vec![5, 0, 0]);
        assert!(validate_prefix(&dag, 2, &broken, 0).is_ok());
    }

    #[test]
    fn full_frontier_matches_lazy_validation() {
        let dag = chain3();
        let good = BspSchedule::from_parts(vec![0, 0, 1], vec![0, 1, 2]);
        let bad = BspSchedule::from_parts(vec![0, 1, 0], vec![0, 0, 1]);
        for sched in [&good, &bad] {
            let frontier = sched.n_supersteps();
            assert_eq!(
                validate_prefix(&dag, 2, sched, frontier).is_ok(),
                validate_lazy(&dag, 2, sched).is_ok(),
            );
        }
    }

    #[test]
    fn tentative_producer_into_committed_consumer_is_rejected() {
        let dag = chain3();
        // Node 1 committed (step 0) but its producer 0 sits at step 2.
        let sched = BspSchedule::from_parts(vec![0, 0, 0], vec![2, 0, 2]);
        assert_eq!(
            validate_prefix(&dag, 1, &sched, 1),
            Err(PrefixViolation::ProducerTentative { from: 0, to: 1 })
        );
        // With everything tentative the same schedule passes.
        assert!(validate_prefix(&dag, 1, &sched, 0).is_ok());
    }

    #[test]
    fn committed_edge_violation_is_reported() {
        let dag = chain3();
        // Cross-processor edge (0,1) in the same committed superstep.
        let sched = BspSchedule::from_parts(vec![0, 1, 1], vec![0, 0, 5]);
        assert_eq!(
            validate_prefix(&dag, 2, &sched, 1),
            Err(PrefixViolation::EdgeViolation {
                from: 0,
                to: 1,
                from_step: 0,
                to_step: 0
            })
        );
        // Out-of-range processor on a committed node.
        let sched = BspSchedule::from_parts(vec![7, 0, 0], vec![0, 1, 2]);
        assert_eq!(
            validate_prefix(&dag, 2, &sched, 1),
            Err(PrefixViolation::ProcOutOfRange { node: 0, proc: 7 })
        );
    }

    #[test]
    fn split_partitions_by_step() {
        let sched = BspSchedule::from_parts(vec![0, 1, 0, 1], vec![0, 2, 1, 3]);
        let (committed, tentative) = split_at(&sched, 2);
        assert_eq!(committed, vec![0, 2]);
        assert_eq!(tentative, vec![1, 3]);
        let (all, none) = split_at(&sched, 4);
        assert_eq!(all.len(), 4);
        assert!(none.is_empty());
    }
}
