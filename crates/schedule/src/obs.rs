//! [`TracingObserver`]: bridges [`Observer`] stage/improvement events
//! into `bsp-obs` spans and metrics.
//!
//! Attach one to a [`SolveRequest`](crate::solve::SolveRequest) and every
//! pipeline stage becomes a trace span (category `"solve"`) plus a
//! sample in the `bsp_solve_stage_duration_us{stage=…}` histogram, with
//! `bsp_solve_stages_total{stage=…}` and `bsp_solve_improvements_total`
//! counting along the way. By default it records into the process-global
//! registry and trace buffer; tests inject local targets via
//! [`TracingObserver::with_targets`] to get isolated, exactly-countable
//! state.
//!
//! ```
//! use bsp_obs::{MetricRegistry, TraceBuffer};
//! use bsp_schedule::obs::TracingObserver;
//! use bsp_schedule::solve::Observer;
//!
//! let reg = MetricRegistry::new();
//! let buf = TraceBuffer::new(64);
//! let obs = TracingObserver::with_targets(reg.clone(), buf.clone());
//!
//! // Normally driven by SolveCx; hand-rolled here for the example.
//! obs.on_stage_start("demo", "hc");
//! # let report = bsp_schedule::solve::StageReport {
//! #     stage: "hc".to_string(),
//! #     cost_after: 42,
//! #     elapsed: std::time::Duration::from_micros(900),
//! #     truncated: false,
//! # };
//! obs.on_stage_end("demo", &report);
//!
//! assert_eq!(buf.snapshot().len(), 1);
//! assert!(reg
//!     .render_prometheus()
//!     .contains("bsp_solve_stages_total{stage=\"hc\"} 1"));
//! ```

use crate::solve::{ImprovementEvent, Observer, StageReport};
use bsp_obs::trace::{Span, TraceBuffer};
use bsp_obs::MetricRegistry;
use std::sync::Mutex;

/// An [`Observer`] that turns stage events into trace spans and
/// per-stage duration histograms. See the [module docs](self).
pub struct TracingObserver {
    registry: MetricRegistry,
    trace: TraceBuffer,
    /// Stage spans opened by `on_stage_start` and not yet closed,
    /// oldest first. Stages can nest (a pipeline stage may run a named
    /// sub-solve), so `on_stage_end` pops the *latest* span with a
    /// matching stage name.
    open: Mutex<Vec<(String, Span)>>,
    improvements: bsp_obs::Counter,
}

impl TracingObserver {
    /// An observer recording into the process-global registry and trace
    /// buffer ([`bsp_obs::global`], [`bsp_obs::trace::global`]).
    pub fn new() -> Self {
        TracingObserver::with_targets(bsp_obs::global().clone(), bsp_obs::trace::global().clone())
    }

    /// An observer recording into explicit targets — for tests that
    /// need isolation from other threads' metrics.
    pub fn with_targets(registry: MetricRegistry, trace: TraceBuffer) -> Self {
        let improvements = registry.counter("bsp_solve_improvements_total", &[]);
        TracingObserver {
            registry,
            trace,
            open: Mutex::new(Vec::new()),
            improvements,
        }
    }
}

impl Default for TracingObserver {
    fn default() -> Self {
        TracingObserver::new()
    }
}

impl Observer for TracingObserver {
    fn on_stage_start(&self, _scheduler: &str, stage: &str) {
        let span = self.trace.span(stage, "solve");
        self.open.lock().unwrap().push((stage.to_string(), span));
    }

    fn on_improvement(&self, _scheduler: &str, _event: &ImprovementEvent) {
        self.improvements.inc();
    }

    fn on_stage_end(&self, _scheduler: &str, report: &StageReport) {
        let span = {
            let mut open = self.open.lock().unwrap();
            open.iter()
                .rposition(|(name, _)| name == &report.stage)
                .map(|pos| open.remove(pos).1)
        };
        if let Some(span) = span {
            span.finish();
        }
        self.registry
            .histogram("bsp_solve_stage_duration_us", &[("stage", &report.stage)])
            .observe_duration(report.elapsed);
        self.registry
            .counter("bsp_solve_stages_total", &[("stage", &report.stage)])
            .inc();
    }
}

// Dropping the observer drops any still-open spans, which records them
// via `Span`'s RAII close — a truncated solve still leaves a coherent
// trace.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{SolveCx, SolveRequest};
    use bsp_dag::DagBuilder;
    use bsp_model::BspParams;

    fn demo_dag() -> bsp_dag::Dag {
        let mut b = DagBuilder::new();
        let u = b.add_node(2, 1);
        let v = b.add_node(3, 1);
        b.add_edge(u, v).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stages_become_spans_and_histogram_samples() {
        let reg = MetricRegistry::new();
        let buf = TraceBuffer::new(64);
        let obs = TracingObserver::with_targets(reg.clone(), buf.clone());

        let dag = demo_dag();
        let machine = BspParams::new(2, 2, 5);
        let req = SolveRequest::new(&dag, &machine).with_observer(&obs);
        let mut cx = SolveCx::new("test", &req);
        cx.begin("init");
        cx.improved(100);
        cx.end(100, false);
        cx.begin("hc");
        cx.improved(90);
        cx.improved(80);
        cx.end(80, false);
        let result = crate::scheduler::ScheduleResult::from_lazy(
            &dag,
            &machine,
            crate::schedule::BspSchedule::from_parts(vec![0, 0], vec![0, 1]),
        );
        let outcome = cx.finish(result);

        // One span per completed stage, names matching the reports.
        let spans = buf.snapshot();
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            outcome
                .stages
                .iter()
                .map(|r| r.stage.as_str())
                .collect::<Vec<_>>()
        );
        assert!(spans.iter().all(|s| s.cat == "solve" && s.parent == 0));

        assert_eq!(reg.counter("bsp_solve_improvements_total", &[]).get(), 3);
        assert_eq!(
            reg.counter("bsp_solve_stages_total", &[("stage", "hc")])
                .get(),
            1
        );
        assert_eq!(
            reg.histogram("bsp_solve_stage_duration_us", &[("stage", "init")])
                .count(),
            1
        );
    }

    #[test]
    fn unmatched_stage_end_still_records_metrics() {
        let reg = MetricRegistry::new();
        let buf = TraceBuffer::new(8);
        let obs = TracingObserver::with_targets(reg.clone(), buf.clone());
        let report = StageReport {
            stage: "ghost".to_string(),
            cost_after: 1,
            elapsed: std::time::Duration::from_micros(5),
            truncated: false,
        };
        obs.on_stage_end("test", &report);
        assert!(buf.snapshot().is_empty());
        assert_eq!(
            reg.counter("bsp_solve_stages_total", &[("stage", "ghost")])
                .get(),
            1
        );
    }
}
