//! Serializable progress events: the wire form of the [`Observer`]
//! callbacks and [`StageReport`]s.
//!
//! The solve API reports progress through borrowed, non-serializable
//! types ([`Observer`] methods and [`StageReport`], which holds a
//! [`Duration`](std::time::Duration)). A service streaming progress over
//! a socket needs owned, serde-able frames instead. This module provides
//!
//! * [`SolveEvent`] — one owned, JSON-serializable progress event,
//! * [`StageReportWire`] — the JSON shape of a [`StageReport`]
//!   (`elapsed` flattened to microseconds), and
//! * [`EventObserver`] — an [`Observer`] adaptor forwarding every
//!   callback as a [`SolveEvent`] to a caller-supplied `Fn` (a channel
//!   send, a socket write, a log line).
//!
//! ```
//! use bsp_schedule::events::{EventObserver, SolveEvent};
//! use std::sync::Mutex;
//!
//! let log: Mutex<Vec<SolveEvent>> = Mutex::new(Vec::new());
//! let obs = EventObserver::new(|ev| log.lock().unwrap().push(ev));
//! use bsp_schedule::solve::Observer;
//! obs.on_stage_start("pipeline/base", "init");
//! assert_eq!(log.lock().unwrap()[0].kind, "stage_start");
//! ```

use crate::solve::{ImprovementEvent, Observer, StageReport};
use serde::{Deserialize, Serialize};

/// One solve progress event in wire form. `kind` is `"stage_start"`,
/// `"improvement"` or `"stage_end"`; fields that do not apply to a kind
/// are `None`/zero (flat struct — the stand-in serde derives no enums).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveEvent {
    /// `"stage_start"`, `"improvement"` or `"stage_end"`.
    pub kind: String,
    /// Scheduler name the event came from.
    pub scheduler: String,
    /// Stage name.
    pub stage: String,
    /// Incumbent cost (`improvement`: new incumbent; `stage_end`: cost
    /// after the stage; `stage_start`: `None`).
    pub cost: Option<u64>,
    /// Microseconds since the solve started (`improvement`) or the
    /// stage's wall-clock (`stage_end`); `None` for `stage_start`.
    pub elapsed_us: Option<u64>,
    /// Whether the budget cut the stage short (`stage_end` only).
    pub truncated: Option<bool>,
}

/// The JSON shape of a [`StageReport`]: `elapsed` flattened to
/// microseconds so the stand-in serde (no `Duration` support) carries it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageReportWire {
    /// Stage name (`"init"`, `"hc"`, `"ilp"`, …).
    pub stage: String,
    /// Incumbent cost when the stage ended.
    pub cost_after: u64,
    /// Stage wall-clock in microseconds.
    pub elapsed_us: u64,
    /// Whether the budget cut the stage short.
    pub truncated: bool,
}

impl From<&StageReport> for StageReportWire {
    fn from(r: &StageReport) -> Self {
        StageReportWire {
            stage: r.stage.clone(),
            cost_after: r.cost_after,
            elapsed_us: r.elapsed.as_micros().min(u64::MAX as u128) as u64,
            truncated: r.truncated,
        }
    }
}

/// An [`Observer`] forwarding every callback as an owned [`SolveEvent`]
/// to `sink`. The sink must be `Sync` (solves run on worker threads);
/// wrap channel senders or writers in a `Mutex`.
pub struct EventObserver<F: Fn(SolveEvent) + Sync> {
    sink: F,
}

impl<F: Fn(SolveEvent) + Sync> EventObserver<F> {
    /// Wraps `sink` as an observer.
    pub fn new(sink: F) -> Self {
        EventObserver { sink }
    }
}

impl<F: Fn(SolveEvent) + Sync> Observer for EventObserver<F> {
    fn on_stage_start(&self, scheduler: &str, stage: &str) {
        (self.sink)(SolveEvent {
            kind: "stage_start".to_string(),
            scheduler: scheduler.to_string(),
            stage: stage.to_string(),
            cost: None,
            elapsed_us: None,
            truncated: None,
        });
    }

    fn on_improvement(&self, scheduler: &str, event: &ImprovementEvent<'_>) {
        (self.sink)(SolveEvent {
            kind: "improvement".to_string(),
            scheduler: scheduler.to_string(),
            stage: event.stage.to_string(),
            cost: Some(event.cost),
            elapsed_us: Some(event.elapsed.as_micros().min(u64::MAX as u128) as u64),
            truncated: None,
        });
    }

    fn on_stage_end(&self, scheduler: &str, report: &StageReport) {
        let wire = StageReportWire::from(report);
        (self.sink)(SolveEvent {
            kind: "stage_end".to_string(),
            scheduler: scheduler.to_string(),
            stage: wire.stage,
            cost: Some(wire.cost_after),
            elapsed_us: Some(wire.elapsed_us),
            truncated: Some(wire.truncated),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn observer_callbacks_become_events() {
        let log: Mutex<Vec<SolveEvent>> = Mutex::new(Vec::new());
        let obs = EventObserver::new(|ev| log.lock().unwrap().push(ev));
        obs.on_stage_start("s", "init");
        obs.on_improvement(
            "s",
            &ImprovementEvent {
                stage: "init",
                cost: 42,
                elapsed: Duration::from_micros(7),
            },
        );
        obs.on_stage_end(
            "s",
            &StageReport {
                stage: "init".to_string(),
                cost_after: 42,
                elapsed: Duration::from_micros(9),
                truncated: true,
            },
        );
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].kind, "stage_start");
        assert_eq!(log[1].cost, Some(42));
        assert_eq!(log[1].elapsed_us, Some(7));
        assert_eq!(log[2].kind, "stage_end");
        assert_eq!(log[2].truncated, Some(true));
    }

    #[test]
    fn events_round_trip_through_json() {
        let ev = SolveEvent {
            kind: "stage_end".to_string(),
            scheduler: "pipeline/base".to_string(),
            stage: "hc".to_string(),
            cost: Some(99),
            elapsed_us: Some(1234),
            truncated: Some(false),
        };
        let back: SolveEvent = json::from_str(&json::to_string(&ev)).unwrap();
        assert_eq!(back, ev);
        let start: SolveEvent = json::from_str(
            "{\"kind\":\"stage_start\",\"scheduler\":\"s\",\"stage\":\"init\",\
             \"cost\":null,\"elapsed_us\":null,\"truncated\":null}",
        )
        .unwrap();
        assert_eq!(start.cost, None);
    }

    #[test]
    fn stage_report_wire_conversion() {
        let wire = StageReportWire::from(&StageReport {
            stage: "ilp".to_string(),
            cost_after: 7,
            elapsed: Duration::from_millis(2),
            truncated: false,
        });
        assert_eq!(wire.elapsed_us, 2000);
        let back: StageReportWire = json::from_str(&json::to_string(&wire)).unwrap();
        assert_eq!(back, wire);
    }
}
