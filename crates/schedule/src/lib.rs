//! BSP schedule representation, validity checking and cost evaluation
//! (paper §3.2–§3.5).
//!
//! A BSP schedule of a DAG consists of
//!
//! * an assignment of nodes to processors `π : V → {0..P-1}` and supersteps
//!   `τ : V → ℕ` ([`BspSchedule`]), and
//! * a communication schedule `Γ` of 4-tuples `(v, p1, p2, s)` meaning "the
//!   output of `v` is sent from `p1` to `p2` in the communication phase of
//!   superstep `s`" ([`CommSchedule`]).
//!
//! The cost of superstep `s` is `Cwork(s) + g·Ccomm(s) + ℓ`, where `Cwork`
//! is the maximum work assigned to any processor and `Ccomm` the maximum
//! (λ-weighted, under NUMA) amount sent or received by any processor; the
//! schedule cost is the sum over supersteps ([`cost`]).
//!
//! ```
//! use bsp_dag::DagBuilder;
//! use bsp_model::BspParams;
//! use bsp_schedule::{BspSchedule, CommSchedule, cost::schedule_cost};
//!
//! let mut b = DagBuilder::new();
//! let u = b.add_node(2, 1);
//! let v = b.add_node(3, 1);
//! b.add_edge(u, v).unwrap();
//! let dag = b.build().unwrap();
//!
//! // u on processor 0 in superstep 0, v on processor 1 in superstep 1.
//! let sched = BspSchedule::from_parts(vec![0, 1], vec![0, 1]);
//! let comm = CommSchedule::lazy(&dag, &sched);
//! let machine = BspParams::new(2, 2, 5);
//! let c = schedule_cost(&dag, &machine, &sched, &comm);
//! // superstep 0: work 2 + g*1 + l; superstep 1: work 3 + l.
//! assert_eq!(c.total, (2 + 2 + 5) + (3 + 5));
//! ```

pub mod classical;
pub mod comm;
pub mod compact;
pub mod cost;
pub mod events;
pub mod export;
pub mod memory;
pub mod obs;
pub mod prefix;
pub mod schedule;
pub mod scheduler;
pub mod solve;
pub mod spec;
pub mod trivial;
pub mod validity;

pub use classical::ClassicalSchedule;
pub use comm::{CommSchedule, CommStep, Transfer};
pub use cost::{schedule_cost, CostBreakdown};
pub use events::{EventObserver, SolveEvent, StageReportWire};
pub use export::{classical_to_gantt, dag_to_dot, schedule_to_dot, schedule_to_text};
pub use memory::{
    memory_cost, memory_violations, min_repairable_capacity, node_working_set, simulate_memory,
    MemoryReport, MemoryViolation, RefetchEvent,
};
pub use obs::TracingObserver;
pub use prefix::{split_at, validate_prefix, PrefixViolation};
pub use schedule::BspSchedule;
pub use scheduler::{ScheduleResult, Scheduler, SchedulerKind};
pub use solve::{
    Budget, ImprovementEvent, Observer, SolveCx, SolveOutcome, SolveRequest, StageReport,
};
pub use spec::{SchedulerDescriptor, SchedulerSpec, SpecError};
pub use validity::{validate, validate_memory, validate_with_memory, InvalidSchedule};
