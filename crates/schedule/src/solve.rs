//! The anytime solve API: [`SolveRequest`], [`Budget`], [`Observer`],
//! [`StageReport`] and [`SolveOutcome`].
//!
//! The paper's framework is an *anytime* pipeline: initializers, hill
//! climbing and ILP stages monotonically improve a schedule, so stopping at
//! any stage boundary still yields a valid best-so-far schedule. This module
//! is the request/response surface that exposes that property: a
//! [`SolveRequest`] bundles the instance with a [`Budget`] (wall-clock
//! deadline, per-stage move caps, ILP on/off), an RNG seed, and an
//! [`Observer`] that receives stage and improvement events while the solve
//! runs. Every [`Scheduler`](crate::scheduler::Scheduler) consumes a request
//! and returns a [`SolveOutcome`]: the final costed schedule plus one
//! [`StageReport`] per pipeline stage that ran.
//!
//! Budget semantics (also documented in the README):
//!
//! * The **deadline** is checked at stage boundaries, and additionally caps
//!   each stage's internal wall-clock limit, so an expired deadline makes
//!   the remaining stages degenerate to (near) no-ops. Because every stage
//!   holds the monotone contract, the result is always a *valid* schedule —
//!   under an already-expired deadline, the best initialization.
//! * **Move caps** bound the accepted moves of each local-search stage.
//! * **`ilp`** overrides the scheduler's own ILP switch; `None` defers.
//! * The **cancel token** ([`Budget::with_cancel`]) makes the budget count
//!   as expired the moment the token is cancelled — the cooperative-stop
//!   channel used by portfolio racing and interactive callers. It reuses
//!   the deadline machinery, so the monotone "any budget yields a valid
//!   schedule" contract is unchanged.
//!
//! ```
//! use bsp_dag::DagBuilder;
//! use bsp_model::BspParams;
//! use bsp_schedule::solve::{Budget, SolveRequest};
//! use std::time::Duration;
//!
//! let mut b = DagBuilder::new();
//! let u = b.add_node(2, 1);
//! let v = b.add_node(3, 1);
//! b.add_edge(u, v).unwrap();
//! let dag = b.build().unwrap();
//! let machine = BspParams::new(2, 1, 1);
//!
//! let req = SolveRequest::new(&dag, &machine)
//!     .with_budget(Budget::deadline(Duration::from_millis(50)).without_ilp())
//!     .with_seed(7);
//! assert_eq!(req.seed, 7);
//! assert_eq!(req.budget.ilp, Some(false));
//! assert!(!req.budget.is_unlimited());
//! ```

use crate::scheduler::ScheduleResult;
use bsp_dag::Dag;
use bsp_model::BspParams;
pub use bsp_par::CancelToken;
use std::time::{Duration, Instant};

/// Resource limits for one solve call.
///
/// The default budget is unlimited: no deadline, no move caps, and the
/// scheduler's own ILP switch.
///
/// ```
/// use bsp_schedule::solve::Budget;
/// use std::time::Duration;
///
/// let b = Budget::deadline(Duration::from_millis(250));
/// assert_eq!(b.deadline, Some(Duration::from_millis(250)));
/// assert!(Budget::default().is_unlimited());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock limit for the whole solve, measured from the moment
    /// `solve` is entered. `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Cap on accepted moves per local-search stage (HC, HCcs, escape).
    /// `None` = the scheduler's configured caps.
    pub max_stage_moves: Option<usize>,
    /// Override for the scheduler's ILP master switch: `Some(false)` forces
    /// the ILP stages off, `Some(true)` on, `None` defers to the scheduler.
    pub ilp: Option<bool>,
    /// Shared cooperative-cancellation token: once cancelled, the budget
    /// counts as expired at every [`SolveCx::check_expired`] site, so the
    /// solve winds down to its best-so-far schedule exactly as under an
    /// expired deadline. `None` = not externally cancellable.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// The unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// An otherwise-unlimited budget with a wall-clock deadline.
    pub fn deadline(d: Duration) -> Self {
        Budget {
            deadline: Some(d),
            ..Budget::default()
        }
    }

    /// An already-expired budget: the solve returns its best initialization
    /// (still a valid schedule) as fast as the stages can be skipped.
    pub fn expired() -> Self {
        Budget::deadline(Duration::ZERO)
    }

    /// This budget with the ILP stages forced off.
    pub fn without_ilp(mut self) -> Self {
        self.ilp = Some(false);
        self
    }

    /// This budget with a per-stage accepted-move cap.
    pub fn with_max_stage_moves(mut self, moves: usize) -> Self {
        self.max_stage_moves = Some(moves);
        self
    }

    /// This budget with a shared cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether this budget constrains nothing (and cannot be cancelled).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_stage_moves.is_none()
            && self.ilp.is_none()
            && self.cancel.is_none()
    }
}

/// A stage or improvement event, as seen by an [`Observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImprovementEvent<'e> {
    /// Stage that produced the improvement.
    pub stage: &'e str,
    /// New incumbent cost.
    pub cost: u64,
    /// Time since the solve started.
    pub elapsed: Duration,
}

/// Receives progress events during a solve. All methods default to no-ops,
/// so implementors override only what they need. Observers must be [`Sync`]:
/// harnesses solve on worker threads.
pub trait Observer: Sync {
    /// A pipeline stage is starting.
    fn on_stage_start(&self, scheduler: &str, stage: &str) {
        let _ = (scheduler, stage);
    }
    /// The incumbent schedule improved.
    fn on_improvement(&self, scheduler: &str, event: &ImprovementEvent<'_>) {
        let _ = (scheduler, event);
    }
    /// A pipeline stage finished (report includes truncation by budget).
    fn on_stage_end(&self, scheduler: &str, report: &StageReport) {
        let _ = (scheduler, report);
    }
}

/// The do-nothing observer every request starts with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// The shared no-op observer instance.
pub static NOOP_OBSERVER: NoopObserver = NoopObserver;

/// What happened in one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Stable stage name (`"init"`, `"hc"`, `"ilp"`, `"multilevel"`,
    /// `"polish"`, or `"run"` for single-stage schedulers).
    pub stage: String,
    /// Incumbent cost when the stage ended. Stage reports are monotone
    /// non-increasing in `cost_after`, and the last report equals the
    /// outcome's final cost.
    pub cost_after: u64,
    /// Wall-clock time the stage consumed.
    pub elapsed: Duration,
    /// Whether the budget cut the stage short.
    pub truncated: bool,
}

/// A scheduling problem plus the resources granted to solve it.
pub struct SolveRequest<'a> {
    /// The computational DAG to schedule.
    pub dag: &'a Dag,
    /// The machine description.
    pub machine: &'a BspParams,
    /// Resource limits; default unlimited.
    pub budget: Budget,
    /// RNG seed mixed into every randomized component (steal-victim
    /// streams, simulated annealing); `0` reproduces the scheduler's
    /// configured seeds.
    pub seed: u64,
    /// Worker-thread override for the scheduler's parallel scans: `None`
    /// defers to the scheduler's own configuration, `Some(0)` auto-detects
    /// ([`bsp_par::detect_threads`]), `Some(n)` requests exactly `n`.
    /// Parallel scans are bit-identical to sequential ones, so this knob
    /// never changes the computed schedule — only the wall-clock.
    pub threads: Option<usize>,
    /// Progress observer; defaults to [`NOOP_OBSERVER`].
    pub observer: &'a dyn Observer,
}

impl<'a> SolveRequest<'a> {
    /// A request with an unlimited budget, seed 0 and no observer.
    pub fn new(dag: &'a Dag, machine: &'a BspParams) -> Self {
        SolveRequest {
            dag,
            machine,
            budget: Budget::default(),
            seed: 0,
            threads: None,
            observer: &NOOP_OBSERVER,
        }
    }

    /// This request with the given budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// This request with the given RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// This request with a worker-thread override for parallel scans
    /// (`0` = auto-detect; see [`SolveRequest::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// This request with the given observer.
    pub fn with_observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = observer;
        self
    }
}

/// A completed solve: the final costed schedule plus per-stage reports.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The final schedule, communication schedule and cost breakdown.
    pub result: ScheduleResult,
    /// One report per stage that ran, in execution order. `cost_after` is
    /// monotone non-increasing and the last entry equals `result.total()`.
    pub stages: Vec<StageReport>,
    /// Total wall-clock time of the solve.
    pub elapsed: Duration,
    /// Whether the budget expired before all stages could run to
    /// completion.
    pub budget_exhausted: bool,
}

impl SolveOutcome {
    /// Final total cost (shorthand for `self.result.total()`).
    pub fn total(&self) -> u64 {
        self.result.total()
    }
}

/// Bookkeeping a scheduler threads through its stages: the budget clock,
/// the observer, and the stage reports accumulated so far.
///
/// Pipelines call [`begin`](SolveCx::begin)/[`end`](SolveCx::end) around
/// each stage, [`improved`](SolveCx::improved) when the incumbent drops,
/// [`check_expired`](SolveCx::check_expired) between stages, and the
/// `clamp_*` helpers to fold the remaining budget into per-stage configs;
/// [`finish`](SolveCx::finish) seals everything into a [`SolveOutcome`].
pub struct SolveCx<'a> {
    scheduler: String,
    observer: &'a dyn Observer,
    start: Instant,
    deadline: Option<Instant>,
    max_stage_moves: Option<usize>,
    ilp_override: Option<bool>,
    cancel: Option<CancelToken>,
    threads_override: Option<usize>,
    seed: u64,
    stages: Vec<StageReport>,
    current: Option<(String, Instant)>,
    exhausted: bool,
}

impl<'a> SolveCx<'a> {
    /// Starts the clock for one solve of `req` by scheduler `scheduler`.
    pub fn new(scheduler: &str, req: &SolveRequest<'a>) -> Self {
        let start = Instant::now();
        SolveCx {
            scheduler: scheduler.to_string(),
            observer: req.observer,
            start,
            deadline: req.budget.deadline.map(|d| start + d),
            max_stage_moves: req.budget.max_stage_moves,
            ilp_override: req.budget.ilp,
            cancel: req.budget.cancel.clone(),
            threads_override: req.threads,
            seed: req.seed,
            stages: Vec::new(),
            current: None,
            exhausted: false,
        }
    }

    /// Time since the solve started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the budget's cancellation token has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// The budget's cancellation token, if any. Nested solves (multilevel
    /// inner runs, repair stages) clone this into their sub-budgets so an
    /// outer cancellation reaches them too.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.cancel.clone()
    }

    /// Whether the wall-clock deadline has passed or the budget's
    /// cancellation token has been cancelled.
    pub fn expired(&self) -> bool {
        self.cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// [`expired`](Self::expired), additionally recording budget
    /// exhaustion in the outcome. Use this for between-stage checks.
    pub fn check_expired(&mut self) -> bool {
        if self.expired() {
            self.exhausted = true;
            true
        } else {
            false
        }
    }

    /// Wall-clock budget left; `None` = unlimited. A cancelled token
    /// reports zero remaining, so stage clamps degrade the remaining
    /// stages to (near) no-ops exactly as an expired deadline would.
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancelled() {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The tighter of a stage's own time limit and the remaining budget.
    pub fn clamp_time(&self, stage_limit: Option<Duration>) -> Option<Duration> {
        match (stage_limit, self.remaining()) {
            (None, r) => r,
            (l, None) => l,
            (Some(l), Some(r)) => Some(l.min(r)),
        }
    }

    /// The tighter of a stage's own move cap and the budget's.
    pub fn clamp_moves(&self, stage_cap: Option<usize>) -> Option<usize> {
        match (stage_cap, self.max_stage_moves) {
            (None, b) => b,
            (c, None) => c,
            (Some(c), Some(b)) => Some(c.min(b)),
        }
    }

    /// Resolves the effective ILP switch from the scheduler's default and
    /// the budget's override.
    pub fn ilp_enabled(&self, scheduler_default: bool) -> bool {
        self.ilp_override.unwrap_or(scheduler_default)
    }

    /// Resolves the effective worker-thread count for parallel scans from
    /// the scheduler's default and the request's override; `0` on either
    /// side auto-detects (see [`bsp_par::resolve_threads`]).
    pub fn threads(&self, scheduler_default: usize) -> usize {
        bsp_par::resolve_threads(self.threads_override.unwrap_or(scheduler_default))
    }

    /// The request's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Begins a named stage (notifies the observer, starts its clock).
    pub fn begin(&mut self, stage: &str) {
        self.observer.on_stage_start(&self.scheduler, stage);
        self.current = Some((stage.to_string(), Instant::now()));
    }

    /// Reports an incumbent improvement within the current stage.
    pub fn improved(&self, cost: u64) {
        let stage = self.current.as_ref().map_or("", |(s, _)| s.as_str());
        self.observer.on_improvement(
            &self.scheduler,
            &ImprovementEvent {
                stage,
                cost,
                elapsed: self.elapsed(),
            },
        );
    }

    /// Ends the current stage with its final cost and truncation flag.
    pub fn end(&mut self, cost_after: u64, truncated: bool) {
        let (stage, began) = self
            .current
            .take()
            .expect("SolveCx::end without a matching begin");
        if truncated {
            self.exhausted = true;
        }
        let report = StageReport {
            stage,
            cost_after,
            elapsed: began.elapsed(),
            truncated,
        };
        self.observer.on_stage_end(&self.scheduler, &report);
        self.stages.push(report);
    }

    /// Number of stage reports recorded so far (a checkpoint for
    /// [`discard_stages`](Self::discard_stages)).
    pub fn mark(&self) -> usize {
        self.stages.len()
    }

    /// Drops the reports in `[from, to)` — used by selectors that run
    /// several pipelines and keep only the winner's trajectory.
    pub fn discard_stages(&mut self, from: usize, to: usize) {
        self.stages.drain(from..to.min(self.stages.len()));
    }

    /// Seals the context into an outcome around the final result.
    pub fn finish(self, result: ScheduleResult) -> SolveOutcome {
        debug_assert!(self.current.is_none(), "unfinished stage at finish");
        SolveOutcome {
            result,
            stages: self.stages,
            elapsed: self.start.elapsed(),
            budget_exhausted: self.exhausted,
        }
    }
}

/// Runs a single-stage (non-anytime) scheduler under the request's clock:
/// one `"run"` stage, one improvement event, never truncated. Baselines and
/// stand-alone initializers are not anytime algorithms — they run to
/// completion regardless of the budget, which keeps the "any budget yields
/// a valid schedule" contract trivially.
pub fn solve_single_stage(
    scheduler: &str,
    req: &SolveRequest<'_>,
    run: impl FnOnce() -> ScheduleResult,
) -> SolveOutcome {
    let mut cx = SolveCx::new(scheduler, req);
    cx.begin("run");
    let result = run();
    cx.improved(result.total());
    cx.end(result.total(), false);
    // A budget can be exhausted even though nothing was truncated (the
    // stage is atomic); record it so callers can tell.
    cx.check_expired();
    cx.finish(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;
    use std::sync::Mutex;

    fn tiny() -> (Dag, BspParams) {
        let mut b = DagBuilder::new();
        let u = b.add_node(2, 1);
        let v = b.add_node(3, 1);
        b.add_edge(u, v).unwrap();
        (b.build().unwrap(), BspParams::new(2, 1, 1))
    }

    #[test]
    fn budget_builders() {
        assert!(Budget::unlimited().is_unlimited());
        let b = Budget::deadline(Duration::from_millis(5))
            .without_ilp()
            .with_max_stage_moves(10);
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.ilp, Some(false));
        assert_eq!(b.max_stage_moves, Some(10));
        assert_eq!(Budget::expired().deadline, Some(Duration::ZERO));
    }

    #[test]
    fn clamps_fold_budget_into_stage_configs() {
        let (dag, machine) = tiny();
        let req = SolveRequest::new(&dag, &machine)
            .with_budget(Budget::deadline(Duration::from_secs(3600)).with_max_stage_moves(5));
        let cx = SolveCx::new("t", &req);
        // Remaining ≈ 1h, stage limit 1ms: stage limit wins.
        assert_eq!(
            cx.clamp_time(Some(Duration::from_millis(1))),
            Some(Duration::from_millis(1))
        );
        // No stage limit: the budget's remaining time applies.
        assert!(cx.clamp_time(None).unwrap() <= Duration::from_secs(3600));
        assert_eq!(cx.clamp_moves(None), Some(5));
        assert_eq!(cx.clamp_moves(Some(3)), Some(3));
        assert_eq!(cx.clamp_moves(Some(9)), Some(5));
        assert!(cx.ilp_enabled(true));
        assert!(!cx.ilp_enabled(false));
    }

    #[test]
    fn expired_budget_is_expired_immediately() {
        let (dag, machine) = tiny();
        let req = SolveRequest::new(&dag, &machine).with_budget(Budget::expired());
        let mut cx = SolveCx::new("t", &req);
        assert!(cx.check_expired());
        assert_eq!(cx.remaining(), Some(Duration::ZERO));
        assert_eq!(cx.clamp_time(None), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_counts_as_expired() {
        let (dag, machine) = tiny();
        let token = CancelToken::new();
        let req = SolveRequest::new(&dag, &machine)
            .with_budget(Budget::unlimited().with_cancel(token.clone()));
        assert!(
            !req.budget.is_unlimited(),
            "a cancellable budget is a constraint"
        );
        let mut cx = SolveCx::new("t", &req);
        assert!(!cx.check_expired());
        assert_eq!(cx.remaining(), None);
        token.cancel();
        assert!(cx.expired());
        assert!(cx.check_expired());
        assert_eq!(cx.remaining(), Some(Duration::ZERO));
        assert_eq!(cx.clamp_time(None), Some(Duration::ZERO));
    }

    #[test]
    fn thread_override_resolution() {
        let (dag, machine) = tiny();
        // No override: the scheduler's default applies (0 = auto-detect).
        let req = SolveRequest::new(&dag, &machine);
        let cx = SolveCx::new("t", &req);
        assert_eq!(cx.threads(3), 3);
        assert!(cx.threads(0) >= 1);
        // Override wins over the scheduler default.
        let req = SolveRequest::new(&dag, &machine).with_threads(2);
        let cx = SolveCx::new("t", &req);
        assert_eq!(cx.threads(8), 2);
    }

    #[test]
    fn single_stage_outcome_has_one_report() {
        let (dag, machine) = tiny();
        let req = SolveRequest::new(&dag, &machine);
        let sched = crate::BspSchedule::from_parts(vec![0, 0], vec![0, 0]);
        let out = solve_single_stage("t", &req, || {
            ScheduleResult::from_lazy(&dag, &machine, sched)
        });
        assert_eq!(out.stages.len(), 1);
        assert_eq!(out.stages[0].stage, "run");
        assert_eq!(out.stages[0].cost_after, out.total());
        assert!(!out.stages[0].truncated);
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn observer_sees_stage_and_improvement_events() {
        struct Recorder(Mutex<Vec<String>>);
        impl Observer for Recorder {
            fn on_stage_start(&self, s: &str, stage: &str) {
                self.0.lock().unwrap().push(format!("start {s}/{stage}"));
            }
            fn on_improvement(&self, s: &str, ev: &ImprovementEvent<'_>) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("improve {s}/{} -> {}", ev.stage, ev.cost));
            }
            fn on_stage_end(&self, s: &str, r: &StageReport) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("end {s}/{} @ {}", r.stage, r.cost_after));
            }
        }
        let (dag, machine) = tiny();
        let rec = Recorder(Mutex::new(Vec::new()));
        let req = SolveRequest::new(&dag, &machine).with_observer(&rec);
        let mut cx = SolveCx::new("s", &req);
        cx.begin("init");
        cx.improved(10);
        cx.end(10, false);
        let out = cx.finish(ScheduleResult::from_lazy(
            &dag,
            &machine,
            crate::BspSchedule::from_parts(vec![0, 0], vec![0, 0]),
        ));
        assert_eq!(out.stages.len(), 1);
        let log = rec.0.lock().unwrap();
        assert_eq!(
            *log,
            vec![
                "start s/init".to_string(),
                "improve s/init -> 10".to_string(),
                "end s/init @ 10".to_string(),
            ]
        );
    }

    #[test]
    fn auto_style_discard_keeps_the_winner_trajectory() {
        let (dag, machine) = tiny();
        let req = SolveRequest::new(&dag, &machine);
        let mut cx = SolveCx::new("auto", &req);
        let m0 = cx.mark();
        cx.begin("init");
        cx.end(20, false);
        let m1 = cx.mark();
        cx.begin("multilevel");
        cx.end(15, false);
        // Multilevel won: drop the base trajectory.
        cx.discard_stages(m0, m1);
        let out = cx.finish(ScheduleResult::from_lazy(
            &dag,
            &machine,
            crate::BspSchedule::from_parts(vec![0, 0], vec![0, 0]),
        ));
        assert_eq!(out.stages.len(), 1);
        assert_eq!(out.stages[0].stage, "multilevel");
    }
}
