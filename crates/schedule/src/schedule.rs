//! The node-to-(processor, superstep) assignment `(π, τ)`.

use bsp_dag::{Dag, NodeId};
use serde::{Deserialize, Serialize};

/// Assignment of every node to a processor (`π`) and a superstep (`τ`).
///
/// This is the "computational half" of a BSP schedule; the communication
/// half `Γ` lives in [`crate::CommSchedule`] and is usually derived lazily.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BspSchedule {
    proc: Vec<u32>,
    step: Vec<u32>,
}

impl BspSchedule {
    /// Builds a schedule from the two assignment vectors (`proc[v] = π(v)`,
    /// `step[v] = τ(v)`).
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn from_parts(proc: Vec<u32>, step: Vec<u32>) -> Self {
        assert_eq!(proc.len(), step.len());
        BspSchedule { proc, step }
    }

    /// An all-zero assignment for `n` nodes (everything on processor 0,
    /// superstep 0) — the paper's "trivial schedule" starting point.
    pub fn zeroed(n: usize) -> Self {
        BspSchedule {
            proc: vec![0; n],
            step: vec![0; n],
        }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn n(&self) -> usize {
        self.proc.len()
    }

    /// Processor of `v`.
    #[inline]
    pub fn proc(&self, v: NodeId) -> u32 {
        self.proc[v as usize]
    }

    /// Superstep of `v`.
    #[inline]
    pub fn step(&self, v: NodeId) -> u32 {
        self.step[v as usize]
    }

    /// Reassigns `v`.
    #[inline]
    pub fn set(&mut self, v: NodeId, proc: u32, step: u32) {
        self.proc[v as usize] = proc;
        self.step[v as usize] = step;
    }

    /// Number of supersteps spanned by the computation phases
    /// (`max τ(v) + 1`; 0 when empty).
    pub fn n_supersteps(&self) -> u32 {
        self.step.iter().max().map_or(0, |&s| s + 1)
    }

    /// Largest processor index used plus one.
    pub fn procs_used(&self) -> u32 {
        self.proc.iter().max().map_or(0, |&p| p + 1)
    }

    /// The raw `π` vector.
    #[inline]
    pub fn procs(&self) -> &[u32] {
        &self.proc
    }

    /// The raw `τ` vector.
    #[inline]
    pub fn steps(&self) -> &[u32] {
        &self.step
    }

    /// Checks the *assignment-level* precedence conditions assuming a lazy
    /// communication schedule will be attached: for every edge `(u, v)`,
    /// `τ(u) ≤ τ(v)` when `π(u) = π(v)` and `τ(u) < τ(v)` otherwise.
    pub fn respects_precedence_lazy(&self, dag: &Dag) -> bool {
        dag.edges().all(|(u, v)| {
            if self.proc(u) == self.proc(v) {
                self.step(u) <= self.step(v)
            } else {
                self.step(u) < self.step(v)
            }
        })
    }

    /// Work assigned to processor `p` in superstep `s`.
    pub fn work_of(&self, dag: &Dag, p: u32, s: u32) -> u64 {
        dag.nodes()
            .filter(|&v| self.proc(v) == p && self.step(v) == s)
            .map(|v| dag.work(v))
            .sum()
    }

    /// Nodes assigned to superstep `s`, ascending by id.
    pub fn nodes_in_step(&self, s: u32) -> Vec<NodeId> {
        (0..self.n() as NodeId)
            .filter(|&v| self.step(v) == s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_dag::DagBuilder;

    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..3).map(|i| b.add_node(i + 1, 1)).collect();
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let mut s = BspSchedule::zeroed(3);
        assert_eq!(s.n_supersteps(), 1);
        s.set(2, 1, 4);
        assert_eq!(s.proc(2), 1);
        assert_eq!(s.step(2), 4);
        assert_eq!(s.n_supersteps(), 5);
        assert_eq!(s.procs_used(), 2);
    }

    #[test]
    fn lazy_precedence_rules() {
        let dag = chain3();
        // Same processor, equal steps: fine.
        let s = BspSchedule::from_parts(vec![0, 0, 0], vec![0, 0, 0]);
        assert!(s.respects_precedence_lazy(&dag));
        // Cross-processor, equal steps: needs a strict increase.
        let s = BspSchedule::from_parts(vec![0, 1, 1], vec![0, 0, 0]);
        assert!(!s.respects_precedence_lazy(&dag));
        let s = BspSchedule::from_parts(vec![0, 1, 1], vec![0, 1, 1]);
        assert!(s.respects_precedence_lazy(&dag));
        // Decreasing steps: invalid either way.
        let s = BspSchedule::from_parts(vec![0, 0, 0], vec![1, 0, 0]);
        assert!(!s.respects_precedence_lazy(&dag));
    }

    #[test]
    fn work_of_sums_per_cell() {
        let dag = chain3();
        let s = BspSchedule::from_parts(vec![0, 0, 1], vec![0, 0, 1]);
        assert_eq!(s.work_of(&dag, 0, 0), 1 + 2);
        assert_eq!(s.work_of(&dag, 1, 1), 3);
        assert_eq!(s.work_of(&dag, 1, 0), 0);
    }

    #[test]
    fn nodes_in_step_filters() {
        let s = BspSchedule::from_parts(vec![0, 1, 0], vec![0, 1, 1]);
        assert_eq!(s.nodes_in_step(1), vec![1, 2]);
    }
}
