//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6–§7, Appendix C). Run with an experiment id:
//!
//! ```text
//! cargo run -p bsp-experiments --release -- table1 [--scale 0.15] [--threads N]
//! cargo run -p bsp-experiments --release -- registry   # descriptor catalogues + health
//! cargo run -p bsp-experiments --release -- solve --sched "pipeline/base?ilp=off" --budget-ms 250
//! cargo run -p bsp-experiments --release -- bench --instances "spmv?n=500 @ bsp?p=8" --json out.json
//! cargo run -p bsp-experiments --release -- memory    # cost vs fast-memory capacity, all families
//! cargo run -p bsp-experiments --release -- serve --addr 127.0.0.1:7570 --store results.json --store-cap 512
//! cargo run -p bsp-experiments --release -- loadgen --quick
//! cargo run -p bsp-experiments --release -- chaos --quick [--faults "faults?seed=7&panic=0.02"]
//! cargo run -p bsp-experiments --release -- online --check [--order shuffle] [--budget-ms 2]
//! cargo run -p bsp-experiments --release -- all
//! ```
//!
//! `--sched <spec>` (repeatable) selects schedulers by spec string for the
//! `registry`, `solve` and `bench` commands — `"etf?numa=on"`,
//! `"pipeline/base?ilp=off&hc_iters=200"` (grammar: README § "Choosing a
//! scheduler"). `--instances <spec>` (repeatable) selects problem
//! instances for the same commands through the instance registry —
//! `"spmv?n=1000&q=0.3 @ bsp?p=8&numa=tree"` (grammar: README §
//! "Instances & machines"); the table sweeps themselves fetch their
//! datasets through the same API (`dataset/<kind>?scale=…`). `--json
//! <path>` makes `bench` write its machine-readable timing report there.
//! `--budget-ms <N>` puts a wall-clock deadline on every pipeline solve
//! of the table sweeps and the `registry`/`solve`/`bench` commands; the
//! ablation studies keep their own matched budgets and reject the flag.
//!
//! `serve` runs the `bsp-serve` scheduling daemon (README § "Service"):
//! `--addr <host:port>` binds it (default `127.0.0.1:7570`), `--store
//! <path>` persists the result cache across restarts, `--threads` sizes
//! the worker pool, `--budget-ms` sets the default per-request budget and
//! `--metrics-addr <host:port>` additionally binds the observability
//! sidecar (`GET /metrics` Prometheus text, `GET /trace` Chrome trace
//! JSON — README § "Observability").
//! `loadgen` measures request throughput on the cold / cached / warm
//! service paths; the same measurement fills the `serve` section of the
//! `bench` report.
//!
//! Defaults are scaled down (instances and budgets) so a full sweep runs on
//! a laptop; `--scale 1.0` restores paper-sized instances. Absolute costs
//! are not comparable with the paper's testbed, but the reported *ratios*
//! reproduce its comparisons.

mod ablations;
mod bench;
mod chaos_cmd;
mod memory;
mod metrics;
mod online_cmd;
mod runner;
mod serve_cmd;
mod tables;

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut cfg = runner::RunConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args[i].parse().expect("--scale takes a float");
            }
            "--threads" => {
                i += 1;
                // 0 = auto-detect, matching the bsp-par convention.
                let requested = args[i].parse().expect("--threads takes an integer");
                cfg.threads = bsp_par::resolve_threads(requested);
            }
            "--quick" => cfg.quick = true,
            "--sched" => {
                i += 1;
                cfg.scheds.push(args[i].clone());
            }
            "--instances" => {
                i += 1;
                cfg.instances.push(args[i].clone());
            }
            "--json" => {
                i += 1;
                cfg.json = Some(args[i].clone().into());
            }
            "--budget-ms" => {
                i += 1;
                cfg.budget_ms = Some(args[i].parse().expect("--budget-ms takes milliseconds"));
            }
            "--addr" => {
                i += 1;
                cfg.addr = Some(args[i].clone());
            }
            "--metrics-addr" => {
                i += 1;
                cfg.metrics_addr = Some(args[i].clone());
            }
            "--store" => {
                i += 1;
                cfg.store = Some(args[i].clone().into());
            }
            "--store-cap" => {
                i += 1;
                cfg.store_cap = Some(args[i].parse().expect("--store-cap takes an entry count"));
            }
            "--order" => {
                i += 1;
                cfg.order = Some(args[i].clone());
            }
            "--check" => cfg.check = true,
            "--faults" => {
                i += 1;
                cfg.faults = Some(args[i].clone());
            }
            other if id.is_none() => id = Some(other.to_string()),
            other => panic!("unexpected argument: {other}"),
        }
        i += 1;
    }
    let id = id.unwrap_or_else(|| "all".to_string());
    // Reject flag/command combinations that would otherwise be silently
    // ignored.
    if !cfg.scheds.is_empty() && !matches!(id.as_str(), "registry" | "solve" | "bench" | "memory") {
        panic!("--sched applies only to the `registry`, `solve`, `bench` and `memory` commands");
    }
    if !cfg.instances.is_empty()
        && !matches!(id.as_str(), "registry" | "solve" | "bench" | "online")
    {
        panic!(
            "--instances applies only to the `registry`, `solve`, `bench` and `online` commands"
        );
    }
    if cfg.json.is_some() && id != "bench" {
        panic!("--json applies only to the `bench` command");
    }
    if cfg.budget_ms.is_some() && (id.starts_with("ablation") || id == "all") {
        panic!("--budget-ms does not apply to the ablation studies (matched internal budgets)");
    }
    if cfg.addr.is_some() && id != "serve" {
        panic!("--addr applies only to the `serve` command");
    }
    if cfg.metrics_addr.is_some() && id != "serve" {
        panic!("--metrics-addr applies only to the `serve` command");
    }
    if cfg.store.is_some() && id != "serve" {
        panic!("--store applies only to the `serve` command");
    }
    if cfg.store_cap.is_some() && id != "serve" {
        panic!("--store-cap applies only to the `serve` command");
    }
    if cfg.order.is_some() && id != "online" {
        panic!("--order applies only to the `online` command");
    }
    if cfg.check && id != "online" {
        panic!("--check applies only to the `online` command");
    }
    if cfg.faults.is_some() && !matches!(id.as_str(), "serve" | "chaos") {
        panic!("--faults applies only to the `serve` and `chaos` commands");
    }

    let run = |name: &str| {
        println!("\n================ {name} ================");
        match name {
            "table1" => tables::table1(&cfg),
            "table2" => tables::table2(&cfg),
            "table3" => tables::table3_and_14(&cfg),
            "table4" => tables::table4_and_5(&cfg),
            "table5" => tables::table4_and_5(&cfg),
            "table6" => tables::table6(&cfg),
            "table7" => tables::table7_and_8(&cfg),
            "table8" => tables::table7_and_8(&cfg),
            "table9" => tables::table9(&cfg),
            "table10" => tables::table10(&cfg),
            "table11" => tables::table11_and_fig7(&cfg),
            "table12" => tables::table12(&cfg),
            "table13" => tables::table3_and_14(&cfg),
            "table14" => tables::table3_and_14(&cfg),
            "fig5" => tables::fig5(&cfg),
            "fig6" => tables::fig6(&cfg),
            "fig7" => tables::table11_and_fig7(&cfg),
            "trivial" => tables::trivial_counts(&cfg),
            "registry" => tables::registry_overview(&cfg),
            "solve" => tables::solve_specs(&cfg),
            "bench" => bench::bench(&cfg),
            "serve" => serve_cmd::serve(&cfg),
            "loadgen" => serve_cmd::loadgen(&cfg),
            "chaos" => chaos_cmd::chaos(&cfg),
            "online" => online_cmd::online(&cfg),
            "memory" => memory::memory_sweep(&cfg),
            "ablation" => ablations::all(&cfg),
            "ablation-ls" => ablations::ablation_local_search(&cfg),
            "ablation-est" => ablations::ablation_numa_est(&cfg),
            "ablation-presolve" => ablations::ablation_presolve(&cfg),
            "ablation-auto" => ablations::ablation_auto(&cfg),
            "ablation-cluster" => ablations::ablation_cluster(&cfg),
            other => panic!("unknown experiment id: {other}"),
        }
    };

    if id == "all" {
        // Experiments sharing a sweep are grouped into suites so `all`
        // computes each sweep exactly once.
        run("table4"); // + table5 (same jobs)
        println!("\n================ table1 + fig5 + table6 + table7 + table8 ================");
        tables::no_numa_suite(&cfg);
        run("table9");
        println!("\n================ table2 + table10 ================");
        tables::numa_base_suite(&cfg);
        println!("\n================ fig6 + table3/13/14 + trivial ================");
        tables::numa_ml_suite(&cfg);
        run("table11"); // + fig7 (same jobs)
        run("table12");
        run("ablation");
    } else {
        run(&id);
    }
}
