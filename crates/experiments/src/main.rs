//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6–§7, Appendix C). Run with an experiment id:
//!
//! ```text
//! cargo run -p bsp-experiments --release -- table1 [--scale 0.15] [--threads N]
//! cargo run -p bsp-experiments --release -- registry   # whole-suite overview
//! cargo run -p bsp-experiments --release -- all
//! ```
//!
//! Defaults are scaled down (instances and budgets) so a full sweep runs on
//! a laptop; `--scale 1.0` restores paper-sized instances. Absolute costs
//! are not comparable with the paper's testbed, but the reported *ratios*
//! reproduce its comparisons.

mod ablations;
mod metrics;
mod runner;
mod tables;

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut cfg = runner::RunConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args[i].parse().expect("--scale takes a float");
            }
            "--threads" => {
                i += 1;
                cfg.threads = args[i].parse().expect("--threads takes an integer");
            }
            "--quick" => cfg.quick = true,
            other if id.is_none() => id = Some(other.to_string()),
            other => panic!("unexpected argument: {other}"),
        }
        i += 1;
    }
    let id = id.unwrap_or_else(|| "all".to_string());

    let run = |name: &str| {
        println!("\n================ {name} ================");
        match name {
            "table1" => tables::table1(&cfg),
            "table2" => tables::table2(&cfg),
            "table3" => tables::table3_and_14(&cfg),
            "table4" => tables::table4_and_5(&cfg),
            "table5" => tables::table4_and_5(&cfg),
            "table6" => tables::table6(&cfg),
            "table7" => tables::table7_and_8(&cfg),
            "table8" => tables::table7_and_8(&cfg),
            "table9" => tables::table9(&cfg),
            "table10" => tables::table10(&cfg),
            "table11" => tables::table11_and_fig7(&cfg),
            "table12" => tables::table12(&cfg),
            "table13" => tables::table3_and_14(&cfg),
            "table14" => tables::table3_and_14(&cfg),
            "fig5" => tables::fig5(&cfg),
            "fig6" => tables::fig6(&cfg),
            "fig7" => tables::table11_and_fig7(&cfg),
            "trivial" => tables::trivial_counts(&cfg),
            "registry" => tables::registry_overview(&cfg),
            "ablation" => ablations::all(&cfg),
            "ablation-ls" => ablations::ablation_local_search(&cfg),
            "ablation-est" => ablations::ablation_numa_est(&cfg),
            "ablation-presolve" => ablations::ablation_presolve(&cfg),
            "ablation-auto" => ablations::ablation_auto(&cfg),
            "ablation-cluster" => ablations::ablation_cluster(&cfg),
            other => panic!("unknown experiment id: {other}"),
        }
    };

    if id == "all" {
        // Experiments sharing a sweep are grouped into suites so `all`
        // computes each sweep exactly once.
        run("table4"); // + table5 (same jobs)
        println!("\n================ table1 + fig5 + table6 + table7 + table8 ================");
        tables::no_numa_suite(&cfg);
        run("table9");
        println!("\n================ table2 + table10 ================");
        tables::numa_base_suite(&cfg);
        println!("\n================ fig6 + table3/13/14 + trivial ================");
        tables::numa_ml_suite(&cfg);
        run("table11"); // + fig7 (same jobs)
        run("table12");
        run("ablation");
    } else {
        run(&id);
    }
}
